package fold3d

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	d, err := Generate(Options{Only: []string{"L2B0"}})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlow(d, FlowConfig{})
	b := d.Blocks["L2B0"]
	r, err := fl.ImplementBlock(b, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power.TotalMW <= 0 {
		t.Error("no power report")
	}
}

func TestPublicFold(t *testing.T) {
	d, err := Generate(Options{Only: []string{"L2T0"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := d.Blocks["L2T0"]
	res, err := Fold(b, FoldOptions{Mode: FoldMinCut, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets == 0 {
		t.Error("no cut nets")
	}
	if !b.Is3D {
		t.Error("block not folded")
	}
}

func TestStylesExported(t *testing.T) {
	styles := []Style{Style2D, StyleCoreCache, StyleCoreCore, StyleFoldF2B, StyleFoldF2F}
	seen := map[string]bool{}
	for _, s := range styles {
		if seen[s.String()] {
			t.Errorf("duplicate style name %s", s)
		}
		seen[s.String()] = true
	}
	if F2B.String() == F2F.String() {
		t.Error("bonding constants collide")
	}
}

func TestOptionsDefaults(t *testing.T) {
	cfg := NewExperiments(0, 0)
	if cfg.Scale != 1000 || cfg.Seed != 42 {
		t.Errorf("experiment defaults = %+v", cfg)
	}
	cfg = NewExperiments(500, 7)
	if cfg.Scale != 500 || cfg.Seed != 7 {
		t.Errorf("experiment overrides = %+v", cfg)
	}
	if DefaultFlowConfig().Util <= 0 {
		t.Error("flow defaults empty")
	}
}

func TestGenerateBadOptions(t *testing.T) {
	if _, err := Generate(Options{Scale: 0.5}); err == nil {
		t.Error("expected error for scale < 1")
	}
}
