package fold3d

import (
	"context"
	"errors"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	d, err := Generate(Options{Only: []string{"L2B0"}})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlow(d, FlowConfig{})
	b := d.Blocks["L2B0"]
	r, err := fl.ImplementBlock(b, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power.TotalMW <= 0 {
		t.Error("no power report")
	}
}

func TestPublicFold(t *testing.T) {
	d, err := Generate(Options{Only: []string{"L2T0"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := d.Blocks["L2T0"]
	res, err := Fold(b, FoldOptions{Mode: FoldMinCut, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets == 0 {
		t.Error("no cut nets")
	}
	if !b.Is3D {
		t.Error("block not folded")
	}
}

func TestStylesExported(t *testing.T) {
	styles := []Style{Style2D, StyleCoreCache, StyleCoreCore, StyleFoldF2B, StyleFoldF2F}
	seen := map[string]bool{}
	for _, s := range styles {
		if seen[s.String()] {
			t.Errorf("duplicate style name %s", s)
		}
		seen[s.String()] = true
	}
	if F2B.String() == F2F.String() {
		t.Error("bonding constants collide")
	}
}

func TestOptionsDefaults(t *testing.T) {
	cfg := NewExperiments(0, 0)
	if cfg.Scale != 1000 || cfg.Seed != 42 {
		t.Errorf("experiment defaults = %+v", cfg)
	}
	cfg = NewExperiments(500, 7)
	if cfg.Scale != 500 || cfg.Seed != 7 {
		t.Errorf("experiment overrides = %+v", cfg)
	}
	if DefaultFlowConfig().Util <= 0 {
		t.Error("flow defaults empty")
	}
}

func TestGenerateBadOptions(t *testing.T) {
	if _, err := Generate(Options{Scale: 0.5}); err == nil {
		t.Error("expected error for scale < 1")
	}
}

func TestPartialFlowConfigMerges(t *testing.T) {
	d, err := Generate(Options{Only: []string{"L2B0"}})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlow(d, FlowConfig{Bond: F2F})
	def := DefaultFlowConfig()
	if fl.Cfg.Bond != F2F {
		t.Errorf("Bond override lost: %v", fl.Cfg.Bond)
	}
	if fl.Cfg.Util != def.Util || fl.Cfg.Seed != def.Seed || fl.Cfg.Place != def.Place {
		t.Errorf("partial config dropped defaults: %+v", fl.Cfg)
	}
	fl = NewFlow(d, FlowConfig{Workers: 3})
	if fl.Cfg.Workers != 3 || fl.Cfg.Util != def.Util {
		t.Errorf("Workers-only config mismerged: %+v", fl.Cfg)
	}
}

func TestSeedSetMakesZeroSeedReachable(t *testing.T) {
	d0, err := Generate(Options{Only: []string{"L2B0"}, SeedSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := d0.Cfg.Seed; got != 0 {
		t.Errorf("SeedSet zero seed = %d, want 0", got)
	}
	dDef, err := Generate(Options{Only: []string{"L2B0"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := dDef.Cfg.Seed; got != 42 {
		t.Errorf("unset seed = %d, want default 42", got)
	}
}

func TestErrorSentinels(t *testing.T) {
	if _, err := Generate(Options{Only: []string{"NOPE"}}); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown Only block: got %v, want ErrUnknownBlock", err)
	}
	if _, err := Generate(Options{Scale: -3}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative scale: got %v, want ErrBadOptions", err)
	}
	if _, err := Fold(nil, FoldOptions{Mode: 99}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad fold mode: got %v, want ErrBadOptions", err)
	}
}

func TestBuildChipCanceled(t *testing.T) {
	d, err := Generate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = BuildChip(ctx, d, FlowConfig{}, Style2D)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled build: got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled build: %v does not match context.Canceled", err)
	}
}

func TestBuildChipOneCall(t *testing.T) {
	d, err := Generate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildChip(context.Background(), d, FlowConfig{Workers: 2}, Style2D)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power.TotalMW <= 0 || len(r.Blocks) == 0 {
		t.Errorf("empty chip result: %+v", r)
	}
}
