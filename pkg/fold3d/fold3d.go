// Package fold3d is the public API of the fold3d library: a reproduction of
// "On Enhancing Power Benefits in 3D ICs: Block Folding and Bonding Styles
// Perspective" (Jung et al., DAC 2014) as a self-contained EDA stack in Go.
//
// The library builds a synthetic OpenSPARC-T2-class design, implements it
// through a full RTL-to-GDSII-like flow (floorplanning, mixed-size 3D
// placement, CTS, repeater insertion, sizing, dual-Vth, parasitic
// extraction, STA, power analysis), and evaluates the paper's design styles:
// 2D, 3D floorplanning (core/cache and core/core stacking), and block
// folding under face-to-back (TSV) or face-to-face (F2F via) bonding.
//
// Quick start:
//
//	design, _ := fold3d.Generate(fold3d.Options{})
//	chip, _ := fold3d.BuildChip(ctx, design, fold3d.FlowConfig{}, fold3d.StyleFoldF2F)
//	fmt.Println(chip.Power)
//
// # Concurrency and determinism
//
// FlowConfig.Workers bounds the per-block fan-out of a chip build
// (0 = one worker per CPU, 1 = strictly sequential). Results are
// byte-identical at every worker count: each block is seeded independently
// and per-block results are merged in sorted block-name order, never in
// completion order. FlowConfig.Progress receives live status events;
// callbacks are serialized but arrive in scheduler order.
//
// # Error contract
//
// Failures that stem from caller input match, via errors.Is, one of the
// exported sentinels: ErrUnknownBlock (a name in Options.Only is not a T2
// block), ErrBadOptions (out-of-range scale, malformed fold options), or
// ErrCanceled (the context was canceled or timed out; such errors also
// match context.Canceled / context.DeadlineExceeded). Everything else is
// an internal invariant failure and carries a "flow:"/"t2:" prefix.
//
// The exp sub-API (Experiments) regenerates every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured record.
package fold3d

import (
	"context"

	"fold3d/internal/core"
	"fold3d/internal/errs"
	"fold3d/internal/exp"
	"fold3d/internal/extract"
	"fold3d/internal/flow"
	"fold3d/internal/netlist"
	"fold3d/internal/pipeline"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
	"fold3d/internal/thermal"
)

// Sentinel errors; test with errors.Is. See the package doc for the
// full contract.
var (
	// ErrUnknownBlock reports a block or experiment name that does not
	// exist in the T2 design database.
	ErrUnknownBlock = errs.ErrUnknownBlock
	// ErrBadOptions reports caller-supplied options that fail validation.
	ErrBadOptions = errs.ErrBadOptions
	// ErrCanceled reports a run cut short by context cancellation. Such
	// errors also match the underlying context cause.
	ErrCanceled = errs.ErrCanceled
	// ErrUnknownExperiment reports an experiment name absent from the
	// registry (Experiments.Names lists the valid ones).
	ErrUnknownExperiment = errs.ErrUnknownExperiment
	// ErrCacheCorrupt reports an on-disk artifact-cache entry that failed
	// its checksum or header validation. The cache treats such entries as
	// misses and recomputes, so callers normally never see this sentinel;
	// it surfaces only through CacheStats.Corrupt diagnostics.
	ErrCacheCorrupt = errs.ErrCacheCorrupt
)

// Design is the generated benchmark database (blocks, bundles, technology).
type Design = t2.Design

// Block is one gate-level block netlist with its implementation state.
type Block = netlist.Block

// Flow is the implementation engine.
type Flow = flow.Flow

// FlowConfig selects bonding style, dual-Vth, worker count and engine
// options. Zero fields are filled in field-by-field from
// DefaultFlowConfig, so a partial config such as FlowConfig{Bond: F2F}
// keeps every default except the bond style.
type FlowConfig = flow.Config

// Progress is one live status event of a running flow; see
// FlowConfig.Progress.
type Progress = flow.Progress

// Flow progress stages, in the order a chip build emits them.
const (
	StageFold      = flow.StageFold
	StageFloorplan = flow.StageFloorplan
	StageImplement = flow.StageImplement
	StageChipNets  = flow.StageChipNets
	StageDone      = flow.StageDone
)

// BlockResult and ChipResult carry the per-block / full-chip metrics.
type BlockResult = flow.BlockResult

// ChipResult is a full-chip implementation outcome.
type ChipResult = flow.ChipResult

// FoldOptions configures block folding (mode, groups, cut inflation).
type FoldOptions = core.FoldOptions

// Style is a full-chip design style (Figure 8 of the paper).
type Style = t2.Style

// Bonding selects the 3D via technology.
type Bonding = extract.Bonding

// Library is the 28nm-class technology library.
type Library = tech.Library

// The five design styles of the paper.
const (
	Style2D        = t2.Style2D
	StyleCoreCache = t2.StyleCoreCache
	StyleCoreCore  = t2.StyleCoreCore
	StyleFoldF2B   = t2.StyleFoldF2B
	StyleFoldF2F   = t2.StyleFoldF2F
)

// Bonding styles.
const (
	F2B = extract.F2B
	F2F = extract.F2F
)

// Fold modes.
const (
	FoldNatural     = core.FoldNatural
	FoldMinCut      = core.FoldMinCut
	FoldSecondLevel = core.FoldSecondLevel
)

// Options parameterizes design generation.
type Options struct {
	// Scale is the netlist scale factor: one modeled cell per Scale
	// physical cells. 0 selects the default (1000); negative values are
	// rejected with ErrBadOptions.
	Scale float64
	// Seed drives all randomness (default 42). Runs are bit-reproducible.
	// A zero Seed means "use the default" unless SeedSet is true.
	Seed uint64
	// SeedSet forces Seed to be honored verbatim, making the zero seed
	// reachable.
	SeedSet bool
	// Only restricts generation to the named blocks (block-level
	// studies). Unknown names are rejected with ErrUnknownBlock.
	Only []string
}

// Generate builds the synthetic OpenSPARC T2 design database.
func Generate(opt Options) (*Design, error) {
	cfg := t2.DefaultConfig()
	if opt.Scale != 0 {
		cfg.Scale = opt.Scale
	}
	if opt.SeedSet || opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	cfg.Only = opt.Only
	return t2.Generate(cfg)
}

// NewFlow binds a design to a flow configuration. Zero-valued fields are
// filled in from DefaultFlowConfig, so partial configs work (see
// FlowConfig).
func NewFlow(d *Design, cfg FlowConfig) *Flow {
	return flow.New(d, cfg)
}

// BuildChip implements the full chip in the given style under ctx,
// creating the flow from cfg (zero fields defaulted). It is the
// one-call form of NewFlow(d, cfg).BuildChipContext(ctx, style).
func BuildChip(ctx context.Context, d *Design, cfg FlowConfig, style Style) (*ChipResult, error) {
	return flow.New(d, cfg).BuildChipContext(ctx, style)
}

// DefaultFlowConfig returns the committed experiment defaults.
func DefaultFlowConfig() FlowConfig { return flow.DefaultConfig() }

// Fold splits a block across two dies in place (see FoldOptions).
func Fold(b *Block, opt FoldOptions) (*core.FoldResult, error) {
	return core.Fold(b, opt)
}

// ArtifactCache is the content-addressed block-artifact cache. Attach one
// to FlowConfig.Cache (or Experiments.Cache) to reuse implemented blocks
// across chip builds; restored results are byte-identical to recomputation.
// A single cache is safe to share between concurrent flows.
type ArtifactCache = pipeline.Cache

// CacheOptions configures an ArtifactCache; a non-empty Dir spills
// artifacts to disk so later processes can warm-start.
type CacheOptions = pipeline.CacheOptions

// CacheStats is an ArtifactCache hit/miss snapshot.
type CacheStats = pipeline.Stats

// NewArtifactCache creates an empty artifact cache. With a zero
// CacheOptions the cache is memory-only.
func NewArtifactCache(opt CacheOptions) *ArtifactCache {
	return pipeline.NewCache(opt)
}

// ThermalConfig turns on in-loop thermal planning: attach one with Enable
// set to FlowConfig.Thermal (or Experiments.Thermal) and folded F2B blocks
// get thermal-via insertion driven by the multigrid temperature solver.
// The zero value keeps every flow and fingerprint byte-identical to a
// thermal-unaware run.
type ThermalConfig = flow.ThermalConfig

// ThermalParams are the steady-state solver constants (conductances,
// ambient, TSV thermal model).
type ThermalParams = thermal.Params

// ThermalResult is a solved temperature field summary: peak/average in °C,
// per-die peaks, and the full tile map.
type ThermalResult = thermal.Result

// DefaultThermalParams returns the committed solver constants.
func DefaultThermalParams() ThermalParams { return thermal.DefaultParams() }

// AnalyzeThermal solves the steady-state temperature field of an
// implemented (placed, extracted) block under the given bonding style
// using the multigrid engine.
func AnalyzeThermal(b *Block, d *Design, bond Bonding, p ThermalParams) (*ThermalResult, error) {
	return thermal.AnalyzeBlock(b, d.Scale, bond, p)
}

// Experiments exposes the table/figure harness of the paper's evaluation.
type Experiments = exp.Config

// NewExperiments returns the experiment configuration with defaults.
func NewExperiments(scale float64, seed uint64) Experiments {
	cfg := exp.DefaultConfig()
	if scale > 0 {
		cfg.Scale = scale
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg
}
