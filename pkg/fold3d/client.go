package fold3d

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx response from a fold3dd daemon, decoded from the
// unified /v1 error envelope {"error":{"code","message"}}. It unwraps to
// the matching package sentinel, so errors.Is(err, fold3d.ErrQueueFull)
// works across the HTTP boundary exactly as it does in-process.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error class ("queue_full", ...).
	Code string
	// Message is the server's human-readable error text.
	Message string
	// RetryAfter is the server's backoff hint, 0 when none was sent.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("fold3d: server error %d (%s): %s", e.Status, e.Code, e.Message)
}

// Unwrap maps the error code back to the package sentinel (not_found
// unwraps to ErrUnknownJob for job lookups and ErrUnknownBatch is matched
// by code — check Code == "not_found" when the distinction matters).
func (e *APIError) Unwrap() error {
	switch e.Code {
	case "bad_request":
		return ErrBadRequest
	case "not_found":
		return ErrUnknownJob
	case "quota_exceeded":
		return ErrQuotaExceeded
	case "queue_full":
		return ErrQueueFull
	case "shutdown":
		return ErrShutdown
	default:
		return nil
	}
}

// Client is a Go client for the fold3dd /v1 API: submission (single jobs
// and batches), status, result waiting, and NDJSON event streaming with
// automatic ?from= resume across disconnects. The zero value is not
// usable; construct with NewClient. Safe for concurrent use.
type Client struct {
	// BaseURL is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient issues the requests; nil uses http.DefaultClient. Do not
	// set a client-wide Timeout: event streams legitimately stay open for
	// the life of a job — bound calls with the context instead.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the error envelope of a non-2xx response.
func apiError(resp *http.Response) error {
	e := &APIError{Status: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		e.RetryAfter = time.Duration(ra) * time.Second
	}
	var body ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil {
		e.Code = body.Error.Code
		e.Message = body.Error.Message
	} else {
		e.Message = fmt.Sprintf("undecodable error body (%v)", err)
	}
	return e
}

// doJSON issues one request and decodes a 2xx JSON body into out.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fold3d: encoding request: %w", err)
		}
		body = strings.NewReader(string(data))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("fold3d: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("fold3d: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("fold3d: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// Submit enqueues one job and returns its accepted snapshot (the job is
// queued or already running; Wait for the result).
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobInfo, error) {
	var info JobInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, &info)
	return info, err
}

// SubmitBatch enqueues many job configurations atomically: either every
// member is admitted under one batch ID or none are.
func (c *Client) SubmitBatch(ctx context.Context, reqs []JobRequest) (BatchInfo, error) {
	var info BatchInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/batches", BatchRequest{Jobs: reqs}, &info)
	return info, err
}

// Job fetches one job's status snapshot.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &info)
	return info, err
}

// Jobs lists every job on the node in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var infos []JobInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &infos)
	return infos, err
}

// Batch fetches one batch's status snapshot (including every member).
func (c *Client) Batch(ctx context.Context, id string) (BatchInfo, error) {
	var info BatchInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/batches/"+id, nil, &info)
	return info, err
}

// waitPoll is the terminal-state polling cadence of Wait. The event
// stream carries liveness; polling only covers stream gaps, so seconds
// are fine.
const waitPoll = 250 * time.Millisecond

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot. It follows the event stream (resuming across
// disconnects) and falls back to polling, so it survives a daemon that
// drops the connection mid-job.
func (c *Client) Wait(ctx context.Context, id string) (JobInfo, error) {
	// The stream returns when the job terminalizes or ctx ends; either
	// way the status poll below settles it. Stream errors (e.g. a 404 on
	// an unknown ID) are terminal for Wait too.
	err := c.StreamEvents(ctx, id, 0, func(JobEvent) error { return nil })
	if err != nil {
		return JobInfo{}, err
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return JobInfo{}, fmt.Errorf("fold3d: waiting for %s: %w", id, ctx.Err())
		case <-time.After(waitPoll):
		}
	}
}

// streamBackoff is the reconnect backoff ladder for event streams.
var streamBackoff = []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second}

// StreamEvents follows a job's NDJSON event stream, calling fn for every
// event from sequence number from onward, until the job reaches a
// terminal state. Disconnects are survived transparently: the client
// reconnects with ?from= set to the next unseen sequence number, so fn
// sees every event exactly once, in order, across any number of drops. A
// non-nil error from fn stops the stream and is returned.
func (c *Client) StreamEvents(ctx context.Context, id string, from int, fn func(JobEvent) error) error {
	terminal := func(ctx context.Context) (bool, error) {
		info, err := c.Job(ctx, id)
		if err != nil {
			return false, err
		}
		return info.State.Terminal(), nil
	}
	return c.streamNDJSON(ctx, "/v1/jobs/"+id+"/events", from, terminal, func(line []byte, cursor int) (int, error) {
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return cursor, fmt.Errorf("fold3d: bad event line: %w", err)
		}
		if ev.Seq < cursor {
			return cursor, nil // duplicate after a racy reconnect; drop
		}
		if err := fn(ev); err != nil {
			return cursor, err
		}
		return ev.Seq + 1, nil
	})
}

// StreamBatchEvents follows a batch's multiplexed NDJSON stream with the
// same exactly-once, resume-on-disconnect contract as StreamEvents.
func (c *Client) StreamBatchEvents(ctx context.Context, id string, from int, fn func(BatchEvent) error) error {
	terminal := func(ctx context.Context) (bool, error) {
		info, err := c.Batch(ctx, id)
		if err != nil {
			return false, err
		}
		return info.State.Terminal(), nil
	}
	return c.streamNDJSON(ctx, "/v1/batches/"+id+"/events", from, terminal, func(line []byte, cursor int) (int, error) {
		var ev BatchEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return cursor, fmt.Errorf("fold3d: bad batch event line: %w", err)
		}
		if ev.Seq < cursor {
			return cursor, nil
		}
		if err := fn(ev); err != nil {
			return cursor, err
		}
		return ev.Seq + 1, nil
	})
}

// stopError marks a consumer-requested stop (fn returned an error) so the
// resume loop can tell it apart from a dropped connection.
type stopError struct{ err error }

func (s *stopError) Error() string { return "fold3d: stream consumer stopped: " + s.err.Error() }

// streamNDJSON is the shared resume loop: connect at the cursor, feed
// lines to deliver (which advances the cursor), and on a dropped
// connection decide between "stream complete" (the entity is terminal)
// and "reconnect from the cursor" with backoff.
func (c *Client) streamNDJSON(ctx context.Context, path string, cursor int, terminal func(context.Context) (bool, error), deliver func(line []byte, cursor int) (int, error)) error {
	attempt := 0
	for {
		advanced, err := c.streamOnce(ctx, path, &cursor, deliver)
		if err != nil {
			var stop *stopError
			if errors.As(err, &stop) {
				return stop.err
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				return err // the server refused the stream; resuming won't help
			}
			if ctx.Err() != nil {
				return fmt.Errorf("fold3d: streaming %s: %w", path, ctx.Err())
			}
			// Transport-level drop: fall through to the resume decision.
		}
		done, terr := terminal(ctx)
		if terr != nil {
			return terr
		}
		if done && err == nil {
			return nil
		}
		// Mid-job disconnect (or the stream closed just before the final
		// events landed): back off and resume from the cursor.
		if advanced {
			attempt = 0
		} else if attempt < len(streamBackoff)-1 {
			attempt++
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fold3d: streaming %s: %w", path, ctx.Err())
		case <-time.After(streamBackoff[attempt]):
		}
	}
}

// streamOnce holds one connection open, delivering lines until the server
// ends the stream (clean return) or the connection breaks (error).
// advanced reports whether any event was delivered on this connection.
func (c *Client) streamOnce(ctx context.Context, path string, cursor *int, deliver func(line []byte, cursor int) (int, error)) (advanced bool, err error) {
	url := fmt.Sprintf("%s%s?from=%d", c.BaseURL, path, *cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, fmt.Errorf("fold3d: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return false, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		next, derr := deliver(sc.Bytes(), *cursor)
		if derr != nil {
			return advanced, &stopError{derr}
		}
		if next != *cursor {
			advanced = true
		}
		*cursor = next
	}
	return advanced, sc.Err()
}
