// The serving surface of the public API: the fold3dd job queue and its
// HTTP transport, re-exported so embedders can run the daemon's machinery
// in their own process (custom listeners, extra routes, shared caches)
// without importing internal packages.
//
// Quick start:
//
//	mgr := fold3d.NewJobManager(fold3d.JobManagerOptions{})
//	defer mgr.Close(context.Background())
//	http.ListenAndServe(":8080", fold3d.NewJobHandler(mgr))
//
// Determinism extends through the queue: a job's result fingerprint is a
// pure function of its normalized JobRequest, byte-identical whether the
// job ran cold, against a warm cache, or concurrently with other jobs.

package fold3d

import (
	"net/http"

	"fold3d/internal/errs"
	"fold3d/internal/jobs"
	"fold3d/internal/place"
	"fold3d/internal/server"
)

// Job-queue sentinel errors; test with errors.Is.
var (
	// ErrBadRequest reports caller-supplied input rejected by validation
	// before any work started. Every validation failure (bad options,
	// unknown experiment names) matches it, so transports can map the whole
	// class to one client-error status.
	ErrBadRequest = errs.ErrBadRequest
	// ErrQueueFull reports a submission rejected because the bounded job
	// queue had no free slot; retry later.
	ErrQueueFull = jobs.ErrQueueFull
	// ErrShutdown reports a submission after the manager began draining.
	ErrShutdown = jobs.ErrShutdown
	// ErrUnknownJob reports a lookup of a job ID the manager never issued.
	ErrUnknownJob = jobs.ErrUnknownJob
	// ErrUnknownBatch reports a lookup of a batch ID the manager never
	// issued.
	ErrUnknownBatch = jobs.ErrUnknownBatch
	// ErrQuotaExceeded reports a submission rejected because its tenant is
	// at its per-tenant queue quota (the global queue may still have room;
	// other tenants are unaffected).
	ErrQuotaExceeded = jobs.ErrQuotaExceeded
)

// JobRequest is one job submission: experiments to run and their knobs.
// The zero value requests every experiment at the committed defaults.
// The Placer field selects the placement backend (PlacementBackends
// lists the valid names); an unknown name is rejected at validation with
// an error matching both ErrBadRequest and ErrBadOptions. The Thermal
// field (a *JobThermalSpec) turns on in-loop thermal planning and the
// "will this folding melt" verdict; nil keeps fingerprints and routing
// byte-identical to requests predating the field.
type JobRequest = jobs.Request

// JobThermalSpec is the thermal half of a JobRequest: temperature budget,
// via budget, and the hotspot-aware selection weight. An impossible budget
// is rejected at validation with an error matching both ErrBadRequest and
// ErrBadOptions (HTTP 400 from fold3dd).
type JobThermalSpec = jobs.ThermalSpec

// PlacementBackends returns the registered placement backend names in
// registration order — the valid values of JobRequest.Placer and the
// fold3d -placer flag. The first registered backend, "force", is the
// default when Placer is empty.
func PlacementBackends() []string { return place.BackendNames() }

// JobState is a job lifecycle state: queued → running → done | failed |
// canceled.
type JobState = jobs.State

// The job lifecycle states.
const (
	JobQueued   = jobs.StateQueued
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobCanceled = jobs.StateCanceled
)

// Job is one queued or running experiment request; all methods are safe
// for concurrent use.
type Job = jobs.Job

// JobInfo is a point-in-time snapshot of a job (state, request, result).
type JobInfo = jobs.Info

// JobResult is a completed job's output with its content fingerprint.
type JobResult = jobs.Result

// JobEvent is one line of a job's event stream: a lifecycle transition or
// a flow progress update, densely sequence-numbered for lossless resume.
type JobEvent = jobs.Event

// Batch is a group of jobs admitted atomically, with one multiplexed
// event stream over every member.
type Batch = jobs.Batch

// BatchInfo is a point-in-time snapshot of a batch and its member jobs.
type BatchInfo = jobs.BatchInfo

// BatchEvent is one line of a batch's multiplexed event stream: a member
// job's event tagged with that job's ID under a batch-wide dense sequence.
type BatchEvent = jobs.BatchEvent

// BatchRequest is the body of POST /v1/batches: many job configurations
// submitted as one atomic request.
type BatchRequest = server.BatchRequest

// ErrorBody is the unified /v1 error envelope: {"error":{"code","message"}}.
type ErrorBody = server.ErrorBody

// ErrorDetail is the inner object of ErrorBody: a stable machine-readable
// code plus human-readable message.
type ErrorDetail = server.ErrorDetail

// JobManager owns the job queue: admission, the bounded scheduler, job
// state and service metrics.
type JobManager = jobs.Manager

// JobManagerOptions configures a JobManager (scheduler width, queue depth,
// shared artifact cache).
type JobManagerOptions = jobs.Options

// JobMetrics is a JobManager service-counter snapshot (job gauges and
// totals, cache effectiveness, per-stage latency histograms).
type JobMetrics = jobs.Metrics

// NewJobManager starts a job manager. Close it to drain: in-flight jobs
// finish as canceled (matching ErrCanceled) and every job reaches a
// terminal state.
func NewJobManager(opts JobManagerOptions) *JobManager {
	return jobs.NewManager(opts)
}

// NewJobHandler returns the fold3dd HTTP API (POST /v1/jobs, job status,
// NDJSON event streams, /metrics, /healthz) bound to the manager. The
// caller keeps ownership of the manager's lifecycle.
func NewJobHandler(mgr *JobManager) http.Handler {
	return server.New(mgr)
}
