package fold3d

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestJobQuickstart exercises the serving surface exactly as the package
// doc advertises it: a manager, the handler, one job over HTTP.
func TestJobQuickstart(t *testing.T) {
	mgr := NewJobManager(JobManagerOptions{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	ts := httptest.NewServer(NewJobHandler(mgr))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	j, err := mgr.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job never finished")
	}
	final := j.Info()
	if final.State != JobDone || final.Result == nil || final.Result.Fingerprint == "" {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
}

// TestJobSentinels pins the errors.Is surface of the queue.
func TestJobSentinels(t *testing.T) {
	mgr := NewJobManager(JobManagerOptions{})
	defer mgr.Close(context.Background())

	if _, err := mgr.Submit(JobRequest{Experiments: []string{"bogus"}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown experiment err %v does not match ErrBadRequest", err)
	}
	if _, err := mgr.Submit(JobRequest{Scale: -1}); !errors.Is(err, ErrBadOptions) || !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad scale err %v misses a sentinel", err)
	}
	if _, err := mgr.Get("job-000099"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job err %v does not match ErrUnknownJob", err)
	}
}

// TestJobStates pins the exported state constants and Terminal.
func TestJobStates(t *testing.T) {
	for _, s := range []JobState{JobDone, JobFailed, JobCanceled} {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []JobState{JobQueued, JobRunning} {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}
