package fold3d

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newClientFixture boots a real manager + handler behind httptest and
// returns a client against it. wrap, when non-nil, interposes on the
// handler (used to inject disconnects).
func newClientFixture(t *testing.T, opts JobManagerOptions, wrap func(http.Handler) http.Handler) (*Client, *JobManager) {
	t.Helper()
	mgr := NewJobManager(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = mgr.Close(ctx)
	})
	var h http.Handler = NewJobHandler(mgr)
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), mgr
}

func TestClientSubmitAndWait(t *testing.T) {
	c, _ := newClientFixture(t, JobManagerOptions{Workers: 1, QueueDepth: 4}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	info, err := c.Submit(ctx, JobRequest{Experiments: []string{"table4"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.State != JobQueued && info.State != JobRunning {
		t.Fatalf("accepted snapshot = %+v", info)
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Result == nil || final.Result.Fingerprint == "" {
		t.Fatalf("final = %+v, want done with a result fingerprint", final)
	}
	// The listing surfaces the job too.
	all, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != info.ID {
		t.Fatalf("Jobs() = %+v", all)
	}
}

// TestClientThermalJob pins the "will it melt" serving path end-to-end: a
// thermal job round-trips through the JSON API, its report carries the
// melt verdict, and an impossible budget is a 400 before any work starts.
func TestClientThermalJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	c, _ := newClientFixture(t, JobManagerOptions{Workers: 1, QueueDepth: 4}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	_, err := c.Submit(ctx, JobRequest{Experiments: []string{"thermal"},
		Thermal: &JobThermalSpec{TMaxC: -40}})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("impossible budget: err = %v, want ErrBadRequest", err)
	}

	info, err := c.Submit(ctx, JobRequest{Experiments: []string{"thermal"},
		Thermal: &JobThermalSpec{TMaxC: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Request.Thermal == nil || info.Request.Thermal.TMaxC != 60 {
		t.Fatalf("thermal spec lost in normalization: %+v", info.Request)
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("final = %+v, want done", final)
	}
	report := final.Result.Experiments[0].Report
	if !strings.Contains(report, "MELTS") {
		t.Errorf("60 C budget produced no melt verdict in the report:\n%s", report)
	}
}

// TestClientErrorMapping pins the envelope decode and sentinel unwrap:
// errors.Is works across the HTTP boundary and APIError carries the
// machine-readable pieces.
func TestClientErrorMapping(t *testing.T) {
	c, mgr := newClientFixture(t, JobManagerOptions{Workers: 1, QueueDepth: 4}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	_, err := c.Submit(ctx, JobRequest{Experiments: []string{"ghost"}})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad experiment: err = %v, want ErrBadRequest", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_request" {
		t.Fatalf("APIError = %+v", apiErr)
	}

	if _, err := c.Job(ctx, "job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: err = %v, want ErrUnknownJob", err)
	}
	if _, err := c.Batch(ctx, "batch-999999"); !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Fatalf("unknown batch: err = %v, want not_found envelope", err)
	}

	// A draining daemon answers 503 shutdown with a Retry-After hint.
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer closeCancel()
	if err := mgr.Close(closeCtx); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, JobRequest{Experiments: []string{"table4"}})
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown submit: err = %v, want ErrShutdown", err)
	}
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		t.Fatalf("shutdown rejection lost its Retry-After hint: %+v", apiErr)
	}
}

// abortingHandler interposes on the first event-stream request: it lets
// exactly one NDJSON line through, then kills the connection, simulating
// a daemon restart / LB idle-timeout mid-stream.
type abortingHandler struct {
	inner    http.Handler
	tripped  atomic.Bool
	attempts atomic.Int64
}

func (a *abortingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && len(r.URL.Path) > 7 && r.URL.Path[len(r.URL.Path)-7:] == "/events" {
		a.attempts.Add(1)
		if a.tripped.CompareAndSwap(false, true) {
			a.inner.ServeHTTP(&abortAfterOneLine{ResponseWriter: w}, r)
			return
		}
	}
	a.inner.ServeHTTP(w, r)
}

// abortAfterOneLine delivers the first Write (one NDJSON event), then
// aborts the connection on the next.
type abortAfterOneLine struct {
	http.ResponseWriter
	wrote bool
}

func (w *abortAfterOneLine) Write(p []byte) (int, error) {
	if w.wrote {
		panic(http.ErrAbortHandler)
	}
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *abortAfterOneLine) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClientStreamResume is the forced-disconnect test: the server drops
// the first stream after one event; the client must reconnect with ?from=
// and deliver every event exactly once, in order.
func TestClientStreamResume(t *testing.T) {
	ah := &abortingHandler{}
	c, _ := newClientFixture(t, JobManagerOptions{Workers: 1, QueueDepth: 4}, func(h http.Handler) http.Handler {
		ah.inner = h
		return ah
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	info, err := c.Submit(ctx, JobRequest{Experiments: []string{"table4"}})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	if err := c.StreamEvents(ctx, info.ID, 0, func(ev JobEvent) error {
		seqs = append(seqs, ev.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ah.attempts.Load(); got < 2 {
		t.Fatalf("stream used %d connections; the forced disconnect never exercised resume", got)
	}
	if len(seqs) < 3 {
		t.Fatalf("only %d events delivered: %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("events not exactly-once/in-order across the disconnect: %v", seqs)
		}
	}
	// And the job really is terminal (the stream didn't bail early).
	final, err := c.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() {
		t.Fatalf("stream returned before terminal state: %s", final.State)
	}
}

// TestClientStreamConsumerStop pins that a consumer error stops the
// stream and is returned verbatim (no retry storm).
func TestClientStreamConsumerStop(t *testing.T) {
	c, _ := newClientFixture(t, JobManagerOptions{Workers: 1, QueueDepth: 4}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	info, err := c.Submit(ctx, JobRequest{Experiments: []string{"table4"}})
	if err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("boom")
	if err := c.StreamEvents(ctx, info.ID, 0, func(JobEvent) error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the consumer's own error", err)
	}
}

// TestClientBatch runs a batch end to end through the client: atomic
// submit, multiplexed stream with dense sequence, distinct member
// results.
func TestClientBatch(t *testing.T) {
	c, _ := newClientFixture(t, JobManagerOptions{Workers: 2, QueueDepth: 8}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	accepted, err := c.SubmitBatch(ctx, []JobRequest{
		{Experiments: []string{"table4"}},
		{Experiments: []string{"table4"}, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || len(accepted.Jobs) != 2 {
		t.Fatalf("accepted batch = %+v", accepted)
	}
	var events []BatchEvent
	if err := c.StreamBatchEvents(ctx, accepted.ID, 0, func(ev BatchEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("batch stream sequence not dense at %d: %+v", i, ev)
		}
		if ev.Job == "" {
			t.Fatalf("batch event %d lost its job tag", i)
		}
	}
	final, err := c.Batch(ctx, accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("batch state = %s, want done", final.State)
	}
	if final.Jobs[0].Result.Fingerprint == final.Jobs[1].Result.Fingerprint {
		t.Fatal("different seeds produced identical member fingerprints")
	}
}
