module fold3d

go 1.22
