// Package fold3drepo is the root of the fold3d repository, a from-scratch Go
// reproduction of "On Enhancing Power Benefits in 3D ICs: Block Folding and
// Bonding Styles Perspective" (Jung, Song, Wan, Peng, Lim — DAC 2014).
//
// The public API lives in pkg/fold3d; the substrate packages (technology
// library, netlist database, FM partitioner, mixed-size 3D placer, router
// and F2F via placer, CTS, STA, optimization, power analysis, floorplanning,
// the synthetic OpenSPARC T2 generator, and the experiment harness) live
// under internal/. The benchmark harness in bench_test.go regenerates every
// table and figure of the paper's evaluation; EXPERIMENTS.md records
// paper-versus-measured for each.
package fold3drepo
