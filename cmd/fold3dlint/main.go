// Command fold3dlint runs fold3d's in-tree static-analysis suite
// (internal/lint) over the module and reports findings with file:line
// positions. It exits 1 when any finding remains, so it can gate CI:
//
//	go run ./cmd/fold3dlint ./...
//
// Flags:
//
//	-checks determinism,mapiter   run a subset of the suite
//	-list                         print the available checks and exit
//
// Intentional violations are silenced in place with
// //lint:ignore <check> <reason> on (or directly above) the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fold3d/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fold3dlint [flags] [packages]\n\n"+
			"Runs the fold3d static-analysis suite. Package patterns are module-relative\n"+
			"(e.g. ./... or internal/place); with no patterns the whole module is linted.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	checks := lint.AllChecks()
	if *checksFlag != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			c := lint.CheckByName(strings.TrimSpace(name))
			if c == nil {
				fmt.Fprintf(os.Stderr, "fold3dlint: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			checks = append(checks, c)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fold3dlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fold3dlint: %v\n", err)
		os.Exit(2)
	}

	findings := lint.Run(lint.DefaultConfig(), pkgs, checks)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fold3dlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
