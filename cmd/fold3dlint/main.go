// Command fold3dlint runs fold3d's in-tree static-analysis suite
// (internal/lint) over the module and reports findings with file:line
// positions. It exits 1 when any finding remains, so it can gate CI:
//
//	go run ./cmd/fold3dlint ./...
//
// Flags:
//
//	-checks determinism,mapiter   run a subset of the suite
//	-list                         print the available checks and exit
//	-json                         machine-readable report on stdout
//	-timing                       per-check wall time on stderr
//
// Intentional violations are silenced in place with
// //lint:ignore <check> <reason> on (or directly above) the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fold3d/internal/lint"
)

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Packages   int            `json:"packages"`
	Findings   []jsonFinding  `json:"findings"`
	LoadErrors []string       `json:"load_errors,omitempty"`
	TimingMS   map[string]int `json:"timing_ms"`
}

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "write the report as JSON on stdout")
	timing := flag.Bool("timing", false, "report per-check wall time on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fold3dlint [flags] [packages]\n\n"+
			"Runs the fold3d static-analysis suite. Package patterns are module-relative\n"+
			"(e.g. ./... or internal/place); with no patterns the whole module is linted.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	checks := lint.AllChecks()
	if *checksFlag != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			c := lint.CheckByName(strings.TrimSpace(name))
			if c == nil {
				fmt.Fprintf(os.Stderr, "fold3dlint: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			checks = append(checks, c)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fold3dlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fold3dlint: %v\n", err)
		os.Exit(2)
	}
	loadErrs := loader.Errors()

	findings, timings := lint.RunTimed(lint.DefaultConfig(), pkgs, checks)

	if *jsonOut {
		rep := jsonReport{
			Packages:   len(pkgs),
			Findings:   []jsonFinding{},
			LoadErrors: loadErrs,
			TimingMS:   map[string]int{},
		}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				Check:   f.Check,
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Message: f.Message,
			})
		}
		for _, tm := range timings {
			rep.TimingMS[tm.Check] = int(tm.Elapsed.Milliseconds())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "fold3dlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, e := range loadErrs {
			fmt.Fprintf(os.Stderr, "fold3dlint: skipped: %s\n", e)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "%-12s %8.1fms\n", tm.Check, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	if len(findings) > 0 || len(loadErrs) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "fold3dlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
