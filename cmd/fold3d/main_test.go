package main

import (
	"bufio"
	"sort"
	"strings"
	"testing"

	"fold3d/internal/exp"
	"fold3d/internal/place"
)

// TestListExperimentsSorted pins the -list contract: one line per
// registered experiment, sorted by name, each carrying its doc string,
// followed by one trailer line naming every placement backend.
func TestListExperimentsSorted(t *testing.T) {
	var sb strings.Builder
	listExperiments(&sb)

	var names []string
	trailer := ""
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "placement backends") {
			trailer = sc.Text()
			continue
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			t.Fatalf("line %q lacks a doc string", sc.Text())
		}
		names = append(names, fields[0])
	}
	if len(names) != len(exp.Generators()) {
		t.Fatalf("listed %d experiments, registry has %d", len(names), len(exp.Generators()))
	}
	if trailer == "" {
		t.Fatal("-list output lacks the placement-backends trailer")
	}
	for _, b := range place.BackendNames() {
		if !strings.Contains(trailer, b) {
			t.Errorf("backends trailer %q missing %q", trailer, b)
		}
	}
	if !strings.Contains(trailer, "default "+place.DefaultBackend) {
		t.Errorf("backends trailer %q does not name the default", trailer)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output is not sorted: %v", names)
	}
	for _, g := range exp.Generators() {
		if !strings.Contains(sb.String(), g.Name) {
			t.Errorf("-list output missing %q", g.Name)
		}
	}
}
