package main

import (
	"bufio"
	"sort"
	"strings"
	"testing"

	"fold3d/internal/exp"
)

// TestListExperimentsSorted pins the -list contract: one line per
// registered experiment, sorted by name, each carrying its doc string.
func TestListExperimentsSorted(t *testing.T) {
	var sb strings.Builder
	listExperiments(&sb)

	var names []string
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			t.Fatalf("line %q lacks a doc string", sc.Text())
		}
		names = append(names, fields[0])
	}
	if len(names) != len(exp.Generators()) {
		t.Fatalf("listed %d experiments, registry has %d", len(names), len(exp.Generators()))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output is not sorted: %v", names)
	}
	for _, g := range exp.Generators() {
		if !strings.Contains(sb.String(), g.Name) {
			t.Errorf("-list output missing %q", g.Name)
		}
	}
}
