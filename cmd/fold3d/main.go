// Command fold3d runs the paper's experiments: every table and figure of
// "On Enhancing Power Benefits in 3D ICs" (DAC 2014) can be regenerated
// individually or all at once. Experiments and the per-block flow inside
// each chip build fan out across -workers; reports always print in the
// same registry order with byte-identical content at any worker count.
//
// Usage:
//
//	fold3d -list                       # print the experiment registry
//	fold3d -exp table2                 # one experiment
//	fold3d -exp table3,table5          # a comma-separated subset
//	fold3d -exp all -scale 1000        # everything
//	fold3d -exp fig8 -svgdir ./out     # dump layout SVGs
//	fold3d -exp all -workers 1         # force the sequential path
//	fold3d -placer analytical          # analytical placement backend
//	fold3d -exp headtohead             # backends head-to-head, all styles
//	fold3d -exp table5 -progress       # live per-block status on stderr
//	fold3d -exp thermal -thermal       # in-loop thermal planning + vias
//	fold3d -thermal -tmax 85           # "will it melt" verdict at 85 C
//	fold3d -exp all -cachedir ./cache  # spill block artifacts to disk
//	fold3d -exp all -cachestats        # print cache hit/miss counters
//
// Ctrl-C cancels the run promptly; partial results are discarded.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"fold3d/internal/exp"
	"fold3d/internal/flow"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
)

// main delegates to run so deferred profile writers fire before the process
// exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	expNames := make([]string, 0, 18)
	for _, g := range exp.Generators() {
		expNames = append(expNames, g.Name)
	}
	var (
		which      = flag.String("exp", "all", "experiment name(s), comma-separated: "+strings.Join(expNames, "|")+"|all")
		list       = flag.Bool("list", false, "print the experiment registry (sorted) and exit")
		scale      = flag.Float64("scale", 1000, "netlist scale factor (cells per modeled cell)")
		seed       = flag.Uint64("seed", 42, "random seed")
		placer     = flag.String("placer", "", "placement backend: "+strings.Join(place.BackendNames(), "|")+" (default "+place.DefaultBackend+")")
		svgdir     = flag.String("svgdir", "", "directory to write layout SVGs and netlist artifacts")
		workers    = flag.Int("workers", 0, "parallel workers across experiments and per chip build (0 = one per CPU, 1 = sequential)")
		progress   = flag.Bool("progress", false, "stream live per-block flow status to stderr")
		cachedir   = flag.String("cachedir", "", "spill the block-artifact cache to this directory (warm-starts later runs)")
		cachemb    = flag.Int("cachebudget", 512, "in-memory artifact-cache budget in MiB, 0 = unbounded; evicted entries fall back to -cachedir or recompute")
		cachestats = flag.Bool("cachestats", false, "print artifact-cache hit/miss counters to stderr on exit")
		thermalOn  = flag.Bool("thermal", false, "enable in-loop thermal planning: solve block temperature fields and insert thermal vias")
		tmax       = flag.Float64("tmax", 0, "peak-temperature budget in C for -thermal (0 = no budget); the thermal report marks styles over budget as melting")
		thermvias  = flag.Int("thermalvias", 0, "thermal-via insertion budget for -thermal (0 = defaults)")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return 0
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fold3d:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fold3d:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fold3d:", err)
			}
		}()
	}
	if *memprof != "" {
		defer func() {
			if err := writeMemProfile(*memprof); err != nil {
				fmt.Fprintln(os.Stderr, "fold3d:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := exp.Config{Scale: *scale, Seed: *seed, Workers: *workers, Placer: *placer}
	if *thermalOn {
		cfg.Thermal = flow.ThermalConfig{Enable: true, TMaxBudgetC: *tmax, ViaBudget: *thermvias}
	} else if *tmax != 0 || *thermvias != 0 {
		fmt.Fprintln(os.Stderr, "fold3d: -tmax/-thermalvias require -thermal")
		return 2
	}
	// Fail fast on bad options — in particular an unknown -placer or an
	// impossible -tmax — with the conventional flag-error exit status,
	// before any work starts.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fold3d:", err)
		return 2
	}
	// RunAll would create a memory-only cache itself; build it here so the
	// disk spill and the -cachestats report see the same instance.
	cfg.Cache = pipeline.NewCache(pipeline.CacheOptions{Dir: *cachedir, MaxBytes: int64(*cachemb) << 20})
	if *cachestats {
		defer func() {
			fmt.Fprintf(os.Stderr, "fold3d: cache %s\n", cfg.Cache.Stats())
		}()
	}
	if *progress {
		cfg.Progress = func(p flow.Progress) {
			if p.Block != "" {
				fmt.Fprintf(os.Stderr, "  [%s %d/%d] %s\n", p.Stage, p.Done, p.Total, p.Block)
			} else {
				fmt.Fprintf(os.Stderr, "  [%s]\n", p.Stage)
			}
		}
	}

	var names []string
	if *which != "all" {
		names = strings.Split(*which, ",")
	}

	t0 := time.Now()
	// onDone streams each failure as it happens (the pool only returns the
	// lowest-index error; later ones would be lost). reported tracks that,
	// so the final error isn't printed twice. Callbacks are serialized.
	reported := false
	onDone := func(r *exp.Result, err error) {
		switch {
		case err != nil:
			reported = true
			fmt.Fprintf(os.Stderr, "fold3d: %v\n", err)
		case *progress:
			fmt.Fprintf(os.Stderr, "[%s done at %s]\n", r.Name, time.Since(t0).Round(time.Millisecond))
		}
	}
	results, err := exp.RunAll(ctx, cfg, names, onDone)
	for _, r := range results {
		if r == nil {
			continue
		}
		fmt.Println(strings.TrimRight(r.Report, "\n"))
		if r.Volatile != "" {
			// Stderr, like -progress: stdout stays byte-identical across
			// runs and worker counts, wall-clock annotations do not.
			fmt.Fprintln(os.Stderr, strings.TrimRight(r.Volatile, "\n"))
		}
		fmt.Printf("[%s]\n\n", r.Name)
		if *svgdir != "" && len(r.Files) > 0 {
			if werr := writeFiles(*svgdir, r.Files); werr != nil {
				fmt.Fprintln(os.Stderr, "fold3d:", werr)
				return 1
			}
		}
	}
	if err != nil {
		if !reported {
			fmt.Fprintln(os.Stderr, "fold3d:", err)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "fold3d: %d experiment(s) in %s\n", len(results), time.Since(t0).Round(time.Millisecond))
	return 0
}

// listExperiments prints the registry sorted by name, one "name\tdoc" line
// each, so scripts can discover the valid -exp values, followed by the
// registered placement backends (the valid -placer values).
func listExperiments(w io.Writer) {
	gens := exp.Generators()
	sort.Slice(gens, func(i, j int) bool { return gens[i].Name < gens[j].Name })
	for _, g := range gens {
		fmt.Fprintf(w, "%-10s %s\n", g.Name, g.Doc)
	}
	fmt.Fprintf(w, "placement backends (-placer): %s (default %s)\n",
		strings.Join(place.BackendNames(), ", "), place.DefaultBackend)
}

// writeMemProfile dumps the post-GC heap profile, so what it shows is live
// retention rather than transient garbage.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// writeFiles dumps a result's artifacts into dir in sorted-name order so
// the "wrote ..." log is deterministic.
func writeFiles(dir string, files map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
