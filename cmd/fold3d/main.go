// Command fold3d runs the paper's experiments: every table and figure of
// "On Enhancing Power Benefits in 3D ICs" (DAC 2014) can be regenerated
// individually or all at once.
//
// Usage:
//
//	fold3d -exp table2                 # one experiment
//	fold3d -exp all -scale 1000        # everything
//	fold3d -exp fig8 -svgdir ./out     # dump layout SVGs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fold3d/internal/exp"
)

func main() {
	var (
		which  = flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|fig2|fig3|fig4|fig5|fig6|fig7|fig8|dualvth|macromode|criteria|thermal|coupling|rsmt|all")
		scale  = flag.Float64("scale", 1000, "netlist scale factor (cells per modeled cell)")
		seed   = flag.Uint64("seed", 42, "random seed")
		svgdir = flag.String("svgdir", "", "directory to write layout SVGs (fig2, fig5, fig6, fig8)")
	)
	flag.Parse()

	cfg := exp.Config{Scale: *scale, Seed: *seed}
	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fold3d: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	writeSVG := func(name, svg string) {
		if *svgdir == "" || svg == "" {
			return
		}
		if err := os.MkdirAll(*svgdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fold3d:", err)
			return
		}
		path := filepath.Join(*svgdir, name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fold3d:", err)
			return
		}
		fmt.Println("wrote", path)
	}

	run("table1", func() error {
		fmt.Println(exp.Table1())
		return nil
	})
	run("table2", func() error {
		t, err := exp.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table3", func() error {
		_, report, err := exp.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(report)
		return nil
	})
	run("table4", func() error {
		fc, err := exp.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Table 4: folding the L2 data bank ==")
		fmt.Println(fc)
		fmt.Println("paper: footprint -48.4%, WL -6.4%, buffers -33.5%, power -5.1% (memory-dominated)")
		fmt.Println()
		return nil
	})
	run("fig2", func() error {
		r, err := exp.Figure2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		writeSVG("fig2-ccx-2d", r.SVG2D)
		writeSVG("fig2-ccx-3d", r.SVG3D)
		return nil
	})
	run("fig3", func() error {
		r, err := exp.Figure3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig4", func() error {
		r, err := exp.Figure4(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if *svgdir != "" {
			// A slice keeps the write and log order deterministic (a map
			// literal here would randomize it).
			for _, out := range []struct{ name, content string }{
				{"fig4-merged.v", r.Verilog}, {"fig4-merged.def", r.DEF},
				{"fig4-merged.lef", r.LEF}, {"fig4-nets3d.txt", r.Nets3D},
			} {
				path := filepath.Join(*svgdir, out.name)
				if err := os.MkdirAll(*svgdir, 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(path, []byte(out.content), 0o644); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
		return nil
	})
	run("fig5", func() error {
		r, err := exp.Figure5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		writeSVG("fig5-l2t-f2f", r.SVG)
		return nil
	})
	run("fig6", func() error {
		r, err := exp.Figure6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		for _, row := range r.Rows {
			writeSVG("fig6-"+row.Block+"-f2b", row.SVGF2B)
			writeSVG("fig6-"+row.Block+"-f2f", row.SVGF2F)
		}
		return nil
	})
	run("fig7", func() error {
		r, err := exp.Figure7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig8", func() error {
		r, err := exp.Figure8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		names := make([]string, 0, len(r.SVGs))
		for name := range r.SVGs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writeSVG("fig8-"+name, r.SVGs[name])
		}
		return nil
	})
	run("table5", func() error {
		t, err := exp.Table5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("dualvth", func() error {
		r, err := exp.AblationDualVth(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("macromode", func() error {
		r, err := exp.AblationMacroMode(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("thermal", func() error {
		r, err := exp.ThermalStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("coupling", func() error {
		r, err := exp.AblationTSVCoupling(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("rsmt", func() error {
		r, err := exp.AblationRSMT(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("criteria", func() error {
		r, err := exp.AblationFoldingCriteria(cfg)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
}
