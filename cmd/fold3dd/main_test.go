package main

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"fold3d/internal/jobs"
)

// TestDaemonSmoke boots the real daemon on a random port, runs one small
// job end to end over HTTP, scrapes /metrics, and shuts the process down
// with a real SIGTERM.
func TestDaemonSmoke(t *testing.T) {
	addrc := make(chan string, 1)
	exitc := make(chan int, 1)
	go func() {
		exitc <- run(
			[]string{"-addr", "127.0.0.1:0", "-jobs", "2", "-cachestats", "-pprof"},
			func(addr string) { addrc <- addr },
		)
	}()

	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	// Readiness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// -pprof was passed, so the profiling index must serve.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", resp.StatusCode)
	}

	// One small end-to-end job.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table4"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !info.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", info.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err = http.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if info.State != jobs.StateDone || info.Result == nil || info.Result.Fingerprint == "" {
		t.Fatalf("job ended %s (%s), result %+v", info.State, info.Error, info.Result)
	}

	// Scrape /metrics and check the job and cache counters moved.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	metrics := sb.String()
	for _, want := range []string{
		`fold3dd_jobs_total{state="done"} 1`,
		"fold3dd_jobs_submitted_total 1",
		"fold3dd_cache_hit_ratio ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown on a real signal.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitc:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// TestRunBadFlags pins the usage exit code.
func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, nil); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

// TestRunBadAddr pins the listen-failure exit code.
func TestRunBadAddr(t *testing.T) {
	if code := run([]string{"-addr", "256.0.0.1:bad"}, nil); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}
