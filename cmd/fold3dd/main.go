// Command fold3dd serves the fold3d experiment flow over HTTP: clients
// enqueue experiment runs as jobs, poll or stream their progress, and
// scrape service metrics. One process owns one artifact cache, so every
// job — concurrent or sequential — warms the next.
//
// Usage:
//
//	fold3dd                            # serve on :8080
//	fold3dd -addr 127.0.0.1:0          # any free port (printed on startup)
//	fold3dd -jobs 4 -queue 128         # four concurrent jobs, deeper queue
//	fold3dd -cachedir ./cache          # spill block artifacts to disk
//	fold3dd -cachestats                # print cache counters on exit
//	fold3dd -pprof                     # expose /debug/pprof/ profiling
//
// -pprof mounts the standard net/http/pprof handlers (heap, goroutine,
// CPU profile, trace, ...) under /debug/pprof/ on the same listener. It
// is off by default because the endpoints expose process internals;
// enable it only on trusted or loopback interfaces, e.g.
//
//	fold3dd -addr 127.0.0.1:8080 -pprof
//	go tool pprof http://127.0.0.1:8080/debug/pprof/heap
//
// Fleet mode: give every node the same full peer list (including itself)
// and a unique -node-id; jobs route to their owner by consistent hash of
// the request fingerprint, and each node's artifact cache can fill from
// its peers over HTTP:
//
//	fold3dd -addr :8080 -node-id a -peers 'a=http://h1:8080,b=http://h2:8080'
//	fold3dd -addr :8080 -node-id b -peers 'a=http://h1:8080,b=http://h2:8080'
//
// A job request may name a placement backend via its "placer" field
// ({"experiments":["table2"],"placer":"analytical"}); an unknown name is
// rejected with the 400 envelope, and requests differing only in placer
// route independently (distinct ring owners, isolated cache identities).
//
// A job request may also carry a "thermal" object to turn on in-loop
// thermal planning — the "will this folding melt" scenario:
// ({"experiments":["thermal"],"thermal":{"tmax_c":85,"vias":200}}).
// The flows solve block temperature fields and insert thermal vias, and
// the thermal report marks styles still over tmax_c as melting. An
// impossible budget (negative, NaN, above 1000 C) is rejected with the
// 400 envelope; requests differing only in their thermal spec route
// independently, and requests without one keep their historical
// fingerprints.
//
// API: POST /v1/jobs, POST /v1/batches, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events, GET /v1/batches/{id},
// GET /v1/batches/{id}/events (NDJSON), GET /v1/artifacts/{key} (peers),
// GET /metrics, GET /healthz — see the README's Serving section for curl
// examples.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the queue closes,
// in-flight jobs finish as canceled, event streams terminate, and the
// listener drains before the process exits. A second signal kills the
// process immediately (signal.NotifyContext unregisters after the first).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fold3d/internal/cluster"
	"fold3d/internal/jobs"
	"fold3d/internal/pipeline"
	"fold3d/internal/server"
)

// main delegates to run so defers fire before the process exits.
func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is the testable daemon body. args are the command-line arguments
// after the program name; ready, when non-nil, is called with the bound
// listen address once the daemon accepts connections (the smoke test uses
// it to discover a :0 port).
func run(args []string, ready func(addr string)) int {
	fs := flag.NewFlagSet("fold3dd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		jobWorkers = fs.Int("jobs", 2, "number of concurrently running jobs")
		queueDepth = fs.Int("queue", 64, "number of jobs allowed to wait in the queue")
		cachedir   = fs.String("cachedir", "", "spill the block-artifact cache to this directory (warm-starts later runs)")
		cachestats = fs.Bool("cachestats", false, "print artifact-cache hit/miss counters to stderr on exit")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for canceling jobs and closing streams")
		nodeID     = fs.String("node-id", "", "this node's ID in the fleet (lowercase [a-z0-9_]+; required with -peers)")
		peers      = fs.String("peers", "", "full fleet peer list as 'id=url,id=url,...' including this node; same value on every node")
		peerToken  = fs.String("peer-token", "", "shared secret for node-to-node requests (forwarded jobs, artifact fetches)")
		quota      = fs.Int("tenant-quota", 0, "max queued jobs per tenant (0 = no per-tenant limit)")
		pprofOn    = fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/ (trusted interfaces only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Fleet wiring: the router forwards jobs to their consistent-hash owner
	// and serves as a read-through peer tier for the artifact cache.
	var router *cluster.Router
	cacheOpts := pipeline.CacheOptions{Dir: *cachedir}
	if *peers != "" {
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fold3dd: -peers: %v\n", err)
			return 2
		}
		ring, err := cluster.New(*nodeID, nodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fold3dd: %v\n", err)
			return 2
		}
		router = cluster.NewRouter(ring, *peerToken)
		// KeepWire retains encoded entries in memory so this node can serve
		// /v1/artifacts to peers even without a -cachedir spill.
		cacheOpts.Tiers = []pipeline.CacheTier{router.Tier()}
		cacheOpts.KeepWire = true
	} else if *nodeID != "" {
		fmt.Fprintln(os.Stderr, "fold3dd: -node-id requires -peers")
		return 2
	}

	cache := pipeline.NewCache(cacheOpts)
	mgr := jobs.NewManager(jobs.Options{
		Workers:     *jobWorkers,
		QueueDepth:  *queueDepth,
		Cache:       cache,
		NodeID:      *nodeID,
		TenantQuota: *quota,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fold3dd: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "fold3dd: serving on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Handler: server.NewWithOptions(server.Options{Manager: mgr, Router: router, Pprof: *pprofOn})}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }() // sanctioned: the accept loop of the server exemption

	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "fold3dd: shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "fold3dd: serve: %v\n", err)
		code = 1
	}

	// Drain order matters: close the manager first so every job reaches a
	// terminal state and event streams end, then shut the listener down so
	// those final responses flush. Both share one drain budget.
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Close(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "fold3dd: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "fold3dd: shutdown: %v\n", err)
		code = 1
	}
	if *cachestats {
		fmt.Fprintf(os.Stderr, "fold3dd: cache %s\n", mgr.CacheStats())
	}
	return code
}
