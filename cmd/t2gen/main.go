// Command t2gen generates the synthetic OpenSPARC T2 design database and
// writes it (or one block of it) as JSON, for inspection or for consumption
// by external tools.
//
// Usage:
//
//	t2gen -scale 1000 -seed 42                 # whole-design summary
//	t2gen -block CCX -full                     # full CCX netlist as JSON
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"fold3d/internal/errs"
	"fold3d/internal/netlist"
	"fold3d/internal/t2"
)

type blockSummary struct {
	Name    string  `json:"name"`
	Clock   string  `json:"clock"`
	Cells   int     `json:"cells"`
	Macros  int     `json:"macros"`
	Nets    int     `json:"nets"`
	Groups  int     `json:"groups"`
	AreaUm2 float64 `json:"cell_area_um2"`
}

type netJSON struct {
	Name     string   `json:"name"`
	Driver   string   `json:"driver"`
	Sinks    []string `json:"sinks"`
	Activity float64  `json:"activity"`
}

type cellJSON struct {
	Name   string `json:"name"`
	Master string `json:"master"`
	Group  string `json:"group,omitempty"`
}

type blockJSON struct {
	blockSummary
	CellList []cellJSON `json:"cell_list"`
	NetList  []netJSON  `json:"net_list"`
}

func refName(b *netlist.Block, r netlist.PinRef) string {
	switch r.Kind {
	case netlist.KindCell:
		return fmt.Sprintf("%s/%d", b.Cells[r.Idx].Name, r.Pin)
	case netlist.KindMacro:
		return fmt.Sprintf("%s/%d", b.Macros[r.Idx].Name, r.Pin)
	default:
		return b.Ports[r.Idx].Name
	}
}

func main() {
	var (
		scale = flag.Float64("scale", 1000, "netlist scale factor")
		seed  = flag.Uint64("seed", 42, "random seed")
		block = flag.String("block", "", "emit one block (default: design summary)")
		full  = flag.Bool("full", false, "with -block: emit the full netlist")
	)
	flag.Parse()

	cfg := t2.Config{Scale: *scale, Seed: *seed}
	if *block != "" {
		cfg.Only = []string{*block}
	}
	d, err := t2.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "t2gen:", err)
		// Bad configuration (an out-of-range -scale above all) is a usage
		// error: exit 2 like a flag-parse failure, not a generation failure.
		if errors.Is(err, errs.ErrBadOptions) {
			os.Exit(2)
		}
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	summarize := func(b *netlist.Block) blockSummary {
		return blockSummary{
			Name:    b.Name,
			Clock:   b.Clock.String(),
			Cells:   len(b.Cells),
			Macros:  len(b.Macros),
			Nets:    len(b.Nets),
			Groups:  len(netlist.GroupNames(b)),
			AreaUm2: b.CellArea(-1),
		}
	}

	if *block != "" {
		b, ok := d.Blocks[*block]
		if !ok {
			fmt.Fprintf(os.Stderr, "t2gen: unknown block %q\n", *block)
			os.Exit(1)
		}
		if !*full {
			if err := enc.Encode(summarize(b)); err != nil {
				fmt.Fprintln(os.Stderr, "t2gen:", err)
				os.Exit(1)
			}
			return
		}
		out := blockJSON{blockSummary: summarize(b)}
		for i := range b.Cells {
			out.CellList = append(out.CellList, cellJSON{
				Name: b.Cells[i].Name, Master: b.Cells[i].Master.Name, Group: b.Cells[i].Group,
			})
		}
		for i := range b.Nets {
			n := &b.Nets[i]
			nj := netJSON{Name: n.Name, Driver: refName(b, n.Driver), Activity: n.Activity}
			for _, s := range n.Sinks {
				nj.Sinks = append(nj.Sinks, refName(b, s))
			}
			out.NetList = append(out.NetList, nj)
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "t2gen:", err)
			os.Exit(1)
		}
		return
	}

	names := make([]string, 0, len(d.Blocks))
	for n := range d.Blocks {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []blockSummary
	for _, n := range names {
		out = append(out, summarize(d.Blocks[n]))
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "t2gen:", err)
		os.Exit(1)
	}
}
