#!/bin/sh
# check.sh — the pre-PR gate (see README "Static analysis: fold3dlint").
#
# Runs everything CI would: vet, build, race-enabled tests, and the repo's
# own linter. Any failure stops the script and fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./cmd/fold3dlint ./..."
go run ./cmd/fold3dlint ./...

echo "OK: all checks passed"
