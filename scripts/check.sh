#!/bin/sh
# check.sh — the pre-PR gate (see README "Static analysis: fold3dlint").
#
# Runs everything CI would: vet, build, race-enabled tests, and the repo's
# own linter. Any failure stops the script and fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The worker pool and the parallel chip build are where a data race would
# hide; run their tests again under the race detector with extra workers
# so the scheduler gets more chances to interleave them.
echo "==> go test -race -count=2 -cpu=4 (pool + parallel flow)"
go test -race -count=2 -cpu=4 ./internal/pool/
go test -race -cpu=4 -run 'TestParallelFingerprintEquivalence|TestBuildChipCancellation|TestProgressEvents' ./internal/flow/

# The incremental timing engine must stay bit-identical to a full rebuild;
# re-run the equivalence property test under the race detector so a data
# race in the engine's cached state can't masquerade as a float diff.
echo "==> go test -race (incremental STA equivalence)"
go test -race -run 'TestIncrementalFullEquivalence' ./internal/opt/

# Cache hits must be byte-identical to recomputation. The full style x seed
# matrix already ran under -race above (go test -race ./...); re-run the
# heaviest style with extra CPUs so the shared cache sees more goroutine
# interleavings, plus the disk-spill and cross-style reuse properties.
echo "==> go test -race -cpu=4 (artifact-cache equivalence)"
go test -race -cpu=4 \
	-run 'TestCacheEquivalence/fold-F2F|TestCacheDiskEquivalence|TestCacheCrossStyleReuse' \
	./internal/flow/

# fold3dlint includes the PipelineOnly rule: flow stages may only run
# through the pipeline executor, never by direct call.
echo "==> go run ./cmd/fold3dlint ./..."
go run ./cmd/fold3dlint ./...

# Every PR appends one line to CHANGES.md; a PR that ships without its
# entry leaves the next session blind to what is already done.
echo "==> CHANGES.md entry"
grep -q '^PR 4:' CHANGES.md || {
	echo "check.sh: CHANGES.md has no 'PR 4:' entry" >&2
	exit 1
}

echo "OK: all checks passed"
