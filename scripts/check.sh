#!/bin/sh
# check.sh — the pre-PR gate (see README "Static analysis: fold3dlint").
#
# Runs everything CI would: vet, build, race-enabled tests, and the repo's
# own linter. Any failure stops the script and fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l"
UNFORMATTED="$(gofmt -l . | grep -v '^testdata/' | grep -v '/testdata/' || true)"
if [ -n "$UNFORMATTED" ]; then
	echo "check.sh: gofmt needed on:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The worker pool and the parallel chip build are where a data race would
# hide; run their tests again under the race detector with extra workers
# so the scheduler gets more chances to interleave them.
echo "==> go test -race -count=2 -cpu=4 (pool + parallel flow)"
go test -race -count=2 -cpu=4 ./internal/pool/
go test -race -cpu=4 -run 'TestParallelFingerprintEquivalence|TestBuildChipCancellation|TestProgressEvents' ./internal/flow/

# The incremental timing engine must stay bit-identical to a full rebuild;
# re-run the equivalence property test under the race detector so a data
# race in the engine's cached state can't masquerade as a float diff.
echo "==> go test -race (incremental STA equivalence)"
go test -race -run 'TestIncrementalFullEquivalence' ./internal/opt/

# The PR 8 scaling pass rewrote legalization, spreading and the TSV
# planner around spatial indexes; the cross-scale property tests replay
# the pre-PR reference implementations (reference_test.go) against the
# indexed ones at scale 1000 and, without -short, scale 100, and require
# exactly equal positions. Run them under the race detector: the SoA
# mirrors are shared state, and a stale mirror would show up here as a
# position diff long before it corrupts a fingerprint.
echo "==> go test -race (cross-scale legalize/spread equivalence)"
go test -race -run 'TestLegalizeMatchesReference|TestSpreadMatchesReference' \
	./internal/place/

# PR 9 split placement behind a backend registry and added the analytical
# bistratal backend. Each backend's fingerprints must be byte-identical
# across worker counts, the default backend must keep its pre-PR cache
# identity, and cache entries must never cross backends on any tier.
# Re-run the backend suite and the analytical placer's determinism
# properties under the race detector with extra CPUs.
echo "==> go test -race -cpu=4 (placement backend equivalence + cache isolation)"
go test -race -cpu=4 \
	-run 'TestAnalyticalFingerprintEquivalence|TestBackendsProduceDistinctPlacements|TestForceCacheKeyIdentity|TestCrossBackendCacheIsolation|TestUnknownBackendFailsFast' \
	./internal/flow/
go test -race -cpu=4 -count=2 ./internal/place/analytical/

# Cache hits must be byte-identical to recomputation. The full style x seed
# matrix already ran under -race above (go test -race ./...); re-run the
# heaviest style with extra CPUs so the shared cache sees more goroutine
# interleavings, plus the disk-spill and cross-style reuse properties.
echo "==> go test -race -cpu=4 (artifact-cache equivalence)"
go test -race -cpu=4 \
	-run 'TestCacheEquivalence/fold-F2F|TestCacheDiskEquivalence|TestCacheCrossStyleReuse' \
	./internal/flow/

# The fold3dd server is the one sanctioned home of long-lived goroutines
# (scheduler workers, accept loop); re-run its suites under the race
# detector with extra CPUs so admission, event streams and shutdown drain
# interleave more aggressively. The fleet suites (consistent-hash routing,
# forwarded jobs, the peer artifact tier) and the public client live here
# too.
echo "==> go test -race -cpu=4 (fold3dd job queue + HTTP server + daemon + fleet + client)"
go test -race -cpu=4 -count=2 ./internal/jobs/ ./internal/server/ ./cmd/fold3dd/ ./internal/cluster/ ./pkg/fold3d/

# Daemon smoke test: boot the real binary on a random port, run one small
# job end to end over HTTP, scrape /metrics, and require a graceful
# SIGTERM exit.
echo "==> fold3dd smoke (boot, one job, scrape /metrics)"
SMOKEDIR="$(mktemp -d)"
SMOKEPID=""
APID=""
BPID=""
cleanup_smoke() {
	[ -n "$SMOKEPID" ] && kill "$SMOKEPID" 2>/dev/null
	[ -n "$APID" ] && kill "$APID" 2>/dev/null
	[ -n "$BPID" ] && kill "$BPID" 2>/dev/null
	rm -rf "$SMOKEDIR"
}
trap cleanup_smoke EXIT
go build -o "$SMOKEDIR/fold3dd" ./cmd/fold3dd
"$SMOKEDIR/fold3dd" -addr 127.0.0.1:0 2>"$SMOKEDIR/log" &
SMOKEPID=$!
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
	ADDR="$(sed -n 's/^fold3dd: serving on //p' "$SMOKEDIR/log")"
	[ -n "$ADDR" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "check.sh: fold3dd never bound a port" >&2; exit 1; }
ID="$(curl -sf -X POST "http://$ADDR/v1/jobs" -d '{"experiments":["table4"]}' |
	sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "check.sh: fold3dd rejected the smoke job" >&2; exit 1; }
STATE=""
i=0
while [ "$i" -lt 300 ]; do
	STATE="$(curl -sf "http://$ADDR/v1/jobs/$ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
	case "$STATE" in done | failed | canceled) break ;; esac
	i=$((i + 1))
	sleep 0.1
done
[ "$STATE" = done ] || { echo "check.sh: smoke job ended in state '$STATE'" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q 'fold3dd_jobs_total{state="done"} 1' || {
	echo "check.sh: /metrics did not count the smoke job" >&2
	exit 1
}

# PR 9: the same daemon must run a job on the analytical backend and
# reject an unknown backend name with a 400 before admission.
AID="$(curl -sf -X POST "http://$ADDR/v1/jobs" -d '{"experiments":["table4"],"placer":"analytical"}' |
	sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$AID" ] || { echo "check.sh: fold3dd rejected the analytical smoke job" >&2; exit 1; }
STATE=""
i=0
while [ "$i" -lt 300 ]; do
	STATE="$(curl -sf "http://$ADDR/v1/jobs/$AID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
	case "$STATE" in done | failed | canceled) break ;; esac
	i=$((i + 1))
	sleep 0.1
done
[ "$STATE" = done ] || { echo "check.sh: analytical smoke job ended in state '$STATE'" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/jobs" \
	-d '{"experiments":["table4"],"placer":"bogus"}')"
[ "$CODE" = 400 ] || { echo "check.sh: unknown placer returned HTTP $CODE, want 400" >&2; exit 1; }

# PR 10: the daemon must answer "will this folding melt" — run the thermal
# experiment with a peak-temperature budget end to end, and reject an
# impossible budget with a 400 before admission.
TID="$(curl -sf -X POST "http://$ADDR/v1/jobs" \
	-d '{"experiments":["thermal"],"thermal":{"tmax_c":85,"vias":64}}' |
	sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$TID" ] || { echo "check.sh: fold3dd rejected the thermal smoke job" >&2; exit 1; }
STATE=""
i=0
while [ "$i" -lt 600 ]; do
	STATE="$(curl -sf "http://$ADDR/v1/jobs/$TID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
	case "$STATE" in done | failed | canceled) break ;; esac
	i=$((i + 1))
	sleep 0.1
done
[ "$STATE" = done ] || { echo "check.sh: thermal smoke job ended in state '$STATE'" >&2; exit 1; }
curl -sf "http://$ADDR/v1/jobs/$TID" | grep -q 'Tmax' || {
	echo "check.sh: thermal smoke result carries no Tmax report" >&2
	exit 1
}
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/jobs" \
	-d '{"experiments":["thermal"],"thermal":{"tmax_c":-5}}')"
[ "$CODE" = 400 ] || { echo "check.sh: impossible thermal budget returned HTTP $CODE, want 400" >&2; exit 1; }
kill "$SMOKEPID"
if ! wait "$SMOKEPID"; then
	echo "check.sh: fold3dd did not exit cleanly on SIGTERM" >&2
	exit 1
fi
SMOKEPID=""

# Fleet smoke test: boot two daemons as each other's peers, find a seed
# whose {table4} and {table1,table4} requests hash to different owners
# (the pair shares its table4 stage artifacts), run both through one entry
# node, and require that the second job's owner filled its cache from its
# peer over the artifact network tier (peer_hit > 0 in that node's
# /metrics). Both nodes must exit cleanly on SIGTERM.
echo "==> fold3dd fleet smoke (two nodes, forwarding, peer cache fetch)"
PORTA=42801
PORTB=42802
PEERS="a=http://127.0.0.1:$PORTA,b=http://127.0.0.1:$PORTB"
"$SMOKEDIR/fold3dd" -addr "127.0.0.1:$PORTA" -node-id a -peers "$PEERS" -peer-token smoke 2>"$SMOKEDIR/a.log" &
APID=$!
"$SMOKEDIR/fold3dd" -addr "127.0.0.1:$PORTB" -node-id b -peers "$PEERS" -peer-token smoke 2>"$SMOKEDIR/b.log" &
BPID=$!
for NODE in a b; do
	i=0
	while [ "$i" -lt 100 ]; do
		grep -q '^fold3dd: serving on ' "$SMOKEDIR/$NODE.log" && break
		i=$((i + 1))
		sleep 0.1
	done
	grep -q '^fold3dd: serving on ' "$SMOKEDIR/$NODE.log" || {
		echo "check.sh: fleet node $NODE never bound its port:" >&2
		cat "$SMOKEDIR/$NODE.log" >&2
		exit 1
	}
done
A="http://127.0.0.1:$PORTA"
B="http://127.0.0.1:$PORTB"

# wait_done <base-url> <job-id> — poll until the job is terminal, require done.
wait_done() {
	_state=""
	_i=0
	while [ "$_i" -lt 300 ]; do
		_state="$(curl -sf "$1/v1/jobs/$2" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
		case "$_state" in done | failed | canceled) break ;; esac
		_i=$((_i + 1))
		sleep 0.1
	done
	[ "$_state" = done ] || { echo "check.sh: fleet job $2 ended in state '$_state'" >&2; exit 1; }
}

CROSS=""
SEED=1
while [ "$SEED" -le 32 ]; do
	ID1="$(curl -sf -X POST "$A/v1/jobs" -d "{\"experiments\":[\"table4\"],\"seed\":$SEED}" |
		sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$ID1" ] || { echo "check.sh: fleet submit (seed $SEED) rejected" >&2; exit 1; }
	wait_done "$A" "$ID1"
	ID2="$(curl -sf -X POST "$A/v1/jobs" -d "{\"experiments\":[\"table1\",\"table4\"],\"seed\":$SEED}" |
		sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$ID2" ] || { echo "check.sh: fleet submit (pair, seed $SEED) rejected" >&2; exit 1; }
	wait_done "$A" "$ID2"
	# Job IDs are owner-prefixed (a-job-000001): the prefix says which node
	# the consistent hash routed each request to.
	OWNER1="${ID1%%-*}"
	OWNER2="${ID2%%-*}"
	if [ "$OWNER1" != "$OWNER2" ]; then
		CROSS="$OWNER2"
		break
	fi
	SEED=$((SEED + 1))
done
[ -n "$CROSS" ] || { echo "check.sh: no seed in [1,32] split ownership across the two nodes" >&2; exit 1; }
CROSSURL="$A"
[ "$CROSS" = b ] && CROSSURL="$B"
PEERHITS="$(curl -sf "$CROSSURL/metrics" | sed -n 's/^fold3dd_cache_lookups_total{outcome="peer_hit"} //p')"
[ -n "$PEERHITS" ] && [ "$PEERHITS" -gt 0 ] || {
	echo "check.sh: fleet node $CROSS reported no peer cache hits (got '${PEERHITS:-missing}')" >&2
	exit 1
}
kill "$APID" "$BPID"
for PID in "$APID" "$BPID"; do
	if ! wait "$PID"; then
		echo "check.sh: a fleet node did not exit cleanly on SIGTERM" >&2
		exit 1
	fi
done
APID=""
BPID=""

# PR 10: the multigrid thermal engine is pooled and re-entered by every
# flow worker, and thermal-enabled chip builds must stay byte-identical
# across worker counts. Re-run the solver suite and the flow's thermal
# contract tests under the race detector with extra CPUs.
echo "==> go test -race -cpu=4 (thermal solver + in-loop thermal planning)"
go test -race -cpu=4 -count=2 ./internal/thermal/
go test -race -cpu=4 \
	-run 'TestThermalConfigValidate|TestThermalViasInserted|TestThermalOffFingerprintIdentity|TestThermalFingerprintEquivalence|TestThermalStageOnlyOnFoldedF2B' \
	./internal/flow/

# The linter itself now runs its checks through the worker pool; re-run
# its suite under the race detector with extra CPUs so a data race in the
# parallel load or check fan-out cannot hide behind deterministic output.
echo "==> go test -race -cpu=4 (lint engine: parallel load + checks)"
go test -race -cpu=4 ./internal/lint/...

# fold3dlint includes the PipelineOnly rule: flow stages may only run
# through the pipeline executor, never by direct call — and, since PR 8,
# the IndexedScanOnly rule banning nested linear Cells scans in
# internal/place (legalization and blockage queries must use the spatial
# indexes).
echo "==> go run ./cmd/fold3dlint ./..."
go run ./cmd/fold3dlint ./...

# Large-netlist smoke: the scaling pass is only honest if the flow still
# completes a big build in CI time. One table5 run at scale 100 (~72k
# design cells, all five styles) — ~5s after PR 8, ~8.5s before it.
echo "==> fold3d -exp table5 -scale 100 smoke"
go build -o "$SMOKEDIR/fold3d" ./cmd/fold3d
"$SMOKEDIR/fold3d" -exp table5 -scale 100 >/dev/null

# Placement-backend smoke: the CLI must drive the analytical backend end
# to end, run the head-to-head experiment (every backend x all five
# styles), and fail fast with exit 2 on an unknown backend name.
echo "==> fold3d -placer analytical / -exp headtohead / unknown-placer smoke"
"$SMOKEDIR/fold3d" -exp table4 -placer analytical >/dev/null
"$SMOKEDIR/fold3d" -exp headtohead >/dev/null
RC=0
"$SMOKEDIR/fold3d" -exp table4 -placer simulated-annealing >/dev/null 2>&1 || RC=$?
[ "$RC" = 2 ] || { echo "check.sh: unknown placer exited $RC, want 2" >&2; exit 1; }

# Thermal smoke: the CLI must run the thermal study with in-loop planning
# and a temperature budget, reject thermal knobs without -thermal, and
# reject an impossible budget — both with exit 2 before any work starts.
echo "==> fold3d -exp thermal -thermal smoke"
"$SMOKEDIR/fold3d" -exp thermal -thermal -tmax 85 | grep -q 'Tmax' || {
	echo "check.sh: thermal study printed no Tmax column" >&2
	exit 1
}
RC=0
"$SMOKEDIR/fold3d" -exp thermal -tmax 85 >/dev/null 2>&1 || RC=$?
[ "$RC" = 2 ] || { echo "check.sh: -tmax without -thermal exited $RC, want 2" >&2; exit 1; }
RC=0
"$SMOKEDIR/fold3d" -exp thermal -thermal -tmax 20 >/dev/null 2>&1 || RC=$?
[ "$RC" = 2 ] || { echo "check.sh: impossible -tmax exited $RC, want 2" >&2; exit 1; }

# Every PR appends one line to CHANGES.md; a PR that ships without its
# entry leaves the next session blind to what is already done.
echo "==> CHANGES.md entry"
grep -q '^PR 10:' CHANGES.md || {
	echo "check.sh: CHANGES.md has no 'PR 10:' entry" >&2
	exit 1
}

echo "OK: all checks passed"
