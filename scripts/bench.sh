#!/bin/sh
# bench.sh — record the PR 8 scaling-pass numbers (see README "Performance"
# and DESIGN.md §15 "Scaling pass").
#
# Produces BENCH_PR8.json: the scale-sweep curve of the full flow — design
# cells vs median wall-clock vs peak RSS for `fold3d -exp table5` at t2
# scales 1000/300/100/30 (and 10 when BENCH_SCALE10=1; that point takes
# minutes) — plus the per-scale BuildChip micro-benchmarks
# (BenchmarkBuildChipSequential/scale=N: ns/op with cells and peak RSS
# custom metrics).
#
# Baselines are frozen medians measured at the pre-PR parent commit
# (1478f8d) on this one-CPU host, back-to-back with the current binary so
# host speed drift cannot inflate the ratios. The curve is the point: the
# wall-clock ratio grows as netlists grow (1.2x at the tier-1 scale 1000,
# ~1.7x at scale 100, >2x at scale 30) because the scaling pass replaced
# the per-query linear scans (legalization rows, blockage tests, TSV site
# clearing/search, shift1D remap) and the allocation-bound paths that only
# dominate on big blocks.
#
# Gates: scale-30 wall-clock must beat the frozen baseline by >= 2x, and
# scale-30 peak RSS must fit a 2 GB budget (the pre-PR flow needed 3 GB).
# The smaller-netlist ratios are recorded honestly but not gated.
# BENCH_PR3.json .. BENCH_PR7.json are frozen records of earlier PRs and
# are not rewritten.
#
# Usage: scripts/bench.sh                    (sweep + micro-benchmarks)
#        BENCH_SCALE10=1 scripts/bench.sh    (adds the scale-10 point)
set -eu

cd "$(dirname "$0")/.."

OUT="BENCH_PR8.json"
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> go build ./cmd/fold3d ./cmd/t2gen" >&2
go build -o "$BIN/fold3d" ./cmd/fold3d
go build -o "$BIN/t2gen" ./cmd/t2gen

# run_rss CMD ARGS... — run once, echo "elapsed_ms peak_rss_kb". Peak RSS
# is the kernel's VmHWM high-water mark for that process, polled from
# /proc (minimal hosts have no /usr/bin/time -v).
run_rss() {
	_start=$(date +%s%N)
	"$@" >/dev/null 2>&1 &
	_pid=$!
	_max=0
	while kill -0 "$_pid" 2>/dev/null; do
		_v=$(sed -n 's/^VmHWM:[[:space:]]*\([0-9]*\) kB/\1/p' "/proc/$_pid/status" 2>/dev/null || true)
		if [ -n "${_v:-}" ] && [ "$_v" -gt "$_max" ]; then
			_max=$_v
		fi
		sleep 0.05
	done
	wait "$_pid"
	_end=$(date +%s%N)
	echo "$(((_end - _start) / 1000000)) $_max"
}

# median3 a b c — the median of three integers.
median3() {
	printf '%s\n%s\n%s\n' "$1" "$2" "$3" | sort -n | sed -n 2p
}

# cells_at SCALE — total design cells, summed from the t2gen summary.
cells_at() {
	"$BIN/t2gen" -scale "$1" |
		awk -F'[:,]' '/"cells"/ { n += $2 } END { print n }'
}

SCALES="1000 300 100 30"
if [ "${BENCH_SCALE10:-0}" = 1 ]; then
	SCALES="$SCALES 10"
fi

SWEEP=""
for SCALE in $SCALES; do
	CELLS="$(cells_at "$SCALE")"
	if [ "$SCALE" -ge 100 ]; then
		R1=$(run_rss "$BIN/fold3d" -exp table5 -scale "$SCALE")
		R2=$(run_rss "$BIN/fold3d" -exp table5 -scale "$SCALE")
		R3=$(run_rss "$BIN/fold3d" -exp table5 -scale "$SCALE")
		MS=$(median3 "${R1% *}" "${R2% *}" "${R3% *}")
		RSS=$(median3 "${R1#* }" "${R2#* }" "${R3#* }")
	else
		# Scales <= 30 take tens of seconds to minutes per run: one sample.
		R1=$(run_rss "$BIN/fold3d" -exp table5 -scale "$SCALE")
		MS="${R1% *}"
		RSS="${R1#* }"
	fi
	echo "==> table5 scale=$SCALE: cells=$CELLS median_ms=$MS peak_rss_kb=$RSS" >&2
	SWEEP="$SWEEP$SCALE $CELLS $MS $RSS
"
done

echo "==> go test -bench BenchmarkBuildChipSequential (1x per scale)" >&2
BENCHOUT="$BIN/bench.txt"
go test -run '^$' -bench 'BenchmarkBuildChipSequential' -benchtime 1x . |
	tee "$BENCHOUT" >&2

printf '%s' "$SWEEP" | awk -v benchfile="$BENCHOUT" -v cpus="$(nproc 2>/dev/null || echo 1)" '
# Frozen pre-PR table5 medians (commit 1478f8d, this host): ms and kB.
BEGIN {
	base_ms[1000] = 645;   base_rss[1000] = 92592
	base_ms[300]  = 2223;  base_rss[300]  = 292352
	base_ms[100]  = 8449;  base_rss[100]  = 963812
	base_ms[30]   = 58753; base_rss[30]   = 3084700
}
{ order[++nrows] = $1; cells[$1] = $2; ms[$1] = $3; rss[$1] = $4 }
END {
	printf "{\n"
	printf "  \"comment\": \"PR 8 scaling pass: full-flow table5 (all five styles) wall-clock and peak RSS across t2 scales, current binary vs the pre-PR parent (1478f8d) measured back-to-back on the same host. The speedup grows as scale drops (netlists grow) because the pass replaced the per-query linear scans (legalization rows, TSV site clearing/search, shift1D remap) and the large zeroed reservations that only dominate on big blocks. buildchip rows are BenchmarkBuildChipSequential/scale=N: the folded-F2B chip alone, with the process peak-RSS high-water mark after that sub-benchmark (monotone across sub-benchmarks by construction).\",\n"
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"baseline_commit\": \"1478f8d\",\n"
	printf "  \"table5_sweep\": [\n"
	for (i = 1; i <= nrows; i++) {
		s = order[i]
		printf "    {\"scale\": %d, \"cells\": %d, \"median_ms\": %d, \"peak_rss_kb\": %d", s, cells[s], ms[s], rss[s]
		if (s in base_ms) {
			printf ", \"baseline_ms\": %d, \"baseline_rss_kb\": %d", base_ms[s], base_rss[s]
			printf ", \"speedup\": %.2f, \"rss_reduction\": %.2f", base_ms[s] / ms[s], base_rss[s] / rss[s]
		}
		printf "}%s\n", i < nrows ? "," : ""
	}
	printf "  ],\n"
	printf "  \"buildchip\": [\n"
	n = 0
	while ((getline line < benchfile) > 0) {
		if (line !~ /^BenchmarkBuildChipSequential\//) continue
		nf = split(line, f, /[ \t]+/)
		name = f[1]
		sub(/^BenchmarkBuildChipSequential\/scale=/, "", name)
		sub(/-[0-9]+$/, "", name)
		# ns/op can exceed 2^31 at scale 100; keep it a string so awks
		# with 32-bit %d cannot clamp it.
		nsop = "0"; bcells = 0; brss = 0
		for (j = 3; j <= nf; j++) {
			if (f[j] == "ns/op") nsop = f[j-1]
			if (f[j] == "cells") bcells = f[j-1] + 0
			if (f[j] == "peak_rss_kB") brss = f[j-1] + 0
		}
		rows[++n] = sprintf("    {\"scale\": %d, \"cells\": %d, \"ns_per_op\": %s, \"peak_rss_kb\": %d}", name, bcells, nsop, brss)
	}
	for (j = 1; j <= n; j++) printf "%s%s\n", rows[j], j < n ? "," : ""
	printf "  ],\n"
	printf "  \"gate\": {\"scale30_speedup\": %.2f, \"scale30_peak_rss_kb\": %d, \"scale100_speedup\": %.2f}\n", base_ms[30] / ms[30], rss[30], base_ms[100] / ms[100]
	printf "}\n"
}
' > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"

# The PR gates: the scaling pass must at least double scale-30 throughput
# against the frozen pre-PR baseline, and the scale-30 flow must fit the
# 2 GB memory budget.
awk '
/"gate"/ {
	match($0, /"scale30_speedup": [0-9.]+/)
	sp = substr($0, RSTART, RLENGTH)
	sub(/^".*": /, "", sp); sp += 0
	match($0, /"scale30_peak_rss_kb": [0-9]+/)
	rss = substr($0, RSTART, RLENGTH)
	sub(/^".*": /, "", rss); rss += 0
	ok = 1
	if (sp < 2.0) {
		printf "bench.sh: scale-30 speedup %.2fx is below the 2x gate\n", sp > "/dev/stderr"
		ok = 0
	}
	if (rss > 2097152) {
		printf "bench.sh: scale-30 peak RSS %d kB exceeds the 2 GB budget\n", rss > "/dev/stderr"
		ok = 0
	}
	if (!ok) exit 1
	printf "bench.sh: scale-30 = %.2fx baseline at %.0f MB peak (gates: >= 2x, <= 2048 MB)\n", sp, rss / 1024 > "/dev/stderr"
}
' "$OUT"
