#!/bin/sh
# bench.sh — record the PR 3 performance numbers (see README "Performance").
#
# Runs the full-chip build benchmarks and the incremental-STA benchmarks,
# takes the per-benchmark median over -count runs (this class of machine
# shows ±8% run-to-run noise, so a single run is not trustworthy), and
# writes BENCH_PR3.json next to this script's repo root: the frozen
# pre-PR-3 baseline plus the numbers just measured, so the 2x acceptance
# ratio is auditable from the file alone.
#
# Usage: scripts/bench.sh [count]   (default 5 runs per benchmark)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="BENCH_PR3.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench BuildChip (chip build, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkBuildChip' -benchmem -benchtime 4x \
	-count "$COUNT" . | tee -a "$TMP" >&2

echo "==> go test -bench STA ./internal/sta/ (timing engine, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkSTA' -benchmem \
	-count "$COUNT" ./internal/sta/ | tee -a "$TMP" >&2

# Reduce the raw `go test -bench` lines to one JSON object per benchmark,
# taking the median ns/op and the matching B/op and allocs/op.
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	n[name]++
	ns[name, n[name]] = $3
	bytes[name] = $5
	allocs[name] = $7
}
function median(name,    cnt, i, j, tmp, arr) {
	cnt = n[name]
	for (i = 1; i <= cnt; i++) arr[i] = ns[name, i] + 0
	for (i = 1; i <= cnt; i++)
		for (j = i + 1; j <= cnt; j++)
			if (arr[j] < arr[i]) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
	if (cnt % 2) return arr[(cnt + 1) / 2]
	return (arr[cnt / 2] + arr[cnt / 2 + 1]) / 2
}
END {
	printf "{\n"
	printf "  \"comment\": \"PR 3 incremental timing engine: medians over %d runs; baseline_pre_pr3 frozen at the commit before this PR\",\n", n["BenchmarkBuildChipSequential"]
	printf "  \"baseline_pre_pr3\": {\n"
	printf "    \"BenchmarkBuildChipSequential\": {\"ns_op\": 342531830, \"bytes_op\": 136648424, \"allocs_op\": 1583395},\n"
	printf "    \"BenchmarkBuildChipParallel\":   {\"ns_op\": 356274834, \"bytes_op\": 136648256, \"allocs_op\": 1583393},\n"
	printf "    \"BenchmarkSTAFull\":             {\"ns_op\": 1346832}\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	first = 1
	order = "BenchmarkBuildChipSequential BenchmarkBuildChipParallel BenchmarkSTAFull BenchmarkSTAIncremental"
	split(order, names, " ")
	for (i = 1; i in names; i++) {
		name = names[i]
		if (!(name in n)) continue
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_op\": %d, \"bytes_op\": %s, \"allocs_op\": %s}", \
			name, median(name), bytes[name], allocs[name]
	}
	printf "\n  },\n"
	seq = median("BenchmarkBuildChipSequential")
	if (seq > 0)
		printf "  \"speedup_sequential_vs_baseline\": %.2f\n", 342531830 / seq
	printf "}\n"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
