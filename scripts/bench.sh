#!/bin/sh
# bench.sh — record the PR 9 placement-backend head-to-head (see README
# "Performance" and DESIGN.md §16 "Placement backends").
#
# Produces BENCH_PR9.json: one row per registered placement backend from
# BenchmarkBuildChip/placer={force,analytical} — the folded-F2B chip built
# end to end at the tier-1 scale 1000 with Workers=1 — with ns/op, design
# cells and the process peak-RSS high-water mark, plus the
# analytical-vs-force wall-clock ratio.
#
# There is no speed gate: the analytical backend is expected to cost more
# per build than the force backend (Nesterov gradient iterations over
# density grids vs one force-directed sweep); the record is the honest
# price tag next to the head-to-head quality table in README. The only
# gates are structural: both backends must appear, and each must report a
# positive ns/op and the same cell count.
#
# BENCH_PR3.json .. BENCH_PR8.json are frozen records of earlier PRs and
# are not rewritten.
#
# Usage: scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="BENCH_PR9.json"
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> go test -bench BenchmarkBuildChip/placer (3x per backend)" >&2
BENCHOUT="$BIN/bench.txt"
go test -run '^$' -bench 'BenchmarkBuildChip/placer' -benchtime 3x . |
	tee "$BENCHOUT" >&2

awk -v cpus="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkBuildChip\/placer=/ {
	nf = split($0, f, /[ \t]+/)
	name = f[1]
	sub(/^BenchmarkBuildChip\/placer=/, "", name)
	sub(/-[0-9]+$/, "", name)
	nsop = "0"; bcells = 0; brss = 0
	for (j = 3; j <= nf; j++) {
		if (f[j] == "ns/op") nsop = f[j-1]
		if (f[j] == "cells") bcells = f[j-1] + 0
		if (f[j] == "peak_rss_kB") brss = f[j-1] + 0
	}
	n++
	names[n] = name; ns[n] = nsop; cells[n] = bcells; rss[n] = brss
	nsof[name] = nsop + 0
}
END {
	if (n < 2 || !("force" in nsof) || !("analytical" in nsof)) {
		print "bench.sh: expected force and analytical rows, got " n > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"comment\": \"PR 9 placement-backend head-to-head: BenchmarkBuildChip/placer=N builds the folded-F2B chip end to end (t2 scale 1000, Workers=1) through each registered backend. ns_per_op is the full-flow cost; the analytical backend pays Nesterov gradient iterations over bin-density grids for its quality, so its ratio over force is recorded, not gated. peak_rss_kb is the process high-water mark after that sub-benchmark (monotone across sub-benchmarks by construction).\",\n"
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"buildchip\": [\n"
	for (j = 1; j <= n; j++) {
		printf "    {\"placer\": \"%s\", \"cells\": %d, \"ns_per_op\": %s, \"peak_rss_kb\": %d}%s\n", \
			names[j], cells[j], ns[j], rss[j], j < n ? "," : ""
		if (ns[j] + 0 <= 0) {
			print "bench.sh: backend " names[j] " reported no wall-clock" > "/dev/stderr"
			exit 1
		}
		if (cells[j] != cells[1]) {
			print "bench.sh: backends built different netlists" > "/dev/stderr"
			exit 1
		}
	}
	printf "  ],\n"
	printf "  \"analytical_over_force\": %.2f\n", nsof["analytical"] / nsof["force"]
	printf "}\n"
}
' "$BENCHOUT" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
