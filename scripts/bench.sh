#!/bin/sh
# bench.sh — record the PR 7 performance numbers (see README "Running a
# fleet").
#
# Runs the fold3dd fleet benchmarks. BenchmarkFleetThroughput measures
# closed-loop completion throughput (jobs/s over a fixed 192-request
# workload, submitted round-robin and timed until every job is terminal)
# for 1/2/4-node in-process fleets with cold and warm caches;
# BenchmarkFleetPeerWarm isolates the network cache tier (every request's
# artifacts live only on the NON-owner, so owners must fill over HTTP).
# Writes BENCH_PR7.json at the repo root.
#
# Methodology: on a one-CPU host adding nodes cannot multiply raw compute,
# so the fleet's measurable benefit is cache reach, not parallelism. The
# headline comparison is warm-2node (owners answer their share from local
# and peer caches) against the cold single-node baseline (one daemon
# recomputing everything) — that ratio must clear 1.5x for the PR gate.
# BENCH_PR3.json .. BENCH_PR6.json are frozen records of earlier PRs and
# are not rewritten.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x workload rounds per cell)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="BENCH_PR7.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench BenchmarkFleet ($BENCHTIME per cell)" >&2
go test -run '^$' -bench 'BenchmarkFleetThroughput|BenchmarkFleetPeerWarm' \
	-benchtime "$BENCHTIME" ./internal/server/ | tee "$TMP" >&2

# Reduce the raw `go test -bench` lines to one JSON object. Each cell's
# jobs/s custom metric is located by its unit label so extra columns
# cannot shift the parse; names normalize to cold-1node .. warm-4node plus
# peer-warm for BenchmarkFleetPeerWarm.
awk -v cpus="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkFleet/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # GOMAXPROCS suffix, if any
	sub(/^BenchmarkFleetThroughput\//, "", name)
	if (name == "BenchmarkFleetPeerWarm") name = "peer-warm"
	for (i = 3; i <= NF; i++) {
		if ($i == "jobs/s") v[name] = $(i - 1) + 0
		if ($i == "peer-hits/op") hits = $(i - 1) + 0
	}
}
END {
	ratio = (v["cold-1node"] > 0) ? v["warm-2node"] / v["cold-1node"] : 0
	printf "{\n"
	printf "  \"comment\": \"PR 7 fold3dd fleet: closed-loop completion throughput over a fixed 192-request workload (table4, scale 2000, distinct seeds), submitted round-robin over the fleet and timed until every job is terminal. One-CPU host: extra nodes cannot multiply compute, so the fleet benefit on show is cache reach — warm fleets answer from local and peer caches instead of recomputing. Headline: warm-2node vs the cold single-node baseline. peer-warm is a 2-node fleet whose artifacts live only on non-owners, forcing every owner to fill over the HTTP artifact tier (peer_hits_per_round fetches each round).\",\n"
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"workload_jobs\": 192,\n"
	printf "  \"current\": {\n"
	printf "    \"fleet_jobs_per_sec\": {\n"
	printf "      \"cold\": {\"1node\": %.1f, \"2node\": %.1f, \"4node\": %.1f},\n", v["cold-1node"], v["cold-2node"], v["cold-4node"]
	printf "      \"warm\": {\"1node\": %.1f, \"2node\": %.1f, \"4node\": %.1f},\n", v["warm-1node"], v["warm-2node"], v["warm-4node"]
	printf "      \"peer_warm_2node\": %.1f\n", v["peer-warm"]
	printf "    },\n"
	printf "    \"peer_hits_per_round\": %.1f,\n", hits
	printf "    \"warm_2node_vs_cold_single_node\": %.2f\n", ratio
	printf "  }\n"
	printf "}\n"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"

# The PR gate: a warm two-node fleet must beat the cold single-node
# baseline by more than 1.5x, or the networked cache tier is not earning
# its keep.
awk '
/"warm_2node_vs_cold_single_node"/ {
	ratio = $2 + 0
	if (ratio <= 1.5) {
		printf "bench.sh: warm-2node is only %.2fx the single-node baseline (need > 1.5x)\n", ratio > "/dev/stderr"
		exit 1
	}
	printf "bench.sh: warm-2node = %.2fx single-node baseline (> 1.5x)\n", ratio > "/dev/stderr"
}
' "$OUT"
