#!/bin/sh
# bench.sh — record the PR 4 performance numbers (see README "Performance").
#
# Runs the experiment-harness benchmarks with and without a shared artifact
# cache plus the full-chip build benchmarks, takes the per-benchmark median
# over -count runs (this class of machine shows ±8% run-to-run noise, so a
# single run is not trustworthy), and writes BENCH_PR4.json at the repo
# root: the cold-vs-shared RunAll medians and their ratio, so the 1.3x
# acceptance floor is auditable from the file alone. BENCH_PR3.json is the
# frozen PR 3 record and is not rewritten.
#
# Usage: scripts/bench.sh [count]   (default 5 runs per benchmark)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="BENCH_PR4.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench RunAll (experiment harness, cold vs shared cache, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkRunAll(Cold|Shared)$' -benchtime 1x \
	-count "$COUNT" . | tee -a "$TMP" >&2

echo "==> go test -bench BuildChip (chip build, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkBuildChip' -benchtime 4x \
	-count "$COUNT" . | tee -a "$TMP" >&2

# Reduce the raw `go test -bench` lines to one JSON object per benchmark,
# taking the median ns/op (located by its unit label, so extra custom
# metric columns cannot shift the parse).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") {
			n[name]++
			ns[name, n[name]] = $(i - 1)
			break
		}
	}
}
function median(name,    cnt, i, j, tmp, arr) {
	cnt = n[name]
	if (cnt == 0) return 0
	for (i = 1; i <= cnt; i++) arr[i] = ns[name, i] + 0
	for (i = 1; i <= cnt; i++)
		for (j = i + 1; j <= cnt; j++)
			if (arr[j] < arr[i]) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
	if (cnt % 2) return arr[(cnt + 1) / 2]
	return (arr[cnt / 2] + arr[cnt / 2 + 1]) / 2
}
END {
	printf "{\n"
	printf "  \"comment\": \"PR 4 stage-graph flow + artifact cache: medians over %d runs; RunAll covers table2+table5+fig8 (all five styles); acceptance floor shared>=1.3x cold\",\n", n["BenchmarkRunAllCold"]
	printf "  \"current\": {\n"
	first = 1
	order = "BenchmarkRunAllCold BenchmarkRunAllShared BenchmarkBuildChipSequential BenchmarkBuildChipParallel"
	split(order, names, " ")
	for (i = 1; i in names; i++) {
		name = names[i]
		if (!(name in n)) continue
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_op\": %d}", name, median(name)
	}
	printf "\n  },\n"
	cold = median("BenchmarkRunAllCold")
	shared = median("BenchmarkRunAllShared")
	if (shared > 0)
		printf "  \"speedup_shared_vs_cold\": %.2f\n", cold / shared
	printf "}\n"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
