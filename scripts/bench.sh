#!/bin/sh
# bench.sh — record the PR 5 performance numbers (see README "Performance").
#
# Runs the fold3dd server-throughput benchmarks (one job end to end over
# HTTP, cold manager per iteration vs one long-lived manager whose artifact
# cache warms after the first job) plus the experiment-harness cold/shared
# pair, takes per-benchmark medians over -count runs (this class of machine
# shows ±8% run-to-run noise), and writes BENCH_PR5.json at the repo root:
# jobs/sec cold vs shared and their ratio, so the cache benefit through the
# HTTP surface is auditable from the file alone. BENCH_PR3.json and
# BENCH_PR4.json are frozen records of earlier PRs and are not rewritten.
#
# Usage: scripts/bench.sh [count]   (default 5 runs per benchmark)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="BENCH_PR5.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench ServerJobs (fold3dd HTTP throughput, cold vs shared cache, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkServerJobs(Cold|Shared)$' -benchtime 5x \
	-count "$COUNT" ./internal/server/ | tee -a "$TMP" >&2

echo "==> go test -bench RunAll (experiment harness, cold vs shared cache, $COUNT runs each)" >&2
go test -run '^$' -bench 'BenchmarkRunAll(Cold|Shared)$' -benchtime 1x \
	-count "$COUNT" . | tee -a "$TMP" >&2

# Reduce the raw `go test -bench` lines to one JSON object per benchmark,
# taking the median ns/op (located by its unit label, so extra custom
# metric columns cannot shift the parse).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") {
			n[name]++
			ns[name, n[name]] = $(i - 1)
			break
		}
	}
}
function median(name,    cnt, i, j, tmp, arr) {
	cnt = n[name]
	if (cnt == 0) return 0
	for (i = 1; i <= cnt; i++) arr[i] = ns[name, i] + 0
	for (i = 1; i <= cnt; i++)
		for (j = i + 1; j <= cnt; j++)
			if (arr[j] < arr[i]) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
	if (cnt % 2) return arr[(cnt + 1) / 2]
	return (arr[cnt / 2] + arr[cnt / 2 + 1]) / 2
}
END {
	printf "{\n"
	printf "  \"comment\": \"PR 5 fold3dd job-queue daemon: medians over %d runs; ServerJobs runs one table4 job end to end over HTTP (submit + NDJSON event stream), cold = fresh manager per job, shared = one manager whose artifact cache stays warm\",\n", n["BenchmarkServerJobsCold"]
	printf "  \"current\": {\n"
	first = 1
	order = "BenchmarkServerJobsCold BenchmarkServerJobsShared BenchmarkRunAllCold BenchmarkRunAllShared"
	split(order, names, " ")
	for (i = 1; i in names; i++) {
		name = names[i]
		if (!(name in n)) continue
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_op\": %d", name, median(name)
		if (name ~ /^BenchmarkServerJobs/)
			printf ", \"jobs_per_sec\": %.1f", 1e9 / median(name)
		printf "}"
	}
	printf "\n  },\n"
	cold = median("BenchmarkServerJobsCold")
	shared = median("BenchmarkServerJobsShared")
	if (shared > 0)
		printf "  \"server_speedup_shared_vs_cold\": %.2f,\n", cold / shared
	cold = median("BenchmarkRunAllCold")
	shared = median("BenchmarkRunAllShared")
	if (shared > 0)
		printf "  \"runall_speedup_shared_vs_cold\": %.2f\n", cold / shared
	printf "}\n"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
