#!/bin/sh
# bench.sh — record the PR 10 thermal-solver benchmark (see README
# "Thermal planning" and DESIGN.md §17).
#
# Produces BENCH_PR10.json with two sections:
#
#   thermal_solve — BenchmarkThermalSolve/grid=N/alg={mg,gs}: the multigrid
#     engine vs the dense Gauss-Seidel reference on the same synthetic
#     two-die problem at the same 1e-4 tolerance, per grid size. Gated: at
#     the largest grid the multigrid solve must be >= 10x faster, and both
#     algorithms must agree on the reported peak temperature to 0.1 C.
#
#   buildchip — BenchmarkBuildChip/{placer=force,thermal=on}: the tier-1
#     folded-F2B chip build with and without in-loop thermal planning. The
#     overhead ratio is recorded, not gated (the thermal stage is real new
#     work: a solve plus via insertion and re-extraction per folded block).
#
# BENCH_PR3.json .. BENCH_PR9.json are frozen records of earlier PRs and
# are not rewritten.
#
# Usage: scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="BENCH_PR10.json"
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> go test -bench BenchmarkThermalSolve (3x per grid/alg)" >&2
SOLVEOUT="$BIN/solve.txt"
go test -run '^$' -bench 'BenchmarkThermalSolve' -benchtime 3x . |
	tee "$SOLVEOUT" >&2

echo "==> go test -bench BenchmarkBuildChip/(placer=force|thermal=on) (3x)" >&2
CHIPOUT="$BIN/chip.txt"
go test -run '^$' -bench 'BenchmarkBuildChip/(placer=force|thermal=on)' -benchtime 3x . |
	tee "$CHIPOUT" >&2

awk -v cpus="$(nproc 2>/dev/null || echo 1)" '
FNR == 1 { file++ }
file == 1 && /^BenchmarkThermalSolve\/grid=/ {
	nf = split($0, f, /[ \t]+/)
	name = f[1]
	sub(/^BenchmarkThermalSolve\//, "", name)
	sub(/-[0-9]+$/, "", name)
	split(name, kv, /\//)
	grid = kv[1]; sub(/^grid=/, "", grid)
	alg = kv[2]; sub(/^alg=/, "", alg)
	nsop = "0"; tmax = 0
	for (j = 3; j <= nf; j++) {
		if (f[j] == "ns/op") nsop = f[j-1]
		if (f[j] == "tmax_C") tmax = f[j-1] + 0
	}
	sn++
	sgrid[sn] = grid + 0; salg[sn] = alg; sns[sn] = nsop; stmax[sn] = tmax
	nsof[grid "/" alg] = nsop + 0
	tmaxof[grid "/" alg] = tmax
	if (grid + 0 > maxgrid) maxgrid = grid + 0
}
file == 2 && /^BenchmarkBuildChip\// {
	nf = split($0, f, /[ \t]+/)
	name = f[1]
	sub(/^BenchmarkBuildChip\//, "", name)
	sub(/-[0-9]+$/, "", name)
	variant = (name == "thermal=on") ? "thermal" : "baseline"
	nsop = "0"; bcells = 0
	for (j = 3; j <= nf; j++) {
		if (f[j] == "ns/op") nsop = f[j-1]
		if (f[j] == "cells") bcells = f[j-1] + 0
	}
	cn++
	cvar[cn] = variant; cns[cn] = nsop; ccells[cn] = bcells
	cnsof[variant] = nsop + 0
}
END {
	mg = nsof[maxgrid "/mg"]; gs = nsof[maxgrid "/gs"]
	if (sn < 4 || mg <= 0 || gs <= 0) {
		print "bench.sh: missing mg/gs rows at grid " maxgrid > "/dev/stderr"
		exit 1
	}
	speedup = gs / mg
	if (speedup < 10) {
		printf "bench.sh: multigrid only %.1fx faster than Gauss-Seidel at grid %d (gate: 10x)\n", \
			speedup, maxgrid > "/dev/stderr"
		exit 1
	}
	dt = tmaxof[maxgrid "/mg"] - tmaxof[maxgrid "/gs"]
	if (dt < 0) dt = -dt
	if (dt > 0.1) {
		printf "bench.sh: mg and gs disagree on Tmax by %.3f C at grid %d\n", dt, maxgrid > "/dev/stderr"
		exit 1
	}
	if (cn < 2 || cnsof["baseline"] <= 0 || cnsof["thermal"] <= 0) {
		print "bench.sh: expected baseline and thermal buildchip rows, got " cn > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"comment\": \"PR 10 thermal solver: BenchmarkThermalSolve/grid=N/alg={mg,gs} solves the same synthetic two-die F2B problem to the same 1e-4 tolerance with the multigrid engine (mg) and the dense Gauss-Seidel reference (gs); mg_speedup is gated >= 10x at the largest grid and both must report the same peak temperature to 0.1 C. buildchip records BenchmarkBuildChip/{placer=force,thermal=on}: the tier-1 folded-F2B chip build without and with in-loop thermal planning (solve + thermal-via insertion + re-extraction per folded block); the overhead ratio is recorded, not gated.\",\n"
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"thermal_solve\": [\n"
	for (j = 1; j <= sn; j++) {
		printf "    {\"grid\": %d, \"alg\": \"%s\", \"ns_per_op\": %s, \"tmax_c\": %.2f}%s\n", \
			sgrid[j], salg[j], sns[j], stmax[j], j < sn ? "," : ""
	}
	printf "  ],\n"
	printf "  \"mg_speedup_at_grid_%d\": %.1f,\n", maxgrid, speedup
	printf "  \"buildchip\": [\n"
	for (j = 1; j <= cn; j++) {
		printf "    {\"variant\": \"%s\", \"cells\": %d, \"ns_per_op\": %s}%s\n", \
			cvar[j], ccells[j], cns[j], j < cn ? "," : ""
	}
	printf "  ],\n"
	printf "  \"thermal_over_baseline\": %.2f\n", cnsof["thermal"] / cnsof["baseline"]
	printf "}\n"
}
' "$SOLVEOUT" "$CHIPOUT" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
