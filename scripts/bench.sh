#!/bin/sh
# bench.sh — record the PR 6 performance numbers (see README "Performance").
#
# Runs BenchmarkLintRepo (the full fold3dlint path: parallel parse,
# sequential type-check, the complete check suite — including the three
# dataflow checks — through the worker pool over the whole module), takes
# the per-benchmark median over -count runs (this class of machine shows
# ±8% run-to-run noise), and writes BENCH_PR6.json at the repo root so the
# cost of the pre-PR lint gate is auditable from the file alone.
# BENCH_PR3.json, BENCH_PR4.json and BENCH_PR5.json are frozen records of
# earlier PRs and are not rewritten.
#
# Usage: scripts/bench.sh [count]   (default 5 runs per benchmark)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-5}"
OUT="BENCH_PR6.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "==> go test -bench LintRepo (full-module fold3dlint, $COUNT runs)" >&2
go test -run '^$' -bench 'BenchmarkLintRepo$' -benchtime 1x \
	-count "$COUNT" ./internal/lint/ | tee -a "$TMP" >&2

# Reduce the raw `go test -bench` lines to one JSON object per benchmark,
# taking the median ns/op (located by its unit label, so extra custom
# metric columns cannot shift the parse).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") {
			n[name]++
			ns[name, n[name]] = $(i - 1)
			break
		}
	}
}
function median(name,    cnt, i, j, tmp, arr) {
	cnt = n[name]
	if (cnt == 0) return 0
	for (i = 1; i <= cnt; i++) arr[i] = ns[name, i] + 0
	for (i = 1; i <= cnt; i++)
		for (j = i + 1; j <= cnt; j++)
			if (arr[j] < arr[i]) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
	if (cnt % 2) return arr[(cnt + 1) / 2]
	return (arr[cnt / 2] + arr[cnt / 2 + 1]) / 2
}
END {
	lint = median("BenchmarkLintRepo")
	printf "{\n"
	printf "  \"comment\": \"PR 6 dataflow-aware fold3dlint: median over %d runs; LintRepo loads the whole module (parallel parse, sequential type-check) and runs the full check suite, syntax checks plus the CFG/taint dataflow checks, through the worker pool\",\n", n["BenchmarkLintRepo"]
	printf "  \"current\": {\n"
	printf "    \"BenchmarkLintRepo\": {\"ns_op\": %.0f, \"seconds\": %.2f}\n", lint, lint / 1e9
	printf "  }\n"
	printf "}\n"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
