package power

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

func randomPowerBlock(seed uint64) *netlist.Block {
	lib := tech.NewLibrary()
	r := rng.New(seed)
	b := netlist.NewBlock("pp", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 50, 50)
	n := 5 + r.Intn(40)
	for i := 0; i < n; i++ {
		vth := tech.RVT
		if r.Bool(0.4) {
			vth = tech.HVT
		}
		b.AddCell(netlist.Instance{
			Name:     fmt.Sprintf("c%d", i),
			Master:   lib.MustCell(tech.NAND2, tech.Drives[r.Intn(5)], vth),
			Activity: r.Range(0.05, 0.5),
		})
	}
	for i := 0; i < n-1; i++ {
		b.AddNet(netlist.Net{
			Name:      fmt.Sprintf("n%d", i),
			Driver:    netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)},
			Sinks:     []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(i + 1)}},
			Activity:  r.Range(0.05, 0.5),
			WireCapfF: r.Range(0, 60),
		})
	}
	return b
}

func TestPropertyPowerConservation(t *testing.T) {
	sm, _ := tech.NewScaleModel(1)
	f := func(seed uint64) bool {
		r := Analyze(randomPowerBlock(seed), sm)
		return math.Abs(r.TotalMW-(r.CellMW+r.NetMW+r.LeakageMW)) < 1e-9 &&
			math.Abs(r.NetMW-(r.WireMW+r.PinMW)) < 1e-9 &&
			r.TotalMW >= 0 && r.ClockMW >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPowerScalesLinearly(t *testing.T) {
	sm1, _ := tech.NewScaleModel(1)
	f := func(seed uint64, k uint8) bool {
		scale := 1 + float64(k%200)
		smk, err := tech.NewScaleModel(scale)
		if err != nil {
			return false
		}
		b := randomPowerBlock(seed)
		r1 := Analyze(b, sm1)
		rk := Analyze(b, smk)
		if r1.TotalMW == 0 {
			return rk.TotalMW == 0
		}
		return math.Abs(rk.TotalMW/r1.TotalMW-scale) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMonotoneInWireCap(t *testing.T) {
	// Adding wire cap to any net never reduces total power.
	sm, _ := tech.NewScaleModel(1)
	f := func(seed uint64, extra float64) bool {
		extra = math.Abs(extra)
		if math.IsNaN(extra) || math.IsInf(extra, 0) || extra > 1e6 {
			return true
		}
		b := randomPowerBlock(seed)
		before := Analyze(b, sm).TotalMW
		if len(b.Nets) == 0 {
			return true
		}
		b.Nets[0].WireCapfF += extra
		after := Analyze(b, sm).TotalMW
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
