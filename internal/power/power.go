// Package power computes the power report of a block or chip in the paper's
// decomposition: total = cell (internal) + net (wire + pin) + leakage. The
// net power of a driving cell is the switching power of its wire capacitance
// plus the input-pin capacitance of the loading side — so downsizing cells
// under positive slack reduces both cell power and the pin component of net
// power, which is exactly the mechanism behind the paper's Table 2
// discussion. All numbers are reported at full-chip magnitude (the scale
// model's multiplier is applied).
package power

import (
	"fmt"

	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// Report is the power breakdown in mW.
type Report struct {
	TotalMW   float64
	CellMW    float64 // internal switching power of cells and macros
	NetMW     float64 // wire + pin switching power
	WireMW    float64 // wire component of net power
	PinMW     float64 // pin component of net power
	LeakageMW float64 // cell + macro leakage
	ClockMW   float64 // portion of the above driven by clock nets/buffers
}

// Add accumulates o into r (for chip-level totals over blocks).
func (r *Report) Add(o Report) {
	r.TotalMW += o.TotalMW
	r.CellMW += o.CellMW
	r.NetMW += o.NetMW
	r.WireMW += o.WireMW
	r.PinMW += o.PinMW
	r.LeakageMW += o.LeakageMW
	r.ClockMW += o.ClockMW
}

// String renders the power breakdown in mW.
func (r Report) String() string {
	return fmt.Sprintf("total %.3f mW (cell %.3f, net %.3f [wire %.3f pin %.3f], leak %.3f, clock %.3f)",
		r.TotalMW, r.CellMW, r.NetMW, r.WireMW, r.PinMW, r.LeakageMW, r.ClockMW)
}

// DefaultActivity is the switching activity assumed for signal nets without
// an annotated activity.
const DefaultActivity = 0.15

// Analyze computes the power report of b under the given scale model.
// Extraction must have run (nets need WireCapfF).
func Analyze(b *netlist.Block, scale tech.ScaleModel) Report {
	freq := b.Clock.FreqMHz()
	var r Report

	// Cell internal power and leakage.
	for i := range b.Cells {
		c := &b.Cells[i]
		act := c.Activity
		if act == 0 {
			act = DefaultActivity
		}
		if c.IsClockBuf {
			act = 2
		}
		if c.Master.Fam.IsSequential() && act < 1 {
			// The register's internal clock network toggles every cycle.
			act = 1
		}
		p := tech.DynamicPowerMW(c.Master.IntCap, act, freq)
		r.CellMW += p
		if c.IsClockBuf {
			r.ClockMW += p
		}
		leak := c.Master.LeaknW * 1e-6 // nW -> mW
		r.LeakageMW += leak
	}
	// Macro internal power (access energy) and leakage.
	for i := range b.Macros {
		m := &b.Macros[i]
		act := m.Activity
		if act == 0 {
			act = 0.5 // memories are accessed about every other cycle
		}
		// ReadEnergy fJ at act accesses/cycle: fJ * MHz = 1e-15 J * 1e6/s
		// = 1e-9 W = 1e-6 mW.
		r.CellMW += m.Model.ReadEnergyFJ * act * freq * 1e-6
		r.LeakageMW += m.Model.LeakmW
	}
	// Net power: wire and pin components.
	for i := range b.Nets {
		n := &b.Nets[i]
		act := n.Activity
		if act == 0 {
			if n.Kind == netlist.Clock {
				act = 2
			} else {
				act = DefaultActivity
			}
		}
		var pins float64
		for _, s := range n.Sinks {
			pins += b.PinCap(s)
		}
		wire := tech.DynamicPowerMW(n.WireCapfF, act, freq)
		pin := tech.DynamicPowerMW(pins, act, freq)
		r.WireMW += wire
		r.PinMW += pin
		if n.Kind == netlist.Clock {
			r.ClockMW += wire + pin
		}
	}
	r.NetMW = r.WireMW + r.PinMW
	r.TotalMW = r.CellMW + r.NetMW + r.LeakageMW

	m := scale.PowerMultiplier()
	r.TotalMW *= m
	r.CellMW *= m
	r.NetMW *= m
	r.WireMW *= m
	r.PinMW *= m
	r.LeakageMW *= m
	r.ClockMW *= m
	return r
}

// NetPowerFraction returns net power over total power, the paper's §4.1
// folding criterion #2.
func NetPowerFraction(r Report) float64 {
	if r.TotalMW == 0 {
		return 0
	}
	return r.NetMW / r.TotalMW
}
