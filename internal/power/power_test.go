package power

import (
	"math"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func powerBlock(t *testing.T) (*netlist.Block, *tech.Library, tech.ScaleModel) {
	t.Helper()
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1)
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBlock("p", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 50, 50)
	a := b.AddCell(netlist.Instance{Name: "a", Master: lib.MustCell(tech.INV, 2, tech.RVT), Activity: 0.2})
	c := b.AddCell(netlist.Instance{Name: "c", Master: lib.MustCell(tech.NAND2, 4, tech.RVT), Activity: 0.2})
	b.AddNet(netlist.Net{Name: "n", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: a},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: c}}, Activity: 0.2, WireCapfF: 10})
	return b, lib, sm
}

func TestConservation(t *testing.T) {
	b, _, sm := powerBlock(t)
	r := Analyze(b, sm)
	if math.Abs(r.TotalMW-(r.CellMW+r.NetMW+r.LeakageMW)) > 1e-12 {
		t.Errorf("total %v != cell %v + net %v + leak %v", r.TotalMW, r.CellMW, r.NetMW, r.LeakageMW)
	}
	if math.Abs(r.NetMW-(r.WireMW+r.PinMW)) > 1e-12 {
		t.Errorf("net %v != wire %v + pin %v", r.NetMW, r.WireMW, r.PinMW)
	}
	if r.TotalMW <= 0 {
		t.Error("non-positive power")
	}
}

func TestHandComputedNetPower(t *testing.T) {
	b, lib, sm := powerBlock(t)
	r := Analyze(b, sm)
	// Wire power: 0.5 * 0.2 * 10fF * Vdd^2 * 500MHz.
	wantWire := tech.DynamicPowerMW(10, 0.2, 500)
	if math.Abs(r.WireMW-wantWire) > 1e-12 {
		t.Errorf("WireMW = %v, want %v", r.WireMW, wantWire)
	}
	wantPin := tech.DynamicPowerMW(lib.MustCell(tech.NAND2, 4, tech.RVT).InCapfF, 0.2, 500)
	if math.Abs(r.PinMW-wantPin) > 1e-12 {
		t.Errorf("PinMW = %v, want %v", r.PinMW, wantPin)
	}
}

func TestLeakageSum(t *testing.T) {
	b, lib, sm := powerBlock(t)
	r := Analyze(b, sm)
	want := (lib.MustCell(tech.INV, 2, tech.RVT).LeaknW + lib.MustCell(tech.NAND2, 4, tech.RVT).LeaknW) * 1e-6
	if math.Abs(r.LeakageMW-want) > 1e-12 {
		t.Errorf("LeakageMW = %v, want %v", r.LeakageMW, want)
	}
}

func TestHVTReducesPower(t *testing.T) {
	b, lib, sm := powerBlock(t)
	rvt := Analyze(b, sm)
	for i := range b.Cells {
		b.Cells[i].Master = lib.MustCell(b.Cells[i].Master.Fam, b.Cells[i].Master.Drive, tech.HVT)
	}
	hvt := Analyze(b, sm)
	if hvt.LeakageMW >= rvt.LeakageMW {
		t.Error("HVT must reduce leakage")
	}
	ratio := hvt.LeakageMW / rvt.LeakageMW
	if math.Abs(ratio-tech.HVTLeakageFactor) > 1e-9 {
		t.Errorf("leakage ratio = %v", ratio)
	}
	if hvt.CellMW >= rvt.CellMW {
		t.Error("HVT must reduce internal power")
	}
}

func TestScaleMultiplier(t *testing.T) {
	b, _, _ := powerBlock(t)
	sm1, _ := tech.NewScaleModel(1)
	sm1000, _ := tech.NewScaleModel(1000)
	r1 := Analyze(b, sm1)
	r1000 := Analyze(b, sm1000)
	if math.Abs(r1000.TotalMW/r1.TotalMW-1000) > 1e-6 {
		t.Errorf("scale multiplier not applied: %v", r1000.TotalMW/r1.TotalMW)
	}
}

func TestClockPowerAttribution(t *testing.T) {
	b, lib, sm := powerBlock(t)
	base := Analyze(b, sm)
	bi := b.AddCell(netlist.Instance{Name: "ckb", Master: lib.MustCell(tech.BUF, 8, tech.RVT), IsClockBuf: true})
	ff := b.AddCell(netlist.Instance{Name: "ff", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
	b.AddNet(netlist.Net{Name: "ck", Kind: netlist.Clock,
		Driver:    netlist.PinRef{Kind: netlist.KindCell, Idx: bi},
		Sinks:     []netlist.PinRef{{Kind: netlist.KindCell, Idx: ff}},
		WireCapfF: 5, Activity: 2})
	r := Analyze(b, sm)
	if r.ClockMW <= base.ClockMW {
		t.Error("clock power not attributed")
	}
	if r.TotalMW <= base.TotalMW {
		t.Error("added clock network must add power")
	}
}

func TestMacroPower(t *testing.T) {
	b, lib, sm := powerBlock(t)
	base := Analyze(b, sm)
	b.AddMacro(netlist.MacroInst{Name: "m", Model: lib.MacroKB, Activity: 0.5})
	r := Analyze(b, sm)
	if r.CellMW <= base.CellMW {
		t.Error("macro access energy must appear in cell power")
	}
	if r.LeakageMW-base.LeakageMW < lib.MacroKB.LeakmW*0.99 {
		t.Error("macro leakage missing")
	}
}

func TestActivityDefaults(t *testing.T) {
	b, _, sm := powerBlock(t)
	b.Nets[0].Activity = 0
	b.Cells[0].Activity = 0
	r := Analyze(b, sm)
	if r.TotalMW <= 0 {
		t.Error("default activity must yield positive power")
	}
}

func TestNetPowerFraction(t *testing.T) {
	b, _, sm := powerBlock(t)
	r := Analyze(b, sm)
	f := NetPowerFraction(r)
	if f <= 0 || f >= 1 {
		t.Errorf("net power fraction = %v", f)
	}
	if NetPowerFraction(Report{}) != 0 {
		t.Error("zero report must give zero fraction")
	}
}

func TestReportAdd(t *testing.T) {
	a := Report{TotalMW: 1, CellMW: 0.5, NetMW: 0.3, WireMW: 0.2, PinMW: 0.1, LeakageMW: 0.2, ClockMW: 0.05}
	b := a
	a.Add(b)
	if a.TotalMW != 2 || a.CellMW != 1 || a.ClockMW != 0.1 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}
