package sta

import (
	"fmt"
	"strings"

	"fold3d/internal/netlist"
)

// PathStage is one hop of a reported timing path.
type PathStage struct {
	What    string  // cell master / macro / port description
	Net     string  // net driven into the next stage
	Arrival float64 // ps at this stage's output
	LoadfF  float64
	WireUm  float64
	Fanout  int
}

// CriticalPath reconstructs the worst arrival path of the analyzed block by
// walking max-arrival fanins backward from the latest cell output. It is a
// diagnostic (the paper's report_timing): the path is approximate in that it
// follows worst arrivals, not worst slacks.
func CriticalPath(b *netlist.Block, rep *Report) []PathStage {
	// Find the latest-arriving cell output.
	worst, at := -1e18, -1
	for i, a := range rep.ArrOut {
		if a > worst && a < 1e17 {
			worst, at = a, i
		}
	}
	if at < 0 {
		return nil
	}
	// fanin nets per cell.
	fanin := make(map[int32][]int32)
	driverNet := make([]int32, len(b.Cells))
	for i := range driverNet {
		driverNet[i] = -1
	}
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		if n.Driver.Kind == netlist.KindCell {
			driverNet[n.Driver.Idx] = int32(ni)
		}
		for _, s := range n.Sinks {
			if s.Kind == netlist.KindCell {
				fanin[s.Idx] = append(fanin[s.Idx], int32(ni))
			}
		}
	}

	var stages []PathStage
	cur := int32(at)
	for hop := 0; hop < 200; hop++ {
		c := &b.Cells[cur]
		st := PathStage{
			What:    c.Master.Name,
			Arrival: rep.ArrOut[cur],
		}
		if ni := driverNet[cur]; ni >= 0 {
			n := &b.Nets[ni]
			st.Net = n.Name
			wire, pins := totalLoad(b, n)
			st.LoadfF = wire + pins
			st.WireUm = n.RouteLen
			st.Fanout = len(n.Sinks)
		}
		stages = append(stages, st)
		if c.Master.Fam.IsSequential() {
			break
		}
		// Predecessor with the max arrival at this cell's input.
		bestA, bestCell := -1e18, int32(-1)
		for _, ni := range fanin[cur] {
			n := &b.Nets[ni]
			if n.Driver.Kind != netlist.KindCell {
				continue
			}
			a := rep.ArrOut[n.Driver.Idx]
			if a > bestA && a < 1e17 {
				bestA, bestCell = a, n.Driver.Idx
			}
		}
		if bestCell < 0 {
			break
		}
		cur = bestCell
	}
	// Reverse to launch-to-capture order.
	for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
		stages[i], stages[j] = stages[j], stages[i]
	}
	return stages
}

// FormatPath renders a critical path report.
func FormatPath(stages []PathStage) string {
	var sb strings.Builder
	prev := 0.0
	for _, st := range stages {
		fmt.Fprintf(&sb, "  %-16s arr %8.1f (+%6.1f)  load %6.1ffF wire %6.1fum fo %d  net %s\n",
			st.What, st.Arrival, st.Arrival-prev, st.LoadfF, st.WireUm, st.Fanout, st.Net)
		prev = st.Arrival
	}
	return sb.String()
}
