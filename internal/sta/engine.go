// engine.go is the persistent incremental timing engine. A full build
// (rebuild) and the cone-limited incremental update funnel every number
// through the same per-node helpers — computeCellDelay, arrAtSink,
// requiredAtSink — and share the finish pass that folds endpoint slacks
// into the report, so an incremental Analyze returns bit-identical floats
// to a from-scratch one. DESIGN.md §10 documents the invariant;
// TestIncrementalFullEquivalence (internal/opt) enforces it.

package sta

import (
	"fmt"

	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// Engine is a persistent static timing analyzer bound to one block. It
// caches the topological order, the driver/fanin adjacency and every
// arrival/required/slack array between calls; after MarkCellDirty and
// MarkNetDirty it re-propagates arrivals only through the dirty cells'
// transitive fanout cones and required times only through the affected
// fanin cones, seeded from a worklist. Structural edits (cell or net count
// changes), uncertainty changes and InvalidateTopology fall back to a full
// build. Results are exactly — bit for bit — what a fresh full Analyze
// would produce. An Engine is not safe for concurrent use.
type Engine struct {
	b           *netlist.Block
	uncertainty float64
	period      float64
	built       bool
	full        bool
	nc, nn      int

	driverNet []int32   // cell -> driven signal net (-1 if none)
	fanin     [][]int32 // cell -> signal nets feeding it, in net order
	faninIx   []int32   // arena backing the fanin lists
	order     []int32   // topological order over combinational cells
	pos       []int32   // cell -> index in order (-1 for sequential)
	isSeq     []bool    // cell -> master family is sequential (flat mirror)
	pinCap    []float64 // cell -> master input pin cap in fF (flat mirror)
	cellDelay []float64
	arr       []float64
	req       []float64
	netReq    []float64

	// Endpoint bookkeeping: endNet/endSink list every endpoint in the
	// discovery order of the full pass (net order, then sink order), and
	// endSlack holds its latest slack (the unset sentinel when the full
	// pass would have skipped it). netEnd[ni]:netEnd[ni+1] spans the
	// endpoints of net ni, so a dirty net re-slacks only its own.
	endNet   []int32
	endSink  []int32
	endSlack []float64
	netEnd   []int32

	rep Report

	// Dirty state accumulated between Analyze calls.
	dirtyCells []int32
	dirtyNets  []int32
	cellDirty  []bool
	netDirty   []bool

	// Worklist scratch, reused across updates. The forward and backward
	// re-propagations are marked sweeps over the cached topological order:
	// queued[ci] flags a cell for recompute and the sweep walks order
	// positions between the lowest and highest flagged ones, so the pop
	// sequence is exactly the full pass's order without a priority queue.
	queued    []bool
	seqSeeds  []int32
	delayList []int32
	delayMark []bool
	boundList []int32
	boundMark []bool
	endList   []int32
	endMark   []bool
	indeg     []int32
}

// NewEngine returns a persistent timing engine for b. The first Analyze
// runs a full build; later calls re-propagate only the cones invalidated
// through MarkCellDirty/MarkNetDirty, with bit-identical results.
func NewEngine(b *netlist.Block) *Engine { return &Engine{b: b} }

// Block returns the block this engine analyzes.
func (e *Engine) Block() *netlist.Block { return e.b }

// MarkCellDirty records that cell ci's master changed, so its stage delay,
// its launch/propagation arrivals and the required times upstream of it
// must be re-derived on the next Analyze. This covers master swaps that
// keep the cell's geometry and input caps (a Vth swap); a resize also
// moves the cell's pins, so callers must additionally re-extract and
// MarkNetDirty every net the cell drives or loads.
func (e *Engine) MarkCellDirty(ci int32) {
	if !e.built || int(ci) >= len(e.cellDirty) {
		e.full = true
		return
	}
	if !e.cellDirty[ci] {
		e.cellDirty[ci] = true
		e.dirtyCells = append(e.dirtyCells, ci)
	}
	// Keep the flat master mirrors in step with the swap (family swaps never
	// cross the sequential boundary today, but the mirrors must not assume
	// it, and resizes do change the input cap).
	m := e.b.Cells[ci].Master
	e.isSeq[ci] = m.Fam.IsSequential()
	e.pinCap[ci] = m.InCapfF
}

// MarkNetDirty records that net ni's parasitics changed (re-extraction
// after a pin moved or a sink's input cap changed): its wire delays, its
// driver's load and every arrival/required crossing it are re-derived on
// the next Analyze.
func (e *Engine) MarkNetDirty(ni int32) {
	if !e.built || int(ni) >= len(e.netDirty) {
		e.full = true
		return
	}
	if !e.netDirty[ni] {
		e.netDirty[ni] = true
		e.dirtyNets = append(e.dirtyNets, ni)
	}
}

// InvalidateTopology drops every cached result, forcing the next Analyze
// to run a full build. Required after edits the mark API cannot describe:
// placement moves without re-extraction, port or macro changes, or a full
// re-extraction of the block.
func (e *Engine) InvalidateTopology() { e.full = true }

// Rebind points the engine at a different block, keeping every scratch and
// result array for capacity reuse (the flow recycles one engine across a
// chip's blocks instead of re-allocating the ~20 per-cell arrays each
// build). The next Analyze runs a full build; a rebound engine's results
// are exactly a fresh engine's.
func (e *Engine) Rebind(b *netlist.Block) {
	e.b = b
	e.built = false
	e.full = true
}

// DriverNets returns the cached cell-to-driven-signal-net map (-1 when a
// cell drives none). It is valid after a successful Analyze and until the
// netlist structure changes; callers must not modify it.
func (e *Engine) DriverNets() []int32 { return e.driverNet }

// FaninNets returns the cached signal nets feeding cell ci, in net-index
// order. Same validity rules as DriverNets; callers must not modify it.
func (e *Engine) FaninNets(ci int32) []int32 { return e.fanin[ci] }

// Analyze computes the block's timing. The first call — and any call
// after a structural change, an uncertainty change or InvalidateTopology —
// runs a full build; otherwise only the cones reachable from the marked
// dirty cells and nets are re-propagated. The returned Report and its
// slices are owned by the engine and valid until the next Analyze call;
// callers keeping results across calls must copy them.
func (e *Engine) Analyze(uncertaintyPS float64) (*Report, error) {
	structural := !e.built || len(e.b.Cells) != e.nc || len(e.b.Nets) != e.nn
	//lint:ignore floatcmp the uncertainty is caller-assigned, never computed; any change invalidates every required time exactly
	uncChanged := uncertaintyPS != e.uncertainty
	if e.full || structural || uncChanged {
		e.uncertainty = uncertaintyPS
		if err := e.rebuild(); err != nil {
			return nil, err
		}
		e.built = true
		e.full = false
		e.clearDirty()
		e.finish()
		return &e.rep, nil
	}
	if len(e.dirtyCells) > 0 || len(e.dirtyNets) > 0 {
		e.update()
		e.clearDirty()
		e.finish()
	}
	return &e.rep, nil
}

// clearDirty resets the marks and truncates the dirty lists.
func (e *Engine) clearDirty() {
	for _, ci := range e.dirtyCells {
		if int(ci) < len(e.cellDirty) {
			e.cellDirty[ci] = false
		}
	}
	for _, ni := range e.dirtyNets {
		if int(ni) < len(e.netDirty) {
			e.netDirty[ni] = false
		}
	}
	e.dirtyCells = e.dirtyCells[:0]
	e.dirtyNets = e.dirtyNets[:0]
}

// grown returns s resized to n elements, reusing capacity, contents zeroed.
func grown[T int32 | float64 | bool](s []T, n int) []T {
	if cap(s) < n {
		// Headroom so the repeated small growth of repeater insertion
		// (a few cells per pass) doesn't reallocate every rebuild.
		return make([]T, n, n+n/4+8)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// grownDirty is grown without the zeroing, for arrays the caller fully
// overwrites before reading (rebuild's sentinel fills would make the clear a
// second redundant memclr pass over each array).
func grownDirty[T int32 | float64 | bool](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, n+n/4+8)
	}
	return s[:n]
}

// totalLoad mirrors the package-level helper, reading cell sink caps from
// the engine's flat pin-cap mirror instead of chasing the master pointer.
// Same accumulation, term for term and in the same order.
func (e *Engine) totalLoad(n *netlist.Net) (wirefF, pinfF float64) {
	wirefF = n.WireCapfF
	for _, s := range n.Sinks {
		if s.Kind == netlist.KindCell {
			pinfF += e.pinCap[s.Idx]
		} else {
			pinfF += e.b.PinCap(s)
		}
	}
	return wirefF, pinfF
}

// wireDelay mirrors the package-level helper via the flat pin-cap mirror;
// identical arithmetic.
func (e *Engine) wireDelay(n *netlist.Net, s netlist.PinRef) float64 {
	var pc float64
	if s.Kind == netlist.KindCell {
		pc = e.pinCap[s.Idx]
	} else {
		pc = e.b.PinCap(s)
	}
	return n.WireResOhm * (n.WireCapfF/2 + pc) * 1e-3
}

// computeCellDelay is the input-to-output delay of cell i driving its net:
// intrinsic plus drive resistance times load (Ω*fF = 1e-3 ps), plus
// clock-to-q for sequentials.
func (e *Engine) computeCellDelay(i int32) float64 {
	b := e.b
	m := b.Cells[i].Master
	var load float64
	if dn := e.driverNet[i]; dn >= 0 {
		wire, pins := e.totalLoad(&b.Nets[dn])
		load = wire + pins
	}
	d := m.Intr + m.DriveR*load*1e-3
	if m.Fam == tech.DFF {
		d += m.ClkQ
	}
	return d
}

// arrAtCellSink is arrAtSink specialized to a cell sink whose pin cap the
// caller already holds: the forward sweeps visit one cell's whole fanin list
// at a time, and the sink-side Master.InCapfF chase is loop-invariant there.
// Same arithmetic as arrAtSink, term for term.
func (e *Engine) arrAtCellSink(ni int32, pinCap float64) float64 {
	b := e.b
	n := &b.Nets[ni]
	var src float64
	switch n.Driver.Kind {
	case netlist.KindCell:
		src = e.arr[n.Driver.Idx]
		if isUnset(src) {
			return unset
		}
	case netlist.KindMacro:
		src = b.Macros[n.Driver.Idx].Model.AccessPS
	case netlist.KindPort:
		p := &b.Ports[n.Driver.Idx]
		src = p.Budget
		if src == 0 {
			src = DefaultPortBudgetFraction * e.period
		}
		// Port driver delay into the net.
		wire, pins := e.totalLoad(n)
		src += b.DriverR(n.Driver) * (wire + pins) * 1e-3
	}
	return src + n.WireResOhm*(n.WireCapfF/2+pinCap)*1e-3
}

// arrAtSink computes the arrival at a sink pin of net ni.
func (e *Engine) arrAtSink(ni int32, s netlist.PinRef) float64 {
	b := e.b
	n := &b.Nets[ni]
	var src float64
	switch n.Driver.Kind {
	case netlist.KindCell:
		src = e.arr[n.Driver.Idx]
		if isUnset(src) {
			return unset
		}
	case netlist.KindMacro:
		src = b.Macros[n.Driver.Idx].Model.AccessPS
	case netlist.KindPort:
		p := &b.Ports[n.Driver.Idx]
		src = p.Budget
		if src == 0 {
			src = DefaultPortBudgetFraction * e.period
		}
		// Port driver delay into the net.
		wire, pins := e.totalLoad(n)
		src += b.DriverR(n.Driver) * (wire + pins) * 1e-3
	}
	return src + e.wireDelay(n, s)
}

// requiredAtSink returns the required arrival time at a sink pin.
func (e *Engine) requiredAtSink(s netlist.PinRef) float64 {
	b := e.b
	switch s.Kind {
	case netlist.KindCell:
		if e.isSeq[s.Idx] {
			return e.period - b.Cells[s.Idx].Master.Setup - e.uncertainty
		}
		return e.req[s.Idx] - e.cellDelay[s.Idx]
	case netlist.KindMacro:
		return e.period - b.Macros[s.Idx].Model.SetupPS - e.uncertainty
	case netlist.KindPort:
		p := &b.Ports[s.Idx]
		budget := p.Budget
		if budget == 0 {
			budget = DefaultPortBudgetFraction * e.period
		}
		return e.period - budget - e.uncertainty
	}
	return noReq
}

// endpointSlack is one capture point's slack, or the unset sentinel when
// the arrival never materialized (the full pass skips such endpoints).
func (e *Engine) endpointSlack(ni int32, s netlist.PinRef) float64 {
	a := e.arrAtSink(ni, s)
	if isUnset(a) {
		return unset
	}
	return e.requiredAtSink(s) - a
}

// rebuild runs the full analysis: adjacency, levelization, stage delays,
// forward arrivals, backward requireds and endpoint discovery — the same
// sequence, in the same order, as the historical one-shot Analyze.
func (e *Engine) rebuild() error {
	b := e.b
	e.period = b.Clock.PeriodPS()
	nc, nn := len(b.Cells), len(b.Nets)
	e.nc, e.nn = nc, nn

	e.driverNet = grownDirty(e.driverNet, nc) // filled with -1 below
	e.pos = grownDirty(e.pos, nc)             // filled with -1 below
	e.isSeq = grownDirty(e.isSeq, nc)         // filled below
	e.pinCap = grownDirty(e.pinCap, nc)       // filled below
	e.cellDelay = grownDirty(e.cellDelay, nc) // every cell written below
	e.arr = grownDirty(e.arr, nc)             // filled with unset below
	e.req = grownDirty(e.req, nc)             // filled with noReq below
	e.netReq = grownDirty(e.netReq, nn)       // filled with noReq below
	e.cellDirty = grown(e.cellDirty, nc)
	e.netDirty = grown(e.netDirty, nn)
	e.queued = grown(e.queued, nc)
	e.delayMark = grown(e.delayMark, nc)
	e.boundMark = grown(e.boundMark, nn)
	e.endMark = grown(e.endMark, nn)
	e.indeg = grown(e.indeg, nc)
	e.netEnd = grownDirty(e.netEnd, nn+1) // every net written in the endpoint pass

	// Flat master mirrors: the hot sweeps test "is this sink a
	// launch/capture boundary" and read the sink's input pin cap once per
	// pin visit, and the two-pointer chase through Cells[i].Master costs
	// more than either use.
	for i := range b.Cells {
		m := b.Cells[i].Master
		e.isSeq[i] = m.Fam.IsSequential()
		e.pinCap[i] = m.InCapfF
	}

	// Driver map and fanin lists (arena-backed: one count pass sizes the
	// per-cell slices, one fill pass appends in net order).
	for i := range e.driverNet {
		e.driverNet[i] = -1
	}
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		if n.Driver.Kind == netlist.KindCell {
			e.driverNet[n.Driver.Idx] = int32(ni)
		}
		for _, s := range n.Sinks {
			if s.Kind == netlist.KindCell {
				e.indeg[s.Idx]++
			}
		}
	}
	total := 0
	for i := 0; i < nc; i++ {
		total += int(e.indeg[i])
	}
	if cap(e.faninIx) < total {
		e.faninIx = make([]int32, total, total+total/4+8)
	} else {
		e.faninIx = e.faninIx[:total]
	}
	if cap(e.fanin) < nc {
		e.fanin = make([][]int32, nc, nc+nc/4+8)
	} else {
		e.fanin = e.fanin[:nc]
	}
	at := 0
	for i := 0; i < nc; i++ {
		e.fanin[i] = e.faninIx[at : at : at+int(e.indeg[i])]
		at += int(e.indeg[i])
	}
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		for _, s := range n.Sinks {
			if s.Kind == netlist.KindCell {
				e.fanin[s.Idx] = append(e.fanin[s.Idx], int32(ni))
			}
		}
	}

	// Stage delays.
	for i := int32(0); i < int32(nc); i++ {
		e.cellDelay[i] = e.computeCellDelay(i)
	}

	// Topological order over combinational cells (Kahn). Sequential cells
	// and macros are both launch and capture boundaries, so edges do not
	// propagate through them. The FIFO queue is the order slice itself.
	for i := range e.indeg {
		e.indeg[i] = 0
	}
	for i := range b.Cells {
		if e.isSeq[i] {
			continue // DFFs launch; their inputs are endpoints
		}
		for _, ni := range e.fanin[i] {
			n := &b.Nets[ni]
			if n.Driver.Kind == netlist.KindCell && !e.isSeq[n.Driver.Idx] {
				e.indeg[i]++
			}
		}
	}
	if cap(e.order) < nc {
		e.order = make([]int32, 0, nc+nc/4+8)
	} else {
		e.order = e.order[:0]
	}
	for i := 0; i < nc; i++ {
		if !e.isSeq[i] && e.indeg[i] == 0 {
			e.order = append(e.order, int32(i))
		}
	}
	for head := 0; head < len(e.order); head++ {
		v := e.order[head]
		if dn := e.driverNet[v]; dn >= 0 {
			for _, s := range b.Nets[dn].Sinks {
				if s.Kind != netlist.KindCell {
					continue
				}
				u := s.Idx
				if e.isSeq[u] {
					continue
				}
				e.indeg[u]--
				if e.indeg[u] == 0 {
					e.order = append(e.order, u)
				}
			}
		}
	}
	comb := 0
	for i := range b.Cells {
		if !e.isSeq[i] {
			comb++
		}
	}
	if len(e.order) != comb {
		return fmt.Errorf("sta: block %s has a combinational cycle (%d of %d cells ordered)", b.Name, len(e.order), comb)
	}
	for i := range e.pos {
		e.pos[i] = -1
	}
	for k, v := range e.order {
		e.pos[v] = int32(k)
	}

	// Forward: arrival at every cell output. Launch at sequential cells.
	for i := range e.arr {
		e.arr[i] = unset
	}
	for i := range b.Cells {
		if e.isSeq[i] {
			e.arr[i] = e.cellDelay[i] // clock arrival 0 + clk->q (+ load delay)
		}
	}
	for _, v := range e.order {
		latest := 0.0
		pc := e.pinCap[v]
		for _, ni := range e.fanin[v] {
			a := e.arrAtCellSink(ni, pc)
			if isUnset(a) {
				continue
			}
			if a > latest {
				latest = a
			}
		}
		e.arr[v] = latest + e.cellDelay[v]
	}

	// Backward pass in reverse topological order, then sequential drivers.
	for i := range e.req {
		e.req[i] = noReq
	}
	for i := range e.netReq {
		e.netReq[i] = noReq
	}
	for i := len(e.order) - 1; i >= 0; i-- {
		v := e.order[i]
		dn := e.driverNet[v]
		if dn < 0 {
			e.req[v] = b.Clock.PeriodPS() // dangling output: unconstrained
			continue
		}
		r := noReq
		n := &b.Nets[dn]
		for _, s := range n.Sinks {
			rs := e.requiredAtSink(s) - e.wireDelay(n, s)
			if rs < r {
				r = rs
			}
		}
		e.req[v] = r
		if r < e.netReq[dn] {
			e.netReq[dn] = r
		}
	}
	// Sequential and macro/port-driven nets' required times.
	for ni := range b.Nets {
		if e.isBoundaryNet(int32(ni)) {
			e.recomputeBoundary(int32(ni))
		}
	}

	// Endpoint discovery: every sequential/macro/port sink is an endpoint,
	// collected in net order then sink order — the accounting order of the
	// full pass, preserved so the TNS summation order never changes.
	e.endNet = e.endNet[:0]
	e.endSink = e.endSink[:0]
	e.endSlack = e.endSlack[:0]
	for ni := range b.Nets {
		e.netEnd[ni] = int32(len(e.endNet))
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		for si, s := range n.Sinks {
			isEnd := false
			switch s.Kind {
			case netlist.KindCell:
				isEnd = e.isSeq[s.Idx]
			case netlist.KindMacro, netlist.KindPort:
				isEnd = true
			}
			if !isEnd {
				continue
			}
			e.endNet = append(e.endNet, int32(ni))
			e.endSink = append(e.endSink, int32(si))
			e.endSlack = append(e.endSlack, e.endpointSlack(int32(ni), s))
		}
	}
	e.netEnd[nn] = int32(len(e.endNet))
	return nil
}

// isBoundaryNet reports whether ni's required time is derived outside the
// combinational backward pass: a signal net driven by a sequential cell, a
// macro or a port.
func (e *Engine) isBoundaryNet(ni int32) bool {
	n := &e.b.Nets[ni]
	if n.Kind != netlist.Signal {
		return false
	}
	if n.Driver.Kind == netlist.KindCell && !e.isSeq[n.Driver.Idx] {
		return false
	}
	return true
}

// recomputeBoundary rebuilds the required time of one boundary net and of
// its sequential driver, mirroring the full pass exactly: netReq takes the
// sink minimum unconditionally, the driver's required starts from the
// noReq sentinel and takes the minimum.
func (e *Engine) recomputeBoundary(ni int32) {
	b := e.b
	n := &b.Nets[ni]
	r := 1e18
	for _, s := range n.Sinks {
		rs := e.requiredAtSink(s) - e.wireDelay(n, s)
		if rs < r {
			r = rs
		}
	}
	e.netReq[ni] = r
	if n.Driver.Kind == netlist.KindCell {
		nr := noReq
		if r < nr {
			nr = r
		}
		e.req[n.Driver.Idx] = nr
	}
}

// recomputeReq re-derives the required time of combinational cell v from
// its driven net, updating that net's required along the way — the exact
// per-node body of the full backward pass.
func (e *Engine) recomputeReq(v int32) float64 {
	b := e.b
	dn := e.driverNet[v]
	if dn < 0 {
		return e.period // dangling output: unconstrained
	}
	r := noReq
	n := &b.Nets[dn]
	for _, s := range n.Sinks {
		rs := e.requiredAtSink(s) - e.wireDelay(n, s)
		if rs < r {
			r = rs
		}
	}
	// Mirror the full pass: netReq starts at noReq and takes r when lower;
	// a comb-driven net has exactly one driver, so this write is total.
	nr := noReq
	if r < nr {
		nr = r
	}
	e.netReq[dn] = nr
	return r
}

// update re-propagates the cones around the dirty cells and nets. Arrivals
// flow forward in increasing topological position, required times backward
// in decreasing position, each as a marked sweep over the cached order;
// both cut the cone the moment a recomputed value is exactly unchanged —
// sound because equal inputs reproduce bit-equal outputs under the shared
// per-node arithmetic.
func (e *Engine) update() {
	b := e.b

	// Stage-delay recompute set: every dirty cell, the cell drivers of
	// every dirty net (their load changed), and the cell drivers of the
	// dirty cells' fanin nets (a dirty cell's input cap is part of those
	// nets' pin loads).
	e.delayList = e.delayList[:0]
	addDelay := func(ci int32) {
		if !e.delayMark[ci] {
			e.delayMark[ci] = true
			e.delayList = append(e.delayList, ci)
		}
	}
	for _, ci := range e.dirtyCells {
		addDelay(ci)
		for _, ni := range e.fanin[ci] {
			if d := b.Nets[ni].Driver; d.Kind == netlist.KindCell {
				addDelay(d.Idx)
			}
		}
	}
	for _, ni := range e.dirtyNets {
		if d := b.Nets[ni].Driver; d.Kind == netlist.KindCell {
			addDelay(d.Idx)
		}
	}
	for _, ci := range e.delayList {
		e.cellDelay[ci] = e.computeCellDelay(ci)
	}

	// Endpoint re-slack set: dirty nets (wire delay or port-driver load
	// changed) and the dirty cells' fanin nets (a master swap can move the
	// sink-side constants); nets whose driver arrival changes join below.
	e.endList = e.endList[:0]
	addEnd := func(ni int32) {
		if !e.endMark[ni] {
			e.endMark[ni] = true
			e.endList = append(e.endList, ni)
		}
	}
	for _, ni := range e.dirtyNets {
		addEnd(ni)
	}
	for _, ci := range e.dirtyCells {
		for _, ni := range e.fanin[ci] {
			addEnd(ni)
		}
	}

	// Forward sweep: delay-dirty cells re-derive their own arrival, and
	// every combinational sink of a dirty net re-reads its changed wire
	// delay. Sequential cells have no fanin dependencies and go first;
	// combinational cells are flagged and visited in increasing topological
	// position — re-reading hi each iteration picks up cells flagged
	// mid-sweep (always downstream) — so each visit sees final fanin
	// arrivals, exactly like the full forward pass.
	lo, hi := len(e.order), -1
	e.seqSeeds = e.seqSeeds[:0]
	queueArr := func(ci int32) {
		if e.queued[ci] {
			return
		}
		e.queued[ci] = true
		if p := int(e.pos[ci]); p >= 0 {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		} else {
			e.seqSeeds = append(e.seqSeeds, ci)
		}
	}
	for _, ci := range e.delayList {
		e.delayMark[ci] = false
		queueArr(ci)
	}
	for _, ni := range e.dirtyNets {
		for _, s := range b.Nets[ni].Sinks {
			if s.Kind == netlist.KindCell && !e.isSeq[s.Idx] {
				queueArr(s.Idx)
			}
		}
	}
	// arrChanged fans a changed arrival out: the driven net's endpoints
	// re-slack and its combinational sinks recompute.
	arrChanged := func(v int32) {
		if dn := e.driverNet[v]; dn >= 0 {
			addEnd(dn)
			for _, s := range b.Nets[dn].Sinks {
				if s.Kind == netlist.KindCell && !e.isSeq[s.Idx] {
					queueArr(s.Idx)
				}
			}
		}
	}
	for _, v := range e.seqSeeds {
		e.queued[v] = false
		a := e.cellDelay[v]
		//lint:ignore floatcmp an exactly-unchanged arrival cuts the fanout cone: equal inputs reproduce bit-equal downstream values
		if a == e.arr[v] {
			continue
		}
		e.arr[v] = a
		arrChanged(v)
	}
	for p := lo; p <= hi; p++ {
		v := e.order[p]
		if !e.queued[v] {
			continue
		}
		e.queued[v] = false
		latest := 0.0
		pc := e.pinCap[v]
		for _, ni := range e.fanin[v] {
			av := e.arrAtCellSink(ni, pc)
			if isUnset(av) {
				continue
			}
			if av > latest {
				latest = av
			}
		}
		a := latest + e.cellDelay[v]
		//lint:ignore floatcmp an exactly-unchanged arrival cuts the fanout cone: equal inputs reproduce bit-equal downstream values
		if a == e.arr[v] {
			continue
		}
		e.arr[v] = a
		arrChanged(v)
	}

	// Backward sweep: the drivers of dirty nets and of the delay-dirty
	// cells' fanin nets re-derive their required times, visited in
	// decreasing topological position (re-reading lo picks up cells flagged
	// mid-sweep, always upstream); non-combinational drivers route their
	// nets to the boundary recompute instead.
	e.boundList = e.boundList[:0]
	addBound := func(ni int32) {
		if !e.boundMark[ni] {
			e.boundMark[ni] = true
			e.boundList = append(e.boundList, ni)
		}
	}
	lo, hi = len(e.order), -1
	seedReq := func(ni int32) {
		d := b.Nets[ni].Driver
		if d.Kind == netlist.KindCell && !e.isSeq[d.Idx] {
			if !e.queued[d.Idx] {
				e.queued[d.Idx] = true
				p := int(e.pos[d.Idx])
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		} else if e.isBoundaryNet(ni) {
			addBound(ni)
		}
	}
	for _, ni := range e.dirtyNets {
		seedReq(ni)
	}
	for _, ci := range e.delayList {
		for _, ni := range e.fanin[ci] {
			seedReq(ni)
		}
	}
	e.delayList = e.delayList[:0]
	for p := hi; p >= lo; p-- {
		v := e.order[p]
		if !e.queued[v] {
			continue
		}
		e.queued[v] = false
		r := e.recomputeReq(v)
		//lint:ignore floatcmp an exactly-unchanged required time cuts the fanin cone, mirroring the forward cutoff
		if r == e.req[v] {
			continue
		}
		e.req[v] = r
		for _, ni := range e.fanin[v] {
			seedReq(ni)
		}
	}
	for _, ni := range e.boundList {
		e.boundMark[ni] = false
		e.recomputeBoundary(ni)
	}
	e.boundList = e.boundList[:0]

	// Re-slack the collected endpoints with the final arrivals.
	for _, ni := range e.endList {
		e.endMark[ni] = false
		n := &b.Nets[ni]
		for k := e.netEnd[ni]; k < e.netEnd[ni+1]; k++ {
			e.endSlack[k] = e.endpointSlack(ni, n.Sinks[e.endSink[k]])
		}
	}
	e.endList = e.endList[:0]
}

// finish folds the maintained arrays into the report: endpoint accounting
// over the stored slacks in their discovery order (so WNS comparisons and
// the TNS float summation replay the full pass exactly), then the per-cell
// and per-net slack views.
func (e *Engine) finish() {
	b := e.b
	rep := &e.rep
	rep.CellSlack = grown(rep.CellSlack, e.nc)
	rep.NetSlack = grown(rep.NetSlack, e.nn)
	rep.ArrOut = e.arr
	rep.Endpoints = 0
	rep.Failing = 0
	rep.TNS = 0
	rep.WNS = 1e18
	for _, s := range e.endSlack {
		if isUnset(s) {
			continue // the arrival never materialized; the full pass skips it
		}
		rep.Endpoints++
		if s < 0 {
			rep.Failing++
			rep.TNS += s
		}
		if s < rep.WNS {
			rep.WNS = s
		}
	}
	if rep.Endpoints == 0 {
		rep.WNS = e.period
	}
	for i := 0; i < e.nc; i++ {
		rep.CellSlack[i] = e.req[i] - e.arr[i]
		if isUnset(e.arr[i]) {
			rep.CellSlack[i] = e.period
		}
	}
	for ni := 0; ni < e.nn; ni++ {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			rep.NetSlack[ni] = e.period
			continue
		}
		var a float64
		switch n.Driver.Kind {
		case netlist.KindCell:
			a = e.arr[n.Driver.Idx]
			if isUnset(a) {
				a = 0
			}
		case netlist.KindMacro:
			a = b.Macros[n.Driver.Idx].Model.AccessPS
		case netlist.KindPort:
			a = DefaultPortBudgetFraction * e.period
		}
		rep.NetSlack[ni] = e.netReq[ni] - a
		if noRequired(e.netReq[ni]) {
			rep.NetSlack[ni] = e.period
		}
	}
}
