// Package sta is the static timing analyzer of the flow: a topological
// arrival/required propagation over the block's gate-level netlist with a
// first-order cell delay model (intrinsic + drive resistance times load) and
// Elmore wire delays from the extracted parasitics. It produces endpoint
// slacks, per-cell worst slacks (which the optimizer's sizing and Vth passes
// consume), and the worst/total negative slack figures the flow iterates on.
// The same engine computes the block-I/O timing budgets that the paper
// derives from chip-level 3D STA.
package sta

import (
	"fmt"

	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// Report is the outcome of one timing run.
type Report struct {
	// WNS is the worst negative slack in ps (positive if all paths meet
	// timing).
	WNS float64
	// TNS is the total negative slack in ps (0 if timing is met).
	TNS float64
	// Endpoints is the number of capture points analyzed.
	Endpoints int
	// Failing is the number of endpoints with negative slack.
	Failing int
	// CellSlack[i] is the worst path slack through cell i's output.
	CellSlack []float64
	// NetSlack[i] is the worst slack of any path through net i.
	NetSlack []float64
	// ArrOut[i] is the latest arrival time at cell i's output.
	ArrOut []float64
}

// Met reports whether every endpoint meets timing.
func (r *Report) Met() bool { return r.WNS >= 0 }

// DefaultPortBudgetFraction is the share of the clock period assumed spent
// outside the block when a port has no explicit chip-level budget.
const DefaultPortBudgetFraction = 0.30

// unset marks an arrival time the forward pass has not computed yet; noReq
// marks a required time with no constraining endpoint. Both are assigned
// sentinels — never the result of timing arithmetic — so exact equality is
// the correct membership test for them.
const (
	unset = -1e18
	noReq = 1e18
)

// isUnset reports whether an arrival time still holds the unset sentinel.
func isUnset(a float64) bool {
	//lint:ignore floatcmp unset is an assigned sentinel, never computed; exact equality is the reliable "no arrival yet" test
	return a == unset
}

// noRequired reports whether a required time still holds the noReq sentinel.
func noRequired(r float64) bool {
	//lint:ignore floatcmp noReq is an assigned sentinel, never computed; exact equality is the reliable "unconstrained endpoint" test
	return r == noReq
}

// Analyze runs STA on b. The clock period comes from the block's domain; a
// CTS-computed skew can be passed as uncertainty (subtracted from every
// endpoint's required time).
func Analyze(b *netlist.Block, uncertaintyPS float64) (*Report, error) {
	period := b.Clock.PeriodPS()
	nc := len(b.Cells)

	// driverNet[i] = net driven by cell i (-1 if none, e.g. sink-only DFF
	// feeding only ports is still a driver; unconnected outputs allowed).
	driverNet := make([]int32, nc)
	for i := range driverNet {
		driverNet[i] = -1
	}
	// fanin[i] = signal nets feeding cell i's inputs.
	fanin := make([][]int32, nc)
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		if n.Driver.Kind == netlist.KindCell {
			driverNet[n.Driver.Idx] = int32(ni)
		}
		for _, s := range n.Sinks {
			if s.Kind == netlist.KindCell {
				fanin[s.Idx] = append(fanin[s.Idx], int32(ni))
			}
		}
	}

	// Stage delays. cellDelay[i]: input-to-output delay of cell i driving
	// its net. wireDelay(n, s): net n's Elmore delay to sink s.
	cellDelay := make([]float64, nc)
	for i := range b.Cells {
		m := b.Cells[i].Master
		var load float64
		if dn := driverNet[i]; dn >= 0 {
			wire, pins := totalLoad(b, &b.Nets[dn])
			load = wire + pins
		}
		cellDelay[i] = m.Intr + m.DriveR*load*1e-3 // Ω*fF = 1e-3 ps
		if m.Fam == tech.DFF {
			cellDelay[i] += m.ClkQ
		}
	}

	// Topological order over combinational cells (Kahn). Sequential cells
	// and macros are both launch and capture boundaries, so edges do not
	// propagate through them.
	indeg := make([]int, nc)
	for i := range b.Cells {
		if b.Cells[i].Master.Fam.IsSequential() {
			continue // DFFs launch; their inputs are endpoints
		}
		for _, ni := range fanin[i] {
			n := &b.Nets[ni]
			if n.Driver.Kind == netlist.KindCell && !b.Cells[n.Driver.Idx].Master.Fam.IsSequential() {
				indeg[i]++
			}
		}
	}
	queue := make([]int32, 0, nc)
	for i := 0; i < nc; i++ {
		if !b.Cells[i].Master.Fam.IsSequential() && indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	var order []int32
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if dn := driverNet[v]; dn >= 0 {
			for _, s := range b.Nets[dn].Sinks {
				if s.Kind != netlist.KindCell {
					continue
				}
				u := s.Idx
				if b.Cells[u].Master.Fam.IsSequential() {
					continue
				}
				indeg[u]--
				if indeg[u] == 0 {
					queue = append(queue, u)
				}
			}
		}
	}
	comb := 0
	for i := range b.Cells {
		if !b.Cells[i].Master.Fam.IsSequential() {
			comb++
		}
	}
	if len(order) != comb {
		return nil, fmt.Errorf("sta: block %s has a combinational cycle (%d of %d cells ordered)", b.Name, len(order), comb)
	}

	// Forward: arrival at every cell output.
	arr := make([]float64, nc)
	for i := range arr {
		arr[i] = unset
	}
	// Launch at sequential cells.
	for i := range b.Cells {
		if b.Cells[i].Master.Fam.IsSequential() {
			arr[i] = cellDelay[i] // clock arrival 0 + clk->q (+ load delay)
		}
	}
	// arrAtSink computes the arrival at a sink pin of net ni.
	arrAtSink := func(ni int32, s netlist.PinRef) float64 {
		n := &b.Nets[ni]
		var src float64
		switch n.Driver.Kind {
		case netlist.KindCell:
			src = arr[n.Driver.Idx]
			if isUnset(src) {
				return unset
			}
		case netlist.KindMacro:
			src = b.Macros[n.Driver.Idx].Model.AccessPS
		case netlist.KindPort:
			p := &b.Ports[n.Driver.Idx]
			src = p.Budget
			if src == 0 {
				src = DefaultPortBudgetFraction * period
			}
			// Port driver delay into the net.
			wire, pins := totalLoad(b, n)
			src += b.DriverR(n.Driver) * (wire + pins) * 1e-3
		}
		return src + wireDelay(b, n, s)
	}
	for _, v := range order {
		latest := 0.0
		for _, ni := range fanin[v] {
			a := arrAtSink(ni, netlist.PinRef{Kind: netlist.KindCell, Idx: v})
			if isUnset(a) {
				continue
			}
			if a > latest {
				latest = a
			}
		}
		arr[v] = latest + cellDelay[v]
	}

	// Endpoint slacks and backward required times.
	req := make([]float64, nc)
	for i := range req {
		req[i] = noReq
	}
	rep := &Report{
		CellSlack: make([]float64, nc),
		NetSlack:  make([]float64, len(b.Nets)),
		ArrOut:    arr,
		WNS:       1e18,
	}
	netReq := make([]float64, len(b.Nets))
	for i := range netReq {
		netReq[i] = noReq
	}

	// requiredAtSink returns the required arrival time at a sink pin.
	requiredAtSink := func(s netlist.PinRef) float64 {
		switch s.Kind {
		case netlist.KindCell:
			c := &b.Cells[s.Idx]
			if c.Master.Fam.IsSequential() {
				return period - c.Master.Setup - uncertaintyPS
			}
			return req[s.Idx] - cellDelay[s.Idx]
		case netlist.KindMacro:
			return period - b.Macros[s.Idx].Model.SetupPS - uncertaintyPS
		case netlist.KindPort:
			p := &b.Ports[s.Idx]
			budget := p.Budget
			if budget == 0 {
				budget = DefaultPortBudgetFraction * period
			}
			return period - budget - uncertaintyPS
		}
		return noReq
	}

	// Backward pass in reverse topological order, then sequential drivers.
	addEndpoint := func(slack float64) {
		rep.Endpoints++
		if slack < 0 {
			rep.Failing++
			rep.TNS += slack
		}
		if slack < rep.WNS {
			rep.WNS = slack
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		dn := driverNet[v]
		if dn < 0 {
			req[v] = b.Clock.PeriodPS() // dangling output: unconstrained
			continue
		}
		r := noReq
		n := &b.Nets[dn]
		for _, s := range n.Sinks {
			rs := requiredAtSink(s) - wireDelay(b, n, s)
			if rs < r {
				r = rs
			}
		}
		req[v] = r
		if r < netReq[dn] {
			netReq[dn] = r
		}
	}
	// Sequential and macro/port-driven nets' required times.
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		if n.Driver.Kind == netlist.KindCell && !b.Cells[n.Driver.Idx].Master.Fam.IsSequential() {
			continue
		}
		r := 1e18
		for _, s := range n.Sinks {
			rs := requiredAtSink(s) - wireDelay(b, n, s)
			if rs < r {
				r = rs
			}
		}
		netReq[ni] = r
		if n.Driver.Kind == netlist.KindCell {
			if r < req[n.Driver.Idx] {
				req[n.Driver.Idx] = r
			}
		}
	}

	// Endpoint accounting: every sequential/macro/port sink is an endpoint.
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			continue
		}
		for _, s := range n.Sinks {
			isEnd := false
			switch s.Kind {
			case netlist.KindCell:
				isEnd = b.Cells[s.Idx].Master.Fam.IsSequential()
			case netlist.KindMacro, netlist.KindPort:
				isEnd = true
			}
			if !isEnd {
				continue
			}
			a := arrAtSink(int32(ni), s)
			if isUnset(a) {
				continue
			}
			addEndpoint(requiredAtSink(s) - a)
		}
	}
	if rep.Endpoints == 0 {
		rep.WNS = period
	}

	for i := range b.Cells {
		rep.CellSlack[i] = req[i] - arr[i]
		if isUnset(arr[i]) {
			rep.CellSlack[i] = period
		}
	}
	for ni := range b.Nets {
		n := &b.Nets[ni]
		if n.Kind != netlist.Signal {
			rep.NetSlack[ni] = period
			continue
		}
		var a float64
		switch n.Driver.Kind {
		case netlist.KindCell:
			a = arr[n.Driver.Idx]
			if isUnset(a) {
				a = 0
			}
		case netlist.KindMacro:
			a = b.Macros[n.Driver.Idx].Model.AccessPS
		case netlist.KindPort:
			a = DefaultPortBudgetFraction * period
		}
		rep.NetSlack[ni] = netReq[ni] - a
		if noRequired(netReq[ni]) {
			rep.NetSlack[ni] = period
		}
	}
	return rep, nil
}

// wireDelay returns the Elmore delay in ps from net n's driver to sink s:
// Rdrive couples through the cell delay, so this is the pure interconnect
// term Rwire*(Cwire/2 + Cpin(s)).
func wireDelay(b *netlist.Block, n *netlist.Net, s netlist.PinRef) float64 {
	return n.WireResOhm * (n.WireCapfF/2 + b.PinCap(s)) * 1e-3
}

// totalLoad mirrors extract.TotalLoad without importing it (avoiding a
// dependency cycle): wire cap and summed sink pin cap of n.
func totalLoad(b *netlist.Block, n *netlist.Net) (wirefF, pinfF float64) {
	wirefF = n.WireCapfF
	for _, s := range n.Sinks {
		pinfF += b.PinCap(s)
	}
	return wirefF, pinfF
}
