// Package sta is the static timing analyzer of the flow: a topological
// arrival/required propagation over the block's gate-level netlist with a
// first-order cell delay model (intrinsic + drive resistance times load) and
// Elmore wire delays from the extracted parasitics. It produces endpoint
// slacks, per-cell worst slacks (which the optimizer's sizing and Vth passes
// consume), and the worst/total negative slack figures the flow iterates on.
// The same engine computes the block-I/O timing budgets that the paper
// derives from chip-level 3D STA.
package sta

import (
	"fold3d/internal/netlist"
)

// Report is the outcome of one timing run.
type Report struct {
	// WNS is the worst negative slack in ps (positive if all paths meet
	// timing).
	WNS float64
	// TNS is the total negative slack in ps (0 if timing is met).
	TNS float64
	// Endpoints is the number of capture points analyzed.
	Endpoints int
	// Failing is the number of endpoints with negative slack.
	Failing int
	// CellSlack[i] is the worst path slack through cell i's output.
	CellSlack []float64
	// NetSlack[i] is the worst slack of any path through net i.
	NetSlack []float64
	// ArrOut[i] is the latest arrival time at cell i's output.
	ArrOut []float64
}

// Met reports whether every endpoint meets timing.
func (r *Report) Met() bool { return r.WNS >= 0 }

// DefaultPortBudgetFraction is the share of the clock period assumed spent
// outside the block when a port has no explicit chip-level budget.
const DefaultPortBudgetFraction = 0.30

// unset marks an arrival time the forward pass has not computed yet; noReq
// marks a required time with no constraining endpoint. Both are assigned
// sentinels — never the result of timing arithmetic — so exact equality is
// the correct membership test for them.
const (
	unset = -1e18
	noReq = 1e18
)

// isUnset reports whether an arrival time still holds the unset sentinel.
func isUnset(a float64) bool {
	//lint:ignore floatcmp unset is an assigned sentinel, never computed; exact equality is the reliable "no arrival yet" test
	return a == unset
}

// noRequired reports whether a required time still holds the noReq sentinel.
func noRequired(r float64) bool {
	//lint:ignore floatcmp noReq is an assigned sentinel, never computed; exact equality is the reliable "unconstrained endpoint" test
	return r == noReq
}

// Analyze runs STA on b. The clock period comes from the block's domain; a
// CTS-computed skew can be passed as uncertainty (subtracted from every
// endpoint's required time). It is a one-shot convenience over Engine: a
// fresh engine's full build, discarded afterwards. Loops that analyze the
// same block repeatedly should hold a NewEngine and mark dirty sets
// instead; both paths produce bit-identical reports.
func Analyze(b *netlist.Block, uncertaintyPS float64) (*Report, error) {
	return NewEngine(b).Analyze(uncertaintyPS)
}

// wireDelay returns the Elmore delay in ps from net n's driver to sink s:
// Rdrive couples through the cell delay, so this is the pure interconnect
// term Rwire*(Cwire/2 + Cpin(s)).
func wireDelay(b *netlist.Block, n *netlist.Net, s netlist.PinRef) float64 {
	return n.WireResOhm * (n.WireCapfF/2 + b.PinCap(s)) * 1e-3
}

// totalLoad mirrors extract.TotalLoad without importing it (avoiding a
// dependency cycle): wire cap and summed sink pin cap of n.
func totalLoad(b *netlist.Block, n *netlist.Net) (wirefF, pinfF float64) {
	wirefF = n.WireCapfF
	for _, s := range n.Sinks {
		pinfF += b.PinCap(s)
	}
	return wirefF, pinfF
}
