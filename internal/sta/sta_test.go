package sta

import (
	"math"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// pipeline builds dff -> inv -> inv -> dff with hand-settable parasitics.
func pipeline(t *testing.T) (*netlist.Block, *tech.Library) {
	t.Helper()
	lib := tech.NewLibrary()
	b := netlist.NewBlock("p", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 100, 100)
	ff0 := b.AddCell(netlist.Instance{Name: "ff0", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
	i1 := b.AddCell(netlist.Instance{Name: "i1", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
	i2 := b.AddCell(netlist.Instance{Name: "i2", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
	ff1 := b.AddCell(netlist.Instance{Name: "ff1", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
	b.AddNet(netlist.Net{Name: "n0", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: ff0},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: i1}}})
	b.AddNet(netlist.Net{Name: "n1", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: i1},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: i2}}})
	b.AddNet(netlist.Net{Name: "n2", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: i2},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: ff1}}})
	return b, lib
}

func TestPipelineArithmetic(t *testing.T) {
	b, lib := pipeline(t)
	rep, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: arr(ff0) = clkq + R*(load); loads are pure pin caps here
	// (no extracted wire RC).
	dff := lib.MustCell(tech.DFF, 2, tech.RVT)
	inv := lib.MustCell(tech.INV, 2, tech.RVT)
	a0 := dff.ClkQ + dff.Intr + dff.DriveR*inv.InCapfF*1e-3
	a1 := a0 + inv.Intr + inv.DriveR*inv.InCapfF*1e-3
	a2 := a1 + inv.Intr + inv.DriveR*dff.InCapfF*1e-3
	if math.Abs(rep.ArrOut[1]-a1) > 1e-6 {
		t.Errorf("arr(i1) = %v, want %v", rep.ArrOut[1], a1)
	}
	if math.Abs(rep.ArrOut[2]-a2) > 1e-6 {
		t.Errorf("arr(i2) = %v, want %v", rep.ArrOut[2], a2)
	}
	wantSlack := b.Clock.PeriodPS() - dff.Setup - a2
	if math.Abs(rep.WNS-wantSlack) > 1e-6 {
		t.Errorf("WNS = %v, want %v", rep.WNS, wantSlack)
	}
	if rep.Endpoints != 1 || rep.Failing != 0 {
		t.Errorf("endpoints = %d, failing = %d", rep.Endpoints, rep.Failing)
	}
}

func TestWireDelayCounts(t *testing.T) {
	b, _ := pipeline(t)
	base, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Add wire parasitics to n1: both extra load on i1 and Elmore delay.
	b.Nets[1].WireCapfF = 50
	b.Nets[1].WireResOhm = 200
	loaded, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.WNS >= base.WNS {
		t.Errorf("wire RC did not reduce slack: %v vs %v", loaded.WNS, base.WNS)
	}
}

func TestUncertaintyReducesSlack(t *testing.T) {
	b, _ := pipeline(t)
	r0, _ := Analyze(b, 0)
	r50, _ := Analyze(b, 50)
	if math.Abs((r0.WNS-r50.WNS)-50) > 1e-6 {
		t.Errorf("uncertainty not subtracted: %v vs %v", r0.WNS, r50.WNS)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	lib := tech.NewLibrary()
	b := netlist.NewBlock("c", tech.CPUClock)
	i1 := b.AddCell(netlist.Instance{Name: "i1", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
	i2 := b.AddCell(netlist.Instance{Name: "i2", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
	b.AddNet(netlist.Net{Name: "a", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: i1},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: i2}}})
	b.AddNet(netlist.Net{Name: "b", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: i2},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: i1}}})
	if _, err := Analyze(b, 0); err == nil {
		t.Error("expected combinational cycle error")
	}
}

func TestPortBudgets(t *testing.T) {
	lib := tech.NewLibrary()
	mk := func(budget float64) *Report {
		b := netlist.NewBlock("pb", tech.CPUClock)
		in := b.AddPort(netlist.Port{Name: "in", Dir: netlist.In, CapfF: 2, Budget: budget})
		inv := b.AddCell(netlist.Instance{Name: "i", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
		ff := b.AddCell(netlist.Instance{Name: "f", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
		b.AddNet(netlist.Net{Name: "n0", Driver: netlist.PinRef{Kind: netlist.KindPort, Idx: in},
			Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: inv}}})
		b.AddNet(netlist.Net{Name: "n1", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: inv},
			Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: ff}}})
		rep, err := Analyze(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	loose := mk(300)
	tight := mk(1500)
	if tight.WNS >= loose.WNS {
		t.Errorf("bigger external budget must squeeze the block: %v vs %v", tight.WNS, loose.WNS)
	}
	if math.Abs((loose.WNS-tight.WNS)-1200) > 1e-6 {
		t.Errorf("budget delta not fully reflected: %v", loose.WNS-tight.WNS)
	}
}

func TestOutputPortEndpoint(t *testing.T) {
	lib := tech.NewLibrary()
	b := netlist.NewBlock("op", tech.CPUClock)
	ff := b.AddCell(netlist.Instance{Name: "f", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
	out := b.AddPort(netlist.Port{Name: "out", Dir: netlist.Out, CapfF: 4, Budget: 400})
	b.AddNet(netlist.Net{Name: "n", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: ff},
		Sinks: []netlist.PinRef{{Kind: netlist.KindPort, Idx: out}}})
	rep, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints != 1 {
		t.Fatalf("endpoints = %d", rep.Endpoints)
	}
	dff := lib.MustCell(tech.DFF, 2, tech.RVT)
	arr := dff.ClkQ + dff.Intr + dff.DriveR*4*1e-3
	want := (2000 - 400) - arr
	if math.Abs(rep.WNS-want) > 1e-6 {
		t.Errorf("WNS = %v, want %v", rep.WNS, want)
	}
}

func TestMacroTiming(t *testing.T) {
	lib := tech.NewLibrary()
	b := netlist.NewBlock("m", tech.CPUClock)
	mac := b.AddMacro(netlist.MacroInst{Name: "mem", Model: lib.MacroKB})
	ff := b.AddCell(netlist.Instance{Name: "f", Master: lib.MustCell(tech.DFF, 2, tech.RVT)})
	inv := b.AddCell(netlist.Instance{Name: "i", Master: lib.MustCell(tech.INV, 2, tech.RVT)})
	// Macro output -> inv -> macro input (endpoint) and -> DFF.
	b.AddNet(netlist.Net{Name: "rd", Driver: netlist.PinRef{Kind: netlist.KindMacro, Idx: mac},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: inv}}})
	b.AddNet(netlist.Net{Name: "wr", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: inv},
		Sinks: []netlist.PinRef{{Kind: netlist.KindMacro, Idx: mac, Pin: 7}, {Kind: netlist.KindCell, Idx: ff}}})
	rep, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two endpoints: the macro input and the DFF D pin.
	if rep.Endpoints != 2 {
		t.Errorf("endpoints = %d, want 2", rep.Endpoints)
	}
	// Arrival through the macro must include its access time.
	if rep.ArrOut[1] < lib.MacroKB.AccessPS {
		t.Errorf("macro access time missing from arrival: %v", rep.ArrOut[1])
	}
}

func TestCellSlackOrdering(t *testing.T) {
	b, _ := pipeline(t)
	rep, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell on the single path shares the same worst slack.
	if math.Abs(rep.CellSlack[1]-rep.CellSlack[2]) > 1e-6 {
		t.Errorf("path cells should share slack: %v vs %v", rep.CellSlack[1], rep.CellSlack[2])
	}
	// NetSlack of the mid nets matches too.
	if math.Abs(rep.NetSlack[1]-rep.WNS) > 1e-6 {
		t.Errorf("net slack %v != WNS %v", rep.NetSlack[1], rep.WNS)
	}
}

func TestCriticalPathWalk(t *testing.T) {
	b, _ := pipeline(t)
	rep, err := Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	stages := CriticalPath(b, rep)
	if len(stages) < 3 {
		t.Fatalf("path too short: %d stages", len(stages))
	}
	// Arrivals must be non-decreasing along the reported path.
	for i := 1; i < len(stages); i++ {
		if stages[i].Arrival < stages[i-1].Arrival {
			t.Errorf("arrival decreased along the path at stage %d", i)
		}
	}
	if FormatPath(stages) == "" {
		t.Error("empty path report")
	}
}
