package sta

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// benchBlock builds a synthetic layered pipeline — a launch rank of DFFs,
// stages ranks of NAND2 gates wired to the same column and a neighbor of
// the next rank, and a capture DFF rank — with hand-assigned wire
// parasitics, so the benchmark measures pure STA without an extractor.
func benchBlock(stages, width int) (*netlist.Block, *tech.Library) {
	lib := tech.NewLibrary()
	b := netlist.NewBlock("bench", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 1000, 1000)
	ref := func(ci int32) netlist.PinRef { return netlist.PinRef{Kind: netlist.KindCell, Idx: ci} }
	addNet := func(name string, d int32, sinks ...netlist.PinRef) {
		b.AddNet(netlist.Net{
			Name:       name,
			Kind:       netlist.Signal,
			Driver:     ref(d),
			Sinks:      sinks,
			WireCapfF:  4.5,
			WireResOhm: 180,
		})
	}
	prev := make([]int32, width)
	for i := range prev {
		prev[i] = b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("lff%d", i),
			Master: lib.MustCell(tech.DFF, 2, tech.RVT),
		})
	}
	cur := make([]int32, width)
	for s := 0; s < stages; s++ {
		for i := 0; i < width; i++ {
			cur[i] = b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("g%d_%d", s, i),
				Master: lib.MustCell(tech.NAND2, 2, tech.RVT),
			})
		}
		for i := 0; i < width; i++ {
			addNet(fmt.Sprintf("n%d_%d", s, i), prev[i], ref(cur[i]), ref(cur[(i+1)%width]))
		}
		prev, cur = cur, prev
	}
	for i := 0; i < width; i++ {
		cff := b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("cff%d", i),
			Master: lib.MustCell(tech.DFF, 2, tech.RVT),
		})
		addNet(fmt.Sprintf("cap%d", i), prev[i], netlist.PinRef{Kind: netlist.KindCell, Idx: cff})
	}
	return b, lib
}

// BenchmarkSTAFull is the from-scratch baseline: one complete Analyze —
// adjacency build, levelization, both propagations — per iteration.
func BenchmarkSTAFull(bm *testing.B) {
	b, _ := benchBlock(100, 100)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if _, err := Analyze(b, 0); err != nil {
			bm.Fatal(err)
		}
	}
}

// BenchmarkSTAIncremental measures the optimizer-loop pattern: one cell's
// master swapped per iteration, then a cone-limited re-propagation through
// the persistent engine. Same block, same floats, a fraction of the work.
func BenchmarkSTAIncremental(bm *testing.B) {
	b, lib := benchBlock(100, 100)
	eng := NewEngine(b)
	if _, err := eng.Analyze(0); err != nil {
		bm.Fatal(err)
	}
	hi := lib.MustCell(tech.NAND2, 4, tech.RVT)
	lo := lib.MustCell(tech.NAND2, 2, tech.RVT)
	// A gate halfway down the pipeline: its fanout cone spans half the
	// ranks, a pessimistic stand-in for typical sizing edits.
	ci := int32(len(b.Cells) / 2)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if i%2 == 0 {
			b.Cells[ci].Master = hi
		} else {
			b.Cells[ci].Master = lo
		}
		eng.MarkCellDirty(ci)
		if _, err := eng.Analyze(0); err != nil {
			bm.Fatal(err)
		}
	}
}
