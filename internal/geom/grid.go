package geom

import "fmt"

// Grid is a uniform 2D binning of a region. It is used by the placer for
// supply/demand density maps and by the router for capacity maps.
type Grid struct {
	Region Rect
	NX, NY int
	dx, dy float64
}

// NewGrid partitions region into nx by ny bins. nx and ny must be positive
// and the region must have positive area.
func NewGrid(region Rect, nx, ny int) (*Grid, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("geom: grid dimensions must be positive, got %dx%d", nx, ny)
	}
	if region.W() <= 0 || region.H() <= 0 {
		return nil, fmt.Errorf("geom: grid region must have positive area, got %v", region)
	}
	return &Grid{
		Region: region,
		NX:     nx, NY: ny,
		dx: region.W() / float64(nx),
		dy: region.H() / float64(ny),
	}, nil
}

// BinSize returns the width and height of one bin.
func (g *Grid) BinSize() (float64, float64) { return g.dx, g.dy }

// NumBins returns the total number of bins.
func (g *Grid) NumBins() int { return g.NX * g.NY }

// Index maps bin coordinates to a flat index.
func (g *Grid) Index(ix, iy int) int { return iy*g.NX + ix }

// Coords maps a flat index back to bin coordinates.
func (g *Grid) Coords(i int) (ix, iy int) { return i % g.NX, i / g.NX }

// BinAt returns the bin coordinates containing p, clamped to the grid.
func (g *Grid) BinAt(p Point) (ix, iy int) {
	ix = int((p.X - g.Region.Lo.X) / g.dx)
	iy = int((p.Y - g.Region.Lo.Y) / g.dy)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return ix, iy
}

// BinX returns the x bin index containing coordinate x, clamped to the
// grid — the x half of BinAt, for callers that only need one axis.
func (g *Grid) BinX(x float64) int {
	ix := int((x - g.Region.Lo.X) / g.dx)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	return ix
}

// BinY returns the y bin index containing coordinate y, clamped to the
// grid — the y half of BinAt.
func (g *Grid) BinY(y float64) int {
	iy := int((y - g.Region.Lo.Y) / g.dy)
	if iy < 0 {
		iy = 0
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return iy
}

// BinRect returns the rectangle of bin (ix, iy).
func (g *Grid) BinRect(ix, iy int) Rect {
	x := g.Region.Lo.X + float64(ix)*g.dx
	y := g.Region.Lo.Y + float64(iy)*g.dy
	return RectWH(x, y, g.dx, g.dy)
}

// BinCenter returns the center point of bin (ix, iy).
func (g *Grid) BinCenter(ix, iy int) Point { return g.BinRect(ix, iy).Center() }

// OverlapBins calls fn for every bin overlapping r, passing the bin
// coordinates and the overlap area with that bin.
func (g *Grid) OverlapBins(r Rect, fn func(ix, iy int, area float64)) {
	clip, ok := r.Intersect(g.Region)
	if !ok {
		return
	}
	ix0, iy0 := g.BinAt(clip.Lo)
	// Use a point epsilon inside the high corner so exact-boundary rects do
	// not spill into a nonexistent bin row/column.
	ix1, iy1 := g.BinAt(Point{clip.Hi.X - 1e-12, clip.Hi.Y - 1e-12})
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			if ov, ok := clip.Intersect(g.BinRect(ix, iy)); ok {
				fn(ix, iy, ov.Area())
			}
		}
	}
}
