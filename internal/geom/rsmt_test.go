package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRMSTKnownValues(t *testing.T) {
	// Two points: the Manhattan distance.
	if got := RMST([]Point{{0, 0}, {3, 4}}); got != 7 {
		t.Errorf("RMST 2pt = %v", got)
	}
	// Unit-square corners: three unit edges... rectilinear distances are 1
	// between adjacent corners, so the MST costs 3.
	sq := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if got := RMST(sq); got != 3 {
		t.Errorf("RMST square = %v, want 3", got)
	}
	if RMST(nil) != 0 || RMST([]Point{{1, 1}}) != 0 {
		t.Error("degenerate RMST not zero")
	}
}

func TestRSMTPlusConfiguration(t *testing.T) {
	// The classic 1-Steiner example: four arms of a plus. The RMST costs 6
	// (three length-2 links); one Steiner point at the center gives 4.
	plus := []Point{{1, 0}, {0, 1}, {2, 1}, {1, 2}}
	if got := RMST(plus); got != 6 {
		t.Fatalf("RMST plus = %v, want 6", got)
	}
	if got := RSMT(plus); got != 4 {
		t.Errorf("RSMT plus = %v, want 4 (Steiner point at center)", got)
	}
}

func TestRSMTNeverWorseThanRMST(t *testing.T) {
	f := func(raw []struct{ X, Y float64 }) bool {
		if len(raw) < 2 || len(raw) > 9 {
			return true
		}
		var pts []Point
		for _, r := range raw {
			if math.IsNaN(r.X) || math.IsInf(r.X, 0) || math.Abs(r.X) > 1e6 ||
				math.IsNaN(r.Y) || math.IsInf(r.Y, 0) || math.Abs(r.Y) > 1e6 {
				return true
			}
			pts = append(pts, Point{r.X, r.Y})
		}
		rsmt := RSMT(pts)
		rmst := RMST(pts)
		hpwl := HPWL(pts)
		// Sandwich: HPWL lower-bounds any tree; the Steiner refinement can
		// only improve on the spanning tree.
		return rsmt <= rmst+1e-9 && rsmt >= hpwl-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRSMTLargeNetFallsBack(t *testing.T) {
	var pts []Point
	for i := 0; i < 20; i++ {
		pts = append(pts, Point{float64(i * 3 % 17), float64(i * 7 % 13)})
	}
	if RSMT(pts) != RMST(pts) {
		t.Error("large nets must fall back to the RMST")
	}
}
