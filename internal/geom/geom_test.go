package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if !almostEq(p.Dist(q), 5) {
		t.Errorf("Dist = %v, want 5", p.Dist(q))
	}
	if !almostEq(p.ManhattanDist(q), 7) {
		t.Errorf("ManhattanDist = %v, want 7", p.ManhattanDist(q))
	}
}

func TestManhattanAtLeastEuclidean(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // avoid overflow artifacts; not the property under test
			}
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.ManhattanDist(b) >= a.Dist(b)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Errorf("NewRect did not normalize: %v", r)
	}
	if !almostEq(r.W(), 4) || !almostEq(r.H(), 5) || !almostEq(r.Area(), 20) {
		t.Errorf("dims wrong: W=%v H=%v A=%v", r.W(), r.H(), r.Area())
	}
}

func TestRectWH(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{4, 6}) {
		t.Errorf("RectWH = %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},    // low edge inclusive
		{Point{10, 10}, false}, // high edge exclusive
		{Point{-1, 5}, false},
		{Point{5, 11}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectOverlapsAndIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	c := NewRect(10, 10, 20, 20) // touches at corner: no interior overlap
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("touching rects must not count as overlapping")
	}
	iv, ok := a.Intersect(b)
	if !ok || iv != NewRect(5, 5, 10, 10) {
		t.Errorf("Intersect = %v, %v", iv, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("corner touch must not intersect")
	}
}

func TestIntersectCommutative(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		for _, v := range []float64{x0, y0, x1, y1, x2, y2, x3, y3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := NewRect(x0, y0, x1, y1)
		b := NewRect(x2, y2, x3, y3)
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		return ok1 == ok2 && (!ok1 || i1 == i2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 7, 9)
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("union %v does not contain inputs", u)
	}
}

func TestExpandTranslateClamp(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	e := r.Expand(2)
	if e != NewRect(-2, -2, 12, 12) {
		t.Errorf("Expand = %v", e)
	}
	tr := r.Translate(Point{1, -1})
	if tr != NewRect(1, -1, 11, 9) {
		t.Errorf("Translate = %v", tr)
	}
	if got := r.Clamp(Point{-5, 20}); got != (Point{0, 10}) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{3, 1}, {-1, 4}, {2, 2}}
	bb := BoundingBox(pts)
	if bb != NewRect(-1, 1, 3, 4) {
		t.Errorf("BoundingBox = %v", bb)
	}
}

func TestBoundingBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty point set")
		}
	}()
	BoundingBox(nil)
}

func TestHPWL(t *testing.T) {
	if got := HPWL([]Point{{0, 0}}); got != 0 {
		t.Errorf("single-pin HPWL = %v", got)
	}
	if got := HPWL([]Point{{0, 0}, {3, 4}}); !almostEq(got, 7) {
		t.Errorf("HPWL = %v, want 7", got)
	}
	// Adding a point inside the bbox does not change HPWL.
	if got := HPWL([]Point{{0, 0}, {3, 4}, {1, 1}}); !almostEq(got, 7) {
		t.Errorf("HPWL with interior point = %v, want 7", got)
	}
}

func TestSteinerAtLeastHPWL(t *testing.T) {
	f := func(raw []struct{ X, Y float64 }) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r.X) || math.IsInf(r.X, 0) || math.IsNaN(r.Y) || math.IsInf(r.Y, 0) {
				return true
			}
			pts = append(pts, Point{r.X, r.Y})
		}
		return SteinerWL(pts) >= HPWL(pts)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSteinerEqualsHPWLForSmallNets(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {5, 5}}
	if SteinerWL(pts) != HPWL(pts) {
		t.Error("3-pin nets should use plain HPWL")
	}
	pts = append(pts, Point{2, 8})
	if SteinerWL(pts) <= HPWL(pts) {
		t.Error("4-pin nets should exceed HPWL")
	}
}

func TestGridBasics(t *testing.T) {
	g, err := NewGrid(NewRect(0, 0, 10, 20), 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := g.BinSize()
	if !almostEq(dx, 2) || !almostEq(dy, 5) {
		t.Errorf("BinSize = %v, %v", dx, dy)
	}
	if g.NumBins() != 20 {
		t.Errorf("NumBins = %d", g.NumBins())
	}
	ix, iy := g.BinAt(Point{9.9, 19.9})
	if ix != 4 || iy != 3 {
		t.Errorf("BinAt top corner = %d,%d", ix, iy)
	}
	// Out-of-region points clamp.
	ix, iy = g.BinAt(Point{-5, 100})
	if ix != 0 || iy != 3 {
		t.Errorf("BinAt clamped = %d,%d", ix, iy)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g, _ := NewGrid(NewRect(0, 0, 10, 10), 7, 3)
	for i := 0; i < g.NumBins(); i++ {
		ix, iy := g.Coords(i)
		if g.Index(ix, iy) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(NewRect(0, 0, 10, 10), 0, 5); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewGrid(NewRect(0, 0, 0, 10), 5, 5); err == nil {
		t.Error("expected error for empty region")
	}
}

func TestOverlapBinsConservesArea(t *testing.T) {
	g, _ := NewGrid(NewRect(0, 0, 10, 10), 4, 4)
	r := NewRect(1.3, 2.1, 7.9, 8.4)
	var sum float64
	g.OverlapBins(r, func(ix, iy int, area float64) {
		if area <= 0 {
			t.Errorf("bin (%d,%d) got non-positive area %v", ix, iy, area)
		}
		sum += area
	})
	if !almostEq(sum, r.Area()) {
		t.Errorf("overlap area %v != rect area %v", sum, r.Area())
	}
}

func TestOverlapBinsOutsideRegion(t *testing.T) {
	g, _ := NewGrid(NewRect(0, 0, 10, 10), 4, 4)
	called := false
	g.OverlapBins(NewRect(20, 20, 30, 30), func(ix, iy int, area float64) { called = true })
	if called {
		t.Error("rect outside region must not visit bins")
	}
}

func TestOverlapBinsExactBoundary(t *testing.T) {
	g, _ := NewGrid(NewRect(0, 0, 10, 10), 5, 5)
	// Rect ends exactly on bin boundaries; must not spill beyond.
	var sum float64
	g.OverlapBins(NewRect(2, 2, 6, 6), func(ix, iy int, area float64) {
		if ix < 1 || ix > 2 || iy < 1 || iy > 2 {
			t.Errorf("unexpected bin (%d,%d)", ix, iy)
		}
		sum += area
	})
	if !almostEq(sum, 16) {
		t.Errorf("area = %v, want 16", sum)
	}
}
