package geom

// Rectilinear spanning/Steiner tree estimators. The placement and
// extraction engines mostly use the statistical SteinerWL correction, but
// for small nets an actual tree is cheap and noticeably more accurate: the
// rectilinear MST (Prim) is within 1.5x of the optimal Steiner tree, and
// the classic iterated 1-Steiner refinement (Kahng/Robins) closes most of
// the remaining gap by inserting Hanan-grid points while they help.

// RMST returns the total length of the rectilinear minimum spanning tree
// over pts (Prim's algorithm, O(n²) with Manhattan distances).
func RMST(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = pts[0].ManhattanDist(pts[i])
	}
	inTree[0] = true
	var total float64
	for k := 1; k < n; k++ {
		best, bestD := -1, 0.0
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if best == -1 || dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		total += bestD
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// rsmtMaxPins bounds the iterated-1-Steiner effort; larger nets fall back
// to the statistical estimate in callers.
const rsmtMaxPins = 12

// RSMT returns a rectilinear Steiner tree length for pts: the iterated
// 1-Steiner heuristic over the Hanan grid, seeded with the RMST. For nets
// beyond rsmtMaxPins pins it returns the RMST length unrefined.
func RSMT(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	if n == 2 {
		return pts[0].ManhattanDist(pts[1])
	}
	cur := append([]Point(nil), pts...)
	best := RMST(cur)
	if n > rsmtMaxPins {
		return best
	}
	// Hanan candidates come from the original pins' coordinates only.
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	// Iterate: add the single Hanan point that shrinks the RMST most.
	for iter := 0; iter < n; iter++ {
		bestGain := 1e-9
		var bestPt Point
		found := false
		for _, x := range xs {
			for _, y := range ys {
				cand := Point{x, y}
				trial := RMST(append(cur, cand))
				if gain := best - trial; gain > bestGain {
					bestGain, bestPt, found = gain, cand, true
				}
			}
		}
		if !found {
			break
		}
		cur = append(cur, bestPt)
		best = RMST(cur)
	}
	return best
}
