// Package geom provides the geometric primitives used throughout fold3d:
// points, rectangles, grids, and wirelength estimators. All coordinates are
// in microns unless stated otherwise.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2D location in microns.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ManhattanDist returns the L1 distance between p and q, the natural metric
// for routed wirelength on a Manhattan routing grid.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// String formats the point as (x,y) in µm.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [Lo.X,Hi.X) x [Lo.Y,Hi.Y).
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from any two corner points.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectWH builds a rectangle from its lower-left corner and width/height.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Hi.X - r.Lo.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Hi.Y - r.Lo.Y }

// Area returns the area of r in µm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (half-open on the high edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether s lies fully inside r (closed comparison).
func (r Rect) ContainsRect(s Rect) bool {
	return s.Lo.X >= r.Lo.X && s.Hi.X <= r.Hi.X && s.Lo.Y >= r.Lo.Y && s.Hi.Y <= r.Hi.Y
}

// Overlaps reports whether r and s share any interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X && r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Intersect returns the intersection of r and s; the second result is false
// if they do not overlap.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	lo := Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)}
	hi := Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)}
	if lo.X >= hi.X || lo.Y >= hi.Y {
		return Rect{}, false
	}
	return Rect{lo, hi}, true
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Expand returns r grown by d on all four sides (shrunk if d < 0).
func (r Rect) Expand(d float64) Rect {
	return Rect{Point{r.Lo.X - d, r.Lo.Y - d}, Point{r.Hi.X + d, r.Hi.Y + d}}
}

// Translate returns r moved by dp.
func (r Rect) Translate(dp Point) Rect {
	return Rect{r.Lo.Add(dp), r.Hi.Add(dp)}
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		math.Min(math.Max(p.X, r.Lo.X), r.Hi.X),
		math.Min(math.Max(p.Y, r.Lo.Y), r.Hi.Y),
	}
}

// String formats the rectangle as [lo hi].
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

// BoundingBox returns the bounding box of pts. It panics on an empty slice.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		//lint:ignore apiguard empty input is a documented precondition violation, not a recoverable condition
		panic("geom: BoundingBox of empty point set")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}

// HPWL returns the half-perimeter wirelength of the points, the standard
// placement estimator for the routed length of a single net.
func HPWL(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	bb := BoundingBox(pts)
	return bb.W() + bb.H()
}

// SteinerWL estimates routed wirelength with the FLUTE-style correction
// factor applied to HPWL: multi-pin nets route longer than their bounding
// box half-perimeter. The factor follows the common empirical model
// HPWL * (1 + 0.28*ln(n/2)) for n > 3 pins (Chu's RSMT/HPWL ratio fit).
func SteinerWL(pts []Point) float64 {
	n := len(pts)
	h := HPWL(pts)
	if n <= 3 {
		return h
	}
	return h * (1 + 0.28*math.Log(float64(n)/2))
}
