package flow

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/floorplan"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
	"fold3d/internal/pool"
	"fold3d/internal/power"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
)

// ChipStats aggregates the full-chip metrics of the paper's Tables 2 and 5.
type ChipStats struct {
	// FootprintUm2 is the drawn die-outline area (one die of a stack).
	FootprintUm2 float64
	// FootprintMM2 is the physical-equivalent footprint in mm².
	FootprintMM2 float64
	// WirelengthUm is the total drawn wirelength (blocks + chip nets).
	WirelengthUm float64
	// WirelengthM is the physical-equivalent wirelength in meters.
	WirelengthM float64
	NumCells    int
	NumBuffers  int
	NumHVT      int
	// TSVInter is the physical inter-block TSV count (TSV arrays).
	TSVInter int
	// ViasIntraDrawn is the drawn intra-block 3D connection count (TSVs or
	// F2F vias, depending on the bonding style).
	ViasIntraDrawn int
	// ViasPaperEquiv estimates the physical 3D connection count:
	// inter-block TSVs plus intra-block vias scaled by sqrt(scale).
	ViasPaperEquiv int
	// ChipRepeaters is the drawn-equivalent repeater count on inter-block
	// nets.
	ChipRepeaters int
}

// ChipResult is one full-chip implementation.
type ChipResult struct {
	Style    t2.Style
	FP       *floorplan.Floorplan
	Blocks   map[string]*BlockResult
	ChipNets []floorplan.ChipNet
	Stats    ChipStats
	Power    power.Report
	// ChipNetPower is the inter-block portion included in Power.
	ChipNetPower power.Report
}

// BuildChip implements the full T2 in the given design style. The flow's
// bonding configuration is overridden by the style for folded designs
// (StyleFoldF2F forces F2F). It is BuildChipContext under
// context.Background().
func (f *Flow) BuildChip(style t2.Style) (*ChipResult, error) {
	return f.BuildChipContext(context.Background(), style)
}

// BuildChipContext is BuildChip honoring ctx: per-block implementation
// fans out across Cfg.Workers goroutines (0 = GOMAXPROCS, 1 = exact
// sequential legacy path), cancellation is checked between stages of every
// block, and Cfg.Progress receives live status. The result is byte-
// identical for every worker count: each block draws randomness from its
// own seeded stream and the aggregation reduces in sorted block-name
// order, so the merge never depends on completion order.
func (f *Flow) BuildChipContext(ctx context.Context, style t2.Style) (*ChipResult, error) {
	cfg := f.Cfg
	switch style {
	case t2.StyleFoldF2F:
		cfg.Bond = extract.F2F
	case t2.StyleFoldF2B, t2.StyleCoreCache, t2.StyleCoreCore:
		cfg.Bond = extract.F2B
	}
	fl := New(f.D, cfg)
	return fl.buildChip(ctx, style)
}

// chipState carries one full-chip build through its stage plan: folding,
// floorplanning, block implementation, chip-net extraction, aggregation.
// Like implState, its stage* methods are registered into a pipeline.Plan
// and invoked only by the executor; the chip plan itself runs uncached (its
// own work is cheap), while the per-block plans inside stageImplement carry
// the artifact cache.
type chipState struct {
	f     *Flow
	style t2.Style

	names []string // sorted block names — the deterministic iteration order
	fp    *floorplan.Floorplan
	res   *ChipResult
}

func (f *Flow) buildChip(ctx context.Context, style t2.Style) (*ChipResult, error) {
	d := f.D
	if len(d.Blocks) != len(d.Specs) {
		return nil, fmt.Errorf("flow: chip build needs the full design (have %d of %d blocks); generate without Only",
			len(d.Blocks), len(d.Specs))
	}
	st := &chipState{f: f, style: style}
	for name := range d.Blocks {
		st.names = append(st.names, name)
	}
	sort.Strings(st.names)

	p := pipeline.NewPlan("chip:" + style.String())
	// Chip stages run uncached, so no Key material is declared: the block
	// plans inside stageImplement fingerprint everything that matters.
	p.MustAdd(pipeline.Stage{Name: "fold", Run: st.stageFold})
	p.MustAdd(pipeline.Stage{Name: "floorplan", After: []string{"fold"}, Run: st.stageFloorplan})
	p.MustAdd(pipeline.Stage{Name: "implement", After: []string{"floorplan"}, Run: st.stageImplement})
	p.MustAdd(pipeline.Stage{Name: "chip-nets", After: []string{"implement"}, Run: st.stageChipNets})
	p.MustAdd(pipeline.Stage{Name: "aggregate", After: []string{"chip-nets"}, Run: st.stageAggregate})

	var ex pipeline.Executor
	if err := ex.Run(ctx, p, nil); err != nil {
		return nil, err
	}
	return st.res, nil
}

// stageFold folds the folded blocks first (partitioning needs no geometry),
// then derives every block's shape from its actual content so the fixed
// floorplan shapes and the block implementations agree by construction.
func (st *chipState) stageFold(ctx context.Context) error {
	f, d, style := st.f, st.f.D, st.style
	for i, name := range st.names {
		if err := pool.Canceled(ctx); err != nil {
			return err
		}
		b := d.Blocks[name]
		if t2.FoldedInStyle(style, name) {
			if _, err := core.Fold(b, f.foldOptionsFor(name)); err != nil {
				return fmt.Errorf("flow: folding %s: %w", name, err)
			}
		}
		f.progress(StageFold, name, i+1, len(st.names))
	}
	return nil
}

// stageFloorplan runs the user-defined row plan (the paper's Figure 8
// arrangements), plans inter-block TSV arrays for die-crossing bundles (F2B
// stacks), fixes block outlines and ports from the floorplan, and computes
// chip-level net geometry with the port timing budgets it implies — the
// paper derives block I/O constraints from chip-level 3D STA (§2.2): a
// port's budget is the cycle time spent outside the block, so the shorter
// inter-block wires of 3D stacks hand every block more internal slack,
// which the optimizer converts to smaller and higher-Vth cells.
func (st *chipState) stageFloorplan(ctx context.Context) error {
	f, d, style := st.f, st.f.D, st.style
	shapes := make(map[string]floorplan.Shape, len(d.Specs))
	for _, name := range st.names {
		b := d.Blocks[name]
		r := f.ShapeForBlock(b, d.Specs[name].Aspect)
		shapes[name] = floorplan.Shape{Name: name, W: r.W(), H: r.H(),
			Both: t2.FoldedInStyle(style, name)}
	}
	fp, err := floorplan.RowPlan(shapes, t2.Rows(style), f.chipChannel())
	if err != nil {
		return fmt.Errorf("flow: %s floorplan: %v", style, err)
	}
	st.fp = fp

	if style.Is3D() {
		tsvOpt := place.DefaultTSVPlanOptions(d.Cfg.Scale)
		err := floorplan.PlanInterblockTSVs(fp, d.Bundles,
			floorplan.PlanTSVArrayOptions{PitchDrawn: tsvOpt.DrawnPitch()})
		if err != nil {
			return fmt.Errorf("flow: TSV arrays: %v", err)
		}
	}

	for name, b := range d.Blocks {
		p, err := fp.Find(name)
		if err != nil {
			return err
		}
		local := geom.NewRect(0, 0, p.Rect.W(), p.Rect.H())
		b.Outline[0] = local
		if p.Both {
			b.Outline[1] = local
		}
	}
	chipNets, err := floorplan.AssignPorts(d.Blocks, fp, d.DrawnBundles())
	if err != nil {
		return fmt.Errorf("flow: port assignment: %v", err)
	}
	if err := d.ConnectPorts(chipNets); err != nil {
		return err
	}
	// Folded blocks' ports follow the crossbar half / FUB they connect to.
	for _, name := range st.names {
		if t2.FoldedInStyle(style, name) {
			core.MovePortsWithLogic(d.Blocks[name])
		}
	}

	if err := f.routeChipNets(fp, chipNets, style); err != nil {
		return err
	}
	f.budgetPorts(chipNets)
	st.res = &ChipResult{
		Style:    style,
		FP:       fp,
		Blocks:   make(map[string]*BlockResult, len(d.Blocks)),
		ChipNets: chipNets,
	}
	f.progress(StageFloorplan, "", 1, 1)
	return nil
}

// stageImplement implements every block. The fan-out across Cfg.Workers is
// safe and bit-reproducible by construction: blocks are disjoint netlists,
// every shared input (design database, library, extractor config) is read-
// only during this stage, each block's stochastic engines are seeded from
// the flow seed independently of scheduling, and the merge below writes
// into per-index slots before the sorted-name reduce — so Workers=1 and
// Workers=N produce byte-identical chips. Each block runs its own stage
// plan against the shared artifact cache (Cfg.Cache), so a block whose
// input state matches a previous build — the same style rebuilt in another
// experiment, or an unfolded block whose geometry agrees across styles —
// restores instead of recomputing.
func (st *chipState) stageImplement(ctx context.Context) error {
	f, d := st.f, st.f.D
	names := st.names
	results := make([]*BlockResult, len(names))
	var doneMu sync.Mutex
	done := 0
	err := pool.Run(ctx, f.Cfg.Workers, len(names), func(ctx context.Context, i int) error {
		name := names[i]
		br, err := f.ImplementBlockContext(ctx, d.Blocks[name], d.Specs[name].Aspect)
		if err != nil {
			return fmt.Errorf("flow: implementing %s: %w", name, err)
		}
		results[i] = br
		doneMu.Lock()
		done++
		n := done
		doneMu.Unlock()
		f.progress(StageImplement, name, n, len(names))
		return nil
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		st.res.Blocks[name] = results[i]
	}
	return nil
}

// stageChipNets computes chip-level net lengths, power and repeaters.
func (st *chipState) stageChipNets(ctx context.Context) error {
	if err := st.f.extractChipNets(st.res, st.style); err != nil {
		return err
	}
	st.f.progress(StageChipNets, "", 1, 1)
	return nil
}

// stageAggregate fills the chip-level stats and power totals.
func (st *chipState) stageAggregate(ctx context.Context) error {
	st.f.aggregate(st.res)
	st.f.progress(StageDone, "", len(st.names), len(st.names))
	return nil
}

// foldOptionsFor picks the paper's fold mode per block type: the CCX folds
// naturally into PCX/CPX, the SPC gets second-level FUB folding, everything
// else is min-cut.
func (f *Flow) foldOptionsFor(name string) core.FoldOptions {
	fo := core.DefaultFoldOptions()
	fo.Seed = f.Cfg.Seed + 101
	switch {
	case name == "CCX":
		fo.Mode = core.FoldNatural
		fo.GroupDie = map[string]int{"pcx": 0, "cpx": 1}
	case len(name) >= 3 && name[:3] == "L2D":
		// Two memory sub-banks per die with their logic (paper §4.4).
		fo.Mode = core.FoldNatural
		fo.GroupDie = map[string]int{"bank0": 0, "bank1": 0, "bank2": 1, "bank3": 1}
	case len(name) >= 3 && name[:3] == "SPC":
		fo.Mode = core.FoldSecondLevel
		var groups []string
		for _, g := range t2.SPCFUBs() {
			if g.Fold {
				groups = append(groups, g.Name)
			}
		}
		fo.FoldGroups = groups
	}
	return fo
}

// chipChannel is the drawn routing-channel width between blocks.
func (f *Flow) chipChannel() float64 {
	// ~120µm physical channels, shrunk geometrically.
	return math.Max(3.0, 70/f.D.Scale.LinearShrink())
}

// chipRepeaterSpacingPhys is the physical repeater spacing on the top-metal
// chip routes, µm.
const chipRepeaterSpacingPhys = 420.0

// routeChipNets fills per-wire drawn lengths, crossings and wire caps for
// the inter-block nets, routing die-crossing wires through their bundle's
// TSV array under F2B.
func (f *Flow) routeChipNets(fp *floorplan.Floorplan, chipNets []floorplan.ChipNet, style t2.Style) error {
	d := f.D
	arrayOf := make(map[string]geom.Point)
	for _, a := range fp.Arrays {
		arrayOf[a.Bundle] = a.Rect.Center()
	}
	topLayer := d.Lib.Metal[8] // M9
	cwPhys := topLayer.CfFUm
	shrink := d.Scale.LinearShrink()

	for i := range chipNets {
		cn := &chipNets[i]
		pa, err := fp.Find(cn.A.Block)
		if err != nil {
			return err
		}
		pb, err := fp.Find(cn.B.Block)
		if err != nil {
			return err
		}
		var posA, posB geom.Point
		var dieA, dieB netlist.Die
		if cn.A.Port >= 0 {
			p := d.Blocks[cn.A.Block].Ports[cn.A.Port]
			posA = p.Pos.Add(pa.Rect.Lo)
			dieA = p.Die
		} else {
			posA = pa.Rect.Center()
			dieA = pa.Die
		}
		if cn.B.Port >= 0 {
			p := d.Blocks[cn.B.Block].Ports[cn.B.Port]
			posB = p.Pos.Add(pb.Rect.Lo)
			dieB = p.Die
		} else {
			posB = pb.Rect.Center()
			dieB = pb.Die
		}
		// Non-folded blocks live wholly on their floorplan die.
		if !pa.Both {
			dieA = pa.Die
		}
		if !pb.Both {
			dieB = pb.Die
		}

		ln := posA.ManhattanDist(posB)
		crossing := style.Is3D() && dieA != dieB
		viaCap := 0.0
		cn.Crossings = 0
		if crossing {
			if f.Cfg.Bond == extract.F2F {
				viaCap = d.Lib.F2F.CfF
			} else {
				viaCap = d.Lib.TSV.CfF
				if ap, ok := arrayOf[cn.Bundle]; ok {
					ln = posA.ManhattanDist(ap) + ap.ManhattanDist(posB)
				}
			}
			cn.Crossings = 1
		}
		cn.RouteLen = ln
		cn.WireCapfF = ln*shrink*cwPhys + viaCap
	}
	return nil
}

// chipWireDelayPSPerUm is the delay of a chip-level top-metal route per
// physical µm. Only M8/M9 remain for over-the-block routing (§2.2), so chip
// routes are congested and detoured well beyond the optimally-repeatered
// ideal (~0.16 ps/µm); 0.30 ps/µm reflects sign-off numbers for congested
// 28nm global routing.
const chipWireDelayPSPerUm = 0.30

// budgetPorts sets every port's timing budget from its chip net's physical
// route: half the buffered inter-block wire delay is charged to each end,
// on top of a fixed chip-level margin. Shorter 3D chip routes therefore
// loosen every block's internal timing — the paper's source of extra slack.
func (f *Flow) budgetPorts(chipNets []floorplan.ChipNet) {
	d := f.D
	for i := range chipNets {
		cn := &chipNets[i]
		physLen := cn.RouteLen * d.Scale.LinearShrink()
		delay := physLen * chipWireDelayPSPerUm
		if cn.Crossings > 0 && f.Cfg.Bond == extract.F2B {
			delay += d.Lib.TSV.ROhm*d.Lib.TSV.CfF*1e-3 + 12 // TSV + pad buffering
		}
		for _, pr := range []floorplan.PortRef{cn.A, cn.B} {
			if pr.Port < 0 {
				continue
			}
			b := d.Blocks[pr.Block]
			period := b.Clock.PeriodPS()
			budget := 0.10*period + 0.5*delay // fixed chip margin + wire share
			// Feasibility clamp: the chip-level STA would never hand a block
			// less than ~half the period — past that the inter-block path
			// must be pipelined, not squeezed out of the block.
			if budget > 0.45*period {
				budget = 0.45 * period
			}
			b.Ports[pr.Port].Budget = budget
		}
	}
}

// extractChipNets computes the real-equivalent power of the inter-block
// nets and their repeater population from the routed geometry.
func (f *Flow) extractChipNets(res *ChipResult, style t2.Style) error {
	d := f.D
	ps := d.PortScale() // physical wires per drawn wire
	buf := d.Lib.MustCell(tech.BUF, 8, tech.RVT)
	var netP power.Report
	totalRepeaters := 0.0

	for i := range res.ChipNets {
		cn := &res.ChipNets[i]
		physLen := cn.RouteLen * d.Scale.LinearShrink()
		freq := tech.CPUClock.FreqMHz()
		if spec, ok := d.Specs[cn.A.Block]; ok && spec.Clock == tech.IOClock {
			freq = tech.IOClock.FreqMHz()
		}
		act := cn.Activity
		if act == 0 {
			act = 0.12
		}
		netP.WireMW += tech.DynamicPowerMW(cn.WireCapfF, act, freq) * ps

		// Repeaters: one per physical spacing on each of the ps physical
		// wires; normalized to drawn-equivalent units (divide by scale).
		reps := physLen / chipRepeaterSpacingPhys * ps / d.Cfg.Scale
		totalRepeaters += reps
		// Repeater power at physical magnitude: drawn-equivalents x scale.
		nRealReps := reps * d.Cfg.Scale
		netP.CellMW += tech.DynamicPowerMW(buf.IntCap, act, freq) * nRealReps
		netP.LeakageMW += buf.LeaknW * 1e-6 * nRealReps
		netP.PinMW += tech.DynamicPowerMW(buf.InCapfF, act, freq) * nRealReps
	}
	netP.NetMW = netP.WireMW + netP.PinMW
	netP.TotalMW = netP.CellMW + netP.NetMW + netP.LeakageMW
	res.ChipNetPower = netP
	res.Stats.ChipRepeaters = int(totalRepeaters)
	_ = style
	return nil
}

// aggregate fills the chip-level stats and power totals.
func (f *Flow) aggregate(res *ChipResult) {
	s := &res.Stats
	s.FootprintUm2 = res.FP.Outline.Area()
	s.FootprintMM2 = s.FootprintUm2 * f.D.Cfg.Scale / 1e6
	// Sorted iteration: float += is not associative, so summing in map
	// order would vary the totals' last bits run to run.
	names := make([]string, 0, len(res.Blocks))
	for name := range res.Blocks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br := res.Blocks[name]
		s.WirelengthUm += br.Stats.Wirelength
		s.NumCells += br.Stats.NumCells
		s.NumBuffers += br.Stats.NumBuffers
		rvt, hvt := netlist.CountVth(br.Block)
		_ = rvt
		s.NumHVT += hvt
		s.ViasIntraDrawn += br.Stats.NumTSV + br.Stats.NumF2F
		res.Power.Add(br.Power)
	}
	for i := range res.ChipNets {
		s.WirelengthUm += res.ChipNets[i].RouteLen
	}
	s.NumCells += s.ChipRepeaters
	s.NumBuffers += s.ChipRepeaters
	s.TSVInter = res.FP.NumTSV()
	s.ViasPaperEquiv = s.TSVInter + int(float64(s.ViasIntraDrawn)*f.D.PortScale())
	// Physical wirelength: drawn length x sqrt(scale), in meters.
	s.WirelengthM = s.WirelengthUm * f.D.Scale.LinearShrink() * 1e-6
	res.Power.Add(res.ChipNetPower)
}
