package flow

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"fold3d/internal/cts"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/pipeline"
	"fold3d/internal/power"
	"fold3d/internal/sta"
	"fold3d/internal/tech"
)

// blockArtifact is the cacheable result of one block implementation: the
// fully implemented netlist plus every figure the experiments report. A
// restored artifact is byte-identical to recomputation (TestCacheEquivalence
// pins this down), so the cache is free to substitute it anywhere.
type blockArtifact struct {
	Block   *netlist.Block
	Stats   netlist.Stats
	Power   power.Report
	Timing  *sta.Report
	CTS     *cts.Result
	Reps    int
	Swapped int
}

// CloneArtifact deep-copies the artifact: the block via netlist.Clone, the
// timing report's slices explicitly, the CTS result by value. Nothing
// mutable is shared with the receiver.
func (a *blockArtifact) CloneArtifact() pipeline.Artifact {
	c := &blockArtifact{
		Block:   a.Block.Clone(),
		Stats:   a.Stats,
		Power:   a.Power,
		Reps:    a.Reps,
		Swapped: a.Swapped,
	}
	if a.Timing != nil {
		t := *a.Timing
		t.CellSlack = append([]float64(nil), a.Timing.CellSlack...)
		t.NetSlack = append([]float64(nil), a.Timing.NetSlack...)
		t.ArrOut = append([]float64(nil), a.Timing.ArrOut...)
		c.Timing = &t
	}
	if a.CTS != nil {
		v := *a.CTS
		c.CTS = &v
	}
	return c
}

// ApproxBytes reports the artifact's rough in-memory footprint for the
// cache's MaxBytes budget (pipeline.Sizer). Dominated by the netlist; the
// per-element constants are struct sizes rounded up to cover the slice
// headers, sink slices and name strings hanging off each record.
func (a *blockArtifact) ApproxBytes() int64 {
	var n int64
	if b := a.Block; b != nil {
		const (
			cellBytes  = 128 // Instance + name string + sink refs amortized
			netBytes   = 160 // Net + sinks slice + name
			macroBytes = 96
			portBytes  = 64
		)
		n += int64(len(b.Cells))*cellBytes +
			int64(len(b.Nets))*netBytes +
			int64(len(b.Macros))*macroBytes +
			int64(len(b.Ports))*portBytes +
			int64(len(b.TSVPads))*32
	}
	if a.Timing != nil {
		n += int64(len(a.Timing.CellSlack)+len(a.Timing.NetSlack)+len(a.Timing.ArrOut)) * 8
	}
	return n + 1024
}

// result converts the artifact into the BlockResult the flow returns,
// installing the implemented netlist into live (the caller's block pointer
// stays valid — content replacement, like the rest of the flow mutates
// blocks in place).
func (a *blockArtifact) result(live *netlist.Block) *BlockResult {
	*live = *a.Block
	return &BlockResult{
		Block:             live,
		Stats:             a.Stats,
		Power:             a.Power,
		Timing:            a.Timing,
		CTS:               a.CTS,
		RepeatersInserted: a.Reps,
		HVTSwapped:        a.Swapped,
	}
}

// reinternMasters rewrites every cell's Master pointer to the canonical
// *tech.Cell of lib, looked up by (family, drive, Vth) identity. Artifacts
// captured under one design database (or decoded from disk) would otherwise
// carry master pointers from a foreign library instance; the flow relies on
// master pointer identity within one design. A master missing from lib
// means the artifact belongs to an incompatible library generation.
func reinternMasters(b *netlist.Block, lib *tech.Library) error {
	for i := range b.Cells {
		m := b.Cells[i].Master
		c, err := lib.Cell(m.Fam, m.Drive, m.Vth)
		if err != nil {
			return fmt.Errorf("flow: cached block %s: %v", b.Name, err)
		}
		b.Cells[i].Master = c
	}
	return nil
}

// Wire forms for the gob disk codec. Instance.Master is a pointer into the
// shared cell library; on the wire it becomes the (family, drive, Vth) key
// and the decoder re-interns it against the live library. Everything else
// is exported value data and gob-encodes directly.
type wireInstance struct {
	Name       string
	Fam        int
	Drive      int
	Vth        int
	Pos        geom.Point
	Die        netlist.Die
	Fixed      bool
	Group      string
	IsClockBuf bool
	Activity   float64
}

type wireBlock struct {
	Name          string
	Clock         tech.ClockDomain
	Cells         []wireInstance
	Macros        []netlist.MacroInst
	Ports         []netlist.Port
	Nets          []netlist.Net
	Outline       [2]geom.Rect
	Is3D          bool
	NumTSV        int
	NumF2F        int
	TSVPads       []geom.Rect
	MaxRouteLayer int
}

type wireArtifact struct {
	Block   wireBlock
	Stats   netlist.Stats
	Power   power.Report
	Timing  *sta.Report
	CTS     *cts.Result
	Reps    int
	Swapped int
}

// blockCodecVersion versions the wire layout above; bump on any field
// change so older spill files miss cleanly instead of mis-decoding.
const blockCodecVersion = 1

// blockCodec returns the disk codec for block artifacts, bound to the
// flow's library for master re-interning on decode.
func (f *Flow) blockCodec() *pipeline.Codec {
	lib := f.D.Lib
	return &pipeline.Codec{
		Kind:    "block",
		Version: blockCodecVersion,
		Encode: func(a pipeline.Artifact) ([]byte, error) {
			art, ok := a.(*blockArtifact)
			if !ok {
				return nil, fmt.Errorf("flow: encoding %T, want *blockArtifact", a)
			}
			b := art.Block
			w := wireArtifact{
				Block: wireBlock{
					Name:          b.Name,
					Clock:         b.Clock,
					Cells:         make([]wireInstance, len(b.Cells)),
					Macros:        b.Macros,
					Ports:         b.Ports,
					Nets:          b.Nets,
					Outline:       b.Outline,
					Is3D:          b.Is3D,
					NumTSV:        b.NumTSV,
					NumF2F:        b.NumF2F,
					TSVPads:       b.TSVPads,
					MaxRouteLayer: b.MaxRouteLayer,
				},
				Stats:   art.Stats,
				Power:   art.Power,
				Timing:  art.Timing,
				CTS:     art.CTS,
				Reps:    art.Reps,
				Swapped: art.Swapped,
			}
			for i := range b.Cells {
				c := &b.Cells[i]
				w.Block.Cells[i] = wireInstance{
					Name:       c.Name,
					Fam:        int(c.Master.Fam),
					Drive:      c.Master.Drive,
					Vth:        int(c.Master.Vth),
					Pos:        c.Pos,
					Die:        c.Die,
					Fixed:      c.Fixed,
					Group:      c.Group,
					IsClockBuf: c.IsClockBuf,
					Activity:   c.Activity,
				}
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Decode: func(data []byte) (pipeline.Artifact, error) {
			var w wireArtifact
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
				return nil, err
			}
			b := &netlist.Block{
				Name:          w.Block.Name,
				Clock:         w.Block.Clock,
				Cells:         make([]netlist.Instance, len(w.Block.Cells)),
				Macros:        w.Block.Macros,
				Ports:         w.Block.Ports,
				Nets:          w.Block.Nets,
				Outline:       w.Block.Outline,
				Is3D:          w.Block.Is3D,
				NumTSV:        w.Block.NumTSV,
				NumF2F:        w.Block.NumF2F,
				TSVPads:       w.Block.TSVPads,
				MaxRouteLayer: w.Block.MaxRouteLayer,
			}
			for i := range w.Block.Cells {
				c := &w.Block.Cells[i]
				master, err := lib.Cell(tech.Family(c.Fam), c.Drive, tech.VthClass(c.Vth))
				if err != nil {
					return nil, err
				}
				b.Cells[i] = netlist.Instance{
					Name:       c.Name,
					Master:     master,
					Pos:        c.Pos,
					Die:        c.Die,
					Fixed:      c.Fixed,
					Group:      c.Group,
					IsClockBuf: c.IsClockBuf,
					Activity:   c.Activity,
				}
			}
			return &blockArtifact{
				Block:   b,
				Stats:   w.Stats,
				Power:   w.Power,
				Timing:  w.Timing,
				CTS:     w.CTS,
				Reps:    w.Reps,
				Swapped: w.Swapped,
			}, nil
		},
	}
}

// artifactSpec wires the block artifact into the pipeline executor: capture
// hands the live result to the cache (which deep-clones it), restore
// re-interns masters against this design's library and installs the cached
// implementation into the live block.
func (st *implState) artifactSpec() *pipeline.ArtifactSpec {
	return &pipeline.ArtifactSpec{
		Codec: st.f.blockCodec(),
		Capture: func() (pipeline.Artifact, error) {
			r := st.res
			return &blockArtifact{
				Block:   r.Block,
				Stats:   r.Stats,
				Power:   r.Power,
				Timing:  r.Timing,
				CTS:     r.CTS,
				Reps:    r.RepeatersInserted,
				Swapped: r.HVTSwapped,
			}, nil
		},
		Restore: func(a pipeline.Artifact) error {
			art, ok := a.(*blockArtifact)
			if !ok {
				return fmt.Errorf("flow: cache returned %T, want *blockArtifact", a)
			}
			if err := reinternMasters(art.Block, st.f.D.Lib); err != nil {
				return err
			}
			st.res = art.result(st.b)
			return nil
		},
	}
}
