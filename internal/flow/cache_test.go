package flow

import (
	"testing"

	"fold3d/internal/pipeline"
	"fold3d/internal/t2"
)

// TestCacheEquivalence is the cache-hit-equals-recompute property test
// behind the artifact cache: for every design style and several seeds, a
// warm-cache BuildChip must produce a fingerprint byte-identical to a cold
// build, at worker counts 1 and N. The warm runs rebuild the design from
// scratch (fresh netlists, fresh library instances), so this also covers
// the master re-interning path a cross-design cache hit takes. check.sh
// re-runs this under -race: a data race in the shared cache would
// masquerade as a fingerprint diff or corrupt a restored artifact.
func TestCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("many full-chip builds")
	}
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore,
		t2.StyleFoldF2B, t2.StyleFoldF2F}
	seeds := []uint64{42, 43, 44}
	for _, style := range styles {
		for _, seed := range seeds {
			style, seed := style, seed
			t.Run(style.String()+"/"+string(rune('0'+seed-40)), func(t *testing.T) {
				cold := chipFingerprint(t, style, seed, 1)

				cache := pipeline.NewCache(pipeline.CacheOptions{})
				withCache := func(c *Config) { c.Cache = cache }
				populate := chipFingerprintCfg(t, style, seed, 1, withCache)
				if populate != cold {
					t.Fatalf("cold build with cache attached diverged from uncached build:\n%s",
						firstDiff(populate, cold))
				}
				if st := cache.Stats(); st.Stores == 0 {
					t.Fatalf("cold build stored nothing: %+v", st)
				}

				warm1 := chipFingerprintCfg(t, style, seed, 1, withCache)
				if warm1 != cold {
					t.Fatalf("warm build (workers=1) diverged from cold build:\n%s",
						firstDiff(warm1, cold))
				}
				warmN := chipFingerprintCfg(t, style, seed, 4, withCache)
				if warmN != cold {
					t.Fatalf("warm build (workers=4) diverged from cold build:\n%s",
						firstDiff(warmN, cold))
				}
				if st := cache.Stats(); st.Hits == 0 {
					t.Fatalf("warm builds never hit the cache: %+v", st)
				}
			})
		}
	}
}

// TestCacheDiskEquivalence covers the on-disk spill end to end: a cold
// build spills to disk, a fresh in-memory cache over the same directory
// restores from it (gob decode + master re-interning), and the result is
// byte-identical.
func TestCacheDiskEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-chip builds")
	}
	dir := t.TempDir()
	cold := chipFingerprintCfg(t, t2.StyleFoldF2F, 42, 1, func(c *Config) {
		c.Cache = pipeline.NewCache(pipeline.CacheOptions{Dir: dir})
	})

	fresh := pipeline.NewCache(pipeline.CacheOptions{Dir: dir})
	warm := chipFingerprintCfg(t, t2.StyleFoldF2F, 42, 1, func(c *Config) {
		c.Cache = fresh
	})
	if warm != cold {
		t.Fatalf("disk-restored build diverged:\n%s", firstDiff(warm, cold))
	}
	st := fresh.Stats()
	if st.DiskHits == 0 {
		t.Fatalf("no disk hits: %+v", st)
	}
	if st.Corrupt != 0 {
		t.Fatalf("corrupt entries during round trip: %+v", st)
	}
}

// TestCacheCrossStyleReuse pins down the reuse matrix claim (DESIGN.md
// §11): rebuilding the same style against a shared cache restores every
// block, and the restored chip is fingerprint-identical — the mechanism
// behind exp.RunAll's shared cache win.
func TestCacheCrossStyleReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	cache := pipeline.NewCache(pipeline.CacheOptions{})
	withCache := func(c *Config) { c.Cache = cache }
	a := chipFingerprintCfg(t, t2.Style2D, 42, 1, withCache)
	stores := cache.Stats().Stores

	b := chipFingerprintCfg(t, t2.Style2D, 42, 1, withCache)
	if a != b {
		t.Fatalf("same-style rebuild diverged:\n%s", firstDiff(a, b))
	}
	st := cache.Stats()
	if st.Stores != stores {
		t.Errorf("same-style rebuild recomputed %d blocks; want all restored", st.Stores-stores)
	}
	if st.Hits != stores {
		t.Errorf("hits = %d, want one per block (%d)", st.Hits, stores)
	}
}
