package flow

import (
	"testing"

	"fold3d/internal/t2"
)

// buildStyle builds a full chip in the given style at the test scale.
func buildStyle(t *testing.T, style t2.Style, hvt bool) *ChipResult {
	t.Helper()
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.UseHVT = hvt
	fl := New(d, cfg)
	r, err := fl.BuildChip(style)
	if err != nil {
		t.Fatalf("BuildChip(%s): %v", style, err)
	}
	return r
}

func TestBuildChip2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip build")
	}
	r := buildStyle(t, t2.Style2D, false)
	if len(r.Blocks) != 46 {
		t.Fatalf("blocks = %d", len(r.Blocks))
	}
	if r.Stats.TSVInter != 0 || r.Stats.ViasIntraDrawn != 0 {
		t.Error("2D chip must have no 3D vias")
	}
	if r.Stats.FootprintMM2 <= 0 || r.Power.TotalMW <= 0 {
		t.Error("degenerate chip stats")
	}
	if len(r.ChipNets) == 0 {
		t.Fatal("no chip-level nets")
	}
	for i := range r.ChipNets {
		cn := &r.ChipNets[i]
		if cn.A.Port >= 0 && cn.B.Port >= 0 && cn.RouteLen <= 0 {
			t.Fatalf("chip net %d has no route", i)
		}
		if cn.Crossings != 0 {
			t.Error("2D chip nets cannot cross dies")
		}
	}
}

func TestBuildChipCoreCacheVs2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip build")
	}
	r2 := buildStyle(t, t2.Style2D, false)
	r3 := buildStyle(t, t2.StyleCoreCache, false)
	// Paper Table 2 shape: the stack halves the footprint (~-46%) and saves
	// wirelength and power.
	fpPct := r3.Stats.FootprintMM2 / r2.Stats.FootprintMM2
	if fpPct > 0.62 || fpPct < 0.40 {
		t.Errorf("3D footprint ratio = %.2f, want ~0.54", fpPct)
	}
	if r3.Stats.WirelengthM >= r2.Stats.WirelengthM {
		t.Error("3D stacking must reduce total wirelength")
	}
	if r3.Power.TotalMW >= r2.Power.TotalMW {
		t.Error("3D stacking must reduce total power")
	}
	if r3.Stats.TSVInter == 0 {
		t.Error("core/cache stacking needs inter-block TSVs")
	}
}

func TestBuildChipFoldedStyles(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip build")
	}
	r2 := buildStyle(t, t2.Style2D, false)
	rb := buildStyle(t, t2.StyleFoldF2B, false)
	rf := buildStyle(t, t2.StyleFoldF2F, false)

	// Folded blocks occupy both dies.
	for _, name := range []string{"SPC0", "CCX", "L2D0", "L2T0", "MAC"} {
		b := rb.Blocks[name].Block
		if !b.Is3D {
			t.Errorf("%s not folded in fold style", name)
		}
	}
	if rb.Blocks["NCU"].Block.Is3D {
		t.Error("NCU must not fold")
	}
	// F2B folding uses TSVs, F2F uses F2F vias.
	if rb.Blocks["L2T0"].Block.NumTSV == 0 || rb.Blocks["L2T0"].Block.NumF2F != 0 {
		t.Error("fold-F2B via bookkeeping wrong")
	}
	if rf.Blocks["L2T0"].Block.NumF2F == 0 || rf.Blocks["L2T0"].Block.NumTSV != 0 {
		t.Error("fold-F2F via bookkeeping wrong")
	}
	// The paper's headline: folding with F2F beats everything on power.
	if rf.Power.TotalMW >= r2.Power.TotalMW {
		t.Error("fold-F2F must beat 2D on power")
	}
	if rf.Power.TotalMW >= rb.Power.TotalMW {
		t.Error("F2F bonding must beat F2B for the folded chip (paper §5-6)")
	}
	// SPC second-level folding happened: FUBs split across dies.
	spc := rf.Blocks["SPC0"].Block
	split := map[string][2]int{}
	for i := range spc.Cells {
		s := split[spc.Cells[i].Group]
		s[spc.Cells[i].Die]++
		split[spc.Cells[i].Group] = s
	}
	folded := 0
	for _, g := range t2.SPCFUBs() {
		if g.Fold {
			s := split[g.Name]
			if s[0] > 0 && s[1] > 0 {
				folded++
			}
		}
	}
	if folded < 5 {
		t.Errorf("only %d of 6 FUBs split across dies", folded)
	}
}

func TestBuildChipDualVthBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip build")
	}
	rvt := buildStyle(t, t2.StyleFoldF2F, false)
	dvt := buildStyle(t, t2.StyleFoldF2F, true)
	if dvt.Power.TotalMW >= rvt.Power.TotalMW {
		t.Error("dual-Vth must reduce power")
	}
	if dvt.Stats.NumHVT == 0 {
		t.Error("no HVT cells in the DVT build")
	}
	if dvt.Power.LeakageMW >= rvt.Power.LeakageMW {
		t.Error("dual-Vth must reduce leakage")
	}
}

func TestBuildChipNeedsFullDesign(t *testing.T) {
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: 42, Only: []string{"CCX"}})
	if err != nil {
		t.Fatal(err)
	}
	fl := New(d, DefaultConfig())
	if _, err := fl.BuildChip(t2.Style2D); err == nil {
		t.Error("expected error for partial design")
	}
}
