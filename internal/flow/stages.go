package flow

import (
	"context"
	"fmt"

	"fold3d/internal/cts"
	"fold3d/internal/extract"
	"fold3d/internal/netlist"
	"fold3d/internal/opt"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
	"fold3d/internal/power"
	"fold3d/internal/route"
	"fold3d/internal/sta"
)

// implState carries one block implementation through its stage plan. Every
// phase of the old monolithic ImplementBlock/finishBlock is a stage* method
// here; the methods are registered into a pipeline.Plan and invoked only by
// the pipeline executor (the fold3dlint PipelineOnly rule rejects direct
// stage-to-stage calls), so the dependency structure of the flow is explicit
// and the artifact cache can fingerprint exactly what each stage reads.
type implState struct {
	f      *Flow
	b      *netlist.Block
	aspect float64

	// Cross-stage engine state, created by the owning stage and consumed
	// downstream strictly through the plan's dependency edges. placer is
	// whichever registered backend the flow's Cfg.Placer resolved to; the
	// downstream stages only ever re-legalize through it.
	placer  place.Backend
	o       *opt.Optimizer
	ctsRes  *cts.Result
	reps    int
	swapped int
	timing  *sta.Report

	res *BlockResult
}

// blockPlan builds the stage DAG of one block implementation. The stage
// bodies preserve the exact operation order of the pre-pipeline flow —
// identical RNG draws, identical float accumulation — so fingerprints and
// the EXPERIMENTS.md numbers are unchanged; only the orchestration moved.
//
// The plan input is the content hash of the block as handed to the flow
// (netlist, outline, ports with their chip-assigned budgets, fold state)
// plus the seed and scale; each stage keys the configuration slice it
// reads. Identical inputs therefore hit the cache across styles and
// experiments whenever the work truly is identical — an unfolded block
// whose floorplan geometry and port budgets agree — and miss whenever any
// input honestly differs.
func (st *implState) blockPlan() *pipeline.Plan {
	f, b := st.f, st.b
	p := pipeline.NewPlan("block:" + b.Name)

	in := pipeline.NewHasher()
	in.F64(f.D.Cfg.Scale)
	in.Uint(f.Cfg.Seed)
	in.F64(st.aspect)
	hashBlock(in, b)
	p.SetInput(in.Sum())

	p.MustAdd(pipeline.Stage{
		Name: "prepare",
		Key: func(h *pipeline.Hasher) {
			h.F64(f.Cfg.Util)
			h.F64(f.Cfg.BufferAllowance)
			h.F64(f.Cfg.MacroChannel)
			h.Int(int(f.Cfg.Bond))
		},
		Run: st.stagePrepare,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "place",
		After: []string{"prepare"},
		Key: func(h *pipeline.Hasher) {
			// place.Options is a flat value struct (no maps), so %#v is a
			// deterministic rendering of every field including Seed.
			h.Str(fmt.Sprintf("%#v", f.placeOptions()))
			// Cache-key discipline across backends: the default force
			// backend keeps the exact pre-registry key bytes, so artifacts
			// cached before the backend axis existed stay valid; every
			// other backend appends its registry name, so no two backends
			// can ever alias each other's place-stage artifacts — in this
			// process, on disk, or across fleet peers.
			if f.Cfg.Placer != place.DefaultBackend {
				h.Str("placer=" + f.Cfg.Placer)
			}
		},
		Run: st.stagePlace,
	})
	prev := "place"
	if b.Is3D {
		p.MustAdd(pipeline.Stage{
			Name:  "vias",
			After: []string{"place"},
			Key:   func(h *pipeline.Hasher) { h.Int(int(f.Cfg.Bond)) },
			Run:   st.stageVias,
		})
		prev = "vias"
	}
	p.MustAdd(pipeline.Stage{
		Name:  "extract",
		After: []string{prev},
		Key: func(h *pipeline.Hasher) {
			h.Int(int(f.Cfg.Bond))
			h.Bool(f.Cfg.TSVCoupling)
			h.Bool(f.Cfg.UseRSMT)
		},
		Run: st.stageExtract,
	})
	prev = "extract"
	if f.Cfg.Thermal.Enable && b.Is3D && f.Cfg.Bond == extract.F2B {
		// Thermal-via planning needs the F2B TSV site grid and an extracted
		// netlist; it mutates geometry, so it must precede buffering. The
		// full thermal config is the stage key — any knob change honestly
		// misses the cache — and with Enable false the stage is simply not
		// registered, so thermal-off plans fingerprint byte-identically to
		// pre-thermal builds.
		p.MustAdd(pipeline.Stage{
			Name:  "thermal-vias",
			After: []string{"extract"},
			Key:   func(h *pipeline.Hasher) { h.Str(fmt.Sprintf("%#v", f.Cfg.Thermal)) },
			Run:   st.stageThermalVias,
		})
		prev = "thermal-vias"
	}
	p.MustAdd(pipeline.Stage{
		Name:  "buffer",
		After: []string{prev},
		Key:   func(h *pipeline.Hasher) { h.Str(fmt.Sprintf("%#v", f.Cfg.Opt)) },
		Run:   st.stageBuffer,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "cts",
		After: []string{"buffer"},
		Key:   func(h *pipeline.Hasher) { h.Str(fmt.Sprintf("%#v", f.Cfg.CTS)) },
		Run:   st.stageCTS,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "legalize",
		After: []string{"cts"},
		Run:   st.stageLegalize,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "timing-opt",
		After: []string{"legalize"},
		Run:   st.stageTimingOpt,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "power-opt",
		After: []string{"timing-opt"},
		Run:   st.stagePowerOpt,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "vth",
		After: []string{"power-opt"},
		Key:   func(h *pipeline.Hasher) { h.Bool(f.Cfg.UseHVT) },
		Run:   st.stageVth,
	})
	p.MustAdd(pipeline.Stage{
		Name:  "final",
		After: []string{"vth"},
		Key:   func(h *pipeline.Hasher) { h.Bool(f.Cfg.Opt.FullRecompute) },
		Run:   st.stageFinal,
	})
	return p
}

// stagePrepare sizes the block outline (2D: single die; 3D: per-die with
// TSV-pad allowance under F2B), fixes the routing-layer ceiling for F2F,
// and rescales the ports into the outline.
func (st *implState) stagePrepare(ctx context.Context) error {
	f, b := st.f, st.b
	if b.Is3D {
		// Under F2F bonding every metal layer is consumed by the block itself
		// (F2F vias sit on top of M9), so the block may route all nine layers
		// but becomes an over-the-block routing blockage at chip level (§6.1).
		if f.Cfg.Bond == extract.F2F {
			b.MaxRouteLayer = 9
		}
		if err := f.prepareOutline3D(b, st.aspect, f.tsvPadAllowance(b)); err != nil {
			return err
		}
	} else {
		if err := f.prepareOutline2D(b, st.aspect); err != nil {
			return err
		}
	}
	normalizePorts(b)
	return nil
}

// stagePlace runs mixed-size global placement and legalization. The placer
// is kept for downstream legalization passes (it owns the row model).
func (st *implState) stagePlace(ctx context.Context) error {
	placer, err := st.f.getPlacer()
	if err != nil {
		return err
	}
	st.placer = placer
	if err := st.placer.Place(st.b); err != nil {
		if st.b.Is3D {
			return fmt.Errorf("flow: 3D placing %s: %v", st.b.Name, err)
		}
		return fmt.Errorf("flow: placing %s: %v", st.b.Name, err)
	}
	return nil
}

// stageVias inserts the intra-block 3D connections of a folded block:
//
//	F2B: plan TSV sites (outside macros) and re-legalize — pads claim
//	     placement area, so overlapping cells are evicted.
//	F2F: run the paper's F2F via placer (3D net routing over the merged
//	     dies, §5.1); F2F vias consume no silicon, so no re-legalization.
func (st *implState) stageVias(ctx context.Context) error {
	f, b := st.f, st.b
	switch f.Cfg.Bond {
	case extract.F2B:
		tsvOpt := place.DefaultTSVPlanOptions(f.D.Cfg.Scale)
		if err := place.PlanTSVs(b, tsvOpt); err != nil {
			return fmt.Errorf("flow: TSV planning %s: %v", b.Name, err)
		}
		if err := st.placer.LegalizeAll(b); err != nil {
			return fmt.Errorf("flow: post-TSV legalization of %s: %v", b.Name, err)
		}
	case extract.F2F:
		if _, err := route.PlaceF2FVias(b, route.DefaultOptions()); err != nil {
			return fmt.Errorf("flow: F2F via placement on %s: %v", b.Name, err)
		}
	}
	return nil
}

// stageExtract runs parasitic extraction over the placed netlist.
func (st *implState) stageExtract(ctx context.Context) error {
	return st.f.Ex.Extract(st.b)
}

// stageBuffer creates the optimizer with its area budget (per-die for
// folded blocks — a die overflows individually) and inserts data-path
// repeaters on long, overloaded or high-fanout nets.
func (st *implState) stageBuffer(ctx context.Context) error {
	f, b := st.f, st.b
	optCfg := f.Cfg.Opt
	if b.Is3D {
		optCfg.AreaBudgetDie = f.repeaterBudgetPerDie(b)
	} else {
		optCfg.AreaBudget = f.repeaterBudget(b)
	}
	st.o = f.getOptimizer(optCfg)

	f.trace(b, "placed")
	reps, err := st.o.BufferLongNets(b)
	if err != nil {
		return fmt.Errorf("flow: buffering %s: %v", b.Name, err)
	}
	st.reps = reps
	f.trace(b, "buffered")
	return nil
}

// stageCTS synthesizes the clock tree; the measured skew becomes the STA
// uncertainty of every later timing run.
func (st *implState) stageCTS(ctx context.Context) error {
	f, b := st.f, st.b
	ctsRes, err := cts.Run(b, f.D.Lib, f.D.Scale, f.Cfg.CTS)
	if err != nil {
		return fmt.Errorf("flow: CTS on %s: %v", b.Name, err)
	}
	st.ctsRes = ctsRes
	st.o.Skew = ctsRes.SkewPS
	return nil
}

// stageLegalize legalizes the repeaters and clock buffers that were dropped
// at ideal locations, re-extracts, and invalidates the optimizer's cached
// timing (CTS and legalization edited the block outside its mark API).
func (st *implState) stageLegalize(ctx context.Context) error {
	f, b := st.f, st.b
	if err := st.placer.LegalizeAll(b); err != nil {
		return fmt.Errorf("flow: post-CTS legalization of %s: %v", b.Name, err)
	}
	if err := f.Ex.Extract(b); err != nil {
		return err
	}
	st.o.InvalidateTiming()
	f.trace(b, "cts+legal")
	return nil
}

// stageTimingOpt closes setup timing by upsizing and splitting.
func (st *implState) stageTimingOpt(ctx context.Context) error {
	f, b := st.f, st.b
	if _, err := st.o.FixTiming(b); err != nil {
		return fmt.Errorf("flow: timing opt on %s: %v", b.Name, err)
	}
	f.trace(b, "timing-opt")
	return nil
}

// stagePowerOpt recovers power from positive slack. Two-tier slack
// allocation: downsizing stops at its guard-banded floor (DownsizeMargin),
// which deliberately strands slack that the cheaper Vth swaps then convert
// to leakage savings down to the tighter SlackMargin — mirroring how
// sign-off flows stage sizing and multi-Vth optimization.
func (st *implState) stagePowerOpt(ctx context.Context) error {
	f, b := st.f, st.b
	if _, err := st.o.RecoverPower(b); err != nil {
		return fmt.Errorf("flow: power opt on %s: %v", b.Name, err)
	}
	f.trace(b, "power-opt")
	return nil
}

// stageVth runs the dual-Vth pass (paper §6.2) when the style enables it.
func (st *implState) stageVth(ctx context.Context) error {
	f, b := st.f, st.b
	if !f.Cfg.UseHVT {
		return nil
	}
	swapped, err := st.o.SwapToHVT(b)
	if err != nil {
		return fmt.Errorf("flow: Vth opt on %s: %v", b.Name, err)
	}
	st.swapped = swapped
	f.trace(b, "vth-opt")
	return nil
}

// stageFinal runs the sign-off analysis and assembles the BlockResult. The
// optimizer passes flush extraction after every geometry change, so
// parasitics are already current here and the final timing runs through the
// incremental engine. FullRecompute mode replays the historical
// full-extract + from-scratch STA instead; both produce byte-identical
// results (the fingerprint-equivalence test pins this down).
func (st *implState) stageFinal(ctx context.Context) error {
	f, b := st.f, st.b
	if f.Cfg.Opt.FullRecompute {
		if err := f.Ex.Extract(b); err != nil {
			return err
		}
	}
	timing, err := st.o.Timing(b)
	if err != nil {
		return fmt.Errorf("flow: final STA on %s: %v", b.Name, err)
	}
	// The engine's report aliases its internal arrays; copy it so recycling
	// the optimizer for the next block cannot mutate this block's sign-off
	// numbers after the fact.
	t := *timing
	t.CellSlack = append([]float64(nil), timing.CellSlack...)
	t.NetSlack = append([]float64(nil), timing.NetSlack...)
	t.ArrOut = append([]float64(nil), timing.ArrOut...)
	timing = &t
	st.timing = timing
	st.res = &BlockResult{
		Block:             b,
		Stats:             netlist.CollectStats(b, f.D.Scale.LongWireThreshold()),
		Power:             power.Analyze(b, f.D.Scale),
		Timing:            timing,
		CTS:               st.ctsRes,
		RepeatersInserted: st.reps,
		HVTSwapped:        st.swapped,
	}
	return nil
}

// hashBlock mixes the complete pre-implementation state of b into h: the
// netlist (cells by master identity, macros, nets with connectivity and
// activity), the I/O ports with their chip-assigned positions and timing
// budgets, the outline, and the fold state. This is the honest input
// fingerprint of a block implementation: two blocks hash equal exactly when
// the flow would be handed indistinguishable work. Floats are mixed by bit
// pattern, never formatted.
func hashBlock(h *pipeline.Hasher, b *netlist.Block) {
	h.Str(b.Name)
	h.Int(int(b.Clock))
	h.Int(len(b.Cells))
	for i := range b.Cells {
		c := &b.Cells[i]
		h.Str(c.Name)
		h.Int(int(c.Master.Fam))
		h.Int(c.Master.Drive)
		h.Int(int(c.Master.Vth))
		h.F64(c.Pos.X)
		h.F64(c.Pos.Y)
		h.Int(int(c.Die))
		h.Bool(c.Fixed)
		h.Str(c.Group)
		h.Bool(c.IsClockBuf)
		h.F64(c.Activity)
	}
	h.Int(len(b.Macros))
	for i := range b.Macros {
		m := &b.Macros[i]
		h.Str(m.Name)
		h.Str(m.Model.Name)
		h.F64(m.Model.Width)
		h.F64(m.Model.Height)
		h.Int(m.Model.Bits)
		h.F64(m.Pos.X)
		h.F64(m.Pos.Y)
		h.Int(int(m.Die))
		h.Bool(m.Fixed)
		h.Str(m.Group)
		h.F64(m.Activity)
	}
	h.Int(len(b.Ports))
	for i := range b.Ports {
		p := &b.Ports[i]
		h.Str(p.Name)
		h.Int(int(p.Dir))
		h.F64(p.Pos.X)
		h.F64(p.Pos.Y)
		h.Int(int(p.Die))
		h.F64(p.CapfF)
		h.F64(p.Budget)
	}
	h.Int(len(b.Nets))
	for i := range b.Nets {
		n := &b.Nets[i]
		h.Str(n.Name)
		h.Int(int(n.Kind))
		hashPin(h, n.Driver)
		h.Int(len(n.Sinks))
		for _, s := range n.Sinks {
			hashPin(h, s)
		}
		h.F64(n.Activity)
		h.F64(n.RouteLen)
		h.Int(n.Layer)
		h.Int(n.Crossings)
		h.Int(len(n.Vias))
		for _, v := range n.Vias {
			h.F64(v.X)
			h.F64(v.Y)
		}
		h.F64(n.WireCapfF)
		h.F64(n.WireResOhm)
	}
	for d := 0; d < 2; d++ {
		h.F64(b.Outline[d].Lo.X)
		h.F64(b.Outline[d].Lo.Y)
		h.F64(b.Outline[d].Hi.X)
		h.F64(b.Outline[d].Hi.Y)
	}
	h.Bool(b.Is3D)
	h.Int(b.NumTSV)
	h.Int(b.NumF2F)
	h.Int(len(b.TSVPads))
	for _, r := range b.TSVPads {
		h.F64(r.Lo.X)
		h.F64(r.Lo.Y)
		h.F64(r.Hi.X)
		h.F64(r.Hi.Y)
	}
	h.Int(b.MaxRouteLayer)
}

func hashPin(h *pipeline.Hasher, r netlist.PinRef) {
	h.Int(int(r.Kind))
	h.Int(int(r.Idx))
	h.Int(int(r.Pin))
}
