// Package flow is the RTL-to-GDSII-like implementation engine: it drives a
// block (or the whole chip) through outline sizing, macro placement, mixed-
// size placement, clock tree synthesis, repeater insertion, timing and power
// optimization, parasitic extraction, STA and power analysis — the same
// stages the paper runs in its commercial-tool flow (§2.2) — for every
// design style the paper compares: 2D, 3D floorplanned (F2B), and folded
// blocks under F2B or F2F bonding, with RVT-only or dual-Vth libraries.
package flow

import (
	"context"
	"fmt"
	"io"
	"sync"

	"fold3d/internal/cts"
	"fold3d/internal/extract"
	"fold3d/internal/netlist"
	"fold3d/internal/opt"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"

	// Register the analytical bistratal backend into the place registry so
	// every flow consumer (experiments, jobs, the daemons) can select it by
	// name. The force backend registers from within internal/place itself.
	_ "fold3d/internal/place/analytical"
	"fold3d/internal/power"
	"fold3d/internal/sta"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
	"fold3d/internal/thermal"
)

// Progress is one live status event of a chip or block build. Events fire
// as work completes; under a parallel build their order across blocks is
// scheduler-dependent (they report status, never results — results merge
// deterministically regardless).
type Progress struct {
	// Stage names the build phase: "fold", "floorplan", "implement",
	// "chip-nets" or "done".
	Stage string
	// Block is the block just processed (empty for chip-level stages).
	Block string
	// Done and Total count finished vs scheduled units in this stage.
	Done, Total int
	// Experiment names the harness-level run this event belongs to. A flow
	// never sets it — within one flow there is nothing to distinguish — but
	// multiplexers that drive several flows through one callback (exp.RunAll,
	// the fold3dd job event stream) tag each event with its source here.
	Experiment string
}

// Stage names reported through Config.Progress.
const (
	StageFold      = "fold"
	StageFloorplan = "floorplan"
	StageImplement = "implement"
	StageChipNets  = "chip-nets"
	StageDone      = "done"
)

// Config selects the design style and effort.
type Config struct {
	// Bond is the bonding style for 3D connections (extract.F2B/F2F).
	Bond extract.Bonding
	// UseHVT enables the dual-Vth power pass (paper §6.2).
	UseHVT bool
	// Util is the placement target utilization used for outline sizing.
	Util float64
	// BufferAllowance reserves outline area for repeaters and clock buffers.
	BufferAllowance float64
	// MacroChannel is the routing-channel fraction around macros.
	MacroChannel float64
	// TSVCoupling enables the TSV-to-wire coupling capacitance model
	// (paper §7 future work) during extraction of F2B designs.
	TSVCoupling bool
	// UseRSMT switches extraction to real rectilinear Steiner trees for
	// small nets (slower, more accurate).
	UseRSMT bool
	// Placer names the registered placement backend driving the place
	// stage: "force" (the paper's iterative placer, the default) or
	// "analytical" (the Nesterov bistratal placer). Empty selects
	// place.DefaultBackend. An unknown name fails the first block's place
	// stage with an error wrapping errs.ErrBadOptions naming the valid
	// backends; validate up front with place.ValidateBackend to fail
	// before any work starts.
	Placer string
	// Thermal configures the in-loop thermal planning stage: multigrid
	// temperature prediction plus greedy thermal-via insertion on folded F2B
	// blocks (DESIGN.md §17). The zero value (Enable false) registers no
	// stage and keeps every fingerprint byte-identical to a thermal-unaware
	// flow.
	Thermal ThermalConfig
	// Place, Opt and CTS tune the engines.
	Place place.Options
	Opt   opt.Options
	CTS   cts.Options
	Seed  uint64
	// Workers bounds the chip-build fan-out: 0 selects GOMAXPROCS, 1 is the
	// exact sequential legacy path, N>1 implements up to N blocks
	// concurrently. Results are bit-identical for every value (each block
	// draws from its own seeded RNG stream and the reduce runs in sorted
	// block-name order), so Workers trades wall-clock only.
	Workers int
	// Progress, when non-nil, receives live status events (blocks done /
	// total, current stage). Callbacks are serialized — they never run
	// concurrently — but under a parallel build their order across blocks
	// is scheduler-dependent.
	Progress func(Progress)
	// Trace, when non-nil, receives per-stage progress lines (stage name,
	// block, WNS) — the flow's equivalent of a tool log. Writes are
	// serialized under the flow's mutex, so any io.Writer works.
	Trace io.Writer
	// Cache, when non-nil, is the content-addressed artifact cache consulted
	// per block implementation: a block whose complete input state (netlist,
	// outline, ports and budgets, seed, configuration) fingerprints equal to
	// a previous build restores that build's result instead of recomputing —
	// byte-identically, so results never depend on cache temperature. Share
	// one cache across flows (it is safe for concurrent use) to reuse work
	// across styles and experiments; see pipeline.NewCache.
	Cache *pipeline.Cache
}

// WithDefaults fills every unset (zero) field of c from DefaultConfig,
// field by field — a partial Config keeps what it sets. Fields whose zero
// value is meaningful and equal to the default (Bond: F2B, UseHVT: false,
// TSVCoupling, UseRSMT, Workers: 0 = GOMAXPROCS) pass through unchanged.
func (c Config) WithDefaults() Config {
	def := DefaultConfig()
	if c.Util <= 0 {
		c.Util = def.Util
	}
	if c.BufferAllowance <= 0 {
		c.BufferAllowance = def.BufferAllowance
	}
	if c.MacroChannel <= 0 {
		c.MacroChannel = def.MacroChannel
	}
	if c.Placer == "" {
		c.Placer = def.Placer
	}
	if c.Place == (place.Options{}) {
		c.Place = def.Place
	}
	if c.Opt == (opt.Options{}) {
		c.Opt = def.Opt
	}
	if c.CTS == (cts.Options{}) {
		c.CTS = def.CTS
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.Thermal.Enable {
		if c.Thermal.Params == (thermal.Params{}) {
			c.Thermal.Params = thermal.DefaultParams()
		}
		if c.Thermal.ViaBudget == 0 {
			c.Thermal.ViaBudget = DefaultThermalViaBudget
		}
	}
	return c
}

// DefaultConfig returns the flow defaults used across the experiments.
func DefaultConfig() Config {
	return Config{
		Bond:            extract.F2B,
		Placer:          place.DefaultBackend,
		Util:            0.66,
		BufferAllowance: 1.10,
		MacroChannel:    0.22,
		Place:           place.DefaultOptions(),
		Opt:             opt.DefaultOptions(),
		CTS:             cts.DefaultOptions(),
		Seed:            17,
	}
}

// Flow binds a design database to a configuration.
type Flow struct {
	D   *t2.Design
	Cfg Config
	Ex  *extract.Extractor
	// mu serializes Trace writes and Progress callbacks across the chip
	// build's worker pool.
	mu *sync.Mutex
	// placers and opts recycle per-block engine state across the chip
	// build: a finished block's placer and optimizer (with its timing
	// engine) go back in the pool and the next block reinitializes them,
	// reusing the scratch and result arrays instead of re-allocating the
	// ~20 per-cell slices every build. Reinit restores as-new behavior,
	// so pooled and fresh objects are interchangeable (fingerprints do
	// not depend on worker scheduling).
	placers sync.Pool
	opts    sync.Pool
	// thermals recycles multigrid thermal engines across blocks the same
	// way; the thermal-via stage grabs one per block and returns it.
	thermals sync.Pool
}

// New returns a flow over design d. Unset (zero) config fields take the
// defaults, field by field — see Config.WithDefaults; a partial Config
// keeps every field it does set.
func New(d *t2.Design, cfg Config) *Flow {
	cfg = cfg.WithDefaults()
	ex := extract.New(d.Lib, d.Scale, cfg.Bond)
	ex.TSVCoupling = cfg.TSVCoupling
	ex.UseRSMT = cfg.UseRSMT
	return &Flow{
		D:   d,
		Cfg: cfg,
		Ex:  ex,
		mu:  &sync.Mutex{},
	}
}

// progress emits one status event when a Progress hook is configured.
// Callbacks are serialized under the flow mutex.
func (f *Flow) progress(stage, block string, done, total int) {
	if f.Cfg.Progress == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.Cfg.Progress(Progress{Stage: stage, Block: block, Done: done, Total: total})
}

// BlockResult captures everything the experiments report per block.
type BlockResult struct {
	Block  *netlist.Block
	Stats  netlist.Stats
	Power  power.Report
	Timing *sta.Report
	CTS    *cts.Result
	// RepeatersInserted counts data-path repeaters from optimization.
	RepeatersInserted int
	// HVTSwapped counts RVT->HVT conversions.
	HVTSwapped int
}

// ImplementBlock runs the full block-level flow on b (which may already be
// folded/3D — the flow branches on b.Is3D). The block is modified in place;
// callers wanting to compare styles clone the synthesized netlist first.
// aspect is the outline aspect ratio used when the outline is not already
// fixed by the chip floorplan. It is ImplementBlockContext under
// context.Background().
func (f *Flow) ImplementBlock(b *netlist.Block, aspect float64) (*BlockResult, error) {
	return f.ImplementBlockContext(context.Background(), b, aspect)
}

// ImplementBlockContext is ImplementBlock honoring ctx: the pipeline
// executor checks for cancellation between stages (placement, extraction,
// CTS, optimization) and returns an error wrapping errs.ErrCanceled and
// ctx.Err() when the context dies mid-build.
//
// The block runs through its stage plan (see implState.blockPlan): outline
// prep, placement, 3D via insertion, extraction, repeater insertion, CTS,
// legalization, timing and power optimization, Vth swapping, and sign-off
// analysis, each a registered pipeline stage. With Cfg.Cache set, the plan
// fingerprint is looked up first and a hit restores the previous result
// byte-identically without running any stage.
func (f *Flow) ImplementBlockContext(ctx context.Context, b *netlist.Block, aspect float64) (*BlockResult, error) {
	st := &implState{f: f, b: b, aspect: aspect}
	ex := pipeline.Executor{Cache: f.Cfg.Cache}
	var spec *pipeline.ArtifactSpec
	if f.Cfg.Cache != nil {
		spec = st.artifactSpec()
	}
	if err := ex.Run(ctx, st.blockPlan(), spec); err != nil {
		return nil, err
	}
	// Recycle the engines only after Run returns: the executor's artifact
	// capture (which clones st.res for the cache) has finished, and
	// stageFinal copied the timing report out of the optimizer's engine,
	// so nothing reachable from st.res aliases pooled state. A cache-hit
	// restore leaves both nil.
	if st.placer != nil {
		f.placers.Put(st.placer)
	}
	if st.o != nil {
		f.opts.Put(st.o)
	}
	return st.res, nil
}

// getPlacer returns a pooled placement backend reinitialized for this
// flow's options, or a fresh one resolved through the backend registry when
// the pool is empty. One flow runs one backend (Cfg.Placer is fixed at
// construction), so every pooled entry is the same concrete type and
// Reinit restores as-new behavior — the per-backend arena reuse that keeps
// the ~20 per-cell scratch slices alive across blocks.
func (f *Flow) getPlacer() (place.Backend, error) {
	if p, ok := f.placers.Get().(place.Backend); ok {
		p.Reinit(f.placeOptions())
		return p, nil
	}
	return place.NewBackend(f.Cfg.Placer, f.placeOptions())
}

// getOptimizer returns a pooled optimizer reinitialized for cfg, or a fresh
// one when the pool is empty.
func (f *Flow) getOptimizer(cfg opt.Options) *opt.Optimizer {
	if o, ok := f.opts.Get().(*opt.Optimizer); ok {
		o.Reinit(f.D.Lib, f.Ex, cfg)
		return o
	}
	return opt.New(f.D.Lib, f.Ex, cfg)
}

// placeOptions derives per-run placer options.
func (f *Flow) placeOptions() place.Options {
	po := f.Cfg.Place
	po.TargetUtil = f.Cfg.Util + 0.12 // legalization headroom over sizing util
	if po.TargetUtil > 0.92 {
		po.TargetUtil = 0.92
	}
	po.Seed = f.Cfg.Seed
	return po
}

// trace logs one flow stage when tracing is enabled. The write is
// serialized under the flow mutex so parallel block builds interleave
// whole lines, never bytes.
func (f *Flow) trace(b *netlist.Block, stage string) {
	if f.Cfg.Trace == nil {
		return
	}
	rep, err := sta.Analyze(b, 0)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		fmt.Fprintf(f.Cfg.Trace, "%-8s %-14s STA error: %v\n", b.Name, stage, err)
		return
	}
	fmt.Fprintf(f.Cfg.Trace, "%-8s %-14s WNS %8.1f TNS %10.0f fail %d/%d cells %d\n",
		b.Name, stage, rep.WNS, rep.TNS, rep.Failing, rep.Endpoints, len(b.Cells))
}

// normalizePorts rescales port locations proportionally into the block
// outline when they were assigned against a different (estimated) shape —
// block-level experiments attach ports using spec-estimated geometry, and a
// folded block's per-die outline differs from the 2D estimate. Relative
// positions (which edge, where along it) are preserved.
func normalizePorts(b *netlist.Block) {
	if len(b.Ports) == 0 {
		return
	}
	var maxX, maxY float64
	for i := range b.Ports {
		if b.Ports[i].Pos.X > maxX {
			maxX = b.Ports[i].Pos.X
		}
		if b.Ports[i].Pos.Y > maxY {
			maxY = b.Ports[i].Pos.Y
		}
	}
	out := b.Outline[0]
	sx, sy := 1.0, 1.0
	scaled := false
	if maxX > out.W() && maxX > 0 {
		sx = out.W() / maxX
		scaled = true
	}
	if maxY > out.H() && maxY > 0 {
		sy = out.H() / maxY
		scaled = true
	}
	if !scaled {
		return
	}
	for i := range b.Ports {
		b.Ports[i].Pos.X *= sx
		b.Ports[i].Pos.Y *= sy
	}
}

// repeaterBudget returns the free placement area (µm²) available for
// repeater insertion: the outline capacity at the legalization utilization
// ceiling minus everything already placed, with a reserve for clock buffers.
func (f *Flow) repeaterBudget(b *netlist.Block) float64 {
	const maxUtil = 0.80
	area, err := place.FreeRowArea(b, netlist.DieBottom)
	if err != nil {
		return 1
	}
	if b.Is3D {
		a1, err := place.FreeRowArea(b, netlist.DieTop)
		if err != nil {
			return 1
		}
		area += a1
	}
	free := area*maxUtil - b.CellArea(-1)
	// Reserve part of the free space for CTS buffers and legalization slop.
	free *= 0.85
	if free < 0 {
		free = 1 // effectively no repeaters; legalization still has to fit
	}
	return free
}

// repeaterBudgetPerDie splits the repeater budget per die for folded blocks:
// a die overflows individually, so each account is computed from that die's
// own free row capacity and placed cell area.
func (f *Flow) repeaterBudgetPerDie(b *netlist.Block) [2]float64 {
	const maxUtil = 0.80
	var out [2]float64
	for d := 0; d < 2; d++ {
		area, err := place.FreeRowArea(b, netlist.Die(d))
		if err != nil {
			out[d] = 1
			continue
		}
		free := area*maxUtil - b.CellArea(d)
		free *= 0.85
		if free < 1 {
			free = 1
		}
		out[d] = free
	}
	return out
}

// Profile converts a block result into the folding-criteria profile
// (core.BlockProfile) with the given copy count.
func (r *BlockResult) Profile(copies int) (name string, totalMW, netMW float64, longWires int) {
	return r.Block.Name, r.Power.TotalMW, r.Power.NetMW, r.Stats.NumLongWire
}

// VthOf exposes the library flavor used by the flow for reports.
func (f *Flow) VthOf() tech.VthClass {
	if f.Cfg.UseHVT {
		return tech.HVT
	}
	return tech.RVT
}
