package flow

import (
	"context"
	"fmt"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/netlist"
	"fold3d/internal/place"
)

// FoldAndImplement folds block b (per the fold options) and runs the 3D
// implementation under the flow's bonding style. b is modified in place.
// It is FoldAndImplementContext under context.Background().
func (f *Flow) FoldAndImplement(b *netlist.Block, fo core.FoldOptions, aspect float64) (*BlockResult, *core.FoldResult, error) {
	return f.FoldAndImplementContext(context.Background(), b, fo, aspect)
}

// FoldAndImplementContext is FoldAndImplement honoring ctx.
func (f *Flow) FoldAndImplementContext(ctx context.Context, b *netlist.Block, fo core.FoldOptions, aspect float64) (*BlockResult, *core.FoldResult, error) {
	fr, err := core.Fold(b, fo)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: folding %s: %w", b.Name, err)
	}
	br, err := f.ImplementBlockContext(ctx, b, aspect)
	if err != nil {
		return nil, nil, err
	}
	return br, fr, nil
}

// tsvPadAllowance is the per-die outline area reserved for intra-block TSV
// landing pads of a folded F2B block: pads also fragment placement rows, so
// the reserve is well beyond the raw pad area. F2F blocks reserve nothing.
func (f *Flow) tsvPadAllowance(b *netlist.Block) float64 {
	if f.Cfg.Bond != extract.F2B || !b.Is3D {
		return 0
	}
	tsvOpt := place.DefaultTSVPlanOptions(f.D.Cfg.Scale)
	cut := Fold3DNetCount(b)
	pad := tsvOpt.DrawnPitch()
	return 1.6 * float64(cut) * pad * pad
}

// Fold3DNetCount counts die-crossing signal nets of a folded block.
func Fold3DNetCount(b *netlist.Block) int {
	n := 0
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Signal && b.NetIs3D(&b.Nets[i]) {
			n++
		}
	}
	return n
}
