package flow

import (
	"context"
	"fmt"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/netlist"
	"fold3d/internal/place"
	"fold3d/internal/route"
)

// FoldAndImplement folds block b (per the fold options) and runs the 3D
// implementation under the flow's bonding style. b is modified in place.
// It is FoldAndImplementContext under context.Background().
func (f *Flow) FoldAndImplement(b *netlist.Block, fo core.FoldOptions, aspect float64) (*BlockResult, *core.FoldResult, error) {
	return f.FoldAndImplementContext(context.Background(), b, fo, aspect)
}

// FoldAndImplementContext is FoldAndImplement honoring ctx.
func (f *Flow) FoldAndImplementContext(ctx context.Context, b *netlist.Block, fo core.FoldOptions, aspect float64) (*BlockResult, *core.FoldResult, error) {
	fr, err := core.Fold(b, fo)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: folding %s: %w", b.Name, err)
	}
	br, err := f.ImplementBlockContext(ctx, b, aspect)
	if err != nil {
		return nil, nil, err
	}
	return br, fr, nil
}

// implement3D implements a folded (two-die) block:
//
//	F2B: size outlines with TSV-pad area, 3D global place with ideal vias,
//	     plan TSV sites (outside macros), respread, legalize.
//	F2F: size outlines with no via area, 3D place, legalize, then run the
//	     paper's F2F via placer (3D net routing over the merged dies, §5.1).
func (f *Flow) implement3D(ctx context.Context, b *netlist.Block, aspect float64) (*BlockResult, error) {
	// Under F2F bonding every metal layer is consumed by the block itself
	// (F2F vias sit on top of M9), so the block may route all nine layers
	// but becomes an over-the-block routing blockage at chip level (§6.1).
	if f.Cfg.Bond == extract.F2F {
		b.MaxRouteLayer = 9
	}

	tsvOpt := place.DefaultTSVPlanOptions(f.D.Cfg.Scale)
	if err := f.prepareOutline3D(b, aspect, f.tsvPadAllowance(b)); err != nil {
		return nil, err
	}
	normalizePorts(b)

	placer := place.New(f.placeOptions())
	if err := placer.Place(b); err != nil {
		return nil, fmt.Errorf("flow: 3D placing %s: %v", b.Name, err)
	}

	switch f.Cfg.Bond {
	case extract.F2B:
		if err := place.PlanTSVs(b, tsvOpt); err != nil {
			return nil, fmt.Errorf("flow: TSV planning %s: %v", b.Name, err)
		}
		// TSV pads claim placement area: evict overlapping cells.
		if err := placer.LegalizeAll(b); err != nil {
			return nil, fmt.Errorf("flow: post-TSV legalization of %s: %v", b.Name, err)
		}
	case extract.F2F:
		if _, err := route.PlaceF2FVias(b, route.DefaultOptions()); err != nil {
			return nil, fmt.Errorf("flow: F2F via placement on %s: %v", b.Name, err)
		}
	}
	return f.finishBlock(ctx, b, placer)
}

// tsvPadAllowance is the per-die outline area reserved for intra-block TSV
// landing pads of a folded F2B block: pads also fragment placement rows, so
// the reserve is well beyond the raw pad area. F2F blocks reserve nothing.
func (f *Flow) tsvPadAllowance(b *netlist.Block) float64 {
	if f.Cfg.Bond != extract.F2B || !b.Is3D {
		return 0
	}
	tsvOpt := place.DefaultTSVPlanOptions(f.D.Cfg.Scale)
	cut := Fold3DNetCount(b)
	pad := tsvOpt.DrawnPitch()
	return 1.6 * float64(cut) * pad * pad
}

// Fold3DNetCount counts die-crossing signal nets of a folded block.
func Fold3DNetCount(b *netlist.Block) int {
	n := 0
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Signal && b.NetIs3D(&b.Nets[i]) {
			n++
		}
	}
	return n
}
