package flow

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"fold3d/internal/designio"
	"fold3d/internal/t2"
)

// chipFingerprint builds the full chip in the given style from a fresh
// generated design with the given worker count and renders everything the
// experiments report — chip stats, power, per-block results, serialized
// Verilog and DEF, chip-net routes — into one byte string.
func chipFingerprint(t *testing.T, style t2.Style, seed uint64, workers int) string {
	return chipFingerprintCfg(t, style, seed, workers, nil)
}

// chipFingerprintCfg is chipFingerprint with a config hook applied after
// the defaults, for tests that flip flow options (e.g. Opt.FullRecompute).
func chipFingerprintCfg(t *testing.T, style t2.Style, seed uint64, workers int, mut func(*Config)) string {
	t.Helper()
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	if mut != nil {
		mut(&cfg)
	}
	fl := New(d, cfg)
	r, err := fl.BuildChip(style)
	if err != nil {
		t.Fatalf("BuildChip(%s): %v", style, err)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "stats %+v\n", r.Stats)
	fmt.Fprintf(&sb, "power %+v\n", r.Power)
	fmt.Fprintf(&sb, "chipnetpower %+v\n", r.ChipNetPower)
	names := make([]string, 0, len(r.Blocks))
	for name := range r.Blocks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br := r.Blocks[name]
		fmt.Fprintf(&sb, "block %s power=%+v wns=%v tns=%v reps=%d hvt=%d\n",
			name, br.Power, br.Timing.WNS, br.Timing.TNS, br.RepeatersInserted, br.HVTSwapped)
		if err := designio.WriteVerilog(&sb, br.Block, br.Block.Is3D); err != nil {
			t.Fatalf("WriteVerilog(%s): %v", name, err)
		}
		if err := designio.WriteDEF(&sb, br.Block, -1, br.Block.Is3D); err != nil {
			t.Fatalf("WriteDEF(%s): %v", name, err)
		}
	}
	for i := range r.ChipNets {
		cn := &r.ChipNets[i]
		fmt.Fprintf(&sb, "chipnet %d len=%v crossings=%d\n", i, cn.RouteLen, cn.Crossings)
	}
	return sb.String()
}

// TestSeedStability is the determinism regression test behind the repo's
// bit-reproducibility promise (and fold3dlint's determinism/mapiter
// checks): the same seed must produce byte-identical results end to end —
// generation, partitioning, placement, CTS, optimization, extraction, STA,
// power — twice in the same process. A diff here means ambient
// nondeterminism (map iteration order, global randomness) leaked into the
// flow.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-chip builds")
	}
	// The folded core/cache style exercises the most machinery:
	// partitioning, 3D placement, TSV insertion and chip-level routing.
	a := chipFingerprint(t, t2.StyleCoreCache, 42, 1)
	b := chipFingerprint(t, t2.StyleCoreCache, 42, 1)
	if a != b {
		t.Fatalf("same seed produced different results:\n%s", firstDiff(a, b))
	}

	// And a different seed must actually change something, or the
	// fingerprint is vacuous.
	c := chipFingerprint(t, t2.StyleCoreCache, 43, 1)
	if a == c {
		t.Fatal("different seeds produced byte-identical results; fingerprint is not sensitive")
	}
}

// firstDiff renders the first divergent line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
