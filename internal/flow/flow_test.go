package flow

import (
	"testing"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/netlist"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
)

func genBlocks(t *testing.T, names ...string) (*t2.Design, *Flow) {
	t.Helper()
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: 42, Only: names})
	if err != nil {
		t.Fatal(err)
	}
	return d, New(d, DefaultConfig())
}

func TestImplementBlock2D(t *testing.T) {
	d, fl := genBlocks(t, "L2T0")
	b := d.Blocks["L2T0"]
	r, err := fl.ImplementBlock(b, d.Specs["L2T0"].Aspect)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.NumCells != len(b.Cells) {
		t.Error("stats cell count mismatch")
	}
	if r.Stats.Footprint <= 0 || r.Stats.Wirelength <= 0 {
		t.Errorf("degenerate stats: %+v", r.Stats)
	}
	if r.Power.TotalMW <= 0 {
		t.Error("no power")
	}
	if r.Stats.NumBuffers == 0 {
		t.Error("flow inserted no repeaters at all")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every cell inside the outline.
	for i := range b.Cells {
		if !b.Outline[0].ContainsRect(b.Cells[i].Rect().Expand(-1e-9)) {
			t.Fatalf("cell %s escaped the outline", b.Cells[i].Name)
		}
	}
	// Extraction ran: all signal nets have lengths.
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Signal && len(b.Nets[i].Sinks) > 0 && b.Nets[i].WireCapfF < 0 {
			t.Fatal("negative wire cap")
		}
	}
}

func TestFoldAndImplementF2B(t *testing.T) {
	d, fl := genBlocks(t, "L2T0")
	b := d.Blocks["L2T0"].Clone()
	fo := core.DefaultFoldOptions()
	r, fr, err := fl.FoldAndImplement(b, fo, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Is3D {
		t.Fatal("block not 3D")
	}
	if b.NumTSV == 0 || b.NumTSV != fr.CutNets {
		t.Errorf("TSVs %d vs cut %d", b.NumTSV, fr.CutNets)
	}
	if len(b.TSVPads) != b.NumTSV {
		t.Error("pad count mismatch")
	}
	if r.Stats.NumF2F != 0 {
		t.Error("F2B fold must not report F2F vias")
	}
	// Footprint (per die) must be well below the 2D block's.
	b2 := d.Blocks["L2T0"].Clone()
	b2.Is3D = false
	r2, err := fl.ImplementBlock(b2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Footprint >= r2.Stats.Footprint*0.8 {
		t.Errorf("folding saved too little footprint: %v vs %v", r.Stats.Footprint, r2.Stats.Footprint)
	}
}

func TestFoldAndImplementF2F(t *testing.T) {
	d, _ := genBlocks(t, "L2T0")
	cfg := DefaultConfig()
	cfg.Bond = extract.F2F
	fl := New(d, cfg)
	b := d.Blocks["L2T0"].Clone()
	r, fr, err := fl.FoldAndImplement(b, core.DefaultFoldOptions(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumF2F == 0 {
		t.Fatal("no F2F vias placed")
	}
	if len(b.TSVPads) != 0 {
		t.Error("F2F bonding must not create TSV pads")
	}
	if b.MaxRouteLayer != 9 {
		t.Error("F2F blocks use all nine metal layers (paper §6.1)")
	}
	_ = fr
	if r.Power.TotalMW <= 0 {
		t.Error("no power")
	}
}

func TestF2FBeatsF2BOnFootprint(t *testing.T) {
	// Paper Figure 6: F2F needs no silicon for vias, so the folded
	// footprint shrinks further. The L2T min-cut fold has enough 3D
	// connections for the TSV pad area to matter.
	d1, fl1 := genBlocks(t, "L2T0")
	bF2B := d1.Blocks["L2T0"].Clone()
	fo := core.DefaultFoldOptions()
	rF2B, _, err := fl1.FoldAndImplement(bF2B, fo, 0.63)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := genBlocks(t, "L2T0")
	cfg := DefaultConfig()
	cfg.Bond = extract.F2F
	fl2 := New(d2, cfg)
	bF2F := d2.Blocks["L2T0"].Clone()
	rF2F, _, err := fl2.FoldAndImplement(bF2F, fo, 0.63)
	if err != nil {
		t.Fatal(err)
	}
	if rF2F.Stats.Footprint > rF2B.Stats.Footprint {
		t.Errorf("F2F footprint %v above F2B %v", rF2F.Stats.Footprint, rF2B.Stats.Footprint)
	}
	if bF2B.NumTSV > 0 && rF2F.Stats.Footprint == rF2B.Stats.Footprint {
		t.Logf("note: footprints equal at the min outline; TSVs=%d", bF2B.NumTSV)
	}
}

func TestEstimateShapeCoversImplementation(t *testing.T) {
	d, fl := genBlocks(t, "L2B0")
	spec := d.Specs["L2B0"]
	w, h := fl.EstimateShape(spec, 1)
	b := d.Blocks["L2B0"]
	r := fl.ShapeForBlock(b, spec.Aspect)
	// The spec estimate must be at least as large as the actual-content
	// shape (it uses a conservative average cell area).
	if w*h < r.Area()*0.8 {
		t.Errorf("estimate %.0f um2 far below actual %.0f um2", w*h, r.Area())
	}
}

func TestDualVthFlowSwaps(t *testing.T) {
	d, _ := genBlocks(t, "L2B0")
	cfg := DefaultConfig()
	cfg.UseHVT = true
	fl := New(d, cfg)
	b := d.Blocks["L2B0"]
	r, err := fl.ImplementBlock(b, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.HVTSwapped == 0 || b.HVTFraction() == 0 {
		t.Error("dual-Vth flow swapped nothing")
	}
	if fl.VthOf() != tech.HVT {
		t.Error("VthOf wrong")
	}
}

func TestTraceOutput(t *testing.T) {
	d, _ := genBlocks(t, "L2B0")
	var buf traceBuf
	cfg := DefaultConfig()
	cfg.Trace = &buf
	fl := New(d, cfg)
	if _, err := fl.ImplementBlock(d.Blocks["L2B0"], 1.0); err != nil {
		t.Fatal(err)
	}
	if buf.n == 0 {
		t.Error("trace produced no output")
	}
}

type traceBuf struct{ n int }

func (b *traceBuf) Write(p []byte) (int, error) { b.n += len(p); return len(p), nil }
