package flow

import (
	"fmt"
	"math"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
)

// sizeOutline computes a die outline for the given content area and aspect
// ratio. contentArea is the placeable area demand (cells with allowances,
// macros with channels, TSV pads).
func sizeOutline(contentArea, aspect float64) geom.Rect {
	if aspect <= 0 {
		aspect = 1
	}
	// No outline side may be smaller than the widest library cell (an X16
	// register is ~25µm) plus placement slack, or legalization cannot fit it.
	const minSide = 30.0
	w := math.Sqrt(contentArea * aspect)
	h := contentArea / w
	if w < minSide {
		w = minSide
		h = contentArea / w
	}
	if h < minSide {
		h = minSide
	}
	// Snap height to whole cell rows.
	rows := math.Ceil(h / tech.CellHeight)
	return geom.NewRect(0, 0, w, rows*tech.CellHeight)
}

// outlineFor sizes a die outline that fits nMacros macros packed in
// full-width rows (with channels) plus cellArea of standard-cell demand in
// the remaining rows, at roughly the requested aspect ratio. Macro rows
// consume the die's full width, so the naive sum of areas underestimates —
// this mirrors the placeMacros packing exactly.
func (f *Flow) outlineFor(cellArea float64, nMacros int, aspect float64) geom.Rect {
	if nMacros == 0 {
		return sizeOutline(cellArea, aspect)
	}
	mm := f.D.Lib.MacroKB
	sh := f.D.Scale.LinearShrink()
	mw := mm.Width/sh + mm.Width/sh*f.Cfg.MacroChannel
	mh := mm.Height/sh + mm.Height/sh*f.Cfg.MacroChannel
	w := math.Sqrt((cellArea + float64(nMacros)*mw*mh) * aspect)
	if w < mw+1 {
		w = mw + 1
	}
	for iter := 0; iter < 4; iter++ {
		perRow := int(w / mw)
		if perRow < 1 {
			perRow = 1
		}
		macroRows := (nMacros + perRow - 1) / perRow
		h := float64(macroRows)*mh + cellArea/w + tech.CellHeight
		// Nudge the width toward the requested aspect.
		target := math.Sqrt(w * h * aspect)
		w = (w + target) / 2
	}
	perRow := int(w / mw)
	if perRow < 1 {
		perRow = 1
	}
	macroRows := (nMacros + perRow - 1) / perRow
	h := float64(macroRows)*mh + cellArea/w + tech.CellHeight
	r := sizeOutline(w*h, w/h)
	return r
}

// cellDemand is the standard-cell row-area demand of die d (or all dies for
// d < 0) including the buffering allowance and utilization target. The
// allowance grows with the block's boundary-pin density: port-heavy blocks
// (the crossbar above all) spend far more area on repeaters — the paper's 2D
// CCX is the extreme case (§4.3).
func (f *Flow) cellDemand(b *netlist.Block, d int, extra float64) float64 {
	allow := f.Cfg.BufferAllowance * (1 + f.portFactor(b.Name, len(b.Cells)))
	return b.CellArea(d)*(1+allow)/f.Cfg.Util + extra
}

// portFactor is the boundary-pin density of a block, capped at 1.
func (f *Flow) portFactor(name string, cells int) float64 {
	if cells <= 0 {
		return 0
	}
	pf := float64(f.D.DrawnPortCount(name)) / float64(cells)
	if pf > 1 {
		pf = 1
	}
	return pf
}

// prepareOutline2D sizes the bottom-die outline of a 2D block (if not
// already fixed by the chip floorplan) and packs its macros.
func (f *Flow) prepareOutline2D(b *netlist.Block, aspect float64) error {
	if b.Outline[0].Area() <= 0 {
		b.Outline[0] = f.outlineFor(f.cellDemand(b, -1, 0), len(b.Macros), aspect)
	}
	return f.placeMacros(b, netlist.DieBottom)
}

// prepareOutline3D sizes both die outlines of a folded block to the same
// rectangle (the dies are stacked) and packs each die's macros. extra is
// per-die additional area (TSV pads under F2B).
func (f *Flow) prepareOutline3D(b *netlist.Block, aspect, extra float64) error {
	if b.Outline[0].Area() <= 0 || b.Outline[1].Area() <= 0 {
		var nm [2]int
		for i := range b.Macros {
			nm[b.Macros[i].Die]++
		}
		o0 := f.outlineFor(f.cellDemand(b, 0, extra), nm[0], aspect)
		o1 := f.outlineFor(f.cellDemand(b, 1, extra), nm[1], aspect)
		out := o0
		if o1.Area() > out.Area() {
			out = o1
		}
		b.Outline[0], b.Outline[1] = out, out
	}
	for d := 0; d < 2; d++ {
		if err := f.placeMacros(b, netlist.Die(d)); err != nil {
			return err
		}
	}
	return nil
}

// placeMacros packs the macros of die d in rows from the top edge down,
// memory-compiler style, with routing channels between them. Macros are
// fixed afterwards; the placer treats them as supply holes.
func (f *Flow) placeMacros(b *netlist.Block, d netlist.Die) error {
	var idx []int
	for i := range b.Macros {
		if b.Macros[i].Die == d {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	out := b.Outline[d]
	m0 := b.Macros[idx[0]].Model
	chX := m0.Width * f.Cfg.MacroChannel
	chY := m0.Height * f.Cfg.MacroChannel
	x := out.Lo.X + chX
	y := out.Hi.Y - m0.Height - chY
	for _, i := range idx {
		m := &b.Macros[i]
		if x+m.Model.Width > out.Hi.X {
			// Next row down.
			x = out.Lo.X + chX
			y -= m.Model.Height + chY
		}
		if y < out.Lo.Y {
			return fmt.Errorf("flow: block %s die %s outline %.0fx%.0f cannot fit its %d macros",
				b.Name, d, out.W(), out.H(), len(idx))
		}
		m.Pos = geom.Point{X: x, Y: y}
		m.Fixed = true
		x += m.Model.Width + chX
	}
	return nil
}

// EstimateShape predicts the implemented footprint of a block from its spec
// alone, before any netlist exists — useful for planning before generation.
// dies is 1 for 2D/unfolded blocks and 2 for folded ones (the per-die area
// halves).
func (f *Flow) EstimateShape(spec t2.BlockSpec, dies int) (w, h float64) {
	scale := f.D.Cfg.Scale
	n := float64(spec.Cells) / scale
	if n < 40 {
		n = 40
	}
	// Average cell area of the synthesis mix, µm² (expected value of the
	// generator's family/drive distribution over the library geometry).
	const avgCellArea = 3.9
	allow := f.Cfg.BufferAllowance * (1 + f.portFactor(spec.Name, int(n)))
	cellA := n * avgCellArea * (1 + allow) / f.Cfg.Util / float64(dies)
	macros := (spec.Macros + dies - 1) / dies
	r := f.outlineFor(cellA, macros, spec.Aspect)
	return r.W(), r.H()
}

// ShapeForBlock computes the exact outline the implementation flow would
// give block b in its current (possibly folded) state — the chip floorplan
// uses this so that the fixed floorplan shape and the block implementation
// agree by construction.
func (f *Flow) ShapeForBlock(b *netlist.Block, aspect float64) geom.Rect {
	if !b.Is3D {
		return f.outlineFor(f.cellDemand(b, -1, 0), len(b.Macros), aspect)
	}
	var nm [2]int
	for i := range b.Macros {
		nm[b.Macros[i].Die]++
	}
	extra := f.tsvPadAllowance(b)
	o0 := f.outlineFor(f.cellDemand(b, 0, extra), nm[0], aspect)
	o1 := f.outlineFor(f.cellDemand(b, 1, extra), nm[1], aspect)
	if o1.Area() > o0.Area() {
		return o1
	}
	return o0
}
