package flow

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fold3d/internal/errs"
	"fold3d/internal/place"
	"fold3d/internal/thermal"
)

// DefaultThermalViaBudget is the per-block bound on inserted thermal vias
// when ThermalConfig.Enable is set and ViaBudget is left zero.
const DefaultThermalViaBudget = 32

// thermalViaBatch is how many hotspot tiles receive a thermal via between
// incremental re-solves: large enough to amortize the windowed V-cycles,
// small enough that the ranking tracks the moving hotspot.
const thermalViaBatch = 4

// ThermalConfig configures the flow's in-loop thermal planning (DESIGN.md
// §17). With Enable set, folded F2B blocks get a thermal-via stage between
// extraction and buffering: the multigrid engine solves the block's
// temperature field, dummy TSVs are greedily inserted as thermal vias into
// free sites near the hottest tiles (re-solving incrementally per batch),
// and the block is re-legalized and re-extracted so the pads' area and
// coupling costs are honest. The whole config participates in the stage
// cache key; with Enable false no stage is registered and every fingerprint
// is byte-identical to a thermal-unaware flow.
type ThermalConfig struct {
	// Enable turns the thermal-via stage on for folded F2B blocks.
	Enable bool
	// TMaxBudgetC is the peak-temperature budget in °C. When positive, via
	// insertion stops as soon as the predicted peak drops to the budget;
	// zero inserts up to ViaBudget vias unconditionally. The budget is a
	// planning target, not a gate — whether the final prediction still
	// exceeds it ("will it melt") is judged by the serving layer.
	TMaxBudgetC float64
	// ViaBudget bounds the thermal vias inserted per block; 0 selects
	// DefaultThermalViaBudget when Enable is set.
	ViaBudget int
	// TempWeightPerC re-weights the folding criteria by predicted block
	// temperature (core.Criteria.TempWeightPerC) in the experiment layer's
	// hotspot-aware selection; zero keeps selection temperature-blind.
	TempWeightPerC float64
	// Params are the solver constants; the zero value selects
	// thermal.DefaultParams.
	Params thermal.Params
}

// Validate checks the thermal configuration before any work starts. A
// disabled config is always valid; an enabled one requires valid solver
// params, a non-negative via budget, and a plausible temperature budget.
// Failures wrap errs.ErrBadRequest and errs.ErrBadOptions naming the field
// (exit 2 from the CLI, HTTP 400 from fold3dd).
func (tc ThermalConfig) Validate() error {
	if !tc.Enable {
		return nil
	}
	p := tc.Params
	if p == (thermal.Params{}) {
		p = thermal.DefaultParams()
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// Negated range form so NaN is rejected along with out-of-range values.
	if tc.TMaxBudgetC != 0 && !(tc.TMaxBudgetC > p.AmbientC && tc.TMaxBudgetC <= 1000) {
		return fmt.Errorf("flow: %w: %w: thermal TMaxBudgetC must be in (ambient %g, 1000] (0 disables the budget), got %g",
			errs.ErrBadRequest, errs.ErrBadOptions, p.AmbientC, tc.TMaxBudgetC)
	}
	if tc.ViaBudget < 0 {
		return fmt.Errorf("flow: %w: %w: thermal ViaBudget must be >= 0 (0 selects %d), got %d",
			errs.ErrBadRequest, errs.ErrBadOptions, DefaultThermalViaBudget, tc.ViaBudget)
	}
	if !(tc.TempWeightPerC >= 0 && tc.TempWeightPerC < math.Inf(1)) {
		return fmt.Errorf("flow: %w: %w: thermal TempWeightPerC must be >= 0 and finite, got %g",
			errs.ErrBadRequest, errs.ErrBadOptions, tc.TempWeightPerC)
	}
	return nil
}

// getThermal returns a pooled multigrid thermal engine; LoadBlock/ReinitGrid
// restore as-new behavior, so pooled and fresh engines are interchangeable.
func (f *Flow) getThermal() *thermal.Engine {
	if e, ok := f.thermals.Get().(*thermal.Engine); ok {
		return e
	}
	return thermal.NewEngine()
}

// hotTile is one candidate hotspot of a solved thermal field.
type hotTile struct {
	ix, iy int
	tC     float64
}

// hottestTiles ranks the solved field's tiles by temperature (max over dies)
// and returns the hottest n, ties broken by tile index so the ranking is
// deterministic.
func hottestTiles(res *thermal.Result, n int) []hotTile {
	tiles := make([]hotTile, 0, res.NX*res.NY)
	for iy := 0; iy < res.NY; iy++ {
		for ix := 0; ix < res.NX; ix++ {
			i := iy*res.NX + ix
			t := res.MapC[0][i]
			for d := 1; d < res.Dies; d++ {
				if v := res.MapC[d][i]; v > t {
					t = v
				}
			}
			tiles = append(tiles, hotTile{ix: ix, iy: iy, tC: t})
		}
	}
	sort.Slice(tiles, func(a, b int) bool {
		//lint:ignore floatcmp a sort tie-break: equal keys fall through to the index order, any inequality (however tiny) is a valid ordering
		if tiles[a].tC != tiles[b].tC {
			return tiles[a].tC > tiles[b].tC
		}
		if tiles[a].iy != tiles[b].iy {
			return tiles[a].iy < tiles[b].iy
		}
		return tiles[a].ix < tiles[b].ix
	})
	if n < len(tiles) {
		tiles = tiles[:n]
	}
	return tiles
}

// stageThermalVias inserts dummy TSVs as thermal vias into a folded F2B
// block (registered only when Cfg.Thermal.Enable): solve the block's
// temperature field with the multigrid engine, claim the free TSV site
// nearest each of the hottest tiles for a dummy pad, fold the pad's copper
// conductance into the operator incrementally, re-solve the dirty window,
// and repeat until the via budget is spent, the temperature budget is met,
// or the sites run out. Pads claim silicon, so the block is re-legalized
// and re-extracted before buffering sees it.
func (st *implState) stageThermalVias(ctx context.Context) error {
	f, b := st.f, st.b
	tc := f.Cfg.Thermal
	eng := f.getThermal()
	defer f.thermals.Put(eng)

	grid, err := eng.LoadBlock(b, f.D.Scale, f.Cfg.Bond, tc.Params)
	if err != nil {
		return fmt.Errorf("flow: thermal model of %s: %v", b.Name, err)
	}
	res, err := eng.Solve()
	if err != nil {
		return fmt.Errorf("flow: thermal solve of %s: %v", b.Name, err)
	}

	sites, err := place.NewTSVSiteGrid(b, place.DefaultTSVPlanOptions(f.D.Cfg.Scale))
	if err != nil {
		return fmt.Errorf("flow: thermal via sites of %s: %v", b.Name, err)
	}
	// Signal TSVs planned earlier in the flow already own their sites.
	sites.ClaimOverlapping(b.TSVPads)

	// One drawn pad stands for many physical vias — same equivalence
	// LoadBlock applies to the signal TSV population.
	dk := tc.Params.KTSVWPerK * math.Sqrt(f.D.Scale.Scale)
	added := 0
	for added < tc.ViaBudget {
		if tc.TMaxBudgetC > 0 && res.TMaxC <= tc.TMaxBudgetC {
			break
		}
		placed := 0
		for _, ht := range hottestTiles(res, thermalViaBatch) {
			if added >= tc.ViaBudget {
				break
			}
			idx, ok := sites.NearestFree(grid.BinCenter(ht.ix, ht.iy))
			if !ok {
				break // grid exhausted; nothing further can be placed
			}
			sites.Claim(idx)
			pad := sites.PadRect(idx)
			b.TSVPads = append(b.TSVPads, pad)
			b.NumTSV++
			px, py := grid.BinAt(pad.Center())
			eng.AddVertKAt(px, py, dk)
			added++
			placed++
		}
		if placed == 0 {
			break
		}
		if res, err = eng.Resolve(); err != nil {
			return fmt.Errorf("flow: thermal re-solve of %s: %v", b.Name, err)
		}
	}

	if added > 0 {
		// The dummy pads claim placement area exactly like signal TSV pads.
		if err := st.placer.LegalizeAll(b); err != nil {
			return fmt.Errorf("flow: post-thermal-via legalization of %s: %v", b.Name, err)
		}
		if err := f.Ex.Extract(b); err != nil {
			return err
		}
	}
	f.trace(b, "thermal-vias")
	return nil
}
