package flow

import (
	"errors"
	"math"
	"testing"

	"fold3d/internal/core"
	"fold3d/internal/errs"
	"fold3d/internal/pipeline"
	"fold3d/internal/t2"
	"fold3d/internal/thermal"
)

// withThermal returns a config hook enabling in-loop thermal planning.
func withThermal(tc ThermalConfig) func(*Config) {
	tc.Enable = true
	return func(c *Config) { c.Thermal = tc }
}

func TestThermalConfigValidate(t *testing.T) {
	if err := (ThermalConfig{}).Validate(); err != nil {
		t.Fatalf("zero (disabled) config rejected: %v", err)
	}
	// Disabled configs skip field checks entirely: garbage is inert.
	if err := (ThermalConfig{TMaxBudgetC: -1e9, ViaBudget: -5}).Validate(); err != nil {
		t.Fatalf("disabled config with junk fields rejected: %v", err)
	}
	if err := (ThermalConfig{Enable: true}).Validate(); err != nil {
		t.Fatalf("enabled defaults rejected: %v", err)
	}
	for name, tc := range map[string]ThermalConfig{
		"budget below ambient": {Enable: true, TMaxBudgetC: 20},
		"budget negative":      {Enable: true, TMaxBudgetC: -40},
		"budget NaN":           {Enable: true, TMaxBudgetC: math.NaN()},
		"budget absurd":        {Enable: true, TMaxBudgetC: 5000},
		"vias negative":        {Enable: true, ViaBudget: -1},
		"weight negative":      {Enable: true, TempWeightPerC: -0.1},
		"weight NaN":           {Enable: true, TempWeightPerC: math.NaN()},
		"bad params":           {Enable: true, Params: thermal.Params{AmbientC: math.Inf(1)}},
	} {
		err := tc.Validate()
		if !errors.Is(err, errs.ErrBadRequest) || !errors.Is(err, errs.ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadRequest+ErrBadOptions", name, err)
		}
	}
}

// TestThermalViasInserted pins the stage's visible effect: a folded F2B
// block built under an enabled thermal config carries more TSV pads than
// the thermal-blind build (dummy vias over the hotspots), up to the
// configured budget, and still validates.
func TestThermalViasInserted(t *testing.T) {
	d, _ := genBlocks(t, "L2T0")
	cold := d.Blocks["L2T0"].Clone()
	fl := New(d, DefaultConfig())
	if _, _, err := fl.FoldAndImplement(cold, core.DefaultFoldOptions(), 1.0); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Thermal = ThermalConfig{Enable: true, ViaBudget: 8}
	hot := d.Blocks["L2T0"].Clone()
	if _, _, err := New(d, cfg).FoldAndImplement(hot, core.DefaultFoldOptions(), 1.0); err != nil {
		t.Fatal(err)
	}
	extra := hot.NumTSV - cold.NumTSV
	if extra <= 0 {
		t.Fatalf("thermal flow added no vias: %d vs %d TSVs", hot.NumTSV, cold.NumTSV)
	}
	if extra > 8 {
		t.Fatalf("thermal flow added %d vias, over the budget of 8", extra)
	}
	if len(hot.TSVPads) != hot.NumTSV {
		t.Errorf("pad count %d != NumTSV %d", len(hot.TSVPads), hot.NumTSV)
	}
	if err := hot.Validate(); err != nil {
		t.Fatalf("block invalid after thermal vias: %v", err)
	}
}

// TestThermalOffFingerprintIdentity pins the backward half of the thermal
// contract: a config whose thermal block is disabled — even with junk in
// its other fields — registers no stage, shares every cache key with a
// config that never mentions thermal, and produces byte-identical chips.
func TestThermalOffFingerprintIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	cache := pipeline.NewCache(pipeline.CacheOptions{})
	legacy := chipFingerprintCfg(t, t2.StyleFoldF2B, 42, 1, func(c *Config) {
		c.Cache = cache
	})
	stores := cache.Stats().Stores

	disabled := chipFingerprintCfg(t, t2.StyleFoldF2B, 42, 1, func(c *Config) {
		c.Cache = cache
		c.Thermal = ThermalConfig{TMaxBudgetC: 85, ViaBudget: 999} // Enable false
	})
	if legacy != disabled {
		t.Fatalf("disabled thermal config diverged from legacy config:\n%s", firstDiff(legacy, disabled))
	}
	st := cache.Stats()
	if st.Stores != stores {
		t.Errorf("disabled thermal config stored %d new entries; its keys must equal the legacy keys", st.Stores-stores)
	}
	if st.Hits == 0 {
		t.Error("disabled thermal config never hit the legacy-keyed cache")
	}
}

// TestThermalFingerprintEquivalence extends the worker-pool determinism
// contract to thermal-enabled builds: Workers=1 and Workers=4 must produce
// byte-identical chips, and the thermal chip must differ from the
// thermal-blind one (the vias are real work, not a no-op).
func TestThermalFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	tc := ThermalConfig{TMaxBudgetC: 85, ViaBudget: 8}
	seq := chipFingerprintCfg(t, t2.StyleFoldF2B, 42, 1, withThermal(tc))
	par := chipFingerprintCfg(t, t2.StyleFoldF2B, 42, 4, withThermal(tc))
	if seq != par {
		t.Errorf("thermal Workers=1 vs Workers=4 fingerprints differ:\n%s", firstDiff(seq, par))
	}
	blind := chipFingerprintCfg(t, t2.StyleFoldF2B, 42, 1, nil)
	if seq == blind {
		t.Error("thermal-enabled chip is byte-identical to the thermal-blind chip; the via stage never ran")
	}
}

// TestThermalStageOnlyOnFoldedF2B pins the stage's registration scope: a
// 2D chip build under an enabled thermal config is byte-identical to the
// thermal-blind build — no block is folded F2B, so no stage registers.
func TestThermalStageOnlyOnFoldedF2B(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	on := chipFingerprintCfg(t, t2.Style2D, 42, 1, withThermal(ThermalConfig{ViaBudget: 8}))
	off := chipFingerprintCfg(t, t2.Style2D, 42, 1, nil)
	if on != off {
		t.Errorf("thermal config changed a 2D chip:\n%s", firstDiff(on, off))
	}
}
