package flow

import (
	"testing"

	"fold3d/internal/t2"
)

// TestIncrementalFingerprintEquivalence pins the incremental timing
// engine's exactness invariant at the whole-chip level: a build through
// the default incremental path (cone-limited STA re-propagation plus
// dirty-net extraction) must produce a byte-identical fingerprint —
// every report float, every optimizer move, every serialized netlist
// byte — to a build with Opt.FullRecompute, which replays the historical
// full-reanalysis flow. See DESIGN.md §10.
func TestIncrementalFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-chip builds")
	}
	inc := chipFingerprint(t, t2.StyleCoreCache, 42, 1)
	full := chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Opt.FullRecompute = true
	})
	if inc != full {
		t.Fatalf("incremental build diverged from full-recompute build:\n%s", firstDiff(inc, full))
	}
}
