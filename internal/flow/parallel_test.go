package flow

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fold3d/internal/errs"
	"fold3d/internal/t2"
)

// TestParallelFingerprintEquivalence is the determinism contract of the
// worker pool: building the chip with Workers=1 (the strictly sequential
// legacy path) and Workers=4 must produce byte-identical results for
// every design style. Per-block seeding and the sorted-name merge make
// the outcome independent of completion order.
func TestParallelFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("ten full-chip builds")
	}
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore, t2.StyleFoldF2B, t2.StyleFoldF2F}
	for _, style := range styles {
		seq := chipFingerprint(t, style, 42, 1)
		par := chipFingerprint(t, style, 42, 4)
		if seq != par {
			t.Errorf("%s: Workers=1 vs Workers=4 fingerprints differ:\n%s", style, firstDiff(seq, par))
		}
	}
}

// buildCtx builds the full chip under ctx and returns the error.
func buildCtx(t *testing.T, ctx context.Context, cfg Config) error {
	t.Helper()
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, cfg).BuildChipContext(ctx, t2.StyleCoreCache)
	return err
}

// TestBuildChipCancellation cancels mid-build — from the progress hook,
// after the first implemented block — and expects a prompt ErrCanceled
// that also matches the context cause.
func TestBuildChipCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Progress = func(p Progress) {
			if p.Stage == StageImplement {
				cancel()
			}
		}
		start := time.Now()
		err := buildCtx(t, ctx, cfg)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, errs.ErrCanceled) {
			t.Errorf("workers=%d: got %v, want ErrCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: %v does not match context.Canceled", workers, err)
		}
		// Generous bound: a canceled build must not run anywhere near the
		// ~40 remaining blocks (a full build takes well under a minute).
		if elapsed > 30*time.Second {
			t.Errorf("workers=%d: canceled build took %v; cancellation is not prompt", workers, elapsed)
		}
	}
}

// TestBuildChipPreCanceled runs zero blocks when the context is already
// dead.
func TestBuildChipPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	implemented := 0
	cfg.Progress = func(p Progress) {
		if p.Stage == StageImplement {
			implemented++
		}
	}
	err := buildCtx(t, ctx, cfg)
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if implemented != 0 {
		t.Errorf("%d blocks implemented under a pre-canceled context", implemented)
	}
}

// TestProgressEvents checks the progress stream of a successful build:
// serialized callbacks, one implement event per block with Done reaching
// Total, and a final done stage.
func TestProgressEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip build")
	}
	var mu sync.Mutex
	var events []Progress
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Progress = func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}
	if err := buildCtx(t, context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var implement, total int
	var sawDone bool
	maxDone := 0
	for _, p := range events {
		switch p.Stage {
		case StageImplement:
			implement++
			total = p.Total
			if p.Done > maxDone {
				maxDone = p.Done
			}
			if p.Block == "" {
				t.Error("implement event without a block name")
			}
		case StageDone:
			sawDone = true
		}
	}
	if implement == 0 || implement != total || maxDone != total {
		t.Errorf("implement events = %d, max Done = %d, Total = %d; want all equal and nonzero", implement, maxDone, total)
	}
	if !sawDone {
		t.Error("no done stage event")
	}
	if events[len(events)-1].Stage != StageDone {
		t.Errorf("last event stage = %s, want %s", events[len(events)-1].Stage, StageDone)
	}
}
