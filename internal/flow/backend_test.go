package flow

import (
	"errors"
	"strings"
	"testing"

	"fold3d/internal/errs"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
	"fold3d/internal/t2"
)

// withPlacer returns a config hook selecting the named placement backend.
func withPlacer(name string) func(*Config) {
	return func(c *Config) { c.Placer = name }
}

// TestAnalyticalFingerprintEquivalence extends the worker-pool determinism
// contract to the analytical backend: Workers=1 and Workers=4 must produce
// byte-identical chips for every design style, exactly as
// TestParallelFingerprintEquivalence pins for force.
func TestAnalyticalFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("ten full-chip builds")
	}
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore, t2.StyleFoldF2B, t2.StyleFoldF2F}
	for _, style := range styles {
		seq := chipFingerprintCfg(t, style, 42, 1, withPlacer("analytical"))
		par := chipFingerprintCfg(t, style, 42, 4, withPlacer("analytical"))
		if seq != par {
			t.Errorf("%s: analytical Workers=1 vs Workers=4 fingerprints differ:\n%s", style, firstDiff(seq, par))
		}
	}
}

// TestBackendsProduceDistinctPlacements sanity-checks that the analytical
// backend is not accidentally routed into the force path: the two backends
// must disagree on at least the placement bytes of a full chip (they share
// the legalizer, so agreement would mean the registry dispatched wrong).
func TestBackendsProduceDistinctPlacements(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-chip builds")
	}
	force := chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, withPlacer(place.DefaultBackend))
	analytical := chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, withPlacer("analytical"))
	if force == analytical {
		t.Fatal("force and analytical produced byte-identical chips; backend dispatch is broken")
	}
}

// TestForceCacheKeyIdentity pins the cache-key discipline's backward half:
// a config that never mentions a placer (the legacy shape every pre-PR
// cache entry was stored under) and one that names the default backend
// explicitly must share every stage key — the explicit run restores
// entirely from the legacy run's entries, storing nothing new.
func TestForceCacheKeyIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	cache := pipeline.NewCache(pipeline.CacheOptions{})
	legacy := chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = cache
		c.Placer = "" // WithDefaults fills in place.DefaultBackend
	})
	stores := cache.Stats().Stores

	explicit := chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = cache
		c.Placer = place.DefaultBackend
	})
	if legacy != explicit {
		t.Fatalf("explicit force diverged from legacy config:\n%s", firstDiff(legacy, explicit))
	}
	st := cache.Stats()
	if st.Stores != stores {
		t.Errorf("explicit force stored %d new entries; its keys must equal the legacy keys", st.Stores-stores)
	}
	if st.Hits == 0 {
		t.Error("explicit force never hit the legacy-keyed cache")
	}
}

// TestCrossBackendCacheIsolation pins the discipline's forward half: a
// cache warmed by one backend must contribute nothing to the other — not
// one memory hit, not one disk hit — because a restored placement from the
// wrong backend would silently corrupt the determinism contract.
func TestCrossBackendCacheIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	// Memory tier: a memory-only cache warmed by force contributes nothing
	// to an analytical run.
	memCache := pipeline.NewCache(pipeline.CacheOptions{})
	chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = memCache
		c.Placer = place.DefaultBackend
	})
	if memCache.Stats().Stores == 0 {
		t.Fatal("force build stored nothing; the isolation check below would be vacuous")
	}
	before := memCache.Stats()
	chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = memCache
		c.Placer = "analytical"
	})
	if hits := memCache.Stats().Hits - before.Hits; hits != 0 {
		t.Errorf("analytical took %d memory hits from a force-warmed cache", hits)
	}

	// Disk tier: a spill directory holding only force entries contributes
	// nothing to a fresh-cache analytical run.
	dir := t.TempDir()
	chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = pipeline.NewCache(pipeline.CacheOptions{Dir: dir})
		c.Placer = place.DefaultBackend
	})
	fresh := pipeline.NewCache(pipeline.CacheOptions{Dir: dir})
	chipFingerprintCfg(t, t2.StyleCoreCache, 42, 1, func(c *Config) {
		c.Cache = fresh
		c.Placer = "analytical"
	})
	if st := fresh.Stats(); st.DiskHits != 0 {
		t.Errorf("fresh analytical run restored %d entries from the force disk spill", st.DiskHits)
	}
}

// TestUnknownBackendFailsFast pins the validation contract: an unknown
// placer name fails the build with an error matching both ErrBadRequest
// and ErrBadOptions and naming the valid backends.
func TestUnknownBackendFailsFast(t *testing.T) {
	d, err := t2.Generate(t2.Config{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Placer = "simulated-annealing"
	_, err = New(d, cfg).BuildChip(t2.Style2D)
	if err == nil {
		t.Fatal("unknown backend built a chip")
	}
	if !errors.Is(err, errs.ErrBadOptions) || !errors.Is(err, errs.ErrBadRequest) {
		t.Errorf("error %v must match ErrBadOptions and ErrBadRequest", err)
	}
	for _, name := range place.BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid backend %q", err, name)
		}
	}
}
