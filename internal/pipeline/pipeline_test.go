package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fold3d/internal/errs"
	"fold3d/internal/pool"
)

// testArtifact is a minimal Artifact for cache tests.
type testArtifact struct {
	Vals []int
}

func (a *testArtifact) CloneArtifact() Artifact {
	return &testArtifact{Vals: append([]int(nil), a.Vals...)}
}

func testCodec() *Codec {
	return &Codec{
		Kind:    "test",
		Version: 1,
		Encode:  func(a Artifact) ([]byte, error) { return json.Marshal(a.(*testArtifact)) },
		Decode: func(b []byte) (Artifact, error) {
			var a testArtifact
			if err := json.Unmarshal(b, &a); err != nil {
				return nil, err
			}
			return &a, nil
		},
	}
}

func TestHasherFraming(t *testing.T) {
	a := NewHasher()
	a.Str("ab")
	a.Str("c")
	b := NewHasher()
	b.Str("a")
	b.Str("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length framing broken: (ab)(c) hashed equal to (a)(bc)")
	}
	c := NewHasher()
	c.F64(0)
	d := NewHasher()
	d.F64(math.Copysign(0, -1))
	if c.Sum() == d.Sum() {
		t.Fatal("F64 should distinguish 0 from -0 (bit-exact hashing)")
	}
	e := NewHasher()
	e.Int(-1)
	f := NewHasher()
	f.Uint(^uint64(0))
	g := NewHasher()
	g.Bool(true)
	if e.Sum() != f.Sum() {
		t.Fatal("Int(-1) and Uint(max) should agree (two's complement)")
	}
	if g.Sum() == e.Sum() {
		t.Fatal("Bool and Int collide")
	}
}

// buildPlan makes a three-stage chain plan A -> B -> C with a key knob on B.
func buildPlan(input string, bKnob float64, ran *[]string) *Plan {
	p := NewPlan("t")
	p.SetInput(Fingerprint(input))
	run := func(name string) func(context.Context) error {
		return func(context.Context) error {
			if ran != nil {
				*ran = append(*ran, name)
			}
			return nil
		}
	}
	p.MustAdd(Stage{Name: "a", Run: run("a")})
	p.MustAdd(Stage{Name: "b", After: []string{"a"}, Key: func(h *Hasher) { h.F64(bKnob) }, Run: run("b")})
	p.MustAdd(Stage{Name: "c", After: []string{"b"}, Run: run("c")})
	return p
}

func TestPlanFingerprintStability(t *testing.T) {
	fp1 := buildPlan("in", 1.5, nil).Fingerprint()
	fp2 := buildPlan("in", 1.5, nil).Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("same plan, different fingerprints: %s vs %s", fp1, fp2)
	}
	if fp3 := buildPlan("other", 1.5, nil).Fingerprint(); fp3 == fp1 {
		t.Fatal("input change did not change fingerprint")
	}
	if fp4 := buildPlan("in", 2.5, nil).Fingerprint(); fp4 == fp1 {
		t.Fatal("stage key change did not change fingerprint")
	}
}

func TestPlanAddValidation(t *testing.T) {
	p := NewPlan("v")
	noop := func(context.Context) error { return nil }
	if err := p.Add(Stage{Name: "", Run: noop}); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.Add(Stage{Name: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
	if err := p.Add(Stage{Name: "x", After: []string{"ghost"}, Run: noop}); err == nil {
		t.Error("unregistered dependency accepted")
	}
	if err := p.Add(Stage{Name: "x", Run: noop}); err != nil {
		t.Errorf("valid stage rejected: %v", err)
	}
	if err := p.Add(Stage{Name: "x", Run: noop}); err == nil {
		t.Error("duplicate name accepted")
	}
	if got := p.Stages(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Stages() = %v, want [x]", got)
	}
}

func TestExecutorRunsStagesInOrder(t *testing.T) {
	var ran []string
	p := buildPlan("in", 0, &ran)
	var ex Executor
	if err := ex.Run(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ran) != "[a b c]" {
		t.Fatalf("ran %v, want [a b c]", ran)
	}
}

func TestExecutorStageError(t *testing.T) {
	boom := errors.New("boom")
	p := NewPlan("e")
	p.MustAdd(Stage{Name: "a", Run: func(context.Context) error { return boom }})
	ran := false
	p.MustAdd(Stage{Name: "b", After: []string{"a"}, Run: func(context.Context) error { ran = true; return nil }})
	var ex Executor
	if err := ex.Run(context.Background(), p, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran {
		t.Fatal("stage after failing stage still ran")
	}
}

func TestExecutorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran []string
	p := buildPlan("in", 0, &ran)
	var ex Executor
	err := ex.Run(ctx, p, nil)
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(ran) != 0 {
		t.Fatalf("stages ran after cancellation: %v", ran)
	}
}

func TestExecutorCacheHitSkipsStages(t *testing.T) {
	cache := NewCache(CacheOptions{})
	spec := func(out *testArtifact) *ArtifactSpec {
		return &ArtifactSpec{
			Capture: func() (Artifact, error) { return out, nil },
			Restore: func(a Artifact) error { *out = *a.(*testArtifact); return nil },
		}
	}
	var ran []string
	art := &testArtifact{Vals: []int{0}}
	p := buildPlan("in", 0, &ran)
	p.stages[0].Run = func(context.Context) error { ran = append(ran, "a"); art.Vals[0] = 42; return nil }
	ex := Executor{Cache: cache}
	if err := ex.Run(context.Background(), p, spec(art)); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 || art.Vals[0] != 42 {
		t.Fatalf("cold run: ran=%v art=%v", ran, art)
	}

	ran = nil
	art2 := &testArtifact{Vals: []int{0}}
	p2 := buildPlan("in", 0, &ran)
	p2.stages[0].Run = func(context.Context) error { ran = append(ran, "a"); art2.Vals[0] = 42; return nil }
	if err := ex.Run(context.Background(), p2, spec(art2)); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 {
		t.Fatalf("warm run executed stages: %v", ran)
	}
	if art2.Vals[0] != 42 {
		t.Fatalf("restore did not install artifact: %v", art2)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 store", st)
	}

	// Mutating the restored artifact must not leak into the cache.
	art2.Vals[0] = 7
	art3 := &testArtifact{Vals: []int{0}}
	p3 := buildPlan("in", 0, nil)
	if err := ex.Run(context.Background(), p3, spec(art3)); err != nil {
		t.Fatal(err)
	}
	if art3.Vals[0] != 42 {
		t.Fatalf("cache entry aliased a restored artifact: %v", art3)
	}
}

func TestExecutorRestoreFailureRecomputes(t *testing.T) {
	cache := NewCache(CacheOptions{})
	art := &testArtifact{Vals: []int{1}}
	p := buildPlan("in", 0, nil)
	ex := Executor{Cache: cache}
	ok := &ArtifactSpec{
		Capture: func() (Artifact, error) { return art, nil },
		Restore: func(Artifact) error { return nil },
	}
	if err := ex.Run(context.Background(), p, ok); err != nil {
		t.Fatal(err)
	}
	var ran []string
	p2 := buildPlan("in", 0, &ran)
	bad := &ArtifactSpec{
		Capture: func() (Artifact, error) { return art, nil },
		Restore: func(Artifact) error { return errors.New("shape mismatch") },
	}
	if err := ex.Run(context.Background(), p2, bad); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 {
		t.Fatalf("restore failure should recompute all stages, ran %v", ran)
	}
}

func TestCacheDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec()
	c1 := NewCache(CacheOptions{Dir: dir})
	c1.Put("aabbcc", &testArtifact{Vals: []int{1, 2, 3}}, codec)

	// A fresh cache over the same dir serves the entry from disk.
	c2 := NewCache(CacheOptions{Dir: dir})
	got, ok := c2.Get("aabbcc", codec)
	if !ok {
		t.Fatal("disk entry not found")
	}
	if v := got.(*testArtifact).Vals; len(v) != 3 || v[2] != 3 {
		t.Fatalf("round trip mangled artifact: %v", v)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want exactly one disk hit", st)
	}
	// The disk hit promotes to memory.
	if _, ok := c2.Get("aabbcc", codec); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("stats after promotion = %+v, want one memory hit", st)
	}
}

func TestCacheCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec()
	c := NewCache(CacheOptions{Dir: dir})
	c.Put("deadbeef", &testArtifact{Vals: []int{9}}, codec)

	// Flip a payload byte on disk.
	path := filepath.Join(dir, "de", "adbeef.f3dc")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := NewCache(CacheOptions{Dir: dir})
	if _, ok := fresh.Get("deadbeef", codec); ok {
		t.Fatal("corrupt entry served")
	}
	st := fresh.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want corrupt=1 misses=1", st)
	}

	// DecodeEntry reports the sentinel for direct probes.
	if _, err := DecodeEntry(data, codec); !errors.Is(err, errs.ErrCacheCorrupt) {
		t.Fatalf("err = %v, want ErrCacheCorrupt", err)
	}
}

func TestCacheVersionSkewIsMissNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec()
	c := NewCache(CacheOptions{Dir: dir})
	c.Put("cafe01", &testArtifact{Vals: []int{1}}, codec)

	newer := testCodec()
	newer.Version = 2
	fresh := NewCache(CacheOptions{Dir: dir})
	if _, ok := fresh.Get("cafe01", newer); ok {
		t.Fatal("entry from older codec version served")
	}
	st := fresh.Stats()
	if st.Corrupt != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want a clean miss (corrupt=0)", st)
	}
}

func TestCacheMemoryOnlyWithoutDir(t *testing.T) {
	c := NewCache(CacheOptions{})
	c.Put("k", &testArtifact{Vals: []int{5}}, testCodec())
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("missing", nil); ok {
		t.Fatal("phantom hit")
	}
	got, ok := c.Get("k", nil)
	if !ok || got.(*testArtifact).Vals[0] != 5 {
		t.Fatalf("memory get failed: %v %v", got, ok)
	}
}

// TestStatsHitRatio pins the HitRatio accessor: hits from memory and disk
// both count, the empty snapshot reads 0 (not NaN), and the String form
// carries the ratio for the -cachestats report.
func TestStatsHitRatio(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Errorf("empty HitRatio = %v, want 0", r)
	}
	s := Stats{Hits: 3, DiskHits: 1, Misses: 4}
	if r := s.HitRatio(); r != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", r)
	}
	if got := s.String(); !strings.Contains(got, "hit_ratio=0.500") {
		t.Errorf("String() = %q, want it to carry hit_ratio=0.500", got)
	}
}

// TestCacheStatsSnapshotUnderLoad drives concurrent Put/Get/Stats through
// the race detector: Stats must snapshot under the cache lock, never
// observe torn counters, and end exactly consistent with the operations
// performed.
func TestCacheStatsSnapshotUnderLoad(t *testing.T) {
	c := NewCache(CacheOptions{})
	const n = 64
	err := pool.Run(context.Background(), 8, n, func(_ context.Context, i int) error {
		key := fmt.Sprintf("k%d", i%8)
		c.Put(key, &testArtifact{Vals: []int{i}}, nil)
		c.Get(key, nil)
		st := c.Stats()
		if st.Hits < 0 || st.Stores < 0 || st.Entries < 0 || st.Entries > n {
			return fmt.Errorf("torn snapshot: %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Stores != n || st.Hits != n || st.Entries != 8 {
		t.Fatalf("final stats = %+v, want stores=%d hits=%d entries=8", st, n, n)
	}
}

// fakeTier is an in-memory CacheTier standing in for a network peer in
// tests: entries can be preloaded (warm peer), corrupted, or left absent.
type fakeTier struct {
	mu      sync.Mutex
	label   string
	entries map[string][]byte
	fetches int
	stores  int
}

func newFakeTier(label string) *fakeTier {
	return &fakeTier{label: label, entries: map[string][]byte{}}
}

func (f *fakeTier) Label() string { return f.label }

func (f *fakeTier) Fetch(key string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	entry, ok := f.entries[key]
	if !ok {
		return nil, fmt.Errorf("fakeTier: %q: %w", key, os.ErrNotExist)
	}
	return entry, nil
}

func (f *fakeTier) Store(key string, entry []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.entries[key] = append([]byte(nil), entry...)
	return nil
}

// TestCachePeerTierHit pins the network-tier path end to end: a miss in
// memory and disk falls through to the peer tier, the fetched entry
// restores byte-identically, counts as a PeerHit, promotes to memory, and
// writes back into the disk tier so the next process start stops there.
func TestCachePeerTierHit(t *testing.T) {
	codec := testCodec()
	peer := newFakeTier("peer")
	entry, err := EncodeEntry(&testArtifact{Vals: []int{7, 8, 9}}, codec)
	if err != nil {
		t.Fatal(err)
	}
	peer.entries["feed01"] = entry

	dir := t.TempDir()
	c := NewCache(CacheOptions{Dir: dir, Tiers: []CacheTier{peer}})
	got, ok := c.Get("feed01", codec)
	if !ok {
		t.Fatal("peer entry not found")
	}
	if v := got.(*testArtifact).Vals; len(v) != 3 || v[0] != 7 || v[2] != 9 {
		t.Fatalf("peer round trip mangled artifact: %v", v)
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.DiskHits != 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want exactly one peer hit", st)
	}
	if !strings.Contains(st.String(), "peer_hits=1") {
		t.Fatalf("String() = %q, want peer_hits=1", st.String())
	}
	// Write-back: a fresh cache over the same dir now hits disk, not peer.
	fresh := NewCache(CacheOptions{Dir: dir, Tiers: []CacheTier{peer}})
	if _, ok := fresh.Get("feed01", codec); !ok {
		t.Fatal("written-back entry missing from disk")
	}
	if st := fresh.Stats(); st.DiskHits != 1 || st.PeerHits != 0 {
		t.Fatalf("fresh stats = %+v, want the write-back served from disk", st)
	}
	// Promotion: the original cache serves from memory without refetching.
	before := peer.fetches
	if _, ok := c.Get("feed01", codec); !ok {
		t.Fatal("promoted entry missing")
	}
	if peer.fetches != before {
		t.Fatal("memory hit refetched from the peer tier")
	}
}

// TestCachePeerTierCorruptIsMiss mirrors the disk-spill corruption test
// for the network tier: a truncated or bit-flipped peer entry is a counted
// miss, never an error, and does not poison the cache.
func TestCachePeerTierCorruptIsMiss(t *testing.T) {
	codec := testCodec()
	entry, err := EncodeEntry(&testArtifact{Vals: []int{1}}, codec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bitflip":   append(append([]byte(nil), entry[:len(entry)-1]...), entry[len(entry)-1]^0xff),
		"truncated": entry[:len(entry)/2],
		"empty":     {},
		"garbage":   []byte("not a cache entry at all"),
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			peer := newFakeTier("peer")
			peer.entries["abc123"] = bad
			c := NewCache(CacheOptions{Tiers: []CacheTier{peer}})
			if _, ok := c.Get("abc123", codec); ok {
				t.Fatal("corrupt peer entry served")
			}
			st := c.Stats()
			if st.Misses != 1 {
				t.Fatalf("stats = %+v, want misses=1", st)
			}
			if name != "empty" && name != "truncated" && st.Corrupt != 1 {
				// Truncated-to-header and empty bodies also count corrupt;
				// assert the bit-flip and garbage cases explicitly.
				t.Fatalf("stats = %+v, want corrupt=1", st)
			}
		})
	}
}

// TestCacheEntryBytes pins the peer-serving path: EntryBytes returns the
// exact wire entry from the KeepWire copy or the disk spill, and never
// consults remote tiers (so peer lookups cannot cascade).
func TestCacheEntryBytes(t *testing.T) {
	codec := testCodec()
	art := &testArtifact{Vals: []int{4, 5}}
	want, err := EncodeEntry(art, codec)
	if err != nil {
		t.Fatal(err)
	}

	// KeepWire: served from memory, no disk needed.
	mem := NewCache(CacheOptions{KeepWire: true})
	mem.Put("aa11", art, codec)
	got, ok := mem.EntryBytes("aa11")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("KeepWire EntryBytes mismatch (ok=%v)", ok)
	}

	// Disk spill: served from the file even without KeepWire.
	disk := NewCache(CacheOptions{Dir: t.TempDir()})
	disk.Put("bb22", art, codec)
	got, ok = disk.EntryBytes("bb22")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("disk EntryBytes mismatch (ok=%v)", ok)
	}

	// Remote tiers are never consulted.
	peer := newFakeTier("peer")
	peer.entries["cc33"] = want
	remote := NewCache(CacheOptions{Tiers: []CacheTier{peer}})
	if _, ok := remote.EntryBytes("cc33"); ok {
		t.Fatal("EntryBytes consulted a remote tier")
	}
	if peer.fetches != 0 {
		t.Fatalf("EntryBytes fetched from the peer tier %d times", peer.fetches)
	}

	// Unknown key without any local copy.
	if _, ok := mem.EntryBytes("missing"); ok {
		t.Fatal("EntryBytes invented an entry")
	}
}
