package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"sync"

	"fold3d/internal/errs"
)

// Fingerprint is a hex-encoded SHA-256 content hash. Equal fingerprints mean
// byte-identical artifacts under the pipeline's determinism contract.
type Fingerprint string

// Hasher accumulates typed key material into a content hash. All writes are
// length-framed by type tag so that e.g. Str("ab"), Str("c") and Str("a"),
// Str("bc") hash differently. Key material streams straight into a running
// SHA-256 state — nothing is buffered, so hashing a whole netlist costs no
// allocation beyond the hasher itself.
type Hasher struct {
	h hash.Hash
	// buf batches the many small framed fields into fewer digest writes;
	// the byte stream entering SHA-256 is unchanged, only the call
	// granularity differs, so fingerprints are unaffected.
	buf [512]byte
	n   int
}

// NewHasher returns an empty hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (h *Hasher) flush() {
	if h.n > 0 {
		// hash.Hash.Write is documented to never return an error.
		_, _ = h.h.Write(h.buf[:h.n])
		h.n = 0
	}
}

func (h *Hasher) write(tag byte, payload []byte) {
	need := 9 + len(payload)
	if h.n+need > len(h.buf) {
		h.flush()
		if need > len(h.buf) {
			var hdr [9]byte
			hdr[0] = tag
			binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
			_, _ = h.h.Write(hdr[:])
			_, _ = h.h.Write(payload)
			return
		}
	}
	b := h.buf[h.n:]
	b[0] = tag
	binary.LittleEndian.PutUint64(b[1:9], uint64(len(payload)))
	copy(b[9:], payload)
	h.n += need
}

// Str mixes a string into the hash.
func (h *Hasher) Str(s string) { h.write('s', []byte(s)) }

// Int mixes a signed integer into the hash.
func (h *Hasher) Int(v int) { h.Uint(uint64(int64(v))) }

// writeScalar frames an 8-byte payload directly into the batch buffer —
// the same tag + length + payload bytes write would emit, without routing
// the value through a slice (whose backing array would escape to the heap
// on every call; these run once per hashed netlist field).
func (h *Hasher) writeScalar(tag byte, v uint64) {
	if h.n+17 > len(h.buf) {
		h.flush()
	}
	b := h.buf[h.n : h.n+17]
	b[0] = tag
	binary.LittleEndian.PutUint64(b[1:9], 8)
	binary.LittleEndian.PutUint64(b[9:17], v)
	h.n += 17
}

// Uint mixes an unsigned integer into the hash.
func (h *Hasher) Uint(v uint64) { h.writeScalar('u', v) }

// Bool mixes a boolean into the hash.
func (h *Hasher) Bool(v bool) {
	if h.n+10 > len(h.buf) {
		h.flush()
	}
	b := h.buf[h.n : h.n+10]
	b[0] = 'b'
	binary.LittleEndian.PutUint64(b[1:9], 1)
	b[9] = 0
	if v {
		b[9] = 1
	}
	h.n += 10
}

// F64 mixes a float64 into the hash by exact bit pattern (no decimal
// formatting, so -0 and 0 or two NaN payloads stay distinguishable and no
// rounding can alias two different values).
func (h *Hasher) F64(v float64) { h.writeScalar('f', math.Float64bits(v)) }

// Sum finalizes and returns the fingerprint. The hasher remains usable;
// further writes extend the same key material (Sum snapshots the running
// state without disturbing it).
func (h *Hasher) Sum() Fingerprint {
	h.flush()
	var d [sha256.Size]byte
	return Fingerprint(hex.EncodeToString(h.h.Sum(d[:0])))
}

// Artifact is a cacheable result. CloneArtifact must return a deep copy
// sharing no mutable state with the receiver; the cache clones on both Put
// and Get so entries can never alias live flow state.
type Artifact interface {
	CloneArtifact() Artifact
}

// Codec serializes artifacts for the lower cache tiers (disk spill, peer
// fetch). Kind and Version are written into the entry header and must match
// on read; bumping Version invalidates (as misses, not errors) every older
// entry of that kind.
type Codec struct {
	Kind    string
	Version int
	Encode  func(Artifact) ([]byte, error)
	Decode  func([]byte) (Artifact, error)
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits     int // artifact served from memory
	DiskHits int // artifact served from the on-disk spill
	PeerHits int // artifact served from a network tier (peer fetch)
	Misses   int // lookups that found nothing usable
	Stores   int // artifacts written into the cache
	Corrupt  int // tier entries rejected by header/checksum validation
	Evicted  int // memory entries dropped by the MaxBytes budget
	Entries  int // artifacts currently held in memory
}

// String renders the snapshot in the one-line form used by -cachestats.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk_hits=%d peer_hits=%d misses=%d stores=%d corrupt=%d evicted=%d entries=%d hit_ratio=%.3f",
		s.Hits, s.DiskHits, s.PeerHits, s.Misses, s.Stores, s.Corrupt, s.Evicted, s.Entries, s.HitRatio())
}

// HitRatio returns the fraction of lookups served from the cache (memory,
// disk or a peer) over all lookups, 0 when nothing has been looked up yet.
// It is the headline effectiveness number the fold3dd /metrics endpoint
// exports.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.DiskHits + s.PeerHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits+s.PeerHits) / float64(total)
}

// CacheTier is one storage tier below the in-memory map. Tiers traffic in
// the serialized wire entry (the versioned, checksummed layout documented
// at EncodeEntry), never in live artifacts: the cache validates and decodes
// centrally, so a corrupt or truncated tier entry — local disk or remote
// peer alike — is always a miss, never an error.
//
// Get consults tiers in order (disk before network); a hit is promoted to
// memory and written back into the earlier tiers. Store is best-effort: the
// memory entry is already in place, so a tier write failure costs only
// future warm starts.
type CacheTier interface {
	// Label names the tier for stats attribution and diagnostics; the
	// label "disk" counts hits under Stats.DiskHits, every other label
	// under Stats.PeerHits.
	Label() string
	// Fetch returns the raw wire entry stored under key. Any error means
	// the tier has nothing usable (absent entries conventionally return an
	// error wrapping os.ErrNotExist).
	Fetch(key string) ([]byte, error)
	// Store writes the wire entry under key, replacing any previous one.
	Store(key string, entry []byte) error
}

// DiskTier is the on-disk spill tier: one file per entry under a shard
// directory, written atomically via rename so the directory is safe to
// share between processes.
type DiskTier struct {
	dir string
}

// NewDiskTier returns a disk tier rooted at dir (created on first write).
func NewDiskTier(dir string) *DiskTier { return &DiskTier{dir: dir} }

// Label identifies the tier; the cache attributes its hits to DiskHits.
func (t *DiskTier) Label() string { return "disk" }

// Fetch reads the entry file for key.
func (t *DiskTier) Fetch(key string) ([]byte, error) {
	return os.ReadFile(t.entryPath(key))
}

// Store writes the entry file for key atomically (temp file + rename).
func (t *DiskTier) Store(key string, entry []byte) error {
	path := t.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, entry, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (t *DiskTier) entryPath(key string) string {
	// Keys are hex fingerprints, safe as filenames; shard by prefix so a
	// large cache does not put thousands of files in one directory.
	if len(key) > 2 {
		return filepath.Join(t.dir, key[:2], key[2:]+".f3dc")
	}
	return filepath.Join(t.dir, key+".f3dc")
}

// CacheOptions configures a Cache.
type CacheOptions struct {
	// Dir, when non-empty, enables the on-disk spill: every Put with a
	// codec also writes a versioned, checksummed file under Dir, and a
	// memory miss falls back to reading it. The directory is created on
	// first use and is safe to share across processes (entries are written
	// atomically via rename).
	Dir string
	// Tiers appends further (typically network) tiers consulted after
	// memory and the Dir spill, in order. A tier hit is promoted to memory
	// and written back into the earlier tiers. Tiers added here are never
	// consulted by EntryBytes, so a fleet node serving its cache to peers
	// cannot loop through its own peer tier.
	Tiers []CacheTier
	// KeepWire retains the serialized wire entry of every artifact stored
	// with a codec in memory alongside the decoded artifact, so EntryBytes
	// can serve peers without a disk spill. Costs roughly one encoded copy
	// per entry; fold3dd enables it when running with peers.
	KeepWire bool
	// MaxBytes, when positive, bounds the approximate decoded-artifact
	// bytes held in memory (the memory-budgeted execution mode). Put
	// evicts the oldest entries until the new one fits, and an artifact
	// larger than the whole budget is not held in memory at all — it still
	// spills to Dir when configured, so a later Get falls through to the
	// lower tiers. Eviction only moves where a lookup is served from (or
	// forces a recompute); results are fingerprint-identical either way.
	// Sizes come from ApproxBytes when the artifact implements Sizer and
	// fall back to the encoded wire length (or a fixed guess) otherwise.
	MaxBytes int64
}

// Sizer is optionally implemented by artifacts to report their approximate
// in-memory footprint, used by the MaxBytes cache budget.
type Sizer interface {
	ApproxBytes() int64
}

// Cache is a content-addressed artifact store, safe for concurrent use.
// Keys are plan fingerprints; values are deep clones of the artifacts. The
// lookup path runs memory → disk spill → network tiers; every tier below
// memory speaks the same wire entry format, and a corrupt entry anywhere is
// a counted miss, never an error.
type Cache struct {
	disk     *DiskTier // nil without a spill dir
	tiers    []CacheTier
	keepWire bool
	maxBytes int64 // 0 = unbounded

	mu      sync.Mutex
	entries map[string]Artifact
	wire    map[string][]byte // serialized entries, kept when keepWire
	sizes   map[string]int64  // approximate decoded size per memory entry
	order   []string          // insertion order, oldest first (FIFO eviction)
	total   int64             // sum of sizes
	stats   Stats
}

// NewCache returns an empty cache.
func NewCache(opts CacheOptions) *Cache {
	c := &Cache{
		keepWire: opts.KeepWire,
		maxBytes: opts.MaxBytes,
		entries:  map[string]Artifact{},
		wire:     map[string][]byte{},
		sizes:    map[string]int64{},
	}
	if opts.Dir != "" {
		c.disk = NewDiskTier(opts.Dir)
		c.tiers = append(c.tiers, c.disk)
	}
	c.tiers = append(c.tiers, opts.Tiers...)
	return c
}

// approxSize estimates an artifact's in-memory footprint for the budget.
func approxSize(art Artifact, wire []byte) int64 {
	if s, ok := art.(Sizer); ok {
		return s.ApproxBytes()
	}
	if wire != nil {
		return int64(len(wire))
	}
	return 1 << 10 // unknown artifact kind: count something, not nothing
}

// insertLocked adds art under key, evicting oldest entries as needed to
// respect the budget. Returns false (storing nothing) when the artifact
// alone exceeds the budget. Callers hold c.mu.
func (c *Cache) insertLocked(key string, art Artifact, wire []byte, size int64) bool {
	if c.maxBytes > 0 && size > c.maxBytes {
		return false
	}
	if _, ok := c.entries[key]; ok {
		// Overwrite: drop the old accounting; the slot keeps its FIFO age.
		c.total -= c.sizes[key]
	} else {
		c.order = append(c.order, key)
	}
	c.entries[key] = art
	c.sizes[key] = size
	c.total += size
	if c.keepWire && wire != nil {
		c.wire[key] = wire
	}
	if c.maxBytes > 0 {
		for c.total > c.maxBytes && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			if oldest == key {
				// Never evict the entry just inserted; re-append it.
				c.order = append(c.order, oldest)
				continue
			}
			if _, ok := c.entries[oldest]; !ok {
				continue // already overwritten out
			}
			c.total -= c.sizes[oldest]
			delete(c.entries, oldest)
			delete(c.sizes, oldest)
			delete(c.wire, oldest)
			c.stats.Evicted++
		}
	}
	return true
}

// Get looks the key up in memory, then (with a codec) through the lower
// tiers in order. The returned artifact is a fresh clone owned by the
// caller. A corrupt tier entry counts as a miss; a hit below memory is
// promoted to memory and written back into the tiers above it.
func (c *Cache) Get(key string, codec *Codec) (Artifact, bool) {
	c.mu.Lock()
	if art, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return art.CloneArtifact(), true
	}
	c.mu.Unlock()

	if codec != nil {
		// Tier fetches run unlocked: the disk read is cheap but a peer
		// fetch is a network round trip, and two goroutines racing the same
		// key simply promote identical content.
		for i, tier := range c.tiers {
			data, err := tier.Fetch(key)
			if err != nil {
				continue // nothing at this tier
			}
			art, derr := DecodeEntry(data, codec)
			if derr != nil {
				if isCorrupt(derr) {
					c.mu.Lock()
					c.stats.Corrupt++
					c.mu.Unlock()
				}
				continue // corrupt or version-skewed: a miss at this tier
			}
			// Write back into the faster tiers so the next lookup — and the
			// next process start — stops earlier.
			for _, upper := range c.tiers[:i] {
				_ = upper.Store(key, data)
			}
			size := approxSize(art, data)
			c.mu.Lock()
			if c.maxBytes <= 0 || size <= c.maxBytes {
				c.insertLocked(key, art.CloneArtifact(), data, size)
			}
			if tier.Label() == "disk" {
				c.stats.DiskHits++
			} else {
				c.stats.PeerHits++
			}
			c.stats.Entries = len(c.entries)
			c.mu.Unlock()
			return art, true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a deep clone of the artifact and, with a codec, encodes the
// wire entry for the lower tiers (and for EntryBytes when KeepWire is on).
// Tier write failures are swallowed: the memory entry is already in place
// and the spill is an optimization, not a durability promise.
func (c *Cache) Put(key string, art Artifact, codec *Codec) {
	var entry []byte
	if codec != nil && (len(c.tiers) > 0 || c.keepWire) {
		// Encode from the caller's artifact directly: Put returns before the
		// caller can mutate it again, and the bytes are the same as encoding
		// a clone would produce.
		entry, _ = EncodeEntry(art, codec)
	}
	size := approxSize(art, entry)
	overBudget := c.maxBytes > 0 && size > c.maxBytes
	var clone Artifact
	if !overBudget {
		// An artifact the budget will refuse anyway is never cloned — at
		// production scale that skips a deep netlist copy per stage.
		clone = art.CloneArtifact()
	}
	c.mu.Lock()
	if !overBudget {
		c.insertLocked(key, clone, entry, size)
	}
	c.stats.Stores++
	c.stats.Entries = len(c.entries)
	c.mu.Unlock()

	// Only the local spill receives writes; remote tiers fill by fetching
	// (a peer's artifact store is its own business).
	if entry != nil && c.disk != nil {
		_ = c.disk.Store(key, entry)
	}
}

// EntryBytes returns the serialized wire entry for key so a fleet node can
// serve its cache to peers. Only local state is consulted — the in-memory
// wire copy (with KeepWire) and the disk spill — never the network tiers,
// so peer-to-peer lookups cannot loop.
func (c *Cache) EntryBytes(key string) ([]byte, bool) {
	c.mu.Lock()
	entry, ok := c.wire[key]
	c.mu.Unlock()
	if ok {
		return entry, true
	}
	if c.disk != nil {
		if data, err := c.disk.Fetch(key); err == nil {
			return data, true
		}
	}
	return nil, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Wire entry layout (one cache entry as stored on disk or served to a
// peer):
//
//	magic "F3DC" | u32 schema | u32 codec version | u16 kind len | kind |
//	32-byte SHA-256 of payload | payload
//
// Everything before the payload is the header; any mismatch or a checksum
// failure yields an error wrapping errs.ErrCacheCorrupt (version skew is a
// plain miss — old entries after an upgrade are expected, not corruption).
var diskMagic = []byte("F3DC")

// EncodeEntry serializes the artifact into the wire entry format shared by
// every cache tier: the disk spill writes these bytes to a file, and the
// fold3dd /v1/artifacts endpoint serves them to peers verbatim, so a
// fetched artifact restores byte-identically no matter which tier provided
// it.
func EncodeEntry(art Artifact, codec *Codec) ([]byte, error) {
	payload, err := codec.Encode(art)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(diskMagic)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(SchemaVersion))
	buf.Write(n4[:])
	binary.LittleEndian.PutUint32(n4[:], uint32(codec.Version))
	buf.Write(n4[:])
	var n2 [2]byte
	binary.LittleEndian.PutUint16(n2[:], uint16(len(codec.Kind)))
	buf.Write(n2[:])
	buf.WriteString(codec.Kind)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)
	return buf.Bytes(), nil
}

// errVersionSkew distinguishes "entry from another schema/codec version"
// (an expected miss) from corruption (counted in stats).
var errVersionSkew = fmt.Errorf("pipeline: cache entry version skew")

// DecodeEntry validates a wire entry (magic, schema and codec version,
// kind, payload checksum) and decodes the artifact. Header or checksum
// mismatches return an error wrapping errs.ErrCacheCorrupt; schema or
// codec version skew returns a plain error (an expected miss). Callers
// classify with errors.Is.
func DecodeEntry(data []byte, codec *Codec) (Artifact, error) {
	corrupt := func(what string) error {
		return fmt.Errorf("pipeline: cache entry: %s: %w", what, errs.ErrCacheCorrupt)
	}
	if len(data) < len(diskMagic)+4+4+2 {
		return nil, corrupt("truncated header")
	}
	if !bytes.Equal(data[:4], diskMagic) {
		return nil, corrupt("bad magic")
	}
	schema := binary.LittleEndian.Uint32(data[4:8])
	cver := binary.LittleEndian.Uint32(data[8:12])
	klen := int(binary.LittleEndian.Uint16(data[12:14]))
	if len(data) < 14+klen+sha256.Size {
		return nil, corrupt("truncated header")
	}
	kind := string(data[14 : 14+klen])
	if schema != SchemaVersion || cver != uint32(codec.Version) {
		return nil, errVersionSkew
	}
	if kind != codec.Kind {
		return nil, corrupt(fmt.Sprintf("codec kind %q, want %q", kind, codec.Kind))
	}
	sumOff := 14 + klen
	payload := data[sumOff+sha256.Size:]
	want := data[sumOff : sumOff+sha256.Size]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return nil, corrupt("payload checksum mismatch")
	}
	art, err := codec.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: cache entry: decode: %v: %w", err, errs.ErrCacheCorrupt)
	}
	return art, nil
}

func isCorrupt(err error) bool { return errors.Is(err, errs.ErrCacheCorrupt) }
