package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"fold3d/internal/errs"
)

// Fingerprint is a hex-encoded SHA-256 content hash. Equal fingerprints mean
// byte-identical artifacts under the pipeline's determinism contract.
type Fingerprint string

// Hasher accumulates typed key material into a content hash. All writes are
// length-framed by type tag so that e.g. Str("ab"), Str("c") and Str("a"),
// Str("bc") hash differently.
type Hasher struct {
	buf bytes.Buffer
}

// NewHasher returns an empty hasher.
func NewHasher() *Hasher { return &Hasher{} }

func (h *Hasher) write(tag byte, payload []byte) {
	h.buf.WriteByte(tag)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	h.buf.Write(n[:])
	h.buf.Write(payload)
}

// Str mixes a string into the hash.
func (h *Hasher) Str(s string) { h.write('s', []byte(s)) }

// Int mixes a signed integer into the hash.
func (h *Hasher) Int(v int) { h.Uint(uint64(int64(v))) }

// Uint mixes an unsigned integer into the hash.
func (h *Hasher) Uint(v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	h.write('u', n[:])
}

// Bool mixes a boolean into the hash.
func (h *Hasher) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.write('b', []byte{b})
}

// F64 mixes a float64 into the hash by exact bit pattern (no decimal
// formatting, so -0 and 0 or two NaN payloads stay distinguishable and no
// rounding can alias two different values).
func (h *Hasher) F64(v float64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], math.Float64bits(v))
	h.write('f', n[:])
}

// Sum finalizes and returns the fingerprint. The hasher remains usable;
// further writes extend the same key material.
func (h *Hasher) Sum() Fingerprint {
	sum := sha256.Sum256(h.buf.Bytes())
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// Artifact is a cacheable result. CloneArtifact must return a deep copy
// sharing no mutable state with the receiver; the cache clones on both Put
// and Get so entries can never alias live flow state.
type Artifact interface {
	CloneArtifact() Artifact
}

// Codec serializes artifacts for the lower cache tiers (disk spill, peer
// fetch). Kind and Version are written into the entry header and must match
// on read; bumping Version invalidates (as misses, not errors) every older
// entry of that kind.
type Codec struct {
	Kind    string
	Version int
	Encode  func(Artifact) ([]byte, error)
	Decode  func([]byte) (Artifact, error)
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits     int // artifact served from memory
	DiskHits int // artifact served from the on-disk spill
	PeerHits int // artifact served from a network tier (peer fetch)
	Misses   int // lookups that found nothing usable
	Stores   int // artifacts written into the cache
	Corrupt  int // tier entries rejected by header/checksum validation
	Entries  int // artifacts currently held in memory
}

// String renders the snapshot in the one-line form used by -cachestats.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk_hits=%d peer_hits=%d misses=%d stores=%d corrupt=%d entries=%d hit_ratio=%.3f",
		s.Hits, s.DiskHits, s.PeerHits, s.Misses, s.Stores, s.Corrupt, s.Entries, s.HitRatio())
}

// HitRatio returns the fraction of lookups served from the cache (memory,
// disk or a peer) over all lookups, 0 when nothing has been looked up yet.
// It is the headline effectiveness number the fold3dd /metrics endpoint
// exports.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.DiskHits + s.PeerHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits+s.PeerHits) / float64(total)
}

// CacheTier is one storage tier below the in-memory map. Tiers traffic in
// the serialized wire entry (the versioned, checksummed layout documented
// at EncodeEntry), never in live artifacts: the cache validates and decodes
// centrally, so a corrupt or truncated tier entry — local disk or remote
// peer alike — is always a miss, never an error.
//
// Get consults tiers in order (disk before network); a hit is promoted to
// memory and written back into the earlier tiers. Store is best-effort: the
// memory entry is already in place, so a tier write failure costs only
// future warm starts.
type CacheTier interface {
	// Label names the tier for stats attribution and diagnostics; the
	// label "disk" counts hits under Stats.DiskHits, every other label
	// under Stats.PeerHits.
	Label() string
	// Fetch returns the raw wire entry stored under key. Any error means
	// the tier has nothing usable (absent entries conventionally return an
	// error wrapping os.ErrNotExist).
	Fetch(key string) ([]byte, error)
	// Store writes the wire entry under key, replacing any previous one.
	Store(key string, entry []byte) error
}

// DiskTier is the on-disk spill tier: one file per entry under a shard
// directory, written atomically via rename so the directory is safe to
// share between processes.
type DiskTier struct {
	dir string
}

// NewDiskTier returns a disk tier rooted at dir (created on first write).
func NewDiskTier(dir string) *DiskTier { return &DiskTier{dir: dir} }

// Label identifies the tier; the cache attributes its hits to DiskHits.
func (t *DiskTier) Label() string { return "disk" }

// Fetch reads the entry file for key.
func (t *DiskTier) Fetch(key string) ([]byte, error) {
	return os.ReadFile(t.entryPath(key))
}

// Store writes the entry file for key atomically (temp file + rename).
func (t *DiskTier) Store(key string, entry []byte) error {
	path := t.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, entry, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (t *DiskTier) entryPath(key string) string {
	// Keys are hex fingerprints, safe as filenames; shard by prefix so a
	// large cache does not put thousands of files in one directory.
	if len(key) > 2 {
		return filepath.Join(t.dir, key[:2], key[2:]+".f3dc")
	}
	return filepath.Join(t.dir, key+".f3dc")
}

// CacheOptions configures a Cache.
type CacheOptions struct {
	// Dir, when non-empty, enables the on-disk spill: every Put with a
	// codec also writes a versioned, checksummed file under Dir, and a
	// memory miss falls back to reading it. The directory is created on
	// first use and is safe to share across processes (entries are written
	// atomically via rename).
	Dir string
	// Tiers appends further (typically network) tiers consulted after
	// memory and the Dir spill, in order. A tier hit is promoted to memory
	// and written back into the earlier tiers. Tiers added here are never
	// consulted by EntryBytes, so a fleet node serving its cache to peers
	// cannot loop through its own peer tier.
	Tiers []CacheTier
	// KeepWire retains the serialized wire entry of every artifact stored
	// with a codec in memory alongside the decoded artifact, so EntryBytes
	// can serve peers without a disk spill. Costs roughly one encoded copy
	// per entry; fold3dd enables it when running with peers.
	KeepWire bool
}

// Cache is a content-addressed artifact store, safe for concurrent use.
// Keys are plan fingerprints; values are deep clones of the artifacts. The
// lookup path runs memory → disk spill → network tiers; every tier below
// memory speaks the same wire entry format, and a corrupt entry anywhere is
// a counted miss, never an error.
type Cache struct {
	disk     *DiskTier // nil without a spill dir
	tiers    []CacheTier
	keepWire bool

	mu      sync.Mutex
	entries map[string]Artifact
	wire    map[string][]byte // serialized entries, kept when keepWire
	stats   Stats
}

// NewCache returns an empty cache.
func NewCache(opts CacheOptions) *Cache {
	c := &Cache{
		keepWire: opts.KeepWire,
		entries:  map[string]Artifact{},
		wire:     map[string][]byte{},
	}
	if opts.Dir != "" {
		c.disk = NewDiskTier(opts.Dir)
		c.tiers = append(c.tiers, c.disk)
	}
	c.tiers = append(c.tiers, opts.Tiers...)
	return c
}

// Get looks the key up in memory, then (with a codec) through the lower
// tiers in order. The returned artifact is a fresh clone owned by the
// caller. A corrupt tier entry counts as a miss; a hit below memory is
// promoted to memory and written back into the tiers above it.
func (c *Cache) Get(key string, codec *Codec) (Artifact, bool) {
	c.mu.Lock()
	if art, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return art.CloneArtifact(), true
	}
	c.mu.Unlock()

	if codec != nil {
		// Tier fetches run unlocked: the disk read is cheap but a peer
		// fetch is a network round trip, and two goroutines racing the same
		// key simply promote identical content.
		for i, tier := range c.tiers {
			data, err := tier.Fetch(key)
			if err != nil {
				continue // nothing at this tier
			}
			art, derr := DecodeEntry(data, codec)
			if derr != nil {
				if isCorrupt(derr) {
					c.mu.Lock()
					c.stats.Corrupt++
					c.mu.Unlock()
				}
				continue // corrupt or version-skewed: a miss at this tier
			}
			// Write back into the faster tiers so the next lookup — and the
			// next process start — stops earlier.
			for _, upper := range c.tiers[:i] {
				_ = upper.Store(key, data)
			}
			c.mu.Lock()
			c.entries[key] = art.CloneArtifact()
			if c.keepWire {
				c.wire[key] = data
			}
			if tier.Label() == "disk" {
				c.stats.DiskHits++
			} else {
				c.stats.PeerHits++
			}
			c.stats.Entries = len(c.entries)
			c.mu.Unlock()
			return art, true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a deep clone of the artifact and, with a codec, encodes the
// wire entry for the lower tiers (and for EntryBytes when KeepWire is on).
// Tier write failures are swallowed: the memory entry is already in place
// and the spill is an optimization, not a durability promise.
func (c *Cache) Put(key string, art Artifact, codec *Codec) {
	clone := art.CloneArtifact()
	var entry []byte
	if codec != nil && (len(c.tiers) > 0 || c.keepWire) {
		entry, _ = EncodeEntry(clone, codec)
	}
	c.mu.Lock()
	c.entries[key] = clone
	if c.keepWire && entry != nil {
		c.wire[key] = entry
	}
	c.stats.Stores++
	c.stats.Entries = len(c.entries)
	c.mu.Unlock()

	// Only the local spill receives writes; remote tiers fill by fetching
	// (a peer's artifact store is its own business).
	if entry != nil && c.disk != nil {
		_ = c.disk.Store(key, entry)
	}
}

// EntryBytes returns the serialized wire entry for key so a fleet node can
// serve its cache to peers. Only local state is consulted — the in-memory
// wire copy (with KeepWire) and the disk spill — never the network tiers,
// so peer-to-peer lookups cannot loop.
func (c *Cache) EntryBytes(key string) ([]byte, bool) {
	c.mu.Lock()
	entry, ok := c.wire[key]
	c.mu.Unlock()
	if ok {
		return entry, true
	}
	if c.disk != nil {
		if data, err := c.disk.Fetch(key); err == nil {
			return data, true
		}
	}
	return nil, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Wire entry layout (one cache entry as stored on disk or served to a
// peer):
//
//	magic "F3DC" | u32 schema | u32 codec version | u16 kind len | kind |
//	32-byte SHA-256 of payload | payload
//
// Everything before the payload is the header; any mismatch or a checksum
// failure yields an error wrapping errs.ErrCacheCorrupt (version skew is a
// plain miss — old entries after an upgrade are expected, not corruption).
var diskMagic = []byte("F3DC")

// EncodeEntry serializes the artifact into the wire entry format shared by
// every cache tier: the disk spill writes these bytes to a file, and the
// fold3dd /v1/artifacts endpoint serves them to peers verbatim, so a
// fetched artifact restores byte-identically no matter which tier provided
// it.
func EncodeEntry(art Artifact, codec *Codec) ([]byte, error) {
	payload, err := codec.Encode(art)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(diskMagic)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(SchemaVersion))
	buf.Write(n4[:])
	binary.LittleEndian.PutUint32(n4[:], uint32(codec.Version))
	buf.Write(n4[:])
	var n2 [2]byte
	binary.LittleEndian.PutUint16(n2[:], uint16(len(codec.Kind)))
	buf.Write(n2[:])
	buf.WriteString(codec.Kind)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)
	return buf.Bytes(), nil
}

// errVersionSkew distinguishes "entry from another schema/codec version"
// (an expected miss) from corruption (counted in stats).
var errVersionSkew = fmt.Errorf("pipeline: cache entry version skew")

// DecodeEntry validates a wire entry (magic, schema and codec version,
// kind, payload checksum) and decodes the artifact. Header or checksum
// mismatches return an error wrapping errs.ErrCacheCorrupt; schema or
// codec version skew returns a plain error (an expected miss). Callers
// classify with errors.Is.
func DecodeEntry(data []byte, codec *Codec) (Artifact, error) {
	corrupt := func(what string) error {
		return fmt.Errorf("pipeline: cache entry: %s: %w", what, errs.ErrCacheCorrupt)
	}
	if len(data) < len(diskMagic)+4+4+2 {
		return nil, corrupt("truncated header")
	}
	if !bytes.Equal(data[:4], diskMagic) {
		return nil, corrupt("bad magic")
	}
	schema := binary.LittleEndian.Uint32(data[4:8])
	cver := binary.LittleEndian.Uint32(data[8:12])
	klen := int(binary.LittleEndian.Uint16(data[12:14]))
	if len(data) < 14+klen+sha256.Size {
		return nil, corrupt("truncated header")
	}
	kind := string(data[14 : 14+klen])
	if schema != SchemaVersion || cver != uint32(codec.Version) {
		return nil, errVersionSkew
	}
	if kind != codec.Kind {
		return nil, corrupt(fmt.Sprintf("codec kind %q, want %q", kind, codec.Kind))
	}
	sumOff := 14 + klen
	payload := data[sumOff+sha256.Size:]
	want := data[sumOff : sumOff+sha256.Size]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return nil, corrupt("payload checksum mismatch")
	}
	art, err := codec.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: cache entry: decode: %v: %w", err, errs.ErrCacheCorrupt)
	}
	return art, nil
}

func isCorrupt(err error) bool { return errors.Is(err, errs.ErrCacheCorrupt) }
