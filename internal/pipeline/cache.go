package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"fold3d/internal/errs"
)

// Fingerprint is a hex-encoded SHA-256 content hash. Equal fingerprints mean
// byte-identical artifacts under the pipeline's determinism contract.
type Fingerprint string

// Hasher accumulates typed key material into a content hash. All writes are
// length-framed by type tag so that e.g. Str("ab"), Str("c") and Str("a"),
// Str("bc") hash differently.
type Hasher struct {
	buf bytes.Buffer
}

// NewHasher returns an empty hasher.
func NewHasher() *Hasher { return &Hasher{} }

func (h *Hasher) write(tag byte, payload []byte) {
	h.buf.WriteByte(tag)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	h.buf.Write(n[:])
	h.buf.Write(payload)
}

// Str mixes a string into the hash.
func (h *Hasher) Str(s string) { h.write('s', []byte(s)) }

// Int mixes a signed integer into the hash.
func (h *Hasher) Int(v int) { h.Uint(uint64(int64(v))) }

// Uint mixes an unsigned integer into the hash.
func (h *Hasher) Uint(v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	h.write('u', n[:])
}

// Bool mixes a boolean into the hash.
func (h *Hasher) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.write('b', []byte{b})
}

// F64 mixes a float64 into the hash by exact bit pattern (no decimal
// formatting, so -0 and 0 or two NaN payloads stay distinguishable and no
// rounding can alias two different values).
func (h *Hasher) F64(v float64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], math.Float64bits(v))
	h.write('f', n[:])
}

// Sum finalizes and returns the fingerprint. The hasher remains usable;
// further writes extend the same key material.
func (h *Hasher) Sum() Fingerprint {
	sum := sha256.Sum256(h.buf.Bytes())
	return Fingerprint(hex.EncodeToString(sum[:]))
}

// Artifact is a cacheable result. CloneArtifact must return a deep copy
// sharing no mutable state with the receiver; the cache clones on both Put
// and Get so entries can never alias live flow state.
type Artifact interface {
	CloneArtifact() Artifact
}

// Codec serializes artifacts for the on-disk spill. Kind and Version are
// written into the entry header and must match on read; bumping Version
// invalidates (as misses, not errors) every older on-disk entry of that
// kind.
type Codec struct {
	Kind    string
	Version int
	Encode  func(Artifact) ([]byte, error)
	Decode  func([]byte) (Artifact, error)
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits     int // artifact served from memory
	DiskHits int // artifact served from the on-disk spill
	Misses   int // lookups that found nothing usable
	Stores   int // artifacts written into the cache
	Corrupt  int // on-disk entries rejected by header/checksum validation
	Entries  int // artifacts currently held in memory
}

// String renders the snapshot in the one-line form used by -cachestats.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk_hits=%d misses=%d stores=%d corrupt=%d entries=%d hit_ratio=%.3f",
		s.Hits, s.DiskHits, s.Misses, s.Stores, s.Corrupt, s.Entries, s.HitRatio())
}

// HitRatio returns the fraction of lookups served from the cache (memory
// or disk) over all lookups, 0 when nothing has been looked up yet. It is
// the headline effectiveness number the fold3dd /metrics endpoint exports.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(total)
}

// CacheOptions configures a Cache.
type CacheOptions struct {
	// Dir, when non-empty, enables the on-disk spill: every Put with a
	// codec also writes a versioned, checksummed file under Dir, and a
	// memory miss falls back to reading it. The directory is created on
	// first use and is safe to share across processes (entries are written
	// atomically via rename).
	Dir string
}

// Cache is a content-addressed artifact store, safe for concurrent use.
// Keys are plan fingerprints; values are deep clones of the artifacts.
type Cache struct {
	dir string

	mu      sync.Mutex
	entries map[string]Artifact
	stats   Stats
}

// NewCache returns an empty cache.
func NewCache(opts CacheOptions) *Cache {
	return &Cache{dir: opts.Dir, entries: map[string]Artifact{}}
}

// Get looks the key up in memory, then (with a codec and a spill dir) on
// disk. The returned artifact is a fresh clone owned by the caller. A
// corrupt disk entry counts as a miss.
func (c *Cache) Get(key string, codec *Codec) (Artifact, bool) {
	c.mu.Lock()
	if art, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return art.CloneArtifact(), true
	}
	c.mu.Unlock()

	if c.dir != "" && codec != nil {
		art, err := readDiskEntry(c.entryPath(key), codec)
		c.mu.Lock()
		defer c.mu.Unlock()
		if err == nil {
			c.stats.DiskHits++
			// Promote to memory so the next Get is cheap; keep our own clone
			// since the caller gets the decoded value.
			c.entries[key] = art.CloneArtifact()
			c.stats.Entries = len(c.entries)
			return art, true
		}
		if isCorrupt(err) {
			c.stats.Corrupt++
		}
		c.stats.Misses++
		return nil, false
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a deep clone of the artifact and, with a codec and a spill
// dir, writes the disk entry. Disk write failures are swallowed: the memory
// entry is already in place and the spill is an optimization, not a
// durability promise.
func (c *Cache) Put(key string, art Artifact, codec *Codec) {
	clone := art.CloneArtifact()
	c.mu.Lock()
	c.entries[key] = clone
	c.stats.Stores++
	c.stats.Entries = len(c.entries)
	c.mu.Unlock()

	if c.dir != "" && codec != nil {
		_ = writeDiskEntry(c.entryPath(key), clone, codec)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) entryPath(key string) string {
	// Keys are hex fingerprints, safe as filenames; shard by prefix so a
	// large cache does not put thousands of files in one directory.
	if len(key) > 2 {
		return filepath.Join(c.dir, key[:2], key[2:]+".f3dc")
	}
	return filepath.Join(c.dir, key+".f3dc")
}

// Disk entry layout:
//
//	magic "F3DC" | u32 schema | u32 codec version | u16 kind len | kind |
//	32-byte SHA-256 of payload | payload
//
// Everything before the payload is the header; any mismatch or a checksum
// failure yields an error wrapping errs.ErrCacheCorrupt (version skew is a
// plain miss — old entries after an upgrade are expected, not corruption).
var diskMagic = []byte("F3DC")

func writeDiskEntry(path string, art Artifact, codec *Codec) error {
	payload, err := codec.Encode(art)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(diskMagic)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(SchemaVersion))
	buf.Write(n4[:])
	binary.LittleEndian.PutUint32(n4[:], uint32(codec.Version))
	buf.Write(n4[:])
	var n2 [2]byte
	binary.LittleEndian.PutUint16(n2[:], uint16(len(codec.Kind)))
	buf.Write(n2[:])
	buf.WriteString(codec.Kind)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// errVersionSkew distinguishes "entry from another schema/codec version"
// (an expected miss) from corruption (counted in stats).
var errVersionSkew = fmt.Errorf("pipeline: cache entry version skew")

func readDiskEntry(path string, codec *Codec) (Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err // plain miss: no entry on disk
	}
	corrupt := func(what string) error {
		return fmt.Errorf("pipeline: %s: %s: %w", path, what, errs.ErrCacheCorrupt)
	}
	if len(data) < len(diskMagic)+4+4+2 {
		return nil, corrupt("truncated header")
	}
	if !bytes.Equal(data[:4], diskMagic) {
		return nil, corrupt("bad magic")
	}
	schema := binary.LittleEndian.Uint32(data[4:8])
	cver := binary.LittleEndian.Uint32(data[8:12])
	klen := int(binary.LittleEndian.Uint16(data[12:14]))
	if len(data) < 14+klen+sha256.Size {
		return nil, corrupt("truncated header")
	}
	kind := string(data[14 : 14+klen])
	if schema != SchemaVersion || cver != uint32(codec.Version) {
		return nil, errVersionSkew
	}
	if kind != codec.Kind {
		return nil, corrupt(fmt.Sprintf("codec kind %q, want %q", kind, codec.Kind))
	}
	sumOff := 14 + klen
	payload := data[sumOff+sha256.Size:]
	want := data[sumOff : sumOff+sha256.Size]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return nil, corrupt("payload checksum mismatch")
	}
	art, err := codec.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: decode: %v: %w", path, err, errs.ErrCacheCorrupt)
	}
	return art, nil
}

func isCorrupt(err error) bool { return errors.Is(err, errs.ErrCacheCorrupt) }
