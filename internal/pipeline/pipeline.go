// Package pipeline is the stage-graph engine of the fold3d flow: it turns
// the formerly monolithic build into an explicit dependency DAG of typed
// stages, each with a deterministic input fingerprint, and backs the graph
// with a content-addressed artifact cache so that identical work — the same
// stage over the same inputs under the same configuration and seed stream —
// is computed once and reused, across worker counts, design styles and
// whole experiment runs.
//
// The model has three pieces:
//
//   - Stage: one named pass (floorplan, place, extract, STA, ...) with a Run
//     function and a Key function that feeds exactly the configuration the
//     stage reads into the fingerprint. Stages never call each other; they
//     are registered into a Plan and invoked only by the Executor (the
//     fold3dlint PipelineOnly rule enforces this in internal/flow).
//
//   - Plan: an ordered DAG of stages over one input artifact. Fingerprints
//     chain: a stage's fingerprint is a content hash of (schema version,
//     stage name, the stage's key material, the fingerprints of its
//     upstream stages — or the plan input for root stages). The fingerprint
//     of the plan's sink stages is the cache key of the plan's output
//     artifact, so any change to any upstream input, option or code version
//     produces a different key.
//
//   - Executor: runs a plan. With a cache attached and an ArtifactSpec
//     declared, a cache hit restores the artifact without running any stage;
//     a miss runs every stage in registration order (registration order is a
//     topological order by construction — a stage's dependencies must be
//     added before it) and stores the captured artifact. A restored artifact
//     is byte-identical to recomputation; the flow's TestCacheEquivalence
//     property test pins that down end to end.
//
// Determinism rules carried over from the rest of the repo: the executor
// spawns no goroutines (parallelism stays in internal/pool at the plan
// fan-out level), runs stages in a fixed order, and checks cancellation
// between stages exactly like the legacy flow checked it between phases.
package pipeline

import (
	"context"
	"fmt"

	"fold3d/internal/pool"
)

// SchemaVersion is folded into every fingerprint and into the on-disk
// artifact header. Bump it whenever a stage's semantics, an artifact
// layout, or the hashing recipe changes, so stale cache entries (in memory
// across library updates cannot happen, but on disk they can) miss instead
// of resurfacing results of older code.
const SchemaVersion = 1

// Stage is one registered pass of a plan.
type Stage struct {
	// Name identifies the stage within its plan and is folded into the
	// fingerprint chain.
	Name string
	// After lists the names of stages this stage depends on. Every listed
	// stage must already be registered in the plan. Stages with an empty
	// After depend on the plan input.
	After []string
	// Key writes the configuration material this stage actually reads
	// (options, seeds, mode flags) into the hasher. It must be exhaustive:
	// any input that can change the stage's output and is not already part
	// of the plan input or an upstream artifact belongs here. A nil Key
	// contributes only the stage name.
	Key func(h *Hasher)
	// Run performs the work. It must be deterministic given the fingerprint
	// inputs. Run is invoked only by the Executor.
	Run func(ctx context.Context) error
}

// Plan is an ordered DAG of stages over one input artifact.
type Plan struct {
	// Name labels the plan (diagnostics only; not part of fingerprints, so
	// identical work under different labels still shares cache entries).
	Name string

	stages []Stage
	index  map[string]int
	input  Fingerprint
}

// NewPlan returns an empty plan with the given diagnostic name.
func NewPlan(name string) *Plan {
	return &Plan{Name: name, index: map[string]int{}}
}

// SetInput fixes the fingerprint of the plan's input artifact (for the
// flow: the content hash of the block netlist plus the seed stream id).
// Root stages chain from it.
func (p *Plan) SetInput(fp Fingerprint) { p.input = fp }

// Add registers a stage. Dependencies must already be registered — this
// makes registration order a valid topological order and rules out cycles
// by construction.
func (p *Plan) Add(s Stage) error {
	if s.Name == "" {
		return fmt.Errorf("pipeline: plan %s: stage with empty name", p.Name)
	}
	if _, dup := p.index[s.Name]; dup {
		return fmt.Errorf("pipeline: plan %s: duplicate stage %q", p.Name, s.Name)
	}
	if s.Run == nil {
		return fmt.Errorf("pipeline: plan %s: stage %q has no Run", p.Name, s.Name)
	}
	for _, dep := range s.After {
		if _, ok := p.index[dep]; !ok {
			return fmt.Errorf("pipeline: plan %s: stage %q depends on unregistered %q", p.Name, s.Name, dep)
		}
	}
	p.index[s.Name] = len(p.stages)
	p.stages = append(p.stages, s)
	return nil
}

// MustAdd is Add for statically-known stage tables, where a registration
// error is a programming bug caught by the first test that builds the plan.
func (p *Plan) MustAdd(s Stage) {
	if err := p.Add(s); err != nil {
		panic(err)
	}
}

// Stages returns the registered stage names in execution order.
func (p *Plan) Stages() []string {
	out := make([]string, len(p.stages))
	for i := range p.stages {
		out[i] = p.stages[i].Name
	}
	return out
}

// Fingerprint computes the plan's cache key: the chained content hash of
// every stage (schema version, stage name, key material, upstream
// fingerprints) reduced over the sink stages. Two plans have equal
// fingerprints iff they would compute byte-identical artifacts.
func (p *Plan) Fingerprint() Fingerprint {
	fps := make([]Fingerprint, len(p.stages))
	isDep := make([]bool, len(p.stages))
	for i := range p.stages {
		s := &p.stages[i]
		h := NewHasher()
		h.Int(SchemaVersion)
		h.Str(s.Name)
		if s.Key != nil {
			s.Key(h)
		}
		if len(s.After) == 0 {
			h.Str(string(p.input))
		}
		for _, dep := range s.After {
			di := p.index[dep]
			isDep[di] = true
			h.Str(string(fps[di]))
		}
		fps[i] = h.Sum()
	}
	// Reduce over sinks (stages no other stage depends on) in registration
	// order, so every stage's fingerprint reaches the key through some path.
	h := NewHasher()
	h.Int(SchemaVersion)
	for i := range p.stages {
		if !isDep[i] {
			h.Str(string(fps[i]))
		}
	}
	return h.Sum()
}

// ArtifactSpec declares how a plan's output is captured into the cache and
// restored from it. A nil spec (or a nil Executor cache) runs the plan
// uncached.
type ArtifactSpec struct {
	// Codec serializes the artifact for the on-disk spill; nil keeps the
	// artifact memory-only.
	Codec *Codec
	// Capture builds the cacheable artifact after a successful cold run.
	// The cache clones it on store, so Capture may return live state.
	Capture func() (Artifact, error)
	// Restore installs a cache hit. The artifact is a fresh clone owned by
	// the callee. A Restore error falls back to recomputation.
	Restore func(Artifact) error
}

// Executor runs plans against an optional shared artifact cache.
type Executor struct {
	// Cache, when non-nil, is consulted before running a plan with an
	// ArtifactSpec and filled after a cold run. The cache is safe for
	// concurrent use, so one Executor value per call site is fine.
	Cache *Cache
}

// Run executes the plan. With a cache and spec, a hit restores the cached
// artifact and runs nothing; a miss (or a failed restore) runs every stage
// in registration order with a cancellation check between stages, then
// captures and stores the artifact.
func (e *Executor) Run(ctx context.Context, p *Plan, spec *ArtifactSpec) error {
	var key Fingerprint
	cached := e.Cache != nil && spec != nil
	if cached {
		key = p.Fingerprint()
		if art, ok := e.Cache.Get(string(key), spec.Codec); ok {
			if err := spec.Restore(art); err == nil {
				return nil
			}
			// A restore failure means the artifact (or its decode) does not
			// fit this plan; recompute. The cold path below overwrites the
			// entry with a freshly captured artifact.
		}
	}
	for i := range p.stages {
		if err := pool.Canceled(ctx); err != nil {
			return err
		}
		if err := p.stages[i].Run(ctx); err != nil {
			return err
		}
	}
	if cached && spec.Capture != nil {
		art, err := spec.Capture()
		if err != nil {
			return fmt.Errorf("pipeline: plan %s: capturing artifact: %w", p.Name, err)
		}
		e.Cache.Put(string(key), art, spec.Codec)
	}
	return nil
}
