// Package floorplan places blocks on the chip. It provides two planners:
//
//   - a user-defined row plan (the paper arranges the T2's regular block
//     arrays by hand and modified the 3D floorplanner of Kim et al. [5] to
//     accept such user plans);
//   - a sequence-pair simulated-annealing floorplanner for irregular block
//     sets, used as the automatic fallback and exercised by tests.
//
// It also plans the inter-block TSV arrays of F2B chip stacks (TSVs live
// outside blocks, in the channels) and assigns block I/O port locations from
// the chip-level bundle connectivity — the mechanism that fragments the 2D
// CCX placement in the paper (§4.3): a block's ports face its floorplan
// neighbors, and its cells follow the ports.
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
)

// Shape is a block to place: footprint and die assignment.
type Shape struct {
	Name string
	W, H float64
	Die  netlist.Die
	// Both reports a folded block occupying the same XY region on both dies.
	Both bool
}

// Placed is one placed block.
type Placed struct {
	Name string
	Rect geom.Rect
	Die  netlist.Die
	Both bool
}

// TSVArray is one inter-block TSV bank placed in a channel.
type TSVArray struct {
	Rect  geom.Rect
	Count int
	// Bundle names the connection this array serves ("SPC0-L2T0").
	Bundle string
}

// Floorplan is the chip-level placement result.
type Floorplan struct {
	// Outline is the chip outline (identical for both dies of a stack).
	Outline geom.Rect
	Blocks  map[string]*Placed
	Arrays  []TSVArray
}

// NumTSV returns the total inter-block TSV count.
func (fp *Floorplan) NumTSV() int {
	n := 0
	for _, a := range fp.Arrays {
		n += a.Count
	}
	return n
}

// Find returns the placement of a block.
func (fp *Floorplan) Find(name string) (*Placed, error) {
	p, ok := fp.Blocks[name]
	if !ok {
		return nil, fmt.Errorf("floorplan: unknown block %q", name)
	}
	return p, nil
}

// Row is one row of a user-defined plan: block names laid left to right.
type Row struct {
	Names []string
}

// RowPlan builds a floorplan from explicit per-die rows (bottom row first).
// Blocks are centered within their row; rows are separated by channel µm of
// routing/TSV space; the chip outline is the union of both dies plus a
// boundary channel. Shapes marked Both are placed once and mirrored to both
// dies.
func RowPlan(shapes map[string]Shape, rows [2][]Row, channel float64) (*Floorplan, error) {
	fp := &Floorplan{Blocks: make(map[string]*Placed)}
	var chipW, chipH [2]float64

	// First pass: row dimensions per die.
	for die := 0; die < 2; die++ {
		var w, h float64
		for _, row := range rows[die] {
			var rw, rh float64
			for _, name := range row.Names {
				s, ok := shapes[name]
				if !ok {
					return nil, fmt.Errorf("floorplan: row plan references unknown block %q", name)
				}
				rw += s.W + channel
				if s.H > rh {
					rh = s.H
				}
			}
			if rw > w {
				w = rw
			}
			h += rh + channel
		}
		chipW[die], chipH[die] = w+channel, h+channel
	}
	total := 0
	for die := 0; die < 2; die++ {
		for _, r := range rows[die] {
			total += len(r.Names)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("floorplan: empty row plan")
	}
	W := math.Max(chipW[0], chipW[1])
	H := math.Max(chipH[0], chipH[1])
	fp.Outline = geom.NewRect(0, 0, W, H)

	// Second pass: place blocks, centering each row.
	for die := 0; die < 2; die++ {
		y := channel
		for _, row := range rows[die] {
			var rw, rh float64
			for _, name := range row.Names {
				s := shapes[name]
				rw += s.W + channel
				if s.H > rh {
					rh = s.H
				}
			}
			x := (W - rw + channel) / 2
			for _, name := range row.Names {
				s := shapes[name]
				if prev, dup := fp.Blocks[name]; dup && !prev.Both {
					return nil, fmt.Errorf("floorplan: block %q placed twice", name)
				}
				fp.Blocks[name] = &Placed{
					Name: name,
					Rect: geom.RectWH(x, y+(rh-s.H)/2, s.W, s.H),
					Die:  netlist.Die(die),
					Both: s.Both,
				}
				x += s.W + channel
			}
			y += rh + channel
		}
	}
	return fp, nil
}

// Bundle is a chip-level connection of Width wires from block A to block B
// (A-side ports are outputs, B-side ports are inputs).
type Bundle struct {
	A, B  string
	Width int
	// GroupA and GroupB name the instance group (FUB / crossbar half) inside
	// each block that the bundle's wires attach to; empty means any. This is
	// how the T2 model expresses that SPC->CCX traffic lands on the PCX half
	// and CCX->SPC traffic leaves the CPX half.
	GroupA, GroupB string
	// Activity annotates the bundle's switching activity.
	Activity float64
}

// Name returns the canonical bundle label.
func (b Bundle) Name() string { return b.A + "-" + b.B }

// PlanTSVArrayOptions sizes inter-block TSV arrays.
type PlanTSVArrayOptions struct {
	// PitchDrawn is the drawn TSV pitch (place.TSVPlanOptions.DrawnPitch).
	PitchDrawn float64
}

// PlanInterblockTSVs places one TSV array per die-crossing bundle, outside
// every block (the paper treats TSV arrays as additional floorplan blocks).
// The array wants to sit at the midpoint of its two blocks; if that point is
// inside a block it slides to the nearest channel space.
func PlanInterblockTSVs(fp *Floorplan, bundles []Bundle, opt PlanTSVArrayOptions) error {
	if opt.PitchDrawn <= 0 {
		return fmt.Errorf("floorplan: non-positive TSV pitch")
	}
	for _, bu := range bundles {
		pa, err := fp.Find(bu.A)
		if err != nil {
			return err
		}
		pb, err := fp.Find(bu.B)
		if err != nil {
			return err
		}
		crossing := pa.Die != pb.Die && !pa.Both && !pb.Both
		if pa.Both != pb.Both {
			// A folded block talks to an unfolded one: the connection can
			// land on the partner's die, no TSV needed at chip level.
			crossing = false
		}
		if !crossing {
			continue
		}
		// Array geometry: near-square bank at the TSV pitch.
		cols := int(math.Ceil(math.Sqrt(float64(bu.Width))))
		rowsN := (bu.Width + cols - 1) / cols
		w := float64(cols) * opt.PitchDrawn
		h := float64(rowsN) * opt.PitchDrawn
		mid := geom.Point{
			X: (pa.Rect.Center().X + pb.Rect.Center().X) / 2,
			Y: (pa.Rect.Center().Y + pb.Rect.Center().Y) / 2,
		}
		pos := slideOutsideBlocks(fp, geom.RectWH(mid.X-w/2, mid.Y-h/2, w, h))
		fp.Arrays = append(fp.Arrays, TSVArray{Rect: pos, Count: bu.Width, Bundle: bu.Name()})
	}
	return nil
}

// slideOutsideBlocks nudges r out of any overlapping block with the minimal
// axis move, iterating a few times (channels are wide enough in practice).
// Blocks are visited in sorted name order: each nudge depends on the ones
// before it, so the visit order decides the final position and must not be
// left to map iteration.
func slideOutsideBlocks(fp *Floorplan, r geom.Rect) geom.Rect {
	names := make([]string, 0, len(fp.Blocks))
	for n := range fp.Blocks {
		names = append(names, n)
	}
	sort.Strings(names)
	for iter := 0; iter < 8; iter++ {
		moved := false
		for _, n := range names {
			p := fp.Blocks[n]
			ov, ok := r.Intersect(p.Rect)
			if !ok {
				continue
			}
			// Push along the smaller-overlap axis.
			if ov.W() < ov.H() {
				if r.Center().X < p.Rect.Center().X {
					r = r.Translate(geom.Point{X: -(ov.W() + 0.5)})
				} else {
					r = r.Translate(geom.Point{X: ov.W() + 0.5})
				}
			} else {
				if r.Center().Y < p.Rect.Center().Y {
					r = r.Translate(geom.Point{Y: -(ov.H() + 0.5)})
				} else {
					r = r.Translate(geom.Point{Y: ov.H() + 0.5})
				}
			}
			moved = true
		}
		if !moved {
			break
		}
	}
	return r
}

// AssignPorts creates Width ports on each side of every bundle, spread along
// the block edge facing the partner, and returns the chip-level net list
// (one entry per wire). Blocks must already have outlines matching the
// floorplan (the flow sets Outline from fp before calling). A bundle side
// whose block is absent from blocks (block-level experiments implement one
// block against virtual partners) gets port index -1 in the chip nets; both
// placements must still exist in the floorplan so geometry is defined.
func AssignPorts(blocks map[string]*netlist.Block, fp *Floorplan, bundles []Bundle) ([]ChipNet, error) {
	var nets []ChipNet
	for _, bu := range bundles {
		ba := blocks[bu.A]
		bb := blocks[bu.B]
		if ba == nil && bb == nil {
			continue
		}
		pa, err := fp.Find(bu.A)
		if err != nil {
			return nil, err
		}
		pb, err := fp.Find(bu.B)
		if err != nil {
			return nil, err
		}
		ptsA := edgePoints(pa.Rect, pb.Rect.Center(), bu.Width)
		ptsB := edgePoints(pb.Rect, pa.Rect.Center(), bu.Width)
		for w := 0; w < bu.Width; w++ {
			ia, ib := int32(-1), int32(-1)
			if ba != nil {
				ia = ba.AddPort(netlist.Port{
					Name:  fmt.Sprintf("%s_w%d", bu.Name(), w),
					Dir:   netlist.Out,
					Pos:   ptsA[w].Sub(pa.Rect.Lo), // block-local coordinates
					Die:   portDie(pa),
					CapfF: 4,
				})
			}
			if bb != nil {
				ib = bb.AddPort(netlist.Port{
					Name:  fmt.Sprintf("%s_w%d", bu.Name(), w),
					Dir:   netlist.In,
					Pos:   ptsB[w].Sub(pb.Rect.Lo),
					Die:   portDie(pb),
					CapfF: 4,
				})
			}
			nets = append(nets, ChipNet{
				Bundle: bu.Name(), Activity: bu.Activity,
				A: PortRef{Block: bu.A, Port: ia}, B: PortRef{Block: bu.B, Port: ib},
			})
		}
	}
	return nets, nil
}

func portDie(p *Placed) netlist.Die {
	if p.Both {
		return netlist.DieBottom
	}
	return p.Die
}

// PortRef identifies one block port at chip level.
type PortRef struct {
	Block string
	Port  int32
}

// ChipNet is one inter-block wire.
type ChipNet struct {
	Bundle   string
	Activity float64
	A, B     PortRef
	// RouteLen, WireCapfF and Crossings are filled by chip-level extraction
	// in the flow.
	RouteLen  float64
	WireCapfF float64
	Crossings int
}

// edgePoints returns n points spread along the edge of rect facing toward,
// sorted for deterministic pairing.
func edgePoints(rect geom.Rect, toward geom.Point, n int) []geom.Point {
	c := rect.Center()
	dx, dy := toward.X-c.X, toward.Y-c.Y
	pts := make([]geom.Point, n)
	if math.Abs(dx) >= math.Abs(dy) {
		// Left or right edge.
		x := rect.Hi.X
		if dx < 0 {
			x = rect.Lo.X
		}
		for i := 0; i < n; i++ {
			t := (float64(i) + 0.5) / float64(n)
			pts[i] = geom.Point{X: x, Y: rect.Lo.Y + t*rect.H()}
		}
	} else {
		y := rect.Hi.Y
		if dy < 0 {
			y = rect.Lo.Y
		}
		for i := 0; i < n; i++ {
			t := (float64(i) + 0.5) / float64(n)
			pts[i] = geom.Point{X: rect.Lo.X + t*rect.W(), Y: y}
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X < pts[j].X {
			return true
		}
		if pts[i].X > pts[j].X {
			return false
		}
		return pts[i].Y < pts[j].Y
	})
	return pts
}
