package floorplan

import (
	"fmt"
	"math"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
)

// SAOptions tunes the sequence-pair annealer.
type SAOptions struct {
	// Moves is the total number of annealing moves.
	Moves int
	// WirelengthWeight trades block-center HPWL against area.
	WirelengthWeight float64
	// AspectTarget is the desired chip aspect ratio (W/H).
	AspectTarget float64
	Seed         uint64
}

// DefaultSAOptions returns moderate-effort annealing.
func DefaultSAOptions() SAOptions {
	return SAOptions{Moves: 30000, WirelengthWeight: 0.3, AspectTarget: 1.0, Seed: 11}
}

// Anneal floorplans the shapes with a sequence-pair simulated annealer,
// minimizing area and bundle wirelength. All shapes are placed on one die
// (run per die for a 3D stack, or pass Both shapes to mirror). It returns a
// compacted floorplan at origin.
func Anneal(shapes []Shape, bundles []Bundle, opt SAOptions) (*Floorplan, error) {
	n := len(shapes)
	if n == 0 {
		return nil, fmt.Errorf("floorplan: no shapes to anneal")
	}
	if opt.Moves <= 0 {
		opt = DefaultSAOptions()
	}
	r := rng.New(opt.Seed)

	idx := make(map[string]int, n)
	for i, s := range shapes {
		if _, dup := idx[s.Name]; dup {
			return nil, fmt.Errorf("floorplan: duplicate shape %q", s.Name)
		}
		idx[s.Name] = i
	}
	type pair struct{ a, b int }
	var conns []pair
	var connW []float64
	for _, bu := range bundles {
		ia, oka := idx[bu.A]
		ib, okb := idx[bu.B]
		if !oka || !okb {
			continue // bundle to a block on the other die
		}
		conns = append(conns, pair{ia, ib})
		connW = append(connW, float64(bu.Width))
	}

	sp := r.Perm(n)
	sn := r.Perm(n)
	rot := make([]bool, n)

	w := make([]float64, n)
	h := make([]float64, n)
	dims := func() {
		for i, s := range shapes {
			if rot[i] {
				w[i], h[i] = s.H, s.W
			} else {
				w[i], h[i] = s.W, s.H
			}
		}
	}

	// Sequence-pair evaluation: x by longest path over pairs where i
	// precedes j in both sequences; y where i precedes j in sn but follows
	// in sp. O(n^2), fine for dozens of blocks.
	posP := make([]int, n)
	posN := make([]int, n)
	x := make([]float64, n)
	y := make([]float64, n)
	evaluate := func() (W, H float64) {
		dims()
		for i, v := range sp {
			posP[v] = i
		}
		for i, v := range sn {
			posN[v] = i
		}
		for i := range x {
			x[i], y[i] = 0, 0
		}
		// Process in sn order for x (left-to-right topological order).
		for _, v := range sn {
			for _, u := range sn {
				if u == v {
					break
				}
				if posP[u] < posP[v] { // u left of v
					if x[u]+w[u] > x[v] {
						x[v] = x[u] + w[u]
					}
				}
			}
			if x[v]+w[v] > W {
				W = x[v] + w[v]
			}
		}
		for _, v := range sn {
			for _, u := range sn {
				if u == v {
					break
				}
				if posP[u] > posP[v] { // u below v
					if y[u]+h[u] > y[v] {
						y[v] = y[u] + h[u]
					}
				}
			}
			if y[v]+h[v] > H {
				H = y[v] + h[v]
			}
		}
		return W, H
	}

	cost := func() float64 {
		W, H := evaluate()
		area := W * H
		aspect := math.Abs(math.Log((W/H)/opt.AspectTarget)) + 1
		var wl float64
		for k, c := range conns {
			dx := (x[c.a] + w[c.a]/2) - (x[c.b] + w[c.b]/2)
			dy := (y[c.a] + h[c.a]/2) - (y[c.b] + h[c.b]/2)
			wl += connW[k] * (math.Abs(dx) + math.Abs(dy))
		}
		return area*aspect + opt.WirelengthWeight*wl
	}

	cur := cost()
	best := cur
	bestSP := append([]int(nil), sp...)
	bestSN := append([]int(nil), sn...)
	bestRot := append([]bool(nil), rot...)

	t0 := cur * 0.05
	for m := 0; m < opt.Moves; m++ {
		temp := t0 * math.Pow(0.001/0.05, float64(m)/float64(opt.Moves))
		i, j := r.Intn(n), r.Intn(n)
		kind := r.Intn(3)
		switch kind {
		case 0:
			sp[i], sp[j] = sp[j], sp[i]
		case 1:
			sp[i], sp[j] = sp[j], sp[i]
			sn[i], sn[j] = sn[j], sn[i]
		case 2:
			rot[i] = !rot[i]
		}
		c := cost()
		accept := c < cur || (temp > 0 && r.Float64() < math.Exp((cur-c)/temp))
		if accept {
			cur = c
			if c < best {
				best = c
				copy(bestSP, sp)
				copy(bestSN, sn)
				copy(bestRot, rot)
			}
		} else {
			switch kind {
			case 0:
				sp[i], sp[j] = sp[j], sp[i]
			case 1:
				sp[i], sp[j] = sp[j], sp[i]
				sn[i], sn[j] = sn[j], sn[i]
			case 2:
				rot[i] = !rot[i]
			}
		}
	}

	copy(sp, bestSP)
	copy(sn, bestSN)
	copy(rot, bestRot)
	W, H := evaluate()
	fp := &Floorplan{
		Outline: geom.NewRect(0, 0, W, H),
		Blocks:  make(map[string]*Placed, n),
	}
	for i, s := range shapes {
		fp.Blocks[s.Name] = &Placed{
			Name: s.Name,
			Rect: geom.RectWH(x[i], y[i], w[i], h[i]),
			Die:  s.Die,
			Both: s.Both,
		}
	}
	return fp, nil
}

// Mirror3D merges two per-die floorplans into one two-die floorplan whose
// outline covers both.
func Mirror3D(bottom, top *Floorplan) *Floorplan {
	fp := &Floorplan{
		Outline: bottom.Outline.Union(top.Outline),
		Blocks:  make(map[string]*Placed),
	}
	for n, p := range bottom.Blocks {
		cp := *p
		cp.Die = netlist.DieBottom
		fp.Blocks[n] = &cp
	}
	for n, p := range top.Blocks {
		cp := *p
		cp.Die = netlist.DieTop
		fp.Blocks[n] = &cp
	}
	return fp
}
