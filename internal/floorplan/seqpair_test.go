package floorplan

import (
	"fmt"
	"testing"
)

func annealShapes(n int) []Shape {
	var out []Shape
	for i := 0; i < n; i++ {
		out = append(out, Shape{
			Name: fmt.Sprintf("B%d", i),
			W:    10 + float64(i%4)*5,
			H:    8 + float64(i%3)*4,
		})
	}
	return out
}

func TestAnnealLegal(t *testing.T) {
	shapes := annealShapes(10)
	opt := DefaultSAOptions()
	opt.Moves = 5000
	fp, err := Anneal(shapes, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Blocks) != 10 {
		t.Fatalf("placed %d", len(fp.Blocks))
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			a := fp.Blocks[fmt.Sprintf("B%d", i)]
			b := fp.Blocks[fmt.Sprintf("B%d", j)]
			if a.Rect.Expand(-1e-9).Overlaps(b.Rect.Expand(-1e-9)) {
				t.Fatalf("B%d overlaps B%d", i, j)
			}
		}
	}
	for n, p := range fp.Blocks {
		if !fp.Outline.ContainsRect(p.Rect.Expand(-1e-9)) {
			t.Errorf("%s outside outline", n)
		}
	}
}

func TestAnnealAreaEfficiency(t *testing.T) {
	shapes := annealShapes(12)
	var blockArea float64
	for _, s := range shapes {
		blockArea += s.W * s.H
	}
	opt := DefaultSAOptions()
	opt.Moves = 20000
	fp, err := Anneal(shapes, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	util := blockArea / fp.Outline.Area()
	if util < 0.5 {
		t.Errorf("annealed floorplan too loose: utilization %.2f", util)
	}
}

func TestAnnealPullsConnectedBlocksTogether(t *testing.T) {
	shapes := annealShapes(10)
	bundles := []Bundle{{A: "B0", B: "B9", Width: 200}}
	opt := DefaultSAOptions()
	opt.Moves = 20000
	opt.WirelengthWeight = 10
	fp, err := Anneal(shapes, bundles, opt)
	if err != nil {
		t.Fatal(err)
	}
	d09 := fp.Blocks["B0"].Rect.Center().ManhattanDist(fp.Blocks["B9"].Rect.Center())
	// Against the chip diagonal, the heavy bundle should keep them in the
	// same neighborhood.
	diag := fp.Outline.W() + fp.Outline.H()
	if d09 > 0.75*diag {
		t.Errorf("connected blocks far apart: %.1f of diagonal %.1f", d09, diag)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	shapes := annealShapes(8)
	opt := DefaultSAOptions()
	opt.Moves = 3000
	fp1, err := Anneal(shapes, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Anneal(annealShapes(8), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	for n := range fp1.Blocks {
		if fp1.Blocks[n].Rect != fp2.Blocks[n].Rect {
			t.Fatal("annealing is not deterministic for a fixed seed")
		}
	}
}

func TestAnnealErrors(t *testing.T) {
	if _, err := Anneal(nil, nil, DefaultSAOptions()); err == nil {
		t.Error("expected error for no shapes")
	}
	dup := []Shape{{Name: "X", W: 1, H: 1}, {Name: "X", W: 2, H: 2}}
	if _, err := Anneal(dup, nil, DefaultSAOptions()); err == nil {
		t.Error("expected error for duplicate names")
	}
}

func TestMirror3D(t *testing.T) {
	bot, err := Anneal(annealShapes(4), nil, SAOptions{Moves: 1000, AspectTarget: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	top, err := Anneal(annealShapes(3), nil, SAOptions{Moves: 1000, AspectTarget: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fp := Mirror3D(bot, top)
	if len(fp.Blocks) != 4 { // names overlap (B0..B2); top overwrites
		t.Errorf("merged blocks = %d", len(fp.Blocks))
	}
	if !fp.Outline.ContainsRect(bot.Outline) || !fp.Outline.ContainsRect(top.Outline) {
		t.Error("merged outline must cover both dies")
	}
}
