package floorplan

import (
	"testing"

	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func shapes4() map[string]Shape {
	return map[string]Shape{
		"A": {Name: "A", W: 20, H: 10},
		"B": {Name: "B", W: 15, H: 12},
		"C": {Name: "C", W: 10, H: 10},
		"D": {Name: "D", W: 25, H: 8},
	}
}

func TestRowPlanPlacesAll(t *testing.T) {
	fp, err := RowPlan(shapes4(), [2][]Row{{
		{Names: []string{"A", "B"}},
		{Names: []string{"C", "D"}},
	}, nil}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Blocks) != 4 {
		t.Fatalf("placed %d blocks", len(fp.Blocks))
	}
	for name, s := range shapes4() {
		p, err := fp.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Rect.W() != s.W || p.Rect.H() != s.H {
			t.Errorf("%s shape changed: %v", name, p.Rect)
		}
		if !fp.Outline.ContainsRect(p.Rect) {
			t.Errorf("%s outside chip outline", name)
		}
	}
	// No overlaps.
	names := []string{"A", "B", "C", "D"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, _ := fp.Find(names[i])
			b, _ := fp.Find(names[j])
			if a.Rect.Overlaps(b.Rect) {
				t.Errorf("%s overlaps %s", names[i], names[j])
			}
		}
	}
}

func TestRowPlanTwoDies(t *testing.T) {
	fp, err := RowPlan(shapes4(), [2][]Row{
		{{Names: []string{"A", "B"}}},
		{{Names: []string{"C", "D"}}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fp.Find("A")
	c, _ := fp.Find("C")
	if a.Die != netlist.DieBottom || c.Die != netlist.DieTop {
		t.Error("die assignment from plan rows wrong")
	}
}

func TestRowPlanErrors(t *testing.T) {
	if _, err := RowPlan(shapes4(), [2][]Row{{{Names: []string{"NOPE"}}}, nil}, 2); err == nil {
		t.Error("expected unknown-block error")
	}
	if _, err := RowPlan(shapes4(), [2][]Row{nil, nil}, 2); err == nil {
		t.Error("expected empty-plan error")
	}
	dup := [2][]Row{{{Names: []string{"A"}}, {Names: []string{"A"}}}, nil}
	if _, err := RowPlan(shapes4(), dup, 2); err == nil {
		t.Error("expected duplicate-placement error")
	}
}

func TestPlanInterblockTSVs(t *testing.T) {
	sh := shapes4()
	fp, err := RowPlan(sh, [2][]Row{
		{{Names: []string{"A", "B"}}},
		{{Names: []string{"C", "D"}}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	bundles := []Bundle{
		{A: "A", B: "C", Width: 40}, // crosses dies
		{A: "A", B: "B", Width: 10}, // same die: no array
	}
	if err := PlanInterblockTSVs(fp, bundles, PlanTSVArrayOptions{PitchDrawn: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(fp.Arrays) != 1 {
		t.Fatalf("arrays = %d, want 1", len(fp.Arrays))
	}
	if fp.NumTSV() != 40 {
		t.Errorf("NumTSV = %d", fp.NumTSV())
	}
	// Arrays must not overlap blocks.
	for _, a := range fp.Arrays {
		for name := range sh {
			p, _ := fp.Find(name)
			if a.Rect.Overlaps(p.Rect) {
				t.Errorf("TSV array overlaps block %s", name)
			}
		}
	}
	if err := PlanInterblockTSVs(fp, bundles, PlanTSVArrayOptions{}); err == nil {
		t.Error("expected error for zero pitch")
	}
}

func TestAssignPorts(t *testing.T) {
	sh := shapes4()
	fp, err := RowPlan(sh, [2][]Row{{
		{Names: []string{"A", "B", "C", "D"}},
	}, nil}, 2)
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[string]*netlist.Block{
		"A": netlist.NewBlock("A", tech.CPUClock),
		"B": netlist.NewBlock("B", tech.CPUClock),
	}
	bundles := []Bundle{
		{A: "A", B: "B", Width: 5},
		{A: "B", B: "C", Width: 3}, // C absent: B side only
	}
	nets, err := AssignPorts(blocks, fp, bundles)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 8 {
		t.Fatalf("chip nets = %d, want 8", len(nets))
	}
	if len(blocks["A"].Ports) != 5 {
		t.Errorf("A ports = %d", len(blocks["A"].Ports))
	}
	if len(blocks["B"].Ports) != 5+3 {
		t.Errorf("B ports = %d", len(blocks["B"].Ports))
	}
	// Missing-side nets carry -1.
	miss := 0
	for _, n := range nets {
		if n.B.Port < 0 {
			miss++
		}
	}
	if miss != 3 {
		t.Errorf("missing-side nets = %d, want 3 (C absent)", miss)
	}
	// Port positions are block-local and on the boundary.
	for i := range blocks["A"].Ports {
		p := blocks["A"].Ports[i].Pos
		pa, _ := fp.Find("A")
		w, h := pa.Rect.W(), pa.Rect.H()
		onEdge := p.X == 0 || p.X == w || p.Y == 0 || p.Y == h
		if !onEdge {
			t.Errorf("port %d not on the block edge: %v", i, p)
		}
	}
	// A faces B on its right edge: ports should sit at x = W.
	pa, _ := fp.Find("A")
	for i := range blocks["A"].Ports {
		if blocks["A"].Ports[i].Pos.X != pa.Rect.W() {
			t.Errorf("A's port %d not on the B-facing edge", i)
		}
	}
}

func TestFloorplanFind(t *testing.T) {
	fp := &Floorplan{Blocks: map[string]*Placed{}}
	if _, err := fp.Find("missing"); err == nil {
		t.Error("expected error")
	}
}

func TestBundleName(t *testing.T) {
	b := Bundle{A: "X", B: "Y"}
	if b.Name() != "X-Y" {
		t.Errorf("Name = %s", b.Name())
	}
}
