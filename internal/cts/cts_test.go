package cts

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func clockedBlock(t *testing.T, nDFF, nMacro int) (*netlist.Block, *tech.Library, tech.ScaleModel) {
	t.Helper()
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBlock("ck", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 80, 80)
	for i := 0; i < nDFF; i++ {
		b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("ff%d", i),
			Master: lib.MustCell(tech.DFF, 2, tech.RVT),
			Pos:    geom.Point{X: float64(2 + (i*13)%75), Y: float64(2 + (i*29)%75)},
		})
	}
	mm := lib.MacroKB
	mm.Width, mm.Height = 10, 8
	for k := 0; k < nMacro; k++ {
		b.AddMacro(netlist.MacroInst{
			Name:  fmt.Sprintf("m%d", k),
			Model: mm,
			Pos:   geom.Point{X: 60, Y: float64(5 + k*12)},
			Fixed: true,
		})
	}
	return b, lib, sm
}

func TestCTSReachesEverySink(t *testing.T) {
	b, lib, sm := clockedBlock(t, 100, 3)
	res, err := Run(b, lib, sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuffers == 0 {
		t.Fatal("no clock buffers inserted")
	}
	// Walk the clock nets and verify every DFF and macro appears as a sink.
	reached := map[netlist.PinRef]bool{}
	for i := range b.Nets {
		if b.Nets[i].Kind != netlist.Clock {
			continue
		}
		for _, s := range b.Nets[i].Sinks {
			reached[netlist.PinRef{Kind: s.Kind, Idx: s.Idx}] = true
		}
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Master.Fam.IsSequential() && !reached[netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)}] {
			t.Errorf("DFF %s unreached by the clock tree", c.Name)
		}
	}
	for i := range b.Macros {
		if !reached[netlist.PinRef{Kind: netlist.KindMacro, Idx: int32(i)}] {
			t.Errorf("macro %s unreached by the clock tree", b.Macros[i].Name)
		}
	}
}

func TestCTSMarksBuffersAndNets(t *testing.T) {
	b, lib, sm := clockedBlock(t, 60, 0)
	before := len(b.Cells)
	res, err := Run(b, lib, sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	added := len(b.Cells) - before
	if added != res.NumBuffers {
		t.Errorf("added %d cells but reported %d buffers", added, res.NumBuffers)
	}
	for i := before; i < len(b.Cells); i++ {
		if !b.Cells[i].IsClockBuf {
			t.Errorf("clock buffer %s not marked", b.Cells[i].Name)
		}
	}
	clockNets := 0
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Clock {
			clockNets++
			if b.Nets[i].Activity != 2 {
				t.Errorf("clock net %s activity = %v", b.Nets[i].Name, b.Nets[i].Activity)
			}
		}
	}
	if clockNets != res.NumBuffers+1 { // one net per buffer plus the root
		t.Errorf("clock nets = %d, buffers = %d", clockNets, res.NumBuffers)
	}
}

func TestCTSFanoutBound(t *testing.T) {
	b, lib, sm := clockedBlock(t, 200, 0)
	opt := DefaultOptions()
	opt.MaxFanout = 8
	if _, err := Run(b, lib, sm, opt); err != nil {
		t.Fatal(err)
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind == netlist.Clock && len(n.Sinks) > 8 {
			t.Errorf("clock net %s fanout %d exceeds bound", n.Name, len(n.Sinks))
		}
	}
}

func TestCTSSkewBounded(t *testing.T) {
	b, lib, sm := clockedBlock(t, 150, 2)
	res, err := Run(b, lib, sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewPS < 0 {
		t.Errorf("negative skew %v", res.SkewPS)
	}
	if res.SkewPS > 0.035*b.Clock.PeriodPS()+1e-9 {
		t.Errorf("skew %v exceeds the sign-off cap", res.SkewPS)
	}
	if res.InsertionDelayPS <= 0 {
		t.Errorf("insertion delay = %v", res.InsertionDelayPS)
	}
	if res.WirelengthUm <= 0 {
		t.Errorf("clock wirelength = %v", res.WirelengthUm)
	}
}

func TestCTSEmptyBlock(t *testing.T) {
	b, lib, sm := clockedBlock(t, 0, 0)
	res, err := Run(b, lib, sm, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuffers != 0 || res.SkewPS != 0 {
		t.Errorf("empty block grew a clock tree: %+v", res)
	}
}

func TestCTSCreatesClockRootPort(t *testing.T) {
	b, lib, sm := clockedBlock(t, 30, 0)
	if _, err := Run(b, lib, sm, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range b.Ports {
		if b.Ports[i].Name == "clk" {
			found = true
		}
	}
	if !found {
		t.Error("clock root port missing")
	}
	// Validate netlist integrity after CTS.
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
