// Package cts performs clock tree synthesis: a recursive geometric bisection
// of the clock sinks (register clock pins and macro clock inputs) into a
// buffered tree, following the pre-CTS / post-CTS structure of the paper's
// flow. The tree's buffers and nets are materialized into the block netlist
// (nets marked netlist.Clock, buffers marked IsClockBuf) so that wirelength,
// buffer-count and power reports include the clock network, and the
// resulting skew estimate feeds STA as uncertainty.
package cts

import (
	"fmt"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// Options configures tree construction.
type Options struct {
	// MaxFanout caps the sinks one clock buffer drives.
	MaxFanout int
	// BufferDrive is the drive strength of inserted clock buffers.
	BufferDrive int
	// Vth flavor of clock buffers: clock nets switch every cycle, so the
	// flow keeps them RVT even in dual-Vth designs.
	Vth tech.VthClass
}

// DefaultOptions returns the flow defaults.
func DefaultOptions() Options {
	return Options{MaxFanout: 24, BufferDrive: 8, Vth: tech.RVT}
}

// Result summarizes the synthesized tree.
type Result struct {
	// SkewPS is the worst-case arrival difference across sinks.
	SkewPS float64
	// InsertionDelayPS is the longest root-to-sink latency.
	InsertionDelayPS float64
	// NumBuffers is the number of clock buffers inserted.
	NumBuffers int
	// WirelengthUm is the drawn clock-net wirelength added.
	WirelengthUm float64
	// Levels is the tree depth.
	Levels int
}

// sink is one clock consumer.
type sink struct {
	pos geom.Point
	ref netlist.PinRef
	die netlist.Die
	cap float64
}

// Run synthesizes the clock tree of b in place. It must run after placement
// (it needs sink locations) and before the final timing iterations. The
// scale model is needed to compute clock wire delays consistently with
// extraction.
func Run(b *netlist.Block, lib *tech.Library, scale tech.ScaleModel, opt Options) (*Result, error) {
	if opt.MaxFanout <= 1 {
		opt.MaxFanout = DefaultOptions().MaxFanout
	}
	if opt.BufferDrive == 0 {
		opt.BufferDrive = DefaultOptions().BufferDrive
	}
	master, err := lib.Cell(tech.BUF, opt.BufferDrive, opt.Vth)
	if err != nil {
		return nil, fmt.Errorf("cts: %v", err)
	}

	var sinks []sink
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Master.Fam.IsSequential() {
			sinks = append(sinks, sink{
				pos: c.Center(),
				ref: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)},
				die: c.Die,
				cap: c.Master.ClkCap,
			})
		}
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		sinks = append(sinks, sink{
			pos: m.Center(),
			ref: netlist.PinRef{Kind: netlist.KindMacro, Idx: int32(i), Pin: 0},
			die: m.Die,
			cap: m.Model.InCapfF * 2, // macro clock pins are heavy
		})
	}
	res := &Result{}
	if len(sinks) == 0 {
		return res, nil
	}

	// Clock root: a port at the block boundary (create one if absent).
	rootPort := int32(-1)
	for i := range b.Ports {
		if b.Ports[i].Name == "clk" {
			rootPort = int32(i)
			break
		}
	}
	if rootPort < 0 {
		rootPort = b.AddPort(netlist.Port{
			Name:  "clk",
			Dir:   netlist.In,
			Pos:   geom.Point{X: b.Outline[0].Center().X, Y: b.Outline[0].Lo.Y},
			Die:   netlist.DieBottom,
			CapfF: 0,
		})
	}

	layer, err := lib.Layer(5) // clock routes on intermediate layers
	if err != nil {
		return nil, err
	}
	rw := scale.WireRPerUm(layer)
	cw := scale.WireCPerUm(layer)

	// build recursively partitions sinks and returns the pin ref and
	// position of the buffer driving them plus the subtree latency (ps).
	var build func(group []sink, level int) (netlist.PinRef, geom.Point, float64, float64)
	build = func(group []sink, level int) (netlist.PinRef, geom.Point, float64, float64) {
		if level > res.Levels {
			res.Levels = level
		}
		ctr := centroid(group)
		if len(group) <= opt.MaxFanout {
			// Leaf buffer at the centroid driving the sinks directly.
			bi := b.AddCell(netlist.Instance{
				Name:       fmt.Sprintf("ckbuf_l%d_%d", level, len(b.Cells)),
				Master:     master,
				Pos:        geom.Point{X: ctr.X - master.Width/2, Y: ctr.Y - tech.CellHeight/2},
				Die:        majorityDie(group),
				IsClockBuf: true,
				Activity:   2,
			})
			net := netlist.Net{
				Name:     fmt.Sprintf("cknet_l%d_%d", level, len(b.Nets)),
				Kind:     netlist.Clock,
				Driver:   netlist.PinRef{Kind: netlist.KindCell, Idx: bi},
				Activity: 2,
			}
			var wl, load float64
			for _, s := range group {
				net.Sinks = append(net.Sinks, s.ref)
				wl += ctr.ManhattanDist(s.pos)
				load += s.cap
			}
			net.RouteLen = wl
			net.WireCapfF = wl * cw
			net.WireResOhm = wl * rw
			net.Layer = layer.Index
			b.AddNet(net)
			res.WirelengthUm += wl
			res.NumBuffers++
			// Latency of this stage: buffer + average wire Elmore.
			lat := master.Intr + master.DriveR*(net.WireCapfF+load)*1e-3 +
				net.WireResOhm*(net.WireCapfF/2+load/float64(len(group)))*1e-3
			// Skew within the leaf: spread of wire distances.
			minD, maxD := 1e18, 0.0
			for _, s := range group {
				d := ctr.ManhattanDist(s.pos)
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
			leafSkew := (maxD - minD) * rw * cw * 1e-3 // first-order RC spread
			return netlist.PinRef{Kind: netlist.KindCell, Idx: bi}, ctr, lat, leafSkew
		}
		// Split along the longer spread dimension at the median.
		bb := geom.BoundingBox(positions(group))
		byX := bb.W() >= bb.H()
		sort.Slice(group, func(i, j int) bool {
			if byX {
				return group[i].pos.X < group[j].pos.X
			}
			return group[i].pos.Y < group[j].pos.Y
		})
		mid := len(group) / 2
		refA, posA, latA, skewA := build(group[:mid], level+1)
		refB, posB, latB, skewB := build(group[mid:], level+1)

		bi := b.AddCell(netlist.Instance{
			Name:       fmt.Sprintf("ckbuf_l%d_%d", level, len(b.Cells)),
			Master:     master,
			Pos:        geom.Point{X: ctr.X - master.Width/2, Y: ctr.Y - tech.CellHeight/2},
			Die:        majorityDie(group),
			IsClockBuf: true,
			Activity:   2,
		})
		wl := ctr.ManhattanDist(posA) + ctr.ManhattanDist(posB)
		load := 2 * master.InCapfF
		net := netlist.Net{
			Name:       fmt.Sprintf("cknet_l%d_%d", level, len(b.Nets)),
			Kind:       netlist.Clock,
			Driver:     netlist.PinRef{Kind: netlist.KindCell, Idx: bi},
			Sinks:      []netlist.PinRef{refA, refB},
			Activity:   2,
			RouteLen:   wl,
			WireCapfF:  wl * cw,
			WireResOhm: wl * rw,
			Layer:      layer.Index,
		}
		b.AddNet(net)
		res.WirelengthUm += wl
		res.NumBuffers++
		lat := master.Intr + master.DriveR*(net.WireCapfF+load)*1e-3 +
			net.WireResOhm*net.WireCapfF/2*1e-3
		sub := latA
		if latB > sub {
			sub = latB
		}
		skew := skewA
		if skewB > skew {
			skew = skewB
		}
		// A real CTS engine balances sibling latencies with delay buffers
		// and wire snaking; only a fraction of the raw imbalance survives.
		skew += 0.15 * absf(latA-latB)
		return netlist.PinRef{Kind: netlist.KindCell, Idx: bi}, ctr, lat + sub, skew
	}

	rootRef, rootPos, lat, skew := build(sinks, 1)
	// Root net from the clock port to the top buffer.
	wl := b.Ports[rootPort].Pos.ManhattanDist(rootPos)
	b.AddNet(netlist.Net{
		Name:       "cknet_root",
		Kind:       netlist.Clock,
		Driver:     netlist.PinRef{Kind: netlist.KindPort, Idx: rootPort},
		Sinks:      []netlist.PinRef{rootRef},
		Activity:   2,
		RouteLen:   wl,
		WireCapfF:  wl * cw,
		WireResOhm: wl * rw,
		Layer:      layer.Index,
	})
	res.WirelengthUm += wl
	// Post-CTS optimization bounds the global skew; cap the estimate at the
	// few-percent-of-period level sign-off trees achieve.
	maxSkew := 0.035 * b.Clock.PeriodPS()
	if skew > maxSkew {
		skew = maxSkew
	}
	res.SkewPS = skew
	res.InsertionDelayPS = lat
	return res, nil
}

func centroid(group []sink) geom.Point {
	var c geom.Point
	for _, s := range group {
		c.X += s.pos.X
		c.Y += s.pos.Y
	}
	return c.Scale(1 / float64(len(group)))
}

func positions(group []sink) []geom.Point {
	pts := make([]geom.Point, len(group))
	for i, s := range group {
		pts[i] = s.pos
	}
	return pts
}

func majorityDie(group []sink) netlist.Die {
	n := 0
	for _, s := range group {
		if s.die == netlist.DieTop {
			n++
		}
	}
	if n*2 > len(group) {
		return netlist.DieTop
	}
	return netlist.DieBottom
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
