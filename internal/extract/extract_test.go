package extract

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func extractBlock(t *testing.T) (*netlist.Block, *tech.Library, tech.ScaleModel) {
	t.Helper()
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBlock("x", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 100, 100)
	a := b.AddCell(netlist.Instance{Name: "a", Master: lib.MustCell(tech.INV, 2, tech.RVT), Pos: geom.Point{X: 0, Y: 0}})
	c := b.AddCell(netlist.Instance{Name: "b", Master: lib.MustCell(tech.NAND2, 2, tech.RVT), Pos: geom.Point{X: 30, Y: 40}})
	b.AddNet(netlist.Net{Name: "n", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: a},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: c}}})
	return b, lib, sm
}

func TestExtractFillsRC(t *testing.T) {
	b, lib, sm := extractBlock(t)
	ex := New(lib, sm, F2B)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	n := &b.Nets[0]
	if n.RouteLen <= 0 || n.WireCapfF <= 0 || n.WireResOhm <= 0 {
		t.Fatalf("extraction left zeros: %+v", n)
	}
	// Length is the HPWL between the two cell centers (~70um + cell halves).
	if n.RouteLen < 60 || n.RouteLen > 85 {
		t.Errorf("RouteLen = %v", n.RouteLen)
	}
	if n.Layer < 1 || n.Layer > 9 {
		t.Errorf("Layer = %d", n.Layer)
	}
}

func TestRCLinearInLength(t *testing.T) {
	b, lib, sm := extractBlock(t)
	ex := New(lib, sm, F2B)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	c1 := b.Nets[0].WireCapfF
	l1 := b.Nets[0].RouteLen
	// Move the sink twice as far; same layer bucket -> twice the cap.
	b.Cells[1].Pos = geom.Point{X: 60, Y: 80}
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	c2 := b.Nets[0].WireCapfF
	l2 := b.Nets[0].RouteLen
	if b.Nets[0].Layer == 5 { // both on the same layer bucket
		ratio := (c2 / c1) / (l2 / l1)
		if ratio < 0.99 || ratio > 1.01 {
			t.Errorf("cap not linear in length: %v", ratio)
		}
	}
}

func TestBondingStyleViaParasitics(t *testing.T) {
	mk := func(bond Bonding) *netlist.Net {
		b, lib, sm := extractBlock(t)
		b.Is3D = true
		b.Outline[1] = b.Outline[0]
		b.Cells[1].Die = netlist.DieTop
		b.Nets[0].Crossings = 1
		b.Nets[0].Vias = []geom.Point{{X: 15, Y: 20}}
		ex := New(lib, sm, bond)
		if err := ex.Extract(b); err != nil {
			t.Fatal(err)
		}
		return &b.Nets[0]
	}
	f2b := mk(F2B)
	f2f := mk(F2F)
	lib := tech.NewLibrary()
	diff := f2b.WireCapfF - f2f.WireCapfF
	want := lib.TSV.CfF - lib.F2F.CfF
	if diff < want-1 || diff > want+1 {
		t.Errorf("via cap difference = %v, want ~%v", diff, want)
	}
}

func TestNetLengthWithVias(t *testing.T) {
	b, _, _ := extractBlock(t)
	b.Is3D = true
	b.Outline[1] = b.Outline[0]
	b.Cells[1].Die = netlist.DieTop
	n := &b.Nets[0]
	direct := NetLength(b, n)
	// A via far off the direct path must lengthen the route.
	n.Vias = []geom.Point{{X: 90, Y: 5}}
	detour := NetLength(b, n)
	if detour <= direct {
		t.Errorf("via detour did not lengthen the net: %v <= %v", detour, direct)
	}
}

func TestLayerAssignmentByLength(t *testing.T) {
	b, lib, sm := extractBlock(t)
	ex := New(lib, sm, F2B)
	// Short net -> local layers.
	b.Cells[1].Pos = geom.Point{X: 1, Y: 1}
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	shortLayer := b.Nets[0].Layer
	// Long net -> intermediate or global layers.
	b.Cells[1].Pos = geom.Point{X: 95, Y: 95}
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	longLayer := b.Nets[0].Layer
	if shortLayer >= longLayer {
		t.Errorf("layer assignment not monotonic: short M%d, long M%d", shortLayer, longLayer)
	}
}

func TestTopLayerRespectsBlockLimit(t *testing.T) {
	b, lib, sm := extractBlock(t)
	b.Outline[0] = geom.NewRect(0, 0, 2000, 2000)
	b.Cells[1].Pos = geom.Point{X: 1900, Y: 1900} // very long net
	ex2 := New(lib, sm, F2B)
	b.MaxRouteLayer = 7
	if err := ex2.Extract(b); err != nil {
		t.Fatal(err)
	}
	if b.Nets[0].Layer > 7 {
		t.Errorf("net routed above the block's layer limit: M%d", b.Nets[0].Layer)
	}
	b.MaxRouteLayer = 9
	if err := ex2.Extract(b); err != nil {
		t.Fatal(err)
	}
	if b.Nets[0].Layer != 8 {
		t.Errorf("SPC-style block should use the global layers: M%d", b.Nets[0].Layer)
	}
}

func TestTotalLoad(t *testing.T) {
	b, lib, sm := extractBlock(t)
	ex := New(lib, sm, F2B)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	wire, pins := TotalLoad(b, &b.Nets[0])
	if wire != b.Nets[0].WireCapfF {
		t.Errorf("wire load = %v", wire)
	}
	if pins != b.Cells[1].Master.InCapfF {
		t.Errorf("pin load = %v, want sink input cap", pins)
	}
}

func TestBondingString(t *testing.T) {
	if F2B.String() != "F2B" || F2F.String() != "F2F" {
		t.Error("bonding names wrong")
	}
}

func TestTSVCoupling(t *testing.T) {
	mk := func(coupling bool) float64 {
		b, lib, sm := extractBlock(t)
		b.Is3D = true
		b.Outline[1] = b.Outline[0]
		b.Cells[1].Die = netlist.DieTop
		// A pad right between the two pins, inside the net bbox.
		b.TSVPads = append(b.TSVPads, geom.RectWH(15, 20, 1, 1))
		ex := New(lib, sm, F2B)
		ex.TSVCoupling = coupling
		if err := ex.Extract(b); err != nil {
			t.Fatal(err)
		}
		return b.Nets[0].WireCapfF
	}
	without := mk(false)
	with := mk(true)
	if with-without < DefaultTSVCouplingfF*0.99 || with-without > DefaultTSVCouplingfF*1.01 {
		t.Errorf("coupling delta = %v, want %v", with-without, DefaultTSVCouplingfF)
	}
}

func TestTSVCouplingIgnoresFarPads(t *testing.T) {
	b, lib, sm := extractBlock(t)
	b.Is3D = true
	b.Outline[1] = b.Outline[0]
	b.Cells[1].Die = netlist.DieTop
	// Pad far outside the net bounding box.
	b.TSVPads = append(b.TSVPads, geom.RectWH(95, 95, 1, 1))
	ex := New(lib, sm, F2B)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	base := b.Nets[0].WireCapfF
	ex.TSVCoupling = true
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	if b.Nets[0].WireCapfF != base {
		t.Errorf("far pad coupled: %v vs %v", b.Nets[0].WireCapfF, base)
	}
}

func TestTSVCouplingOnlyF2B(t *testing.T) {
	b, lib, sm := extractBlock(t)
	b.Is3D = true
	b.Outline[1] = b.Outline[0]
	b.Cells[1].Die = netlist.DieTop
	b.TSVPads = append(b.TSVPads, geom.RectWH(15, 20, 1, 1))
	ex := New(lib, sm, F2F)
	ex.TSVCoupling = true
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	c1 := b.Nets[0].WireCapfF
	ex.TSVCoupling = false
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	if c1 != b.Nets[0].WireCapfF {
		t.Error("coupling applied under F2F bonding")
	}
}

func TestRSMTNetLengthNotLonger(t *testing.T) {
	// For a multi-pin net the tree estimate must not exceed the statistical
	// correction by much, and for the plus configuration it must be shorter.
	lib := tech.NewLibrary()
	sm, _ := tech.NewScaleModel(1)
	b := netlist.NewBlock("r", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 40, 40)
	pos := []geom.Point{{X: 10, Y: 0}, {X: 0, Y: 10}, {X: 20, Y: 10}, {X: 10, Y: 20}}
	for i, p := range pos {
		b.AddCell(netlist.Instance{Name: fmt.Sprintf("c%d", i),
			Master: lib.MustCell(tech.INV, 2, tech.RVT), Pos: p})
	}
	net := netlist.Net{Name: "plus", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: 0}}
	for i := 1; i < 4; i++ {
		net.Sinks = append(net.Sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)})
	}
	b.AddNet(net)
	stat := NetLength(b, &b.Nets[0])
	rsmt := NetLengthRSMT(b, &b.Nets[0])
	if rsmt > stat {
		t.Errorf("RSMT %v longer than statistical %v", rsmt, stat)
	}
	// Extraction honors the flag.
	ex := New(lib, sm, F2B)
	ex.UseRSMT = true
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	if b.Nets[0].RouteLen != rsmt {
		t.Errorf("extract did not use RSMT: %v vs %v", b.Nets[0].RouteLen, rsmt)
	}
}
