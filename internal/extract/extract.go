// Package extract estimates post-route parasitics for every net of a block:
// drawn wirelength from pin (and 3D via) locations with a Steiner
// correction, a routing-layer assignment by net length, wire RC from the
// metal-stack constants under the scale model, and the TSV or F2F via RC of
// die-crossing nets (the paper's Table 1 values). The results annotate the
// netlist for the timing and power engines.
package extract

import (
	"fmt"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// Bonding selects the 3D via model used for die-crossing nets.
type Bonding int

const (
	// F2B is face-to-back bonding: crossings are TSVs (large C).
	F2B Bonding = iota
	// F2F is face-to-face bonding: crossings are F2F vias (negligible RC).
	F2F
)

// String names the bonding style (F2B or F2F).
func (b Bonding) String() string {
	if b == F2F {
		return "F2F"
	}
	return "F2B"
}

// Extractor annotates blocks with parasitics.
type Extractor struct {
	Lib   *tech.Library
	Scale tech.ScaleModel
	Bond  Bonding
	// TSVCoupling enables the TSV-to-wire coupling capacitance model the
	// paper lists as future work (§7): wires routed near a TSV body pick up
	// sidewall coupling. Each TSV pad within a net's expanded bounding box
	// adds CouplingfF to that net.
	TSVCoupling bool
	// CouplingfF is the coupling capacitance per adjacent TSV (fF); zero
	// selects the default.
	CouplingfF float64
	// UseRSMT estimates small nets with an actual rectilinear Steiner tree
	// (geom.RSMT) instead of the statistical HPWL correction — slower but
	// more accurate for the multi-pin nets that dominate net power.
	UseRSMT bool
}

// DefaultTSVCouplingfF is the sidewall coupling between a TSV body and a
// wire routed past it, per via (first-order value from TSV field-solver
// studies at the paper's 5µm via size).
const DefaultTSVCouplingfF = 0.8

// maxCoupledTSVs caps how many TSV bodies one route can couple to: a wire
// passes at most a handful of vias, not every via inside its bounding box.
const maxCoupledTSVs = 3

// New returns an extractor for the given library, scale model and bonding
// style.
func New(lib *tech.Library, scale tech.ScaleModel, bond Bonding) *Extractor {
	return &Extractor{Lib: lib, Scale: scale, Bond: bond}
}

// layerFor picks the routing layer for a net by drawn length. Physical
// thresholds: below ~60µm a net stays on the thin local layers, below
// ~600µm on the intermediate 2x layers, beyond that on the top 4x layers if
// the block may use them (the paper gives only the SPC all nine layers; in
// F2F designs every layer is consumed by the block itself). inf is the
// scale model's RC inflation, hoisted by the caller so one math.Pow serves
// the whole net loop instead of three calls per net.
func (e *Extractor) layerFor(b *netlist.Block, drawnLen, inf float64) int {
	physLen := drawnLen * inf
	switch {
	case physLen < 60:
		return 2
	case physLen < 600:
		return 5
	default:
		if b.MaxRouteLayer >= 8 {
			return 8
		}
		return 7
	}
}

// NetLength returns the drawn routed-length estimate for net n: the Steiner
// length over its pins, routed through its 3D via points if present (the
// crossing splits the net into a per-die segment each).
func NetLength(b *netlist.Block, n *netlist.Net) float64 {
	var buf []geom.Point
	return netLengthWith(b, n, geom.SteinerWL, &buf)
}

// NetLengthRSMT is NetLength with a real rectilinear Steiner tree for small
// nets (geom.RSMT falls back to the spanning tree beyond its pin bound).
func NetLengthRSMT(b *netlist.Block, n *netlist.Net) float64 {
	var buf []geom.Point
	return netLengthWith(b, n, geom.RSMT, &buf)
}

// netLengthWith computes the drawn length through tree, gathering via-free
// nets' pins into *buf (caller scratch, overwritten per call).
func netLengthWith(b *netlist.Block, n *netlist.Net, tree func([]geom.Point) float64, buf *[]geom.Point) float64 {
	if len(n.Vias) == 0 {
		*buf = b.AppendNetPins((*buf)[:0], n)
		return tree(*buf)
	}
	// Per-die segments: pins of each die plus every via point.
	var seg [2][]geom.Point
	add := func(ref netlist.PinRef) {
		d := b.PinDie(ref)
		seg[d] = append(seg[d], b.PinPos(ref))
	}
	add(n.Driver)
	for _, s := range n.Sinks {
		add(s)
	}
	for d := 0; d < 2; d++ {
		if len(seg[d]) == 0 {
			continue
		}
		seg[d] = append(seg[d], n.Vias...)
	}
	var wl float64
	for d := 0; d < 2; d++ {
		if len(seg[d]) >= 2 {
			wl += tree(seg[d])
		}
	}
	return wl
}

// extractNet fills RouteLen, Layer, WireCapfF and WireResOhm for one net.
// inf is the hoisted RC inflation factor; the products keep the
// wl*(perUm*inf) association of tech.WireCPerUm/WireRPerUm so a hoisted
// extraction is bit-identical to the unhoisted one.
func (e *Extractor) extractNet(b *netlist.Block, n *netlist.Net, inf float64, buf *[]geom.Point) error {
	var wl float64
	if e.UseRSMT {
		wl = netLengthWith(b, n, geom.RSMT, buf)
	} else {
		wl = netLengthWith(b, n, geom.SteinerWL, buf)
	}
	n.RouteLen = wl
	n.Layer = e.layerFor(b, wl, inf)
	layer, err := e.Lib.Layer(n.Layer)
	if err != nil {
		return fmt.Errorf("extract: block %s net %s: %v", b.Name, n.Name, err)
	}
	n.WireCapfF = wl * (layer.CfFUm * inf)
	n.WireResOhm = wl * (layer.ROhmUm * inf)
	if n.Crossings > 0 {
		switch e.Bond {
		case F2B:
			n.WireCapfF += float64(n.Crossings) * e.Lib.TSV.CfF
			n.WireResOhm += float64(n.Crossings) * e.Lib.TSV.ROhm
		case F2F:
			n.WireCapfF += float64(n.Crossings) * e.Lib.F2F.CfF
			n.WireResOhm += float64(n.Crossings) * e.Lib.F2F.ROhm
		}
	}
	return nil
}

// Extract fills RouteLen, Layer, WireCapfF and WireResOhm for every net of
// b. Die-crossing nets receive the via parasitics of the bonding style.
func (e *Extractor) Extract(b *netlist.Block) error {
	inf := e.Scale.RCInflation()
	var buf []geom.Point // pin scratch local to this call; e is shared across workers
	for i := range b.Nets {
		if err := e.extractNet(b, &b.Nets[i], inf, &buf); err != nil {
			return err
		}
	}
	if e.TSVCoupling && e.Bond == F2B && len(b.TSVPads) > 0 {
		e.addTSVCoupling(b, &buf)
	}
	return nil
}

// Update re-extracts only the listed nets. Per-net extraction is a pure
// function of that net's own pins, vias and the block's TSV pads, so
// updating the nets a localized edit touched leaves every annotation
// bit-identical to a full Extract — the contract the incremental timing
// engine (sta.Engine) relies on. Duplicate indices are harmless.
func (e *Extractor) Update(b *netlist.Block, nets []int32) error {
	inf := e.Scale.RCInflation()
	couple := e.TSVCoupling && e.Bond == F2B && len(b.TSVPads) > 0
	var buf []geom.Point // pin scratch local to this call; e is shared across workers
	for _, ni := range nets {
		n := &b.Nets[ni]
		if err := e.extractNet(b, n, inf, &buf); err != nil {
			return err
		}
		if couple {
			e.coupleNet(b, n, &buf)
		}
	}
	return nil
}

// addTSVCoupling charges each net for the TSV bodies its route passes: every
// pad whose center falls inside the net's bounding box (expanded by one
// drawn TSV pitch of routing slack) couples to the net.
func (e *Extractor) addTSVCoupling(b *netlist.Block, buf *[]geom.Point) {
	cc := e.CouplingfF
	if cc == 0 {
		cc = DefaultTSVCouplingfF
	}
	// Expansion: one pad edge of clearance around the route estimate.
	slack := 0.0
	if len(b.TSVPads) > 0 {
		slack = b.TSVPads[0].W()
	}
	centers := make([]geom.Point, len(b.TSVPads))
	for i, pad := range b.TSVPads {
		centers[i] = pad.Center()
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || len(n.Sinks) == 0 {
			continue
		}
		*buf = b.AppendNetPins((*buf)[:0], n)
		bb := geom.BoundingBox(*buf).Expand(slack)
		near := 0
		for _, c := range centers {
			if bb.Contains(c) {
				near++
				if near == maxCoupledTSVs {
					break
				}
			}
		}
		n.WireCapfF += float64(near) * cc
	}
}

// coupleNet is the per-net body of addTSVCoupling, used by Update: the same
// pad scan in the same index order, so the coupling charge matches a full
// pass exactly.
func (e *Extractor) coupleNet(b *netlist.Block, n *netlist.Net, buf *[]geom.Point) {
	if n.Kind != netlist.Signal || len(n.Sinks) == 0 {
		return
	}
	cc := e.CouplingfF
	if cc == 0 {
		cc = DefaultTSVCouplingfF
	}
	slack := b.TSVPads[0].W()
	*buf = b.AppendNetPins((*buf)[:0], n)
	bb := geom.BoundingBox(*buf).Expand(slack)
	near := 0
	for _, pad := range b.TSVPads {
		if bb.Contains(pad.Center()) {
			near++
			if near == maxCoupledTSVs {
				break
			}
		}
	}
	n.WireCapfF += float64(near) * cc
}

// TotalLoad returns the full load capacitance seen by net n's driver: wire
// cap plus the input-pin caps of every sink. This is the C in both the delay
// and the net-power models; the paper's "net power = wire power + pin power"
// split falls out of its two terms.
func TotalLoad(b *netlist.Block, n *netlist.Net) (wirefF, pinfF float64) {
	wirefF = n.WireCapfF
	// The common pin kinds are switched inline: PinCap cannot be inlined
	// (its bad-kind panic keeps it over the inliner budget) and this loop
	// is the hottest consumer of pin caps in the whole flow. Same fields,
	// same order — identical sums.
	for _, s := range n.Sinks {
		switch s.Kind {
		case netlist.KindCell:
			pinfF += b.Cells[s.Idx].Master.InCapfF
		case netlist.KindMacro:
			pinfF += b.Macros[s.Idx].Model.InCapfF
		default:
			pinfF += b.PinCap(s)
		}
	}
	return wirefF, pinfF
}
