package thermal

import (
	"fmt"
	"testing"

	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func thermalBlock(t *testing.T, is3D bool) (*netlist.Block, tech.ScaleModel) {
	t.Helper()
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBlock("th", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	if is3D {
		b.Is3D = true
		b.Outline[1] = b.Outline[0]
	}
	for i := 0; i < 200; i++ {
		die := netlist.DieBottom
		if is3D && i%2 == 1 {
			die = netlist.DieTop
		}
		b.AddCell(netlist.Instance{
			Name:     fmt.Sprintf("c%d", i),
			Master:   lib.MustCell(tech.NAND2, 4, tech.RVT),
			Pos:      geom.Point{X: float64(1 + (i*7)%55), Y: float64(1 + (i*13)%55)},
			Die:      die,
			Activity: 0.2,
		})
	}
	return b, sm
}

func TestBlockTemperatureAboveAmbient(t *testing.T) {
	b, sm := thermalBlock(t, false)
	p := DefaultParams()
	r, err := AnalyzeBlock(b, sm, extract.F2B, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dies != 1 {
		t.Errorf("dies = %d", r.Dies)
	}
	if r.TMaxC <= p.AmbientC {
		t.Errorf("TMax %.2f not above ambient %.2f", r.TMaxC, p.AmbientC)
	}
	if r.TAvgC > r.TMaxC {
		t.Error("average exceeds max")
	}
	if r.TMaxC > 200 {
		t.Errorf("implausible temperature %.1f C", r.TMaxC)
	}
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	lib := tech.NewLibrary()
	_ = lib
	sm, _ := tech.NewScaleModel(1000)
	b := netlist.NewBlock("cold", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 40, 40)
	p := DefaultParams()
	r, err := AnalyzeBlock(b, sm, extract.F2B, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMaxC > p.AmbientC+0.01 {
		t.Errorf("cold block heated to %.3f", r.TMaxC)
	}
}

func TestStackingRaisesTemperature(t *testing.T) {
	// The same logic folded onto half the footprint doubles the power
	// density: the stack must run hotter.
	b2, sm := thermalBlock(t, false)
	p := DefaultParams()
	r2, err := AnalyzeBlock(b2, sm, extract.F2B, p)
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := thermalBlock(t, true)
	// Halve the footprint for the folded version.
	b3.Outline[0] = geom.NewRect(0, 0, 42, 42)
	b3.Outline[1] = b3.Outline[0]
	for i := range b3.Cells {
		c := &b3.Cells[i]
		c.Pos = geom.Point{X: c.Pos.X * 0.7, Y: c.Pos.Y * 0.7}
	}
	r3, err := AnalyzeBlock(b3, sm, extract.F2B, p)
	if err != nil {
		t.Fatal(err)
	}
	if r3.TMaxC <= r2.TMaxC {
		t.Errorf("stacked TMax %.2f not above 2D %.2f", r3.TMaxC, r2.TMaxC)
	}
}

func TestBottomDieRunsHotter(t *testing.T) {
	// The sink cools the top die's backside; the bottom die only leaks
	// through the board path, so it runs hotter.
	b, sm := thermalBlock(t, true)
	r, err := AnalyzeBlock(b, sm, extract.F2B, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.TMaxPerDie[0] <= r.TMaxPerDie[1] {
		t.Errorf("bottom die %.2f not hotter than top %.2f", r.TMaxPerDie[0], r.TMaxPerDie[1])
	}
}

func TestTSVsCoolTheStack(t *testing.T) {
	// Thermal TSVs tighten the vertical coupling: the F2B stack with many
	// TSV pads must run cooler than the same stack without them.
	b, sm := thermalBlock(t, true)
	without, err := AnalyzeBlock(b, sm, extract.F2B, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for x := 2.0; x < 58; x += 4 {
		for y := 2.0; y < 58; y += 4 {
			b.TSVPads = append(b.TSVPads, geom.RectWH(x, y, 0.7, 0.7))
		}
	}
	with, err := AnalyzeBlock(b, sm, extract.F2B, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if with.TMaxC >= without.TMaxC {
		t.Errorf("TSVs did not cool the stack: %.3f vs %.3f", with.TMaxC, without.TMaxC)
	}
}

func TestAnalyzeChip(t *testing.T) {
	sm, _ := tech.NewScaleModel(1000)
	outline := geom.NewRect(0, 0, 400, 400)
	tiles := []ChipPowerTile{
		{Rect: geom.RectWH(20, 20, 100, 100), Die: netlist.DieBottom, PowerMW: 5000},
		{Rect: geom.RectWH(200, 200, 120, 120), Die: netlist.DieTop, PowerMW: 8000},
		{Rect: geom.RectWH(200, 20, 80, 80), Both: true, PowerMW: 4000},
	}
	r, err := AnalyzeChip(outline, tiles, 2, extract.F2B, 3000, sm, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.TMaxC <= DefaultParams().AmbientC {
		t.Error("chip did not heat up")
	}
	if r.Dies != 2 {
		t.Errorf("dies = %d", r.Dies)
	}
	if _, err := AnalyzeChip(geom.Rect{}, tiles, 2, extract.F2B, 0, sm, DefaultParams()); err == nil {
		t.Error("expected error for empty outline")
	}
}

func TestErrorOnMissingOutline(t *testing.T) {
	sm, _ := tech.NewScaleModel(1000)
	b := netlist.NewBlock("x", tech.CPUClock)
	if _, err := AnalyzeBlock(b, sm, extract.F2B, DefaultParams()); err == nil {
		t.Error("expected error")
	}
}
