// Package thermal implements the steady-state thermal analysis the paper
// defers to future work ("our future work will address thermal issues in
// various 3D design styles with different bonding styles", §7): a
// resistive-network model of the two-tier stack. Each die is discretized
// into tiles; tiles couple laterally through silicon, vertically through the
// bonding interface (whose conductance depends on the bonding style and the
// TSV population — TSVs are copper and conduct heat), and to ambient through
// the heat-sink path attached to the top die's backside.
//
// Two solvers share the model. SolveReference is the original plain
// Gauss-Seidel relaxation, kept as the slow oracle. Engine is the production
// solver: a geometric multigrid V-cycle (red-black Gauss-Seidel smoother,
// aggregation coarsening) over flat per-die arrays, persistent and poolable
// like sta.Engine, with incremental re-solve after localized power or TSV
// edits — cheap enough to sit inside the optimization loop and drive thermal
// via insertion and folding selection (DESIGN.md §17). fold3dlint's
// ThermalEngineOnly rule keeps the reference solver out of production
// packages.
//
// The model reproduces the first-order 3D-IC thermal story: stacking doubles
// the power density, the die far from the heat sink runs hotter, and F2F
// bonding — which lacks the thermal TSVs of F2B — couples the tiers more
// weakly to the sink.
package thermal

import (
	"fmt"
	"math"

	"fold3d/internal/errs"
	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/pipeline"
	"fold3d/internal/tech"
)

// Params are the thermal constants of the stack. Conductances are per
// physical µm² of tile area unless stated; temperatures are °C.
type Params struct {
	// AmbientC is the reference ambient/heatsink temperature.
	AmbientC float64
	// KSinkWPerM2K is the effective heat-transfer coefficient from the top
	// die's backside through the heat spreader and sink.
	KSinkWPerM2K float64
	// KLateralWPerMK is silicon's lateral thermal conductivity.
	KLateralWPerMK float64
	// KBondBaseWPerM2K is the baseline conductance of the die-to-die bond
	// (dielectric glue for F2B, face-to-face metal bond for F2F).
	KBondBaseWPerM2K float64
	// KTSVWPerK is the additional vertical conductance contributed by one
	// TSV (copper cylinder through the bond).
	KTSVWPerK float64
	// KBoardWPerM2K is the leakage path from the bottom die through the
	// package substrate to the board.
	KBoardWPerM2K float64
	// DieThicknessUm is the silicon thickness used for lateral spreading.
	DieThicknessUm float64
}

// DefaultParams returns literature-typical constants for a thinned two-tier
// 28nm stack with a standard forced-air heat sink.
func DefaultParams() Params {
	return Params{
		AmbientC:         45,
		KSinkWPerM2K:     18000, // sink + spreader + TIM, lumped
		KLateralWPerMK:   120,   // silicon
		KBondBaseWPerM2K: 9000,  // oxide/adhesive bond
		KTSVWPerK:        2.4e-5,
		KBoardWPerM2K:    1200,
		DieThicknessUm:   50,
	}
}

// Validate checks the thermal constants before any solve. A NaN, infinite,
// or non-positive conductance (or thickness) would make the relaxation
// diverge or silently stall, so every failure is rejected up front, wrapping
// errs.ErrBadRequest and errs.ErrBadOptions and naming the field — the CLI
// maps that to exit 2 and fold3dd to HTTP 400, consistent with t2 scale
// validation.
func (p Params) Validate() error {
	// Negated range form so NaN (every comparison false) is rejected along
	// with ±Inf, zero and negatives.
	pos := func(field string, v float64) error {
		if !(v > 0 && v < math.Inf(1)) {
			return fmt.Errorf("thermal: %w: %w: %s must be positive and finite, got %g",
				errs.ErrBadRequest, errs.ErrBadOptions, field, v)
		}
		return nil
	}
	if !(p.AmbientC >= -273.15 && p.AmbientC <= 500) {
		return fmt.Errorf("thermal: %w: %w: AmbientC must be in [-273.15, 500], got %g",
			errs.ErrBadRequest, errs.ErrBadOptions, p.AmbientC)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"KSinkWPerM2K", p.KSinkWPerM2K},
		{"KLateralWPerMK", p.KLateralWPerMK},
		{"KBondBaseWPerM2K", p.KBondBaseWPerM2K},
		{"KTSVWPerK", p.KTSVWPerK},
		{"KBoardWPerM2K", p.KBoardWPerM2K},
		{"DieThicknessUm", p.DieThicknessUm},
	} {
		if err := pos(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Result is a solved temperature field.
type Result struct {
	// TMaxC and TAvgC summarize the whole stack.
	TMaxC, TAvgC float64
	// TMaxPerDie reports each tier's hottest tile; entries past Dies-1 are
	// zero and meaningless.
	TMaxPerDie [2]float64
	// NX, NY are the tile grid dimensions; MapC[die][iy*NX+ix] is the tile
	// temperature. Dies is authoritative: for a 2D design (Dies == 1) only
	// MapC[0] is populated and MapC[1] is nil — consumers must range over
	// MapC[:Dies], never over the fixed-size array.
	NX, NY int
	MapC   [2][]float64
	// Dies is 1 for a 2D design, 2 for a stack.
	Dies int
}

// Fingerprint digests the solved field — grid shape, summary statistics and
// every tile temperature by exact bit pattern — so byte-identical solves can
// be asserted across worker counts and fleet nodes.
func (r *Result) Fingerprint() pipeline.Fingerprint {
	h := pipeline.NewHasher()
	h.Int(r.NX)
	h.Int(r.NY)
	h.Int(r.Dies)
	h.F64(r.TMaxC)
	h.F64(r.TAvgC)
	for d := 0; d < r.Dies; d++ {
		h.F64(r.TMaxPerDie[d])
		for _, v := range r.MapC[d] {
			h.F64(v)
		}
	}
	return h.Sum()
}

// summarize wraps solved per-die temperature slices (ownership transfers to
// the Result) with the max/avg statistics. Slices past dies-1 stay nil.
func summarize(t [2][]float64, nx, ny, dies int) *Result {
	res := &Result{NX: nx, NY: ny, MapC: t, Dies: dies, TMaxC: -1e18}
	var sum float64
	cnt := 0
	for d := 0; d < dies; d++ {
		res.TMaxPerDie[d] = -1e18
		for _, v := range t[d] {
			if v > res.TMaxC {
				res.TMaxC = v
			}
			if v > res.TMaxPerDie[d] {
				res.TMaxPerDie[d] = v
			}
			sum += v
			cnt++
		}
	}
	res.TAvgC = sum / float64(cnt)
	return res
}

// gaussSeidel runs plain Gauss-Seidel on the tile network. pw[die][i] is the
// tile power in watts (physical); tileArea is the physical tile area in m²;
// vertK[i] is the die-to-die conductance per tile (W/K); dies is 1 or 2.
// Iteration stops when the largest per-tile update falls below tol or after
// maxIter sweeps, whichever comes first.
func gaussSeidel(pw [2][]float64, nx, ny, dies int, tileAreaM2 float64, vertK []float64, p Params, tol float64, maxIter int) *Result {
	n := nx * ny
	var t [2][]float64
	for d := 0; d < dies; d++ {
		t[d] = make([]float64, n)
		for i := range t[d] {
			t[d][i] = p.AmbientC
		}
	}
	// Conductances (W/K).
	gSink := p.KSinkWPerM2K * tileAreaM2
	gBoard := p.KBoardWPerM2K * tileAreaM2
	// Lateral: k * A_cross / L = k * (edge * thickness) / edge = k * thickness.
	gLat := p.KLateralWPerMK * (p.DieThicknessUm * 1e-6)

	sinkDie := dies - 1 // the top die's backside carries the sink
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for d := 0; d < dies; d++ {
			for iy := 0; iy < ny; iy++ {
				for ix := 0; ix < nx; ix++ {
					i := iy*nx + ix
					var gSum, flow float64
					// Lateral neighbors.
					for _, nb := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
						jx, jy := ix+nb[0], iy+nb[1]
						if jx < 0 || jx >= nx || jy < 0 || jy >= ny {
							continue
						}
						j := jy*nx + jx
						gSum += gLat
						flow += gLat * t[d][j]
					}
					// Vertical coupling to the other die.
					if dies == 2 {
						o := 1 - d
						gSum += vertK[i]
						flow += vertK[i] * t[o][i]
					}
					// Ambient paths.
					if d == sinkDie {
						gSum += gSink
						flow += gSink * p.AmbientC
					}
					if d == 0 {
						gSum += gBoard
						flow += gBoard * p.AmbientC
					}
					if gSum == 0 {
						continue
					}
					nt := (flow + pw[d][i]) / gSum
					if dl := math.Abs(nt - t[d][i]); dl > maxDelta {
						maxDelta = dl
					}
					t[d][i] = nt
				}
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return summarize(t, nx, ny, dies)
}

// SolveReference solves the tile network with the original plain
// Gauss-Seidel relaxation (update tolerance 1e-4 °C, 4000-sweep cap) — the
// oracle the multigrid Engine is validated against in the solver property
// suite and the speed baseline BENCH_PR10.json records. Production analysis
// goes through Engine; fold3dlint's ThermalEngineOnly rule bans this
// function outside internal/thermal and test files.
func SolveReference(pw [2][]float64, nx, ny, dies int, tileAreaM2 float64, vertK []float64, p Params) *Result {
	return gaussSeidel(pw, nx, ny, dies, tileAreaM2, vertK, p, 1e-4, 4000)
}

// SolveReferenceTol is SolveReference with caller-chosen stopping
// parameters, for equal-tolerance speed comparisons (BENCH_PR10.json) and
// tightened-oracle property tests. Subject to the same ThermalEngineOnly
// lint rule as SolveReference.
func SolveReferenceTol(pw [2][]float64, nx, ny, dies int, tileAreaM2 float64, vertK []float64, p Params, tol float64, maxIter int) *Result {
	return gaussSeidel(pw, nx, ny, dies, tileAreaM2, vertK, p, tol, maxIter)
}

// AnalyzeBlock solves the temperature field of one implemented block. The
// per-tile power comes from the block's cells, macros and nets at their
// placed positions (physical watts: the scale model's multiplier applies).
// bond selects the vertical-coupling model; the block's TSV pads contribute
// thermal conductance under F2B.
func AnalyzeBlock(b *netlist.Block, sm tech.ScaleModel, bond extract.Bonding, p Params) (*Result, error) {
	e := NewEngine()
	if _, err := e.LoadBlock(b, sm, bond, p); err != nil {
		return nil, err
	}
	return e.Solve()
}

// ChipPowerTile is one block's contribution to the chip-level thermal map.
type ChipPowerTile struct {
	Rect geom.Rect
	Die  netlist.Die
	// Both spreads the block's power over both dies (folded blocks).
	Both bool
	// PowerMW is the block's total power at report magnitude.
	PowerMW float64
}

// AnalyzeChip solves the chip-level temperature field from per-block power
// totals spread uniformly over each block's floorplan rectangle. outline is
// the chip outline (drawn µm); dies is 1 or 2; tsvs is the physical TSV
// population (vertical thermal paths under F2B).
func AnalyzeChip(outline geom.Rect, tiles []ChipPowerTile, dies int, bond extract.Bonding, tsvs int, sm tech.ScaleModel, p Params) (*Result, error) {
	e := NewEngine()
	if _, err := e.LoadChip(outline, tiles, dies, bond, tsvs, sm, p); err != nil {
		return nil, err
	}
	return e.Solve()
}
