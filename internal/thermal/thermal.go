// Package thermal implements the steady-state thermal analysis the paper
// defers to future work ("our future work will address thermal issues in
// various 3D design styles with different bonding styles", §7): a
// resistive-network model of the two-tier stack solved by Gauss-Seidel
// relaxation. Each die is discretized into tiles; tiles couple laterally
// through silicon, vertically through the bonding interface (whose
// conductance depends on the bonding style and the TSV population — TSVs are
// copper and conduct heat), and to ambient through the heat-sink path
// attached to the top die's backside.
//
// The model reproduces the first-order 3D-IC thermal story: stacking doubles
// the power density, the die far from the heat sink runs hotter, and F2F
// bonding — which lacks the thermal TSVs of F2B — couples the tiers more
// weakly to the sink.
package thermal

import (
	"fmt"
	"math"

	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/power"
	"fold3d/internal/tech"
)

// Params are the thermal constants of the stack. Conductances are per
// physical µm² of tile area unless stated; temperatures are °C.
type Params struct {
	// AmbientC is the reference ambient/heatsink temperature.
	AmbientC float64
	// KSinkWPerM2K is the effective heat-transfer coefficient from the top
	// die's backside through the heat spreader and sink.
	KSinkWPerM2K float64
	// KLateralWPerMK is silicon's lateral thermal conductivity.
	KLateralWPerMK float64
	// KBondBaseWPerM2K is the baseline conductance of the die-to-die bond
	// (dielectric glue for F2B, face-to-face metal bond for F2F).
	KBondBaseWPerM2K float64
	// KTSVWPerK is the additional vertical conductance contributed by one
	// TSV (copper cylinder through the bond).
	KTSVWPerK float64
	// KBoardWPerM2K is the leakage path from the bottom die through the
	// package substrate to the board.
	KBoardWPerM2K float64
	// DieThicknessUm is the silicon thickness used for lateral spreading.
	DieThicknessUm float64
}

// DefaultParams returns literature-typical constants for a thinned two-tier
// 28nm stack with a standard forced-air heat sink.
func DefaultParams() Params {
	return Params{
		AmbientC:         45,
		KSinkWPerM2K:     18000, // sink + spreader + TIM, lumped
		KLateralWPerMK:   120,   // silicon
		KBondBaseWPerM2K: 9000,  // oxide/adhesive bond
		KTSVWPerK:        2.4e-5,
		KBoardWPerM2K:    1200,
		DieThicknessUm:   50,
	}
}

// Result is a solved temperature field.
type Result struct {
	// TMaxC and TAvgC summarize the whole stack.
	TMaxC, TAvgC float64
	// TMaxPerDie reports each tier's hottest tile.
	TMaxPerDie [2]float64
	// NX, NY are the tile grid dimensions; MapC[die][iy*NX+ix] is the tile
	// temperature.
	NX, NY int
	MapC   [2][]float64
	// Dies is 1 for a 2D design, 2 for a stack.
	Dies int
}

// solve runs Gauss-Seidel on the tile network. pw[die][i] is the tile power
// in watts (physical); tileArea is the physical tile area in m²; vertK[i] is
// the die-to-die conductance per tile (W/K); dies is 1 or 2.
func solve(pw [2][]float64, nx, ny, dies int, tileAreaM2 float64, vertK []float64, p Params) *Result {
	n := nx * ny
	t := [2][]float64{make([]float64, n), make([]float64, n)}
	for d := 0; d < 2; d++ {
		for i := range t[d] {
			t[d][i] = p.AmbientC
		}
	}
	// Conductances (W/K).
	gSink := p.KSinkWPerM2K * tileAreaM2
	gBoard := p.KBoardWPerM2K * tileAreaM2
	// Lateral: k * A_cross / L = k * (edge * thickness) / edge = k * thickness.
	gLat := p.KLateralWPerMK * (p.DieThicknessUm * 1e-6)

	sinkDie := dies - 1 // the top die's backside carries the sink
	for iter := 0; iter < 4000; iter++ {
		var maxDelta float64
		for d := 0; d < dies; d++ {
			for iy := 0; iy < ny; iy++ {
				for ix := 0; ix < nx; ix++ {
					i := iy*nx + ix
					var gSum, flow float64
					// Lateral neighbors.
					for _, nb := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
						jx, jy := ix+nb[0], iy+nb[1]
						if jx < 0 || jx >= nx || jy < 0 || jy >= ny {
							continue
						}
						j := jy*nx + jx
						gSum += gLat
						flow += gLat * t[d][j]
					}
					// Vertical coupling to the other die.
					if dies == 2 {
						o := 1 - d
						gSum += vertK[i]
						flow += vertK[i] * t[o][i]
					}
					// Ambient paths.
					if d == sinkDie {
						gSum += gSink
						flow += gSink * p.AmbientC
					}
					if d == 0 {
						gSum += gBoard
						flow += gBoard * p.AmbientC
					}
					if gSum == 0 {
						continue
					}
					nt := (flow + pw[d][i]) / gSum
					if dl := math.Abs(nt - t[d][i]); dl > maxDelta {
						maxDelta = dl
					}
					t[d][i] = nt
				}
			}
		}
		if maxDelta < 1e-4 {
			break
		}
	}

	res := &Result{NX: nx, NY: ny, MapC: t, Dies: dies, TMaxC: -1e18}
	var sum float64
	cnt := 0
	for d := 0; d < dies; d++ {
		res.TMaxPerDie[d] = -1e18
		for _, v := range t[d] {
			if v > res.TMaxC {
				res.TMaxC = v
			}
			if v > res.TMaxPerDie[d] {
				res.TMaxPerDie[d] = v
			}
			sum += v
			cnt++
		}
	}
	res.TAvgC = sum / float64(cnt)
	return res
}

// AnalyzeBlock solves the temperature field of one implemented block. The
// per-tile power comes from the block's cells, macros and nets at their
// placed positions (physical watts: the scale model's multiplier applies).
// bond selects the vertical-coupling model; the block's TSV pads contribute
// thermal conductance under F2B.
func AnalyzeBlock(b *netlist.Block, sm tech.ScaleModel, bond extract.Bonding, p Params) (*Result, error) {
	dies := 1
	if b.Is3D {
		dies = 2
	}
	out := b.Outline[0]
	if b.Is3D {
		out = out.Union(b.Outline[1])
	}
	if out.Area() <= 0 {
		return nil, fmt.Errorf("thermal: block %s has no outline", b.Name)
	}
	const nx, ny = 16, 16
	grid, err := geom.NewGrid(out, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}

	var pw [2][]float64
	pw[0] = make([]float64, nx*ny)
	pw[1] = make([]float64, nx*ny)
	mult := sm.PowerMultiplier() * 1e-3 // mW -> W at physical magnitude
	freq := b.Clock.FreqMHz()

	add := func(pt geom.Point, die netlist.Die, mw float64) {
		ix, iy := grid.BinAt(pt)
		pw[die][iy*nx+ix] += mw * mult
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		act := c.Activity
		if act == 0 {
			act = power.DefaultActivity
		}
		if c.IsClockBuf {
			act = 2
		}
		mw := tech.DynamicPowerMW(c.Master.IntCap, act, freq) + c.Master.LeaknW*1e-6
		add(c.Center(), c.Die, mw)
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		act := m.Activity
		if act == 0 {
			act = 0.5
		}
		mw := m.Model.ReadEnergyFJ*act*freq*1e-6 + m.Model.LeakmW
		add(m.Center(), m.Die, mw)
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		act := n.Activity
		if act == 0 {
			act = power.DefaultActivity
		}
		mw := tech.DynamicPowerMW(n.WireCapfF, act, freq)
		add(b.PinPos(n.Driver), b.PinDie(n.Driver), mw)
	}

	// Tile geometry at physical scale.
	shrink := sm.LinearShrink()
	dx, dy := grid.BinSize()
	tileAreaM2 := (dx * shrink * 1e-6) * (dy * shrink * 1e-6)

	// Vertical conductance per tile: bond baseline plus TSV copper (F2B).
	vertK := make([]float64, nx*ny)
	base := p.KBondBaseWPerM2K
	if bond == extract.F2F {
		// Metal-to-metal face bond conducts better than the F2B adhesive,
		// but the stack loses the TSV thermal paths.
		base *= 1.8
	}
	for i := range vertK {
		vertK[i] = base * tileAreaM2
	}
	if bond == extract.F2B {
		// Each physical TSV adds its copper conductance at its pad's tile.
		perPad := math.Sqrt(sm.Scale) // one drawn pad stands for many vias
		for _, pad := range b.TSVPads {
			ix, iy := grid.BinAt(pad.Center())
			vertK[iy*nx+ix] += p.KTSVWPerK * perPad
		}
	}
	return solve(pw, nx, ny, dies, tileAreaM2, vertK, p), nil
}

// ChipPowerTile is one block's contribution to the chip-level thermal map.
type ChipPowerTile struct {
	Rect geom.Rect
	Die  netlist.Die
	// Both spreads the block's power over both dies (folded blocks).
	Both bool
	// PowerMW is the block's total power at report magnitude.
	PowerMW float64
}

// AnalyzeChip solves the chip-level temperature field from per-block power
// totals spread uniformly over each block's floorplan rectangle. outline is
// the chip outline (drawn µm); dies is 1 or 2; tsvs is the physical TSV
// population (vertical thermal paths under F2B).
func AnalyzeChip(outline geom.Rect, tiles []ChipPowerTile, dies int, bond extract.Bonding, tsvs int, sm tech.ScaleModel, p Params) (*Result, error) {
	if outline.Area() <= 0 {
		return nil, fmt.Errorf("thermal: empty chip outline")
	}
	const nx, ny = 24, 24
	grid, err := geom.NewGrid(outline, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}
	var pw [2][]float64
	pw[0] = make([]float64, nx*ny)
	pw[1] = make([]float64, nx*ny)
	for _, t := range tiles {
		area := t.Rect.Area()
		if area <= 0 {
			continue
		}
		watts := t.PowerMW * 1e-3
		grid.OverlapBins(t.Rect, func(ix, iy int, a float64) {
			share := watts * a / area
			if t.Both && dies == 2 {
				pw[0][iy*nx+ix] += share / 2
				pw[1][iy*nx+ix] += share / 2
			} else {
				pw[t.Die][iy*nx+ix] += share
			}
		})
	}
	shrink := sm.LinearShrink()
	dx, dy := grid.BinSize()
	tileAreaM2 := (dx * shrink * 1e-6) * (dy * shrink * 1e-6)

	vertK := make([]float64, nx*ny)
	base := p.KBondBaseWPerM2K
	if bond == extract.F2F {
		base *= 1.8
	}
	perTile := base*tileAreaM2 + p.KTSVWPerK*float64(tsvs)/float64(nx*ny)
	for i := range vertK {
		vertK[i] = perTile
	}
	return solve(pw, nx, ny, dies, tileAreaM2, vertK, p), nil
}
