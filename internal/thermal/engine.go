package thermal

import (
	"fmt"
	"math"

	"fold3d/internal/errs"
	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/power"
	"fold3d/internal/tech"
)

// Solver tuning. The tolerance is the largest per-tile scaled residual
// (|r|/diag — the size of the next Jacobi update, in °C) accepted as
// converged; it matches the reference solver's 1e-4 °C update criterion so
// "equal tolerance" comparisons are meaningful. The V-cycle cap is the
// convergence guard: a healthy multigrid hierarchy converges in tens of
// cycles, so hitting the cap means the operator hierarchy is broken (see the
// seeded-bug test) and Solve reports an error instead of a wrong field.
const (
	defaultSolveTol = 1e-4
	maxVCycles      = 200
	nuPre           = 2  // pre-smoothing sweeps per level
	nuPost          = 2  // post-smoothing sweeps per level
	coarsestSweeps  = 32 // smoothing sweeps on the 1x1 coarsest level
)

// level is one grid of the multigrid hierarchy. Level 0 is the physical
// tile grid; each coarser level aggregates 2x2 fine tiles (ceil division at
// the boundary), with conductances summed Galerkin-style: a coarse edge is
// the sum of the fine edges crossing the aggregate boundary, and the
// per-tile vertical/sink/board conductances sum over the aggregate.
type level struct {
	nx, ny int
	// gx[iy*nx+ix] couples tile (ix,iy) to (ix+1,iy); the last column stays
	// zero. gy[iy*nx+ix] couples (ix,iy) to (ix,iy+1); the last row stays
	// zero.
	gx, gy []float64
	// vertK, gSink, gBoard are per-tile conductances (W/K). vertK couples
	// the two dies at the tile; gSink applies to the sink die, gBoard to
	// die 0.
	vertK, gSink, gBoard []float64
	// diag[d][i] is the precomputed diagonal of equation row (d,i).
	diag [2][]float64
	// u is the unknown (temperature on level 0, correction on coarser
	// levels), f the right-hand side, r the residual scratch.
	u, f, r [2][]float64
}

// Engine is the production thermal solver: a persistent geometric-multigrid
// V-cycle over flat per-die arrays, reusable via ReinitGrid (pool it like
// sta.Engine — the flow keeps recycled engines and reinitializes them per
// block, so steady-state solves allocate nothing but the Result). After a
// full Solve, localized power or TSV edits (AddPower, AddVertKAt) can be
// absorbed by Resolve, which relaxes an expanding window around the dirty
// region instead of re-running V-cycles over the whole grid.
//
// An Engine is not safe for concurrent use; give each goroutine its own.
type Engine struct {
	levels []*level
	// store owns every level ever allocated (len >= len(levels)) so
	// ReinitGrid and recoarsen reuse arrays instead of reallocating.
	store      []*level
	dies       int
	p          Params
	tileAreaM2 float64
	// tol is the convergence tolerance (°C of scaled residual).
	tol float64
	// solved reports that u on level 0 satisfies the current operator and
	// rhs to within tol; edits clear it only via the dirty window.
	solved bool
	// needCoarsen marks the coarse hierarchy stale after operator edits
	// (vertK changes); the next full Solve rebuilds it.
	needCoarsen bool
	// dirty window (inclusive tile bounds on level 0) accumulated by edits.
	dirty                  bool
	dLoX, dLoY, dHiX, dHiY int
	// relax counts tile-die relaxation updates — the solver's work measure,
	// used to prove incremental re-solve sub-linearity without wall-clock.
	relax int64
	// restrictScale exists for the seeded-bug test: flipping it to -1
	// breaks the restriction operator, and Solve's fine-grid residual guard
	// must then refuse to return a field. Always 1 in production.
	restrictScale float64
}

// NewEngine returns an empty engine; call ReinitGrid (or LoadBlock /
// LoadChip) before solving.
func NewEngine() *Engine {
	return &Engine{tol: defaultSolveTol, restrictScale: 1}
}

// ensure returns s resized to n and zeroed, reusing its backing array when
// large enough.
func ensure(s []float64, n int) []float64 {
	if cap(s) >= n {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n)
}

// grabLevel returns the idx'th stored level resized to nx x ny with all
// arrays zeroed.
func (e *Engine) grabLevel(idx, nx, ny int) *level {
	for len(e.store) <= idx {
		e.store = append(e.store, &level{})
	}
	lv := e.store[idx]
	n := nx * ny
	lv.nx, lv.ny = nx, ny
	lv.gx = ensure(lv.gx, n)
	lv.gy = ensure(lv.gy, n)
	lv.vertK = ensure(lv.vertK, n)
	lv.gSink = ensure(lv.gSink, n)
	lv.gBoard = ensure(lv.gBoard, n)
	for d := 0; d < 2; d++ {
		lv.diag[d] = ensure(lv.diag[d], n)
		lv.u[d] = ensure(lv.u[d], n)
		lv.f[d] = ensure(lv.f[d], n)
		lv.r[d] = ensure(lv.r[d], n)
	}
	return lv
}

// ReinitGrid resets the engine to an nx x ny tile grid with dies tiers of
// physical tile area tileAreaM2, validating p first. Lateral conductances
// and the ambient sink/board paths come from p; the vertical coupling starts
// at zero — call SetUniformVertK (and AddVertKAt for TSV pads) before
// solving a stack. All tile powers start at zero.
func (e *Engine) ReinitGrid(nx, ny, dies int, tileAreaM2 float64, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if nx < 1 || ny < 1 {
		return fmt.Errorf("thermal: %w: %w: grid must be at least 1x1, got %dx%d",
			errs.ErrBadRequest, errs.ErrBadOptions, nx, ny)
	}
	if dies != 1 && dies != 2 {
		return fmt.Errorf("thermal: %w: %w: dies must be 1 or 2, got %d",
			errs.ErrBadRequest, errs.ErrBadOptions, dies)
	}
	if !(tileAreaM2 > 0 && tileAreaM2 < math.Inf(1)) {
		return fmt.Errorf("thermal: %w: %w: tile area must be positive and finite, got %g",
			errs.ErrBadRequest, errs.ErrBadOptions, tileAreaM2)
	}
	e.dies, e.p, e.tileAreaM2 = dies, p, tileAreaM2
	e.solved, e.dirty, e.needCoarsen = false, false, true
	lv := e.grabLevel(0, nx, ny)
	e.levels = append(e.levels[:0], lv)

	gLat := p.KLateralWPerMK * (p.DieThicknessUm * 1e-6)
	gSink := p.KSinkWPerM2K * tileAreaM2
	gBoard := p.KBoardWPerM2K * tileAreaM2
	n := nx * ny
	for i := 0; i < n; i++ {
		if i%nx < nx-1 {
			lv.gx[i] = gLat
		}
		if i/nx < ny-1 {
			lv.gy[i] = gLat
		}
		lv.gSink[i] = gSink
		lv.gBoard[i] = gBoard
	}
	sinkDie := dies - 1
	for d := 0; d < dies; d++ {
		for i := 0; i < n; i++ {
			lv.u[d][i] = p.AmbientC
			// f carries the ambient boundary terms; SetPower/AddPower layer
			// the tile power on top.
			if d == sinkDie {
				lv.f[d][i] += lv.gSink[i] * p.AmbientC
			}
			if d == 0 {
				lv.f[d][i] += lv.gBoard[i] * p.AmbientC
			}
		}
	}
	computeDiag(lv, dies)
	return nil
}

// computeDiag refreshes every diagonal entry of lv from its conductances.
func computeDiag(lv *level, dies int) {
	nx, ny := lv.nx, lv.ny
	sinkDie := dies - 1
	for d := 0; d < dies; d++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := iy*nx + ix
				var g float64
				if ix > 0 {
					g += lv.gx[i-1]
				}
				if ix < nx-1 {
					g += lv.gx[i]
				}
				if iy > 0 {
					g += lv.gy[i-nx]
				}
				if iy < ny-1 {
					g += lv.gy[i]
				}
				if dies == 2 {
					g += lv.vertK[i]
				}
				if d == sinkDie {
					g += lv.gSink[i]
				}
				if d == 0 {
					g += lv.gBoard[i]
				}
				lv.diag[d][i] = g
			}
		}
	}
}

// ambRHS is the ambient boundary contribution to row (d,i) of level 0.
func (e *Engine) ambRHS(d, i int) float64 {
	lv := e.levels[0]
	var a float64
	if d == e.dies-1 {
		a += lv.gSink[i] * e.p.AmbientC
	}
	if d == 0 {
		a += lv.gBoard[i] * e.p.AmbientC
	}
	return a
}

// markDirty grows the dirty window to include tile (ix,iy).
func (e *Engine) markDirty(ix, iy int) {
	if !e.dirty {
		e.dirty = true
		e.dLoX, e.dHiX, e.dLoY, e.dHiY = ix, ix, iy, iy
		return
	}
	if ix < e.dLoX {
		e.dLoX = ix
	}
	if ix > e.dHiX {
		e.dHiX = ix
	}
	if iy < e.dLoY {
		e.dLoY = iy
	}
	if iy > e.dHiY {
		e.dHiY = iy
	}
}

// SetPower sets the power (physical watts) of tile (ix,iy) on die.
func (e *Engine) SetPower(die, ix, iy int, watts float64) {
	lv := e.levels[0]
	i := iy*lv.nx + ix
	lv.f[die][i] = e.ambRHS(die, i) + watts
	e.markDirty(ix, iy)
}

// AddPower adds watts (physical) to tile (ix,iy) on die.
func (e *Engine) AddPower(die, ix, iy int, watts float64) {
	lv := e.levels[0]
	lv.f[die][iy*lv.nx+ix] += watts
	e.markDirty(ix, iy)
}

// SetUniformVertK sets the die-to-die conductance of every tile to k (W/K),
// replacing any per-tile TSV contributions.
func (e *Engine) SetUniformVertK(k float64) {
	lv := e.levels[0]
	for i := range lv.vertK {
		lv.vertK[i] = k
	}
	computeDiag(lv, e.dies)
	e.needCoarsen = true
	e.markDirty(0, 0)
	e.markDirty(lv.nx-1, lv.ny-1)
}

// AddVertKAt adds dk (W/K) of die-to-die conductance at tile (ix,iy) — one
// TSV landing. No-op on a single-die grid, where there is no bond. When the
// coarse hierarchy is current, the edit is folded into it incrementally
// (each level's covering aggregate gains the same dk — aggregation
// coarsening sums child conductances), so a TSV batch between solves keeps
// Resolve's windowed V-cycle sub-linear instead of forcing an O(n²)
// re-coarsening.
func (e *Engine) AddVertKAt(ix, iy int, dk float64) {
	if e.dies != 2 {
		return
	}
	lv := e.levels[0]
	i := iy*lv.nx + ix
	lv.vertK[i] += dk
	lv.diag[0][i] += dk
	lv.diag[1][i] += dk
	if !e.needCoarsen {
		cx, cy := ix, iy
		for l := 1; l < len(e.levels); l++ {
			cx, cy = cx/2, cy/2
			c := e.levels[l]
			ci := cy*c.nx + cx
			c.vertK[ci] += dk
			c.diag[0][ci] += dk
			c.diag[1][ci] += dk
		}
	}
	e.markDirty(ix, iy)
}

// Relaxations returns the cumulative count of tile-die relaxation updates
// this engine has performed — a deterministic work measure for asserting
// incremental re-solve sub-linearity without trusting wall-clock.
func (e *Engine) Relaxations() int64 { return e.relax }

// recoarsen rebuilds the coarse hierarchy from level 0 down to a 1x1 grid.
// Stopping at a single aggregate matters: the sink coupling can be orders of
// magnitude weaker than the lateral conductance, leaving a near-singular
// global mode that smoothing barely touches — the 1x1 level, where the
// aggregated sink/board conductances dominate, resolves it exactly.
func (e *Engine) recoarsen() {
	e.levels = e.levels[:1]
	for l := 0; ; l++ {
		fine := e.levels[l]
		if fine.nx == 1 && fine.ny == 1 {
			break
		}
		cnx, cny := (fine.nx+1)/2, (fine.ny+1)/2
		c := e.grabLevel(l+1, cnx, cny)
		for iy := 0; iy < fine.ny; iy++ {
			cy := iy / 2
			for ix := 0; ix < fine.nx; ix++ {
				cx := ix / 2
				i := iy*fine.nx + ix
				ci := cy*cnx + cx
				c.vertK[ci] += fine.vertK[i]
				c.gSink[ci] += fine.gSink[i]
				c.gBoard[ci] += fine.gBoard[i]
				// A fine edge whose endpoints land in different aggregates
				// becomes part of the coarse edge between them; an edge
				// internal to an aggregate vanishes (both endpoints share
				// one coarse unknown).
				if ix < fine.nx-1 && (ix+1)/2 != cx {
					c.gx[ci] += fine.gx[i]
				}
				if iy < fine.ny-1 && (iy+1)/2 != cy {
					c.gy[ci] += fine.gy[i]
				}
			}
		}
		computeDiag(c, e.dies)
		e.levels = append(e.levels, c)
	}
	e.needCoarsen = false
}

// smoothWindow runs red-black Gauss-Seidel sweeps over the inclusive tile
// window [lx,hx] x [ly,hy] of lv. Within a color the dies update in order at
// each tile; the traversal is fixed, so results are deterministic.
func (e *Engine) smoothWindow(lv *level, lx, ly, hx, hy, sweeps int) {
	nx, ny, dies := lv.nx, lv.ny, e.dies
	for s := 0; s < sweeps; s++ {
		for color := 0; color < 2; color++ {
			for iy := ly; iy <= hy; iy++ {
				for ix := lx + ((lx ^ iy ^ color) & 1); ix <= hx; ix += 2 {
					i := iy*nx + ix
					for d := 0; d < dies; d++ {
						flow := lv.f[d][i]
						if ix > 0 {
							flow += lv.gx[i-1] * lv.u[d][i-1]
						}
						if ix < nx-1 {
							flow += lv.gx[i] * lv.u[d][i+1]
						}
						if iy > 0 {
							flow += lv.gy[i-nx] * lv.u[d][i-nx]
						}
						if iy < ny-1 {
							flow += lv.gy[i] * lv.u[d][i+nx]
						}
						if dies == 2 {
							flow += lv.vertK[i] * lv.u[1-d][i]
						}
						lv.u[d][i] = flow / lv.diag[d][i]
					}
				}
			}
		}
	}
	e.relax += int64(sweeps) * int64(dies) * int64(hx-lx+1) * int64(hy-ly+1)
}

// residual fills lv.r with f - A u over the whole level.
func (e *Engine) residual(lv *level) {
	e.residualWindow(lv, 0, 0, lv.nx-1, lv.ny-1)
}

// residualWindow fills lv.r with f - A u over the inclusive window; entries
// outside it are left stale and must not be read.
func (e *Engine) residualWindow(lv *level, lx, ly, hx, hy int) {
	nx, ny := lv.nx, lv.ny
	for d := 0; d < e.dies; d++ {
		for iy := ly; iy <= hy; iy++ {
			for ix := lx; ix <= hx; ix++ {
				i := iy*nx + ix
				flow := lv.f[d][i] - lv.diag[d][i]*lv.u[d][i]
				if ix > 0 {
					flow += lv.gx[i-1] * lv.u[d][i-1]
				}
				if ix < nx-1 {
					flow += lv.gx[i] * lv.u[d][i+1]
				}
				if iy > 0 {
					flow += lv.gy[i-nx] * lv.u[d][i-nx]
				}
				if iy < ny-1 {
					flow += lv.gy[i] * lv.u[d][i+nx]
				}
				if e.dies == 2 {
					flow += lv.vertK[i] * lv.u[1-d][i]
				}
				lv.r[d][i] = flow
			}
		}
	}
}

// scaledResidual returns the largest |r|/diag (°C of pending Jacobi update)
// over the inclusive window — the convergence measure.
func (e *Engine) scaledResidual(lv *level, lx, ly, hx, hy int) float64 {
	nx, ny := lv.nx, lv.ny
	var worst float64
	for d := 0; d < e.dies; d++ {
		for iy := ly; iy <= hy; iy++ {
			for ix := lx; ix <= hx; ix++ {
				i := iy*nx + ix
				flow := lv.f[d][i] - lv.diag[d][i]*lv.u[d][i]
				if ix > 0 {
					flow += lv.gx[i-1] * lv.u[d][i-1]
				}
				if ix < nx-1 {
					flow += lv.gx[i] * lv.u[d][i+1]
				}
				if iy > 0 {
					flow += lv.gy[i-nx] * lv.u[d][i-nx]
				}
				if iy < ny-1 {
					flow += lv.gy[i] * lv.u[d][i+nx]
				}
				if e.dies == 2 {
					flow += lv.vertK[i] * lv.u[1-d][i]
				}
				if v := math.Abs(flow) / lv.diag[d][i]; v > worst {
					worst = v
				}
			}
		}
	}
	return worst
}

// vcycle runs one V-cycle rooted at level l: pre-smooth, restrict the
// residual (summation over 2x2 aggregates, matching the piecewise-constant
// prolongation), recurse, prolong the correction, post-smooth.
func (e *Engine) vcycle(l int) {
	lv := e.levels[l]
	if l == len(e.levels)-1 {
		e.smoothWindow(lv, 0, 0, lv.nx-1, lv.ny-1, coarsestSweeps)
		return
	}
	e.smoothWindow(lv, 0, 0, lv.nx-1, lv.ny-1, nuPre)
	e.residual(lv)
	c := e.levels[l+1]
	for d := 0; d < e.dies; d++ {
		cf, cu := c.f[d], c.u[d]
		for i := range cf {
			cf[i] = 0
			cu[i] = 0
		}
		for iy := 0; iy < lv.ny; iy++ {
			cy := iy / 2
			for ix := 0; ix < lv.nx; ix++ {
				cf[cy*c.nx+ix/2] += e.restrictScale * lv.r[d][iy*lv.nx+ix]
			}
		}
	}
	e.vcycle(l + 1)
	for d := 0; d < e.dies; d++ {
		for iy := 0; iy < lv.ny; iy++ {
			cy := iy / 2
			for ix := 0; ix < lv.nx; ix++ {
				lv.u[d][iy*lv.nx+ix] += c.u[d][cy*c.nx+ix/2]
			}
		}
	}
	e.smoothWindow(lv, 0, 0, lv.nx-1, lv.ny-1, nuPost)
}

// windowPad is how far each coarse window extends beyond the parents of the
// fine window in the windowed V-cycle — room for the local part of the
// coarse correction to spread past the dirty region.
const windowPad = 2

// vcycleWindow is the incremental-re-solve V-cycle: relaxation work —
// smoothing and residual evaluation — runs only inside a window around the
// dirty region at every level, with the window shrinking geometrically
// toward the coarse grids. The restricted residual is zero outside the
// window (everything farther out still satisfied the previous converged
// solve to below tolerance), but the resulting coarse correction is NOT
// clipped: it is prolonged over the whole level, because a localized
// conductance or power edit shifts the global (weak-sink) temperature mode
// everywhere, and that smooth component must land outside the window too —
// applying a smooth correction costs only streaming adds and leaves
// sub-tolerance residual where no smoothing happens. Once the window covers
// a level, the plain V-cycle takes over below it. Returns the fine-level
// post-smoothing window (the only region where sharp error can remain).
func (e *Engine) vcycleWindow(l, lx, ly, hx, hy int) (rlx, rly, rhx, rhy int) {
	lv := e.levels[l]
	if l == len(e.levels)-1 {
		e.smoothWindow(lv, lx, ly, hx, hy, coarsestSweeps)
		return lx, ly, hx, hy
	}
	if lx == 0 && ly == 0 && hx == lv.nx-1 && hy == lv.ny-1 {
		e.vcycle(l)
		return lx, ly, hx, hy
	}
	e.smoothWindow(lv, lx, ly, hx, hy, nuPre)
	e.residualWindow(lv, lx, ly, hx, hy)
	c := e.levels[l+1]
	clx, cly := clampLo(lx/2-windowPad), clampLo(ly/2-windowPad)
	chx, chy := clampHi(hx/2+windowPad, c.nx), clampHi(hy/2+windowPad, c.ny)
	for d := 0; d < e.dies; d++ {
		cu, cf := c.u[d], c.f[d]
		for i := range cf {
			cu[i] = 0
			cf[i] = 0
		}
		for iy := ly; iy <= hy; iy++ {
			cy := iy / 2
			for ix := lx; ix <= hx; ix++ {
				cf[cy*c.nx+ix/2] += e.restrictScale * lv.r[d][iy*lv.nx+ix]
			}
		}
	}
	e.vcycleWindow(l+1, clx, cly, chx, chy)
	for d := 0; d < e.dies; d++ {
		for iy := 0; iy < lv.ny; iy++ {
			cy := iy / 2
			for ix := 0; ix < lv.nx; ix++ {
				lv.u[d][iy*lv.nx+ix] += c.u[d][cy*c.nx+ix/2]
			}
		}
	}
	// Post-smooth where sharp error can live: the window plus the image of
	// the coarse pad.
	slx, sly := clampLo(lx-2*windowPad), clampLo(ly-2*windowPad)
	shx, shy := clampHi(hx+2*windowPad+1, lv.nx), clampHi(hy+2*windowPad+1, lv.ny)
	e.smoothWindow(lv, slx, sly, shx, shy, nuPost)
	return slx, sly, shx, shy
}

// Solve runs full V-cycles until the fine-grid scaled residual is within
// tolerance and returns the solved field. The convergence check lives on
// the fine grid only, so an inaccurate (or broken) coarse hierarchy can
// slow convergence but never corrupt a returned Result; if the cycle cap is
// hit first, Solve returns an error instead of an unconverged field.
func (e *Engine) Solve() (*Result, error) {
	if len(e.levels) == 0 {
		return nil, fmt.Errorf("thermal: engine not initialized (call ReinitGrid, LoadBlock or LoadChip first)")
	}
	if e.needCoarsen {
		e.recoarsen()
	}
	fine := e.levels[0]
	for cycle := 0; ; cycle++ {
		if e.scaledResidual(fine, 0, 0, fine.nx-1, fine.ny-1) < e.tol {
			e.solved = true
			e.dirty = false
			return e.result(), nil
		}
		if cycle >= maxVCycles {
			return nil, fmt.Errorf("thermal: multigrid stalled above tolerance %g after %d V-cycles (broken operator hierarchy?)",
				e.tol, maxVCycles)
		}
		e.vcycle(0)
	}
}

// Resolve absorbs the edits since the last converged solve with windowed
// V-cycles around the dirty region — sub-linear in grid size for localized
// edits (a TSV batch, a few power tweaks): per-level windows shrink
// geometrically toward the coarse grids, so the work per cycle depends on
// the dirty-region size, not the grid size. The window starts at the dirty
// bounding box plus two tiles; after each cycle the residual is checked
// over the changed region plus a one-tile ring (the only tiles an in-window
// update can disturb — everything farther out still satisfies the previous
// converged solve), and the window grows until it converges or covers the
// grid, at which point Resolve falls back to a full Solve.
func (e *Engine) Resolve() (*Result, error) {
	if len(e.levels) == 0 {
		return nil, fmt.Errorf("thermal: engine not initialized (call ReinitGrid, LoadBlock or LoadChip first)")
	}
	if !e.solved || e.needCoarsen {
		return e.Solve()
	}
	if !e.dirty {
		return e.result(), nil
	}
	fine := e.levels[0]
	nx, ny := fine.nx, fine.ny
	lx, ly := clampLo(e.dLoX-2), clampLo(e.dLoY-2)
	hx, hy := clampHi(e.dHiX+2, nx), clampHi(e.dHiY+2, ny)
	for cycle := 0; ; cycle++ {
		if lx == 0 && ly == 0 && hx == nx-1 && hy == ny-1 {
			return e.Solve()
		}
		if cycle >= maxVCycles {
			return nil, fmt.Errorf("thermal: incremental re-solve stalled above tolerance %g after %d windowed V-cycles",
				e.tol, maxVCycles)
		}
		lx, ly, hx, hy = e.vcycleWindow(0, lx, ly, hx, hy)
		// Acceptance is the same full-grid scaled-residual criterion as
		// Solve — a flops-only scan, no relaxation work — so an incremental
		// answer can never be weaker than a from-scratch one.
		if e.scaledResidual(fine, 0, 0, nx-1, ny-1) < e.tol {
			e.solved = true
			e.dirty = false
			return e.result(), nil
		}
		lx, ly = clampLo(lx-2), clampLo(ly-2)
		hx, hy = clampHi(hx+2, nx), clampHi(hy+2, ny)
	}
}

func clampLo(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

func clampHi(v, n int) int {
	if v > n-1 {
		return n - 1
	}
	return v
}

// result copies the fine-grid field into a fresh Result (the engine is
// pooled; returned slices must outlive the next Reinit).
func (e *Engine) result() *Result {
	fine := e.levels[0]
	var t [2][]float64
	for d := 0; d < e.dies; d++ {
		t[d] = append([]float64(nil), fine.u[d]...)
	}
	return summarize(t, fine.nx, fine.ny, e.dies)
}

// PeakTile returns the hottest tile of the current fine-grid field (first
// in die-major scan order on ties). Meaningful after Solve or Resolve.
func (e *Engine) PeakTile() (die, ix, iy int, tC float64) {
	fine := e.levels[0]
	tC = math.Inf(-1)
	for d := 0; d < e.dies; d++ {
		for y := 0; y < fine.ny; y++ {
			for x := 0; x < fine.nx; x++ {
				if v := fine.u[d][y*fine.nx+x]; v > tC {
					die, ix, iy, tC = d, x, y, v
				}
			}
		}
	}
	return die, ix, iy, tC
}

// LoadBlock reinitializes the engine with one implemented block's thermal
// problem: a 16x16 tile grid over the outline, per-tile power from the
// block's cells, macros and nets at their placed positions, and the bond's
// vertical coupling (plus TSV pad conductances under F2B). The returned
// grid maps tile indices back to block coordinates, so callers placing
// thermal vias can convert hotspot tiles into sites.
func (e *Engine) LoadBlock(b *netlist.Block, sm tech.ScaleModel, bond extract.Bonding, p Params) (*geom.Grid, error) {
	dies := 1
	if b.Is3D {
		dies = 2
	}
	out := b.Outline[0]
	if b.Is3D {
		out = out.Union(b.Outline[1])
	}
	if out.Area() <= 0 {
		return nil, fmt.Errorf("thermal: block %s has no outline", b.Name)
	}
	const nx, ny = 16, 16
	grid, err := geom.NewGrid(out, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}

	// Tile geometry at physical scale.
	shrink := sm.LinearShrink()
	dx, dy := grid.BinSize()
	tileAreaM2 := (dx * shrink * 1e-6) * (dy * shrink * 1e-6)
	if err := e.ReinitGrid(nx, ny, dies, tileAreaM2, p); err != nil {
		return nil, err
	}

	mult := sm.PowerMultiplier() * 1e-3 // mW -> W at physical magnitude
	freq := b.Clock.FreqMHz()
	add := func(pt geom.Point, die netlist.Die, mw float64) {
		ix, iy := grid.BinAt(pt)
		e.AddPower(int(die), ix, iy, mw*mult)
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		act := c.Activity
		if act == 0 {
			act = power.DefaultActivity
		}
		if c.IsClockBuf {
			act = 2
		}
		mw := tech.DynamicPowerMW(c.Master.IntCap, act, freq) + c.Master.LeaknW*1e-6
		add(c.Center(), c.Die, mw)
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		act := m.Activity
		if act == 0 {
			act = 0.5
		}
		mw := m.Model.ReadEnergyFJ*act*freq*1e-6 + m.Model.LeakmW
		add(m.Center(), m.Die, mw)
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		act := n.Activity
		if act == 0 {
			act = power.DefaultActivity
		}
		mw := tech.DynamicPowerMW(n.WireCapfF, act, freq)
		add(b.PinPos(n.Driver), b.PinDie(n.Driver), mw)
	}

	// Vertical conductance per tile: bond baseline plus TSV copper (F2B).
	base := p.KBondBaseWPerM2K
	if bond == extract.F2F {
		// Metal-to-metal face bond conducts better than the F2B adhesive,
		// but the stack loses the TSV thermal paths.
		base *= 1.8
	}
	e.SetUniformVertK(base * tileAreaM2)
	if bond == extract.F2B {
		// Each physical TSV adds its copper conductance at its pad's tile.
		perPad := math.Sqrt(sm.Scale) // one drawn pad stands for many vias
		for _, pad := range b.TSVPads {
			ix, iy := grid.BinAt(pad.Center())
			e.AddVertKAt(ix, iy, p.KTSVWPerK*perPad)
		}
	}
	return grid, nil
}

// LoadChip reinitializes the engine with the chip-level thermal problem: a
// 24x24 tile grid over the chip outline, per-block power totals spread
// uniformly over each block's floorplan rectangle, and tsvs physical TSVs
// smeared into the bond conductance. The returned grid maps tile indices to
// chip coordinates.
func (e *Engine) LoadChip(outline geom.Rect, tiles []ChipPowerTile, dies int, bond extract.Bonding, tsvs int, sm tech.ScaleModel, p Params) (*geom.Grid, error) {
	if outline.Area() <= 0 {
		return nil, fmt.Errorf("thermal: empty chip outline")
	}
	const nx, ny = 24, 24
	grid, err := geom.NewGrid(outline, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("thermal: %v", err)
	}
	shrink := sm.LinearShrink()
	dx, dy := grid.BinSize()
	tileAreaM2 := (dx * shrink * 1e-6) * (dy * shrink * 1e-6)
	if err := e.ReinitGrid(nx, ny, dies, tileAreaM2, p); err != nil {
		return nil, err
	}
	for _, t := range tiles {
		area := t.Rect.Area()
		if area <= 0 {
			continue
		}
		watts := t.PowerMW * 1e-3
		grid.OverlapBins(t.Rect, func(ix, iy int, a float64) {
			share := watts * a / area
			if t.Both && dies == 2 {
				e.AddPower(0, ix, iy, share/2)
				e.AddPower(1, ix, iy, share/2)
			} else {
				e.AddPower(int(t.Die), ix, iy, share)
			}
		})
	}
	base := p.KBondBaseWPerM2K
	if bond == extract.F2F {
		base *= 1.8
	}
	e.SetUniformVertK(base*tileAreaM2 + p.KTSVWPerK*float64(tsvs)/float64(nx*ny))
	return grid, nil
}
