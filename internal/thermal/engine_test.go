package thermal

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"fold3d/internal/errs"
)

// lcg is a tiny deterministic generator for synthetic thermal problems —
// test-local so the suite never depends on math/rand ordering.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

// synthCase is one synthetic tile-network problem, shaped like one of the
// five chip styles: grid size, die count, bond-style vertical coupling and
// a power distribution.
type synthCase struct {
	name       string
	nx, ny     int
	dies       int
	vertBase   float64 // uniform bond conductance multiplier (x gLat scale)
	tsvSpikes  int     // random TSV conductance spikes (F2B-like)
	bottomBias float64 // fraction of power forced onto die 0 (core/cache-like)
}

// synthStyles mirrors the five design styles' thermal shapes.
var synthStyles = []synthCase{
	{name: "2D", nx: 24, ny: 24, dies: 1},
	{name: "fold-F2B", nx: 24, ny: 24, dies: 2, vertBase: 1, tsvSpikes: 24},
	{name: "fold-F2F", nx: 24, ny: 24, dies: 2, vertBase: 1.8},
	{name: "core-cache", nx: 32, ny: 32, dies: 2, vertBase: 1, tsvSpikes: 12, bottomBias: 0.8},
	{name: "core-core", nx: 48, ny: 24, dies: 2, vertBase: 1, tsvSpikes: 48},
}

const synthTileAreaM2 = 5e-8

// buildSynth assembles the case's power and vertical-conductance arrays and
// loads them into a fresh view: the returned closures feed the same problem
// to the reference solver and to an Engine.
func buildSynth(c synthCase, seed uint64, p Params) (pw [2][]float64, vertK []float64) {
	r := lcg(seed*2654435761 + 97)
	n := c.nx * c.ny
	for d := 0; d < c.dies; d++ {
		pw[d] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		w := 0.012 * r.next()
		if c.dies == 1 {
			pw[0][i] = w
			continue
		}
		lo := c.bottomBias
		if lo == 0 {
			lo = 0.5
		}
		pw[0][i] = w * lo
		pw[1][i] = w * (1 - lo)
	}
	vertK = make([]float64, n)
	base := c.vertBase * 9000 * synthTileAreaM2
	for i := range vertK {
		vertK[i] = base
	}
	for s := 0; s < c.tsvSpikes; s++ {
		i := int(r.next() * float64(n))
		if i >= n {
			i = n - 1
		}
		vertK[i] += 2.4e-5 * 30
	}
	return pw, vertK
}

// loadSynth initializes e with the synthetic problem.
func loadSynth(t *testing.T, e *Engine, c synthCase, pw [2][]float64, vertK []float64, p Params) {
	t.Helper()
	if err := e.ReinitGrid(c.nx, c.ny, c.dies, synthTileAreaM2, p); err != nil {
		t.Fatal(err)
	}
	for iy := 0; iy < c.ny; iy++ {
		for ix := 0; ix < c.nx; ix++ {
			i := iy*c.nx + ix
			for d := 0; d < c.dies; d++ {
				e.AddPower(d, ix, iy, pw[d][i])
			}
		}
	}
	if c.dies == 2 {
		base := vertK[0]
		e.SetUniformVertK(base)
		for iy := 0; iy < c.ny; iy++ {
			for ix := 0; ix < c.nx; ix++ {
				if dk := vertK[iy*c.nx+ix] - base; dk != 0 {
					e.AddVertKAt(ix, iy, dk)
				}
			}
		}
	}
}

// maxTileDiff returns the largest per-tile absolute temperature difference.
func maxTileDiff(a, b *Result) float64 {
	var worst float64
	for d := 0; d < a.Dies; d++ {
		for i := range a.MapC[d] {
			if dl := math.Abs(a.MapC[d][i] - b.MapC[d][i]); dl > worst {
				worst = dl
			}
		}
	}
	return worst
}

// TestEngineMatchesReference is the solver property suite: across all five
// style shapes and three seeds, the multigrid engine must agree with the
// Gauss-Seidel reference (both run to a tightened tolerance so the oracle
// itself is sharp) tile by tile.
func TestEngineMatchesReference(t *testing.T) {
	p := DefaultParams()
	for _, c := range synthStyles {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", c.name, seed), func(t *testing.T) {
				pw, vertK := buildSynth(c, seed, p)
				ref := SolveReferenceTol(pw, c.nx, c.ny, c.dies, synthTileAreaM2, vertK, p, 1e-8, 400000)
				e := NewEngine()
				e.tol = 1e-8
				loadSynth(t, e, c, pw, vertK, p)
				got, err := e.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if got.Dies != ref.Dies || got.NX != ref.NX || got.NY != ref.NY {
					t.Fatalf("shape mismatch: got %dx%d x%d, ref %dx%d x%d",
						got.NX, got.NY, got.Dies, ref.NX, ref.NY, ref.Dies)
				}
				if d := maxTileDiff(got, ref); d > 1e-3 {
					t.Errorf("max tile diff %.3g C above 1e-3", d)
				}
				if d := math.Abs(got.TMaxC - ref.TMaxC); d > 1e-3 {
					t.Errorf("TMax diff %.3g C (mg %.4f, gs %.4f)", d, got.TMaxC, ref.TMaxC)
				}
				if d := math.Abs(got.TAvgC - ref.TAvgC); d > 1e-3 {
					t.Errorf("TAvg diff %.3g C (mg %.4f, gs %.4f)", d, got.TAvgC, ref.TAvgC)
				}
			})
		}
	}
}

// TestIncrementalMatchesFull applies a TSV-insertion batch after a full
// solve and requires Resolve's answer to match a from-scratch engine given
// the same final problem.
func TestIncrementalMatchesFull(t *testing.T) {
	p := DefaultParams()
	for _, c := range synthStyles {
		if c.dies != 2 {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			pw, vertK := buildSynth(c, 7, p)
			e := NewEngine()
			e.tol = 1e-7
			loadSynth(t, e, c, pw, vertK, p)
			base, err := e.Solve()
			if err != nil {
				t.Fatal(err)
			}
			// A thermal-via batch near the grid center.
			edits := [][3]int{{0, 0, 0}, {1, 1, 0}, {0, 2, 1}, {2, 0, 2}}
			cx, cy := c.nx/2, c.ny/2
			const dk = 2.4e-5 * 30
			for _, ed := range edits {
				e.AddVertKAt(cx+ed[1], cy+ed[2], dk)
				vertK[(cy+ed[2])*c.nx+cx+ed[1]] += dk
			}
			inc, err := e.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			fresh := NewEngine()
			fresh.tol = 1e-7
			loadSynth(t, fresh, c, pw, vertK, p)
			full, err := fresh.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if d := maxTileDiff(inc, full); d > 5e-3 {
				t.Errorf("incremental vs full max tile diff %.3g C above 5e-3", d)
			}
			// The batch added vertical conductance only; the incremental
			// answer must not report a hotter stack than before the vias.
			if inc.TMaxC > base.TMaxC+1e-6 {
				t.Errorf("thermal vias raised TMax: %.4f -> %.4f", base.TMaxC, inc.TMaxC)
			}
		})
	}
}

// TestIncrementalSublinear pins the incremental re-solve's complexity: the
// same one-TSV edit on a 16x-larger grid may cost at most a small constant
// more relaxation work, and far less than its own full solve. Work is
// counted in relaxation updates (Relaxations), not wall-clock.
func TestIncrementalSublinear(t *testing.T) {
	p := DefaultParams()
	cost := func(n int) (edit, full int64) {
		c := synthCase{name: "sub", nx: n, ny: n, dies: 2, vertBase: 1}
		pw, vertK := buildSynth(c, 3, p)
		e := NewEngine()
		loadSynth(t, e, c, pw, vertK, p)
		if _, err := e.Solve(); err != nil {
			t.Fatal(err)
		}
		full = e.Relaxations()
		e.AddVertKAt(n/2, n/2, 2.4e-5*30)
		if _, err := e.Resolve(); err != nil {
			t.Fatal(err)
		}
		edit = e.Relaxations() - full
		return edit, full
	}
	editSmall, _ := cost(32)
	editBig, fullBig := cost(128)
	if editBig > 4*editSmall {
		t.Errorf("incremental work grew with grid size: %d updates at 128x128 vs %d at 32x32 (16x the tiles)",
			editBig, editSmall)
	}
	if editBig*4 > fullBig {
		t.Errorf("incremental re-solve (%d updates) is not clearly cheaper than the full solve (%d)",
			editBig, fullBig)
	}
}

// TestEngineDeterministicAndReusable solves the same problem on a fresh
// engine and on one recycled from a different problem (the pooling path)
// and requires byte-identical Result fingerprints.
func TestEngineDeterministicAndReusable(t *testing.T) {
	p := DefaultParams()
	c := synthStyles[1]
	pw, vertK := buildSynth(c, 11, p)
	fresh := NewEngine()
	loadSynth(t, fresh, c, pw, vertK, p)
	a, err := fresh.Solve()
	if err != nil {
		t.Fatal(err)
	}
	recycled := NewEngine()
	other := synthStyles[3]
	opw, ovk := buildSynth(other, 5, p)
	loadSynth(t, recycled, other, opw, ovk, p)
	if _, err := recycled.Solve(); err != nil {
		t.Fatal(err)
	}
	loadSynth(t, recycled, c, pw, vertK, p)
	b, err := recycled.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fresh and recycled engines disagree: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestBrokenRestrictionCaught seeds a deliberate bug — a sign-flipped
// restriction operator — and requires the fine-grid tolerance check to
// refuse to return an unconverged field (or, if convergence survives, the
// field to still match the reference: the guard's contract is that a broken
// coarse hierarchy can cost speed but never correctness).
func TestBrokenRestrictionCaught(t *testing.T) {
	p := DefaultParams()
	c := synthStyles[1]
	pw, vertK := buildSynth(c, 2, p)
	e := NewEngine()
	loadSynth(t, e, c, pw, vertK, p)
	e.restrictScale = -1
	got, err := e.Solve()
	if err != nil {
		return // the guard fired, as expected
	}
	ref := SolveReferenceTol(pw, c.nx, c.ny, c.dies, synthTileAreaM2, vertK, p, 1e-7, 400000)
	if d := maxTileDiff(got, ref); d > 1e-2 {
		t.Fatalf("broken restriction returned a wrong field (max tile diff %.3g C) without an error", d)
	}
}

// TestParamsValidate exercises the negated-range validation: NaN, ±Inf,
// zero and negative conductances/thickness must all fail, naming the field
// and wrapping both sentinels.
func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	cases := []struct {
		field string
		set   func(*Params, float64)
	}{
		{"KSinkWPerM2K", func(p *Params, v float64) { p.KSinkWPerM2K = v }},
		{"KLateralWPerMK", func(p *Params, v float64) { p.KLateralWPerMK = v }},
		{"KBondBaseWPerM2K", func(p *Params, v float64) { p.KBondBaseWPerM2K = v }},
		{"KTSVWPerK", func(p *Params, v float64) { p.KTSVWPerK = v }},
		{"KBoardWPerM2K", func(p *Params, v float64) { p.KBoardWPerM2K = v }},
		{"DieThicknessUm", func(p *Params, v float64) { p.DieThicknessUm = v }},
	}
	bad := []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, c := range cases {
		for _, v := range bad {
			p := DefaultParams()
			c.set(&p, v)
			err := p.Validate()
			if err == nil {
				t.Errorf("%s=%g accepted", c.field, v)
				continue
			}
			if !errors.Is(err, errs.ErrBadOptions) || !errors.Is(err, errs.ErrBadRequest) {
				t.Errorf("%s=%g: error does not wrap both sentinels: %v", c.field, v, err)
			}
			if want := c.field; !contains(err.Error(), want) {
				t.Errorf("%s=%g: error %q does not name the field", c.field, v, err)
			}
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), -300, 501} {
		p := DefaultParams()
		p.AmbientC = v
		if p.Validate() == nil {
			t.Errorf("AmbientC=%g accepted", v)
		}
	}
	// ReinitGrid funnels the same validation.
	e := NewEngine()
	p := DefaultParams()
	p.KSinkWPerM2K = math.NaN()
	if err := e.ReinitGrid(8, 8, 1, 1e-8, p); !errors.Is(err, errs.ErrBadOptions) {
		t.Errorf("ReinitGrid accepted NaN sink conductance: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSolveReference2DMapNil is the MapC regression: a single-die solve must
// leave the second die's map nil — Dies is authoritative, not the fixed
// array size.
func TestSolveReference2DMapNil(t *testing.T) {
	c := synthStyles[0]
	p := DefaultParams()
	pw, vertK := buildSynth(c, 1, p)
	ref := SolveReference(pw, c.nx, c.ny, 1, synthTileAreaM2, vertK, p)
	if ref.Dies != 1 {
		t.Fatalf("Dies = %d, want 1", ref.Dies)
	}
	if ref.MapC[1] != nil {
		t.Errorf("reference 2D solve allocated MapC[1] (len %d)", len(ref.MapC[1]))
	}
	e := NewEngine()
	loadSynth(t, e, c, pw, vertK, p)
	got, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.MapC[1] != nil {
		t.Errorf("engine 2D solve allocated MapC[1] (len %d)", len(got.MapC[1]))
	}
}
