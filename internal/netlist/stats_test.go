package netlist

import (
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/tech"
)

func statsBlock(t *testing.T) *Block {
	t.Helper()
	lib := tech.NewLibrary()
	b := NewBlock("s", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 100, 48)
	for i := 0; i < 4; i++ {
		g := "g0"
		if i >= 2 {
			g = "g1"
		}
		b.AddCell(Instance{
			Name:   "c",
			Master: lib.MustCell(tech.INV, tech.Drives[i%len(tech.Drives)], tech.RVT),
			Group:  g,
		})
	}
	b.AddMacro(MacroInst{Name: "m", Model: lib.MacroKB, Group: "g0"})
	b.AddNet(Net{Name: "n0", Driver: PinRef{Kind: KindCell, Idx: 0},
		Sinks: []PinRef{{Kind: KindCell, Idx: 1}}, RouteLen: 5})
	b.AddNet(Net{Name: "n1", Driver: PinRef{Kind: KindCell, Idx: 1},
		Sinks: []PinRef{{Kind: KindCell, Idx: 2}, {Kind: KindCell, Idx: 3}}, RouteLen: 50})
	b.AddNet(Net{Name: "n2", Driver: PinRef{Kind: KindCell, Idx: 2},
		Sinks: []PinRef{{Kind: KindCell, Idx: 3}}, RouteLen: 80})
	return b
}

func TestCollectStats(t *testing.T) {
	b := statsBlock(t)
	s := CollectStats(b, 40)
	if s.NumCells != 4 || s.NumMacros != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Wirelength != 135 {
		t.Errorf("Wirelength = %v", s.Wirelength)
	}
	if s.NumLongWire != 2 {
		t.Errorf("NumLongWire = %d, want 2 (nets over 40um)", s.NumLongWire)
	}
	if s.Footprint != b.Outline[0].Area() {
		t.Errorf("Footprint = %v", s.Footprint)
	}
}

func TestLongWiresSorted(t *testing.T) {
	b := statsBlock(t)
	idx := LongWires(b, 40)
	if len(idx) != 2 || b.Nets[idx[0]].RouteLen < b.Nets[idx[1]].RouteLen {
		t.Errorf("LongWires = %v", idx)
	}
}

func TestFanoutHistogram(t *testing.T) {
	b := statsBlock(t)
	h := FanoutHistogram(b)
	if h[0] != 2 || h[1] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestGroups(t *testing.T) {
	b := statsBlock(t)
	names := GroupNames(b)
	if len(names) != 2 || names[0] != "g0" || names[1] != "g1" {
		t.Errorf("GroupNames = %v", names)
	}
	counts := GroupCellCount(b)
	if counts["g0"] != 2 || counts["g1"] != 2 {
		t.Errorf("GroupCellCount = %v", counts)
	}
}

func TestCellAreaByDieAndCuts(t *testing.T) {
	b := statsBlock(t)
	b.Cells[2].Die = DieTop
	b.Cells[3].Die = DieTop
	a := CellAreaByDie(b)
	if a[0] <= 0 || a[1] <= 0 {
		t.Errorf("CellAreaByDie = %v", a)
	}
	cuts := Cut3DNets(b)
	if len(cuts) != 1 || cuts[0] != 1 {
		t.Errorf("Cut3DNets = %v (net n1 crosses)", cuts)
	}
}

func TestDriveHistogramAndMeanDrive(t *testing.T) {
	b := statsBlock(t)
	h := DriveHistogram(b)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 4 {
		t.Errorf("histogram total = %d", total)
	}
	// Drives used: X1, X2, X4, X8 -> mean 3.75.
	if got := MeanDrive(b); got != 3.75 {
		t.Errorf("MeanDrive = %v", got)
	}
}

func TestCountVth(t *testing.T) {
	b := statsBlock(t)
	lib := tech.NewLibrary()
	b.Cells[0].Master = lib.MustCell(tech.INV, 1, tech.HVT)
	rvt, hvt := CountVth(b)
	if rvt != 3 || hvt != 1 {
		t.Errorf("CountVth = %d, %d", rvt, hvt)
	}
}
