// Package netlist holds the gate-level design database: cell and macro
// instances, nets, block I/O ports, and the block container that the rest of
// the flow (placement, routing, timing, power) operates on. The model is
// deliberately index-based: instances, macros, ports and nets are slices and
// all cross-references are integer IDs, which keeps large designs compact and
// makes deep-copying a block (needed to compare 2D vs folded variants of the
// same netlist) trivial.
package netlist

import (
	"fmt"

	"fold3d/internal/geom"
	"fold3d/internal/tech"
)

// Die identifies one tier of a (up to) two-tier 3D stack.
type Die int

const (
	// DieBottom is the bottom tier (die 0); 2D designs live entirely here.
	DieBottom Die = 0
	// DieTop is the top tier (die 1) of a two-tier stack.
	DieTop Die = 1
)

// String names the die for reports and layout dumps.
func (d Die) String() string {
	if d == DieTop {
		return "top"
	}
	return "bot"
}

// NodeKind distinguishes what a PinRef points at.
type NodeKind int8

const (
	// KindCell references a standard-cell instance.
	KindCell NodeKind = iota
	// KindMacro references a hard-macro instance.
	KindMacro
	// KindPort references a block I/O port.
	KindPort
)

// PinRef identifies one connection point: pin number Pin of object Idx of
// kind Kind. For cells, pin 0..NumInputs-1 are inputs, the output is implied
// by the net's Driver role; for macros, Pin indexes the macro's signal pins;
// for ports, Pin is always 0.
type PinRef struct {
	Kind NodeKind
	Idx  int32
	Pin  int16
}

// Instance is one placed standard cell.
type Instance struct {
	Name   string
	Master *tech.Cell
	Pos    geom.Point // lower-left corner, µm
	Die    Die
	Fixed  bool
	// Group is the functional-unit-block (FUB) label used for second-level
	// folding of the SPC; empty for flat blocks.
	Group string
	// IsClockBuf marks repeaters inserted by clock tree synthesis so that
	// power reporting can attribute them to the clock network.
	IsClockBuf bool
	// Activity is the switching activity of the instance's output net
	// relative to the clock (0..1 typical, clock pins use 2 implicitly).
	Activity float64
}

// Center returns the center point of the instance footprint.
func (inst *Instance) Center() geom.Point {
	return geom.Point{
		X: inst.Pos.X + inst.Master.Width/2,
		Y: inst.Pos.Y + tech.CellHeight/2,
	}
}

// Rect returns the instance footprint.
func (inst *Instance) Rect() geom.Rect {
	return geom.RectWH(inst.Pos.X, inst.Pos.Y, inst.Master.Width, tech.CellHeight)
}

// MacroInst is one placed hard macro (memory).
type MacroInst struct {
	Name  string
	Model tech.MacroModel
	Pos   geom.Point // lower-left corner
	Die   Die
	Fixed bool
	Group string
	// Activity is the access activity relative to the block clock.
	Activity float64
}

// Rect returns the macro footprint.
func (m *MacroInst) Rect() geom.Rect {
	return geom.RectWH(m.Pos.X, m.Pos.Y, m.Model.Width, m.Model.Height)
}

// Center returns the macro center.
func (m *MacroInst) Center() geom.Point { return m.Rect().Center() }

// PortDir is the direction of a block I/O port.
type PortDir int8

const (
	// In is a block input port.
	In PortDir = iota
	// Out is a block output port.
	Out
)

// Port is a block-level I/O pin with a fixed boundary location. In chip
// assembly, port locations are derived from the floorplan (which neighbor
// block the connection goes to), which is exactly the mechanism that
// fragments the 2D CCX placement in the paper (§4.3).
type Port struct {
	Name string
	Dir  PortDir
	Pos  geom.Point
	Die  Die
	// CapfF is the external load seen by an output port (downstream pin and
	// wire cap budgeted from the chip level), and the driver cap behind an
	// input port.
	CapfF float64
	// Budget is the timing budget in ps allocated to the path outside this
	// block (set by chip-level STA; see sta.BudgetPorts).
	Budget float64
}

// NetKind distinguishes signal nets from clock nets.
type NetKind int8

const (
	// Signal is an ordinary data net.
	Signal NetKind = iota
	// Clock marks a clock-distribution net (built by CTS).
	Clock
)

// Net is one logical net with a single driver and one or more sinks.
type Net struct {
	Name   string
	Kind   NetKind
	Driver PinRef
	Sinks  []PinRef
	// Activity is the switching activity factor relative to the block clock
	// frequency (probability of a transition per cycle / 2 as used in the
	// dynamic power formula).
	Activity float64
	// Route metrics filled by extraction: drawn length (µm), layer index the
	// net is (predominantly) routed on, and the number of 3D crossings
	// (TSVs or F2F vias) the net uses.
	RouteLen  float64
	Layer     int
	Crossings int
	// Vias holds the XY locations of the net's 3D crossing points (TSV
	// landing pads for F2B, F2F vias for F2F), filled by TSV planning or the
	// F2F via placer. Wirelength and RC extraction route the net through
	// these points.
	Vias []geom.Point
	// WireCapfF and WireResOhm are the extracted wire (plus 3D via)
	// parasitics, filled by extract.Extract. Pin caps are not included; the
	// timing and power engines add them per sink.
	WireCapfF  float64
	WireResOhm float64
}

// Block is one design partition: a flat netlist plus its implementation
// state (placement region per die, ports, and accumulated flow results).
type Block struct {
	Name   string
	Clock  tech.ClockDomain
	Cells  []Instance
	Macros []MacroInst
	Ports  []Port
	Nets   []Net

	// Outline is the placement region per die. A 2D block uses only
	// Outline[DieBottom]; a folded block has a (usually equal) outline on
	// both dies.
	Outline [2]geom.Rect
	// Is3D reports whether the block is implemented across two dies.
	Is3D bool
	// NumTSV and NumF2F count the intra-block 3D connections after folding.
	NumTSV int
	NumF2F int
	// TSVPads are the landing-pad blockage rectangles of intra-block TSVs
	// (F2B folding only). A pad blocks placement on both dies: the TSV body
	// pierces the top die's silicon and its landing pad occupies M1 of the
	// bottom die. F2F vias leave this empty — they consume no silicon.
	TSVPads []geom.Rect
	// MaxRouteLayer is the top metal usable for intra-block routing
	// (7 for most blocks, 9 for SPC; 9 for everything under F2F bonding).
	MaxRouteLayer int
}

// NewBlock returns an empty block with the given name and clock domain,
// routing up to M7 by default (the paper's default for non-SPC blocks).
func NewBlock(name string, clock tech.ClockDomain) *Block {
	return &Block{Name: name, Clock: clock, MaxRouteLayer: 7}
}

// AddCell appends a cell instance and returns its index.
func (b *Block) AddCell(inst Instance) int32 {
	b.Cells = append(b.Cells, inst)
	return int32(len(b.Cells) - 1)
}

// AddMacro appends a macro instance and returns its index.
func (b *Block) AddMacro(m MacroInst) int32 {
	b.Macros = append(b.Macros, m)
	return int32(len(b.Macros) - 1)
}

// AddPort appends a port and returns its index.
func (b *Block) AddPort(p Port) int32 {
	b.Ports = append(b.Ports, p)
	return int32(len(b.Ports) - 1)
}

// AddNet appends a net and returns its index.
func (b *Block) AddNet(n Net) int32 {
	b.Nets = append(b.Nets, n)
	return int32(len(b.Nets) - 1)
}

// GrowCells reserves capacity for at least n more cells. Purely an
// allocation hint for builders that know how many AddCell calls follow.
func (b *Block) GrowCells(n int) {
	if need := len(b.Cells) + n; need > cap(b.Cells) {
		s := make([]Instance, len(b.Cells), need)
		copy(s, b.Cells)
		b.Cells = s
	}
}

// GrowNets reserves capacity for at least n more nets; see GrowCells.
func (b *Block) GrowNets(n int) {
	if need := len(b.Nets) + n; need > cap(b.Nets) {
		s := make([]Net, len(b.Nets), need)
		copy(s, b.Nets)
		b.Nets = s
	}
}

// PinPos returns the physical location of a pin reference. Cell and macro
// pins are approximated at the instance center (pin-level offsets are below
// the fidelity the study needs); port pins are at the port location.
func (b *Block) PinPos(ref PinRef) geom.Point {
	switch ref.Kind {
	case KindCell:
		return b.Cells[ref.Idx].Center()
	case KindMacro:
		return b.Macros[ref.Idx].Center()
	case KindPort:
		return b.Ports[ref.Idx].Pos
	}
	//lint:ignore apiguard a bad pin kind is a corrupted-netlist invariant violation; these hot-path accessors have no error channel
	panic(fmt.Sprintf("netlist: bad pin kind %d", ref.Kind))
}

// PinDie returns the die a pin reference lives on.
func (b *Block) PinDie(ref PinRef) Die {
	switch ref.Kind {
	case KindCell:
		return b.Cells[ref.Idx].Die
	case KindMacro:
		return b.Macros[ref.Idx].Die
	case KindPort:
		return b.Ports[ref.Idx].Die
	}
	//lint:ignore apiguard a bad pin kind is a corrupted-netlist invariant violation; these hot-path accessors have no error channel
	panic(fmt.Sprintf("netlist: bad pin kind %d", ref.Kind))
}

// PinCap returns the input capacitance in fF presented by a sink pin.
func (b *Block) PinCap(ref PinRef) float64 {
	switch ref.Kind {
	case KindCell:
		return b.Cells[ref.Idx].Master.InCapfF
	case KindMacro:
		return b.Macros[ref.Idx].Model.InCapfF
	case KindPort:
		return b.Ports[ref.Idx].CapfF
	}
	//lint:ignore apiguard a bad pin kind is a corrupted-netlist invariant violation; these hot-path accessors have no error channel
	panic(fmt.Sprintf("netlist: bad pin kind %d", ref.Kind))
}

// DriverR returns the drive resistance in Ω behind a driver pin. Ports use a
// nominal chip-level driver; macros use a strong output driver.
func (b *Block) DriverR(ref PinRef) float64 {
	switch ref.Kind {
	case KindCell:
		return b.Cells[ref.Idx].Master.DriveR
	case KindMacro:
		return 400 // macro output drivers are strong
	case KindPort:
		return 800 // chip-level net handoff driver
	}
	//lint:ignore apiguard a bad pin kind is a corrupted-netlist invariant violation; these hot-path accessors have no error channel
	panic(fmt.Sprintf("netlist: bad pin kind %d", ref.Kind))
}

// NetPins returns the positions of every pin of net n (driver first).
func (b *Block) NetPins(n *Net) []geom.Point {
	return b.AppendNetPins(make([]geom.Point, 0, len(n.Sinks)+1), n)
}

// AppendNetPins appends the positions of every pin of net n (driver first)
// to dst and returns the extended slice — NetPins with a caller-owned
// buffer, for loops hot enough that the per-net allocation shows up.
func (b *Block) AppendNetPins(dst []geom.Point, n *Net) []geom.Point {
	dst = append(dst, b.PinPos(n.Driver))
	for _, s := range n.Sinks {
		dst = append(dst, b.PinPos(s))
	}
	return dst
}

// NetIs3D reports whether net n spans both dies.
func (b *Block) NetIs3D(n *Net) bool {
	d := b.PinDie(n.Driver)
	for _, s := range n.Sinks {
		if b.PinDie(s) != d {
			return true
		}
	}
	return false
}

// CellArea returns the total standard-cell area on the given die (or on all
// dies if die < 0).
func (b *Block) CellArea(die int) float64 {
	var a float64
	for i := range b.Cells {
		if die < 0 || b.Cells[i].Die == Die(die) {
			a += b.Cells[i].Master.Area()
		}
	}
	return a
}

// MacroArea returns the total macro area on the given die (all dies if <0).
func (b *Block) MacroArea(die int) float64 {
	var a float64
	for i := range b.Macros {
		if die < 0 || b.Macros[i].Die == Die(die) {
			a += b.Macros[i].Model.Area()
		}
	}
	return a
}

// Footprint returns the silicon area of the block: the outline area of the
// bottom die for 2D blocks, or the larger of the two die outlines for 3D
// blocks (both dies must accommodate the design).
func (b *Block) Footprint() float64 {
	if !b.Is3D {
		return b.Outline[DieBottom].Area()
	}
	a0, a1 := b.Outline[0].Area(), b.Outline[1].Area()
	if a1 > a0 {
		return a1
	}
	return a0
}

// NumBuffers counts repeaters (BUF/INV inserted by optimization or CTS).
// The generator never emits bare buffers, so this measures flow-inserted
// repeaters, matching the paper's "# buffers" metric.
func (b *Block) NumBuffers() int {
	n := 0
	for i := range b.Cells {
		if b.Cells[i].Master.Fam == tech.BUF ||
			(b.Cells[i].Master.Fam == tech.INV && b.Cells[i].IsClockBuf) {
			n++
		}
	}
	return n
}

// Wirelength returns the total drawn routed length in µm over all nets
// (filled by extraction).
func (b *Block) Wirelength() float64 {
	var wl float64
	for i := range b.Nets {
		wl += b.Nets[i].RouteLen
	}
	return wl
}

// HVTFraction returns the fraction of cells using the HVT flavor.
func (b *Block) HVTFraction() float64 {
	if len(b.Cells) == 0 {
		return 0
	}
	n := 0
	for i := range b.Cells {
		if b.Cells[i].Master.Vth == tech.HVT {
			n++
		}
	}
	return float64(n) / float64(len(b.Cells))
}

// Clone returns a deep copy of the block. The flow clones the synthesized
// netlist before implementing each design style so 2D, folded-F2B and
// folded-F2F variants start from identical logic.
func (b *Block) Clone() *Block {
	nb := &Block{
		Name:          b.Name,
		Clock:         b.Clock,
		Cells:         make([]Instance, len(b.Cells)),
		Macros:        make([]MacroInst, len(b.Macros)),
		Ports:         make([]Port, len(b.Ports)),
		Nets:          make([]Net, len(b.Nets)),
		Outline:       b.Outline,
		Is3D:          b.Is3D,
		NumTSV:        b.NumTSV,
		NumF2F:        b.NumF2F,
		TSVPads:       append([]geom.Rect(nil), b.TSVPads...),
		MaxRouteLayer: b.MaxRouteLayer,
	}
	copy(nb.Cells, b.Cells)
	copy(nb.Macros, b.Macros)
	copy(nb.Ports, b.Ports)
	for i := range b.Nets {
		n := b.Nets[i]
		n.Sinks = append([]PinRef(nil), n.Sinks...)
		n.Vias = append([]geom.Point(nil), n.Vias...)
		nb.Nets[i] = n
	}
	return nb
}

// Validate checks referential integrity of the netlist: every pin reference
// must point at an existing object and pin, every net must have a driver,
// and no cell output may drive more than one net.
func (b *Block) Validate() error {
	check := func(ref PinRef, role string, net string) error {
		switch ref.Kind {
		case KindCell:
			if int(ref.Idx) >= len(b.Cells) || ref.Idx < 0 {
				return fmt.Errorf("netlist %s: net %s %s references cell %d of %d", b.Name, net, role, ref.Idx, len(b.Cells))
			}
		case KindMacro:
			if int(ref.Idx) >= len(b.Macros) || ref.Idx < 0 {
				return fmt.Errorf("netlist %s: net %s %s references macro %d of %d", b.Name, net, role, ref.Idx, len(b.Macros))
			}
		case KindPort:
			if int(ref.Idx) >= len(b.Ports) || ref.Idx < 0 {
				return fmt.Errorf("netlist %s: net %s %s references port %d of %d", b.Name, net, role, ref.Idx, len(b.Ports))
			}
		default:
			return fmt.Errorf("netlist %s: net %s %s has bad kind %d", b.Name, net, role, ref.Kind)
		}
		return nil
	}
	// Flat cell -> driven-net table (index, -1 = none): one bulk allocation
	// instead of a per-call map that rehashes its way up to the net count.
	cellDrives := make([]int32, len(b.Cells))
	for i := range cellDrives {
		cellDrives[i] = -1
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if err := check(n.Driver, "driver", n.Name); err != nil {
			return err
		}
		if n.Driver.Kind == KindCell && n.Kind == Signal {
			if prev := cellDrives[n.Driver.Idx]; prev >= 0 {
				return fmt.Errorf("netlist %s: cell %d drives both %s and %s", b.Name, n.Driver.Idx, b.Nets[prev].Name, n.Name)
			}
			cellDrives[n.Driver.Idx] = int32(i)
		}
		if len(n.Sinks) == 0 {
			return fmt.Errorf("netlist %s: net %s has no sinks", b.Name, n.Name)
		}
		for _, s := range n.Sinks {
			if err := check(s, "sink", n.Name); err != nil {
				return err
			}
		}
	}
	return nil
}
