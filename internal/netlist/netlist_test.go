package netlist

import (
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/tech"
)

// buildTiny returns a small valid block: port -> inv -> nand -> dff, with a
// macro hanging off the nand output.
func buildTiny(t *testing.T) (*Block, *tech.Library) {
	t.Helper()
	lib := tech.NewLibrary()
	b := NewBlock("tiny", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 50, 24)

	inv := b.AddCell(Instance{Name: "u_inv", Master: lib.MustCell(tech.INV, 2, tech.RVT), Pos: geom.Point{X: 5, Y: 6}})
	nand := b.AddCell(Instance{Name: "u_nand", Master: lib.MustCell(tech.NAND2, 4, tech.RVT), Pos: geom.Point{X: 20, Y: 6}})
	dff := b.AddCell(Instance{Name: "u_dff", Master: lib.MustCell(tech.DFF, 2, tech.RVT), Pos: geom.Point{X: 35, Y: 6}})
	mac := b.AddMacro(MacroInst{Name: "u_mem", Model: lib.MacroKB, Pos: geom.Point{X: 2, Y: 12}})
	in := b.AddPort(Port{Name: "din", Dir: In, Pos: geom.Point{X: 0, Y: 10}, CapfF: 3})

	b.AddNet(Net{Name: "n_in", Driver: PinRef{Kind: KindPort, Idx: in},
		Sinks: []PinRef{{Kind: KindCell, Idx: inv}}, Activity: 0.2})
	b.AddNet(Net{Name: "n_mid", Driver: PinRef{Kind: KindCell, Idx: inv},
		Sinks: []PinRef{{Kind: KindCell, Idx: nand}}, Activity: 0.2})
	b.AddNet(Net{Name: "n_out", Driver: PinRef{Kind: KindCell, Idx: nand},
		Sinks: []PinRef{{Kind: KindCell, Idx: dff}, {Kind: KindMacro, Idx: mac, Pin: 1}}, Activity: 0.2})
	return b, lib
}

func TestValidateOK(t *testing.T) {
	b, _ := buildTiny(t)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadRefs(t *testing.T) {
	b, _ := buildTiny(t)
	b.Nets[0].Sinks[0].Idx = 99
	if err := b.Validate(); err == nil {
		t.Error("expected error for out-of-range sink")
	}

	b2, _ := buildTiny(t)
	b2.Nets[1].Driver.Idx = -1
	if err := b2.Validate(); err == nil {
		t.Error("expected error for negative driver index")
	}

	b3, _ := buildTiny(t)
	b3.Nets[2].Sinks = nil
	if err := b3.Validate(); err == nil {
		t.Error("expected error for sinkless net")
	}
}

func TestValidateCatchesDoubleDriver(t *testing.T) {
	b, _ := buildTiny(t)
	// Cell 0 (inv) already drives n_mid; make it drive another net too.
	b.AddNet(Net{Name: "dup", Driver: PinRef{Kind: KindCell, Idx: 0},
		Sinks: []PinRef{{Kind: KindCell, Idx: 1}}})
	if err := b.Validate(); err == nil {
		t.Error("expected error for a cell driving two nets")
	}
}

func TestPinGeometry(t *testing.T) {
	b, lib := buildTiny(t)
	inv := &b.Cells[0]
	ctr := inv.Center()
	wantX := inv.Pos.X + inv.Master.Width/2
	if ctr.X != wantX || ctr.Y != inv.Pos.Y+tech.CellHeight/2 {
		t.Errorf("Center = %v", ctr)
	}
	p := b.PinPos(PinRef{Kind: KindPort, Idx: 0})
	if p != (geom.Point{X: 0, Y: 10}) {
		t.Errorf("port pos = %v", p)
	}
	mp := b.PinPos(PinRef{Kind: KindMacro, Idx: 0})
	if mp != b.Macros[0].Rect().Center() {
		t.Errorf("macro pos = %v", mp)
	}
	_ = lib
}

func TestPinCapAndDriverR(t *testing.T) {
	b, _ := buildTiny(t)
	if got := b.PinCap(PinRef{Kind: KindPort, Idx: 0}); got != 3 {
		t.Errorf("port cap = %v", got)
	}
	if got := b.PinCap(PinRef{Kind: KindCell, Idx: 0}); got != b.Cells[0].Master.InCapfF {
		t.Errorf("cell cap = %v", got)
	}
	if b.DriverR(PinRef{Kind: KindMacro, Idx: 0}) <= 0 {
		t.Error("macro driver R must be positive")
	}
	if b.DriverR(PinRef{Kind: KindCell, Idx: 0}) != b.Cells[0].Master.DriveR {
		t.Error("cell driver R must come from the master")
	}
}

func TestNetIs3D(t *testing.T) {
	b, _ := buildTiny(t)
	n := &b.Nets[1]
	if b.NetIs3D(n) {
		t.Error("planar net misreported as 3D")
	}
	b.Cells[1].Die = DieTop
	if !b.NetIs3D(n) {
		t.Error("die-crossing net not detected")
	}
}

func TestAreasAndFootprint(t *testing.T) {
	b, _ := buildTiny(t)
	wantCells := b.Cells[0].Master.Area() + b.Cells[1].Master.Area() + b.Cells[2].Master.Area()
	if got := b.CellArea(-1); got != wantCells {
		t.Errorf("CellArea = %v, want %v", got, wantCells)
	}
	if got := b.CellArea(1); got != 0 {
		t.Errorf("CellArea(die1) = %v, want 0", got)
	}
	if got := b.MacroArea(-1); got != b.Macros[0].Model.Area() {
		t.Errorf("MacroArea = %v", got)
	}
	if b.Footprint() != b.Outline[0].Area() {
		t.Error("2D footprint must equal the bottom-die outline")
	}
	b.Is3D = true
	b.Outline[1] = geom.NewRect(0, 0, 100, 48)
	if b.Footprint() != b.Outline[1].Area() {
		t.Error("3D footprint must be the larger die outline")
	}
}

func TestNumBuffersCountsRepeatersOnly(t *testing.T) {
	b, lib := buildTiny(t)
	if b.NumBuffers() != 0 {
		t.Errorf("fresh block has %d buffers", b.NumBuffers())
	}
	b.AddCell(Instance{Name: "rb", Master: lib.MustCell(tech.BUF, 8, tech.RVT)})
	b.AddCell(Instance{Name: "ckinv", Master: lib.MustCell(tech.INV, 8, tech.RVT), IsClockBuf: true})
	b.AddCell(Instance{Name: "plain_inv", Master: lib.MustCell(tech.INV, 8, tech.RVT)})
	if b.NumBuffers() != 2 {
		t.Errorf("NumBuffers = %d, want 2 (BUF + clock INV)", b.NumBuffers())
	}
}

func TestCloneIsDeep(t *testing.T) {
	b, _ := buildTiny(t)
	b.Nets[0].Vias = []geom.Point{{X: 1, Y: 1}}
	c := b.Clone()
	c.Cells[0].Pos.X = 99
	c.Nets[0].Sinks[0].Idx = 2
	c.Nets[0].Vias[0].X = 42
	c.Ports[0].Budget = 777
	if b.Cells[0].Pos.X == 99 || b.Nets[0].Sinks[0].Idx == 2 ||
		b.Nets[0].Vias[0].X == 42 || b.Ports[0].Budget == 777 {
		t.Error("Clone shares state with the original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWirelengthAndHVT(t *testing.T) {
	b, lib := buildTiny(t)
	b.Nets[0].RouteLen = 10
	b.Nets[1].RouteLen = 20
	if b.Wirelength() != 30 {
		t.Errorf("Wirelength = %v", b.Wirelength())
	}
	if b.HVTFraction() != 0 {
		t.Error("fresh block should be RVT-only")
	}
	b.Cells[0].Master = lib.MustCell(tech.INV, 2, tech.HVT)
	if got := b.HVTFraction(); got < 0.3 || got > 0.34 {
		t.Errorf("HVTFraction = %v, want 1/3", got)
	}
}
