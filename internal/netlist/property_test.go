package netlist

import (
	"fmt"
	"testing"
	"testing/quick"

	"fold3d/internal/geom"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// randomValidBlock builds a random but referentially valid block from a
// seed; shared by the property tests.
func randomValidBlock(seed uint64) *Block {
	lib := tech.NewLibrary()
	r := rng.New(seed)
	b := NewBlock(fmt.Sprintf("pb%d", seed), tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 80, 60)
	n := 10 + r.Intn(60)
	fams := []tech.Family{tech.INV, tech.NAND2, tech.NOR2, tech.DFF, tech.MUX2}
	for i := 0; i < n; i++ {
		b.AddCell(Instance{
			Name:     fmt.Sprintf("c%d", i),
			Master:   lib.MustCell(fams[r.Intn(len(fams))], tech.Drives[r.Intn(len(tech.Drives))], tech.RVT),
			Pos:      geom.Point{X: r.Range(0, 70), Y: r.Range(0, 55)},
			Die:      Die(r.Intn(2)),
			Activity: r.Range(0.05, 0.4),
		})
	}
	nm := r.Intn(4)
	for i := 0; i < nm; i++ {
		mm := lib.MacroKB
		mm.Width, mm.Height = 8, 5
		b.AddMacro(MacroInst{Name: fmt.Sprintf("m%d", i), Model: mm,
			Pos: geom.Point{X: r.Range(0, 60), Y: r.Range(0, 50)}})
	}
	np := r.Intn(5)
	for i := 0; i < np; i++ {
		dir := In
		if r.Bool(0.5) {
			dir = Out
		}
		b.AddPort(Port{Name: fmt.Sprintf("p%d", i), Dir: dir,
			Pos: geom.Point{X: r.Range(0, 80), Y: 0}, CapfF: 3})
	}
	// Random nets: drivers must be unique cells (or macros/ports).
	drivers := r.Perm(n)
	nn := 1 + r.Intn(n-1)
	for i := 0; i < nn; i++ {
		net := Net{
			Name:     fmt.Sprintf("n%d", i),
			Driver:   PinRef{Kind: KindCell, Idx: int32(drivers[i])},
			Activity: r.Range(0.05, 0.4),
			RouteLen: r.Range(0, 100),
		}
		k := 1 + r.Intn(4)
		for s := 0; s < k; s++ {
			switch r.Intn(3) {
			case 0:
				net.Sinks = append(net.Sinks, PinRef{Kind: KindCell, Idx: int32(r.Intn(n)), Pin: int16(r.Intn(2))})
			case 1:
				if nm > 0 {
					net.Sinks = append(net.Sinks, PinRef{Kind: KindMacro, Idx: int32(r.Intn(nm)), Pin: int16(r.Intn(8))})
				}
			default:
				if np > 0 {
					net.Sinks = append(net.Sinks, PinRef{Kind: KindPort, Idx: int32(r.Intn(np))})
				}
			}
		}
		if len(net.Sinks) == 0 {
			net.Sinks = append(net.Sinks, PinRef{Kind: KindCell, Idx: int32(r.Intn(n))})
		}
		b.AddNet(net)
	}
	return b
}

func TestPropertyRandomBlocksValidate(t *testing.T) {
	f := func(seed uint64) bool {
		return randomValidBlock(seed).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEquivalence(t *testing.T) {
	// Clone must preserve every observable metric and share no state.
	f := func(seed uint64) bool {
		b := randomValidBlock(seed)
		c := b.Clone()
		if b.Wirelength() != c.Wirelength() ||
			b.CellArea(-1) != c.CellArea(-1) ||
			b.MacroArea(-1) != c.MacroArea(-1) ||
			b.NumBuffers() != c.NumBuffers() ||
			len(b.Nets) != len(c.Nets) {
			return false
		}
		// Mutating the clone must not touch the original.
		if len(c.Nets) > 0 && len(c.Nets[0].Sinks) > 0 {
			before := b.Nets[0].Sinks[0]
			c.Nets[0].Sinks[0] = PinRef{Kind: KindCell, Idx: 0}
			c.Nets[0].RouteLen = -1
			if b.Nets[0].Sinks[0] != before || b.Nets[0].RouteLen == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNetIs3DConsistentWithCuts(t *testing.T) {
	// Cut3DNets must agree with NetIs3D net by net.
	f := func(seed uint64) bool {
		b := randomValidBlock(seed)
		cuts := map[int]bool{}
		for _, i := range Cut3DNets(b) {
			cuts[i] = true
		}
		for i := range b.Nets {
			if b.NetIs3D(&b.Nets[i]) != cuts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStatsNonNegative(t *testing.T) {
	f := func(seed uint64, threshold float64) bool {
		if threshold < 0 {
			threshold = -threshold
		}
		b := randomValidBlock(seed)
		s := CollectStats(b, threshold)
		if s.NumCells < 0 || s.NumLongWire < 0 || s.Wirelength < 0 || s.HVTFraction < 0 || s.HVTFraction > 1 {
			return false
		}
		return s.NumLongWire <= len(b.Nets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVthCountsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		b := randomValidBlock(seed)
		rvt, hvt := CountVth(b)
		return rvt+hvt == len(b.Cells)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
