package netlist

import (
	"sort"

	"fold3d/internal/tech"
)

// Stats summarizes the physical state of a block, matching the metrics the
// paper tabulates (Tables 2-5): footprint, cell/buffer counts, wirelength,
// long-wire census, and 3D connection counts.
type Stats struct {
	Name        string
	Footprint   float64 // µm², silicon footprint
	NumCells    int
	NumBuffers  int
	NumMacros   int
	Wirelength  float64 // µm, drawn
	NumLongWire int
	NumTSV      int
	NumF2F      int
	HVTFraction float64
}

// CollectStats gathers Stats for b. longThreshold is the drawn-space long
// wire threshold in µm (tech.ScaleModel.LongWireThreshold).
func CollectStats(b *Block, longThreshold float64) Stats {
	s := Stats{
		Name:        b.Name,
		Footprint:   b.Footprint(),
		NumCells:    len(b.Cells),
		NumBuffers:  b.NumBuffers(),
		NumMacros:   len(b.Macros),
		Wirelength:  b.Wirelength(),
		NumTSV:      b.NumTSV,
		NumF2F:      b.NumF2F,
		HVTFraction: b.HVTFraction(),
	}
	for i := range b.Nets {
		if b.Nets[i].RouteLen > longThreshold {
			s.NumLongWire++
		}
	}
	return s
}

// LongWires returns the indices of nets longer than threshold, sorted by
// decreasing length. The folding criteria (§4.1) use the count; buffer
// insertion walks the list.
func LongWires(b *Block, threshold float64) []int {
	var idx []int
	for i := range b.Nets {
		if b.Nets[i].RouteLen > threshold {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, c int) bool {
		return b.Nets[idx[a]].RouteLen > b.Nets[idx[c]].RouteLen
	})
	return idx
}

// FanoutHistogram returns counts of nets by sink count (1, 2, 3, 4+).
func FanoutHistogram(b *Block) [4]int {
	var h [4]int
	for i := range b.Nets {
		f := len(b.Nets[i].Sinks)
		switch {
		case f <= 1:
			h[0]++
		case f == 2:
			h[1]++
		case f == 3:
			h[2]++
		default:
			h[3]++
		}
	}
	return h
}

// GroupNames returns the distinct instance Group labels in b, sorted. For
// the SPC this enumerates its functional unit blocks (FUBs).
func GroupNames(b *Block) []string {
	seen := make(map[string]bool)
	for i := range b.Cells {
		if g := b.Cells[i].Group; g != "" {
			seen[g] = true
		}
	}
	for i := range b.Macros {
		if g := b.Macros[i].Group; g != "" {
			seen[g] = true
		}
	}
	names := make([]string, 0, len(seen))
	for g := range seen {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// GroupCellCount returns the number of cells in each Group of b.
func GroupCellCount(b *Block) map[string]int {
	m := make(map[string]int)
	for i := range b.Cells {
		m[b.Cells[i].Group]++
	}
	return m
}

// CellAreaByDie returns the standard-cell plus macro area per die.
func CellAreaByDie(b *Block) [2]float64 {
	var a [2]float64
	for i := range b.Cells {
		a[b.Cells[i].Die] += b.Cells[i].Master.Area()
	}
	for i := range b.Macros {
		a[b.Macros[i].Die] += b.Macros[i].Model.Area()
	}
	return a
}

// Cut3DNets returns the indices of nets spanning both dies.
func Cut3DNets(b *Block) []int {
	var idx []int
	for i := range b.Nets {
		if b.NetIs3D(&b.Nets[i]) {
			idx = append(idx, i)
		}
	}
	return idx
}

// DriveHistogram counts cells by drive strength; the paper's cell-power
// argument (3D slack lets cells shrink) shows up as this histogram shifting
// toward smaller drives in 3D designs.
func DriveHistogram(b *Block) map[int]int {
	h := make(map[int]int)
	for i := range b.Cells {
		h[b.Cells[i].Master.Drive]++
	}
	return h
}

// MeanDrive returns the average drive strength of the block's cells.
func MeanDrive(b *Block) float64 {
	if len(b.Cells) == 0 {
		return 0
	}
	sum := 0
	for i := range b.Cells {
		sum += b.Cells[i].Master.Drive
	}
	return float64(sum) / float64(len(b.Cells))
}

// CountVth returns the number of RVT and HVT cells.
func CountVth(b *Block) (rvt, hvt int) {
	for i := range b.Cells {
		if b.Cells[i].Master.Vth == tech.HVT {
			hvt++
		} else {
			rvt++
		}
	}
	return rvt, hvt
}
