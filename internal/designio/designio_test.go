package designio

import (
	"strings"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func ioBlock(t *testing.T) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	b := netlist.NewBlock("blk-1", tech.CPUClock)
	b.Is3D = true
	b.Outline[0] = geom.NewRect(0, 0, 40, 24)
	b.Outline[1] = b.Outline[0]
	inv := b.AddCell(netlist.Instance{Name: "u/inv", Master: lib.MustCell(tech.INV, 2, tech.RVT), Pos: geom.Point{X: 2, Y: 1.2}})
	nd := b.AddCell(netlist.Instance{Name: "u.nand", Master: lib.MustCell(tech.NAND2, 4, tech.RVT), Pos: geom.Point{X: 10, Y: 2.4}, Die: netlist.DieTop})
	mm := lib.MacroKB
	mm.Width, mm.Height = 8, 6
	mac := b.AddMacro(netlist.MacroInst{Name: "mem0", Model: mm, Pos: geom.Point{X: 25, Y: 10}})
	in := b.AddPort(netlist.Port{Name: "din", Dir: netlist.In, Pos: geom.Point{X: 0, Y: 5}})
	out := b.AddPort(netlist.Port{Name: "dout", Dir: netlist.Out, Pos: geom.Point{X: 40, Y: 5}})
	b.AddNet(netlist.Net{Name: "n_in", Driver: netlist.PinRef{Kind: netlist.KindPort, Idx: in},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: inv}}})
	b.AddNet(netlist.Net{Name: "n_x", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: inv},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: nd}}}) // 3D net
	b.AddNet(netlist.Net{Name: "n_out", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: nd},
		Sinks: []netlist.PinRef{{Kind: netlist.KindMacro, Idx: mac, Pin: 2}, {Kind: netlist.KindPort, Idx: out}}})
	return b
}

func TestWriteVerilog(t *testing.T) {
	b := ioBlock(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, b, false); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module blk_1", "input din", "output dout",
		"wire n_x;", "INV_X2_RVT u_inv", "NAND2_X4_RVT u_nand",
		"SRAM16KB mem0", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	if strings.Contains(v, "_die_top") {
		t.Error("plain verilog must not carry die suffixes")
	}
}

func TestWriteVerilogMerged3D(t *testing.T) {
	b := ioBlock(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, b, true); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	// The paper's §5.1 view: masters renamed per die.
	if !strings.Contains(v, "INV_X2_RVT_die_bot u_inv") {
		t.Error("bottom-die suffix missing")
	}
	if !strings.Contains(v, "NAND2_X4_RVT_die_top u_nand") {
		t.Error("top-die suffix missing")
	}
}

func TestWriteDEF(t *testing.T) {
	b := ioBlock(t)
	var sb strings.Builder
	if err := WriteDEF(&sb, b, -1, true); err != nil {
		t.Fatal(err)
	}
	d := sb.String()
	for _, want := range []string{
		"VERSION 5.8", "DESIGN blk_1", "DIEAREA ( 0 0 ) ( 40000 24000 )",
		"COMPONENTS 3 ;", "PLACED ( 2000 1200 )", "+ FIXED", "PINS 2 ;",
		"DIRECTION OUTPUT", "END DESIGN",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("DEF missing %q", want)
		}
	}
}

func TestWriteDEFPerDie(t *testing.T) {
	b := ioBlock(t)
	var bot, top strings.Builder
	if err := WriteDEF(&bot, b, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteDEF(&top, b, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bot.String(), "u_inv") || strings.Contains(bot.String(), "u_nand") {
		t.Error("bottom DEF die filter wrong")
	}
	if !strings.Contains(top.String(), "u_nand") || strings.Contains(top.String(), "u_inv") {
		t.Error("top DEF die filter wrong")
	}
}

func TestWriteLEF(t *testing.T) {
	lib := tech.NewLibrary()
	var sb strings.Builder
	if err := WriteLEF(&sb, lib, false); err != nil {
		t.Fatal(err)
	}
	l := sb.String()
	for _, want := range []string{"LAYER M1", "LAYER M9", "MACRO INV_X1_RVT", "MACRO DFF_X16_HVT", "MACRO SRAM16KB", "END LIBRARY"} {
		if !strings.Contains(l, want) {
			t.Errorf("LEF missing %q", want)
		}
	}
	if strings.Contains(l, "F2FVIA") {
		t.Error("plain LEF must not define the F2F via layer")
	}
}

func TestWriteLEFMerged3D(t *testing.T) {
	lib := tech.NewLibrary()
	var sb strings.Builder
	if err := WriteLEF(&sb, lib, true); err != nil {
		t.Fatal(err)
	}
	l := sb.String()
	// The paper's merged LEF: both dies' layers and masters plus the F2F cut.
	for _, want := range []string{"LAYER M1_die_bot", "LAYER M9_die_top", "LAYER F2FVIA",
		"MACRO INV_X1_RVT_die_bot", "MACRO INV_X1_RVT_die_top", "MACRO SRAM16KB_die_top"} {
		if !strings.Contains(l, want) {
			t.Errorf("merged LEF missing %q", want)
		}
	}
}

func TestWrite3DNetsOnly(t *testing.T) {
	b := ioBlock(t)
	var sb strings.Builder
	n3d, err := Write3DNetsOnly(&sb, b)
	if err != nil {
		t.Fatal(err)
	}
	// n_x (inv bot -> nand top) and n_out (nand top -> macro/port bot) cross
	// dies; n_in stays on the bottom die.
	if n3d != 2 {
		t.Errorf("3D nets = %d, want 2", n3d)
	}
	s := sb.String()
	if !strings.Contains(s, "NET n_x ROUTE ;") || !strings.Contains(s, "NET n_out ROUTE ;") {
		t.Error("3D nets not marked for routing")
	}
	if !strings.Contains(s, "NET n_in USE GROUND ;") {
		t.Error("2D net not tied to ground (paper §5.1)")
	}
}
