// Package designio writes the standard physical-design exchange files the
// paper's flow moves between tools: a structural Verilog netlist, a DEF
// (design exchange format) placement, and a LEF (library exchange format)
// abstract of the cell library — plus the paper's §5.1 trick, the "2D-like
// 3D design files": both dies of a folded block merged into one flat design
// whose cell and layer names carry _die_top / _die_bot suffixes, so an
// ordinary 2D router can route the 3D nets and reveal the F2F via locations
// (Figure 4).
package designio

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// sanitize makes a netlist name a legal Verilog/DEF identifier.
func sanitize(s string) string {
	r := strings.NewReplacer("-", "_", "/", "_", " ", "_", ".", "_")
	return r.Replace(s)
}

// dieSuffix returns the paper's merged-view suffix for a die.
func dieSuffix(d netlist.Die) string {
	if d == netlist.DieTop {
		return "_die_top"
	}
	return "_die_bot"
}

// WriteVerilog emits b as a flat structural Verilog module. When merged3D is
// true, instance master names carry the die suffix (the §5.1 merged view);
// otherwise masters keep their library names.
func WriteVerilog(w io.Writer, b *netlist.Block, merged3D bool) error {
	var ports []string
	for i := range b.Ports {
		dir := "input"
		if b.Ports[i].Dir == netlist.Out {
			dir = "output"
		}
		ports = append(ports, fmt.Sprintf("  %s %s", dir, sanitize(b.Ports[i].Name)))
	}
	if _, err := fmt.Fprintf(w, "module %s (\n%s\n);\n\n", sanitize(b.Name), strings.Join(ports, ",\n")); err != nil {
		return err
	}

	// Net declarations and per-pin connection map.
	type conn struct {
		net string
		pin string
	}
	cellPins := make(map[int32][]conn)
	macroPins := make(map[int32][]conn)
	for ni := range b.Nets {
		n := &b.Nets[ni]
		name := sanitize(n.Name)
		fmt.Fprintf(w, "  wire %s;\n", name)
		attach := func(ref netlist.PinRef, pin string) {
			switch ref.Kind {
			case netlist.KindCell:
				cellPins[ref.Idx] = append(cellPins[ref.Idx], conn{name, pin})
			case netlist.KindMacro:
				macroPins[ref.Idx] = append(macroPins[ref.Idx], conn{name, pin})
			}
		}
		attach(n.Driver, "Z")
		for si, s := range n.Sinks {
			attach(s, fmt.Sprintf("A%d", s.Pin))
			_ = si
		}
	}
	fmt.Fprintln(w)

	for i := range b.Cells {
		c := &b.Cells[i]
		master := c.Master.Name
		if merged3D {
			master += dieSuffix(c.Die)
		}
		var args []string
		for _, pc := range cellPins[int32(i)] {
			args = append(args, fmt.Sprintf(".%s(%s)", pc.pin, pc.net))
		}
		fmt.Fprintf(w, "  %s %s (%s);\n", sanitize(master), sanitize(c.Name), strings.Join(args, ", "))
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		master := m.Model.Name
		if merged3D {
			master += dieSuffix(m.Die)
		}
		var args []string
		for _, pc := range macroPins[int32(i)] {
			args = append(args, fmt.Sprintf(".%s(%s)", pc.pin, pc.net))
		}
		fmt.Fprintf(w, "  %s %s (%s);\n", sanitize(master), sanitize(m.Name), strings.Join(args, ", "))
	}
	_, err := fmt.Fprintln(w, "\nendmodule")
	return err
}

// WriteDEF emits the placement of b in DEF. die < 0 writes every component;
// otherwise only that die's. merged3D suffixes component masters by die (the
// §5.1 merged view, where both dies coexist in one flat DEF). Distances are
// written in DEF database units of 1000 per drawn µm.
func WriteDEF(w io.Writer, b *netlist.Block, die int, merged3D bool) error {
	const dbu = 1000.0
	out := b.Outline[0]
	if b.Is3D {
		out = out.Union(b.Outline[1])
	}
	fmt.Fprintf(w, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", sanitize(b.Name), int(dbu))
	fmt.Fprintf(w, "DIEAREA ( %d %d ) ( %d %d ) ;\n",
		int(out.Lo.X*dbu), int(out.Lo.Y*dbu), int(out.Hi.X*dbu), int(out.Hi.Y*dbu))

	count := 0
	for i := range b.Cells {
		if die >= 0 && int(b.Cells[i].Die) != die {
			continue
		}
		count++
	}
	for i := range b.Macros {
		if die >= 0 && int(b.Macros[i].Die) != die {
			continue
		}
		count++
	}
	fmt.Fprintf(w, "COMPONENTS %d ;\n", count)
	for i := range b.Cells {
		c := &b.Cells[i]
		if die >= 0 && int(c.Die) != die {
			continue
		}
		master := c.Master.Name
		if merged3D {
			master += dieSuffix(c.Die)
		}
		fmt.Fprintf(w, "  - %s %s + PLACED ( %d %d ) N ;\n",
			sanitize(c.Name), sanitize(master), int(c.Pos.X*dbu), int(c.Pos.Y*dbu))
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		if die >= 0 && int(m.Die) != die {
			continue
		}
		master := m.Model.Name
		if merged3D {
			master += dieSuffix(m.Die)
		}
		fmt.Fprintf(w, "  - %s %s + PLACED ( %d %d ) N + FIXED ;\n",
			sanitize(m.Name), sanitize(master), int(m.Pos.X*dbu), int(m.Pos.Y*dbu))
	}
	fmt.Fprintln(w, "END COMPONENTS")

	fmt.Fprintf(w, "PINS %d ;\n", len(b.Ports))
	for i := range b.Ports {
		p := &b.Ports[i]
		if die >= 0 && int(p.Die) != die && !merged3D {
			continue
		}
		dir := "INPUT"
		if p.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		fmt.Fprintf(w, "  - %s + DIRECTION %s + PLACED ( %d %d ) N ;\n",
			sanitize(p.Name), dir, int(p.Pos.X*dbu), int(p.Pos.Y*dbu))
	}
	fmt.Fprintln(w, "END PINS")
	_, err := fmt.Fprintln(w, "END DESIGN")
	return err
}

// WriteLEF emits the library abstract: the metal stack (doubled with die
// suffixes when merged3D — the §5.1 LEF "contains the interconnect structure
// for F2F bonding as well as cells and memory macros in both dies"), every
// cell master, and the SRAM macro.
func WriteLEF(w io.Writer, lib *tech.Library, merged3D bool) error {
	fmt.Fprintln(w, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;")
	fmt.Fprintln(w, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS")

	suffixes := []string{""}
	if merged3D {
		suffixes = []string{"_die_bot", "_die_top"}
	}
	for _, sfx := range suffixes {
		for _, m := range lib.Metal {
			dir := "VERTICAL"
			if m.Horiz {
				dir = "HORIZONTAL"
			}
			fmt.Fprintf(w, "LAYER %s%s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n  WIDTH %.3f ;\n  PITCH %.3f ;\nEND %s%s\n",
				m.Name, sfx, dir, m.MinWidth, m.Pitch, m.Name, sfx)
		}
	}
	if merged3D {
		// The F2F via layer sits on top of both dies' M9.
		fmt.Fprintf(w, "LAYER F2FVIA\n  TYPE CUT ;\n  WIDTH %.3f ;\nEND F2FVIA\n", lib.F2F.Diameter)
	}

	// Masters, sorted for stable output.
	var names []string
	for fam := tech.Family(0); fam < 8; fam++ {
		for _, d := range tech.Drives {
			for _, vth := range []tech.VthClass{tech.RVT, tech.HVT} {
				c, err := lib.Cell(fam, d, vth)
				if err != nil {
					continue
				}
				names = append(names, c.Name)
			}
		}
	}
	sort.Strings(names)
	for _, sfx := range suffixes {
		for _, name := range names {
			c, err := lib.ByName(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "MACRO %s%s\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND %s%s\n",
				c.Name, sfx, c.Width, tech.CellHeight, c.Name, sfx)
		}
		mm := lib.MacroKB
		fmt.Fprintf(w, "MACRO %s%s\n  CLASS BLOCK ;\n  SIZE %.3f BY %.3f ;\nEND %s%s\n",
			mm.Name, sfx, mm.Width, mm.Height, mm.Name, sfx)
	}
	_, err := fmt.Fprintln(w, "END LIBRARY")
	return err
}

// Write3DNetsOnly emits the §5.1 routing netlist: only the die-crossing nets
// survive; every 2D net is tied to ground ("tying 2D nets to ground. By
// this, F2F via locations are not affected by 2D net routing"). Returns the
// number of 3D nets written.
func Write3DNetsOnly(w io.Writer, b *netlist.Block) (int, error) {
	fmt.Fprintf(w, "# 3D-net routing view of %s: 2D nets tied to VSS\n", sanitize(b.Name))
	n3d := 0
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal {
			continue
		}
		if b.NetIs3D(n) {
			fmt.Fprintf(w, "NET %s ROUTE ;\n", sanitize(n.Name))
			n3d++
		} else {
			fmt.Fprintf(w, "NET %s USE GROUND ;\n", sanitize(n.Name))
		}
	}
	_, err := fmt.Fprintln(w, "END NETS")
	return n3d, err
}
