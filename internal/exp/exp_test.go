package exp

import (
	"context"
	"strings"
	"testing"

	"fold3d/internal/core"
	"fold3d/internal/extract"
)

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	v, ok := tb.Get("diameter")
	if !ok || v[0] != 5 || v[1] != 0.5 {
		t.Errorf("diameters = %v", v)
	}
	v, _ = tb.Get("C")
	if v[0] != 38 || v[1] != 0.25 {
		t.Errorf("capacitances = %v", v)
	}
	if !strings.Contains(tb.String(), "TSV") {
		t.Error("report missing columns")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{Title: "t", Columns: []string{"a", "b", "c"}}
	tb.Add("m", "u", 10, 5, 20)
	d, ok := tb.Diff("m", 1)
	if !ok || d != -50 {
		t.Errorf("Diff = %v, %v", d, ok)
	}
	d, ok = tb.Diff("m", 2)
	if !ok || d != 100 {
		t.Errorf("Diff = %v", d)
	}
	if _, ok := tb.Get("absent"); ok {
		t.Error("Get must miss for unknown metric")
	}
	if _, ok := tb.Diff("m", 5); ok {
		t.Error("Diff must miss for out-of-range column")
	}
}

func TestBlockWithPortsAttachesPorts(t *testing.T) {
	d, _, err := blockWithPorts(DefaultConfig(), "CCX")
	if err != nil {
		t.Fatal(err)
	}
	b := d.Blocks["CCX"]
	if len(b.Ports) == 0 {
		t.Fatal("no ports attached")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable4L2DFolding(t *testing.T) {
	if testing.Short() {
		t.Skip("block implementation")
	}
	fc, err := Table4(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4 shape: big footprint saving, small power saving (the
	// macros dominate).
	if fc.FootprintPct > -30 {
		t.Errorf("footprint saving too small: %v%%", fc.FootprintPct)
	}
	if fc.PowerPct < -15 || fc.PowerPct > 5 {
		t.Errorf("L2D power delta = %v%%, want small (paper -5.1%%)", fc.PowerPct)
	}
	if fc.R3D.Stats.NumTSV == 0 {
		t.Error("folded L2D needs TSVs")
	}
}

func TestFigure2CCXShape(t *testing.T) {
	if testing.Short() {
		t.Skip("block implementation sweep")
	}
	r, err := Figure2(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nat := r.Natural
	// Paper Figure 2 shape: footprint roughly halves, wirelength and power
	// drop substantially, with only a handful of TSVs.
	if nat.FootprintPct > -35 {
		t.Errorf("CCX fold footprint %v%%, paper -54.6%%", nat.FootprintPct)
	}
	if nat.PowerPct > -10 {
		t.Errorf("CCX fold power %v%%, paper -32.8%%", nat.PowerPct)
	}
	if nat.R3D.Stats.NumTSV > 10 {
		t.Errorf("natural CCX fold used %d TSVs, paper needs 4", nat.R3D.Stats.NumTSV)
	}
	// The sweep must degrade monotonically-ish: last point clearly worse
	// than the first (paper: -32.8%% at 4 TSVs -> -23.4%% at 6,393).
	first := r.Sweep[0]
	last := r.Sweep[len(r.Sweep)-1]
	if last.Vias <= first.Vias {
		t.Fatal("sweep did not increase via count")
	}
	if last.PowerPct <= first.PowerPct {
		t.Errorf("TSV area overhead did not degrade the benefit: %v -> %v", first.PowerPct, last.PowerPct)
	}
	if r.SVG2D == "" || r.SVG3D == "" {
		t.Error("missing layout renders")
	}
}

func TestFigure7BondingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("partition sweep")
	}
	r, err := Figure7(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Paper: F2F wins in every partition.
	wins := 0
	for _, p := range r.Points {
		if p.F2FPowerN <= p.F2BPowerN {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("F2F won only %d/5 partitions (paper: all)", wins)
	}
	if r.MaxGainPct > -2 {
		t.Errorf("max F2F gain = %v%%, paper -16.2%%", r.MaxGainPct)
	}
}

func TestFoldCompareString(t *testing.T) {
	fc := &FoldCompare{Block: "X", Bond: extract.F2B}
	fc.R2D = nil
	_ = core.DefaultFoldOptions()
	// String formatting requires results; just check fill-free formatting
	// does not panic when values are zero.
	defer func() {
		if recover() != nil {
			t.Skip("String on empty compare is out of contract")
		}
	}()
	_ = fc.FootprintPct
}

func TestFigure4DesignFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("block implementation")
	}
	r, err := Figure4(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Nets3DCount == 0 {
		t.Error("no 3D nets in the merged view")
	}
	for name, content := range map[string]string{
		"verilog": r.Verilog, "def": r.DEF, "lef": r.LEF, "nets": r.Nets3D,
	} {
		if len(content) < 100 {
			t.Errorf("%s artifact suspiciously small (%d bytes)", name, len(content))
		}
	}
	if !strings.Contains(r.LEF, "F2FVIA") {
		t.Error("merged LEF lacks the F2F via layer")
	}
}

func TestAblationTSVCouplingPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("block implementation")
	}
	r, err := AblationTSVCoupling(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.PowerPct <= 0 {
		t.Errorf("coupling must cost power, got %+.2f%%", r.PowerPct)
	}
	if r.PowerPct > 20 {
		t.Errorf("coupling penalty implausibly large: %+.2f%%", r.PowerPct)
	}
}

func TestThermalStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	r, err := ThermalStudy(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byStyle := map[string]ThermalRow{}
	for _, row := range r.Rows {
		byStyle[row.Style.String()] = row
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want all 5 styles", len(r.Rows))
	}
	t2d := byStyle["2D"]
	for _, name := range []string{"core/cache", "core/core", "fold-F2B", "fold-F2F"} {
		row, ok := byStyle[name]
		if !ok {
			t.Fatalf("style %s missing from study", name)
		}
		if row.TMaxC <= t2d.TMaxC {
			t.Errorf("%s Tmax %.1f not above 2D %.1f (stacking doubles power density)",
				name, row.TMaxC, t2d.TMaxC)
		}
		if row.PowerW >= t2d.PowerW*1.05 {
			t.Errorf("%s burns more power than 2D", name)
		}
	}
	// Thermal vias must help exactly the F2B-bonded stacks.
	for _, name := range []string{"core/cache", "core/core", "fold-F2B"} {
		row := byStyle[name]
		if row.ViasAdded == 0 {
			t.Errorf("%s inserted no thermal vias", name)
		}
		if row.TMaxViasC >= row.TMaxC {
			t.Errorf("%s vias did not reduce Tmax (%.2f -> %.2f)", name, row.TMaxC, row.TMaxViasC)
		}
	}
	for _, name := range []string{"2D", "fold-F2F"} {
		row := byStyle[name]
		if row.ViasAdded != 0 {
			t.Errorf("%s got %d thermal vias, want none", name, row.ViasAdded)
		}
		if row.TMaxViasC != row.TMaxC {
			t.Errorf("%s via column diverged without vias", name)
		}
	}
	if len(r.Sel) == 0 {
		t.Error("hotspot-aware selection demo produced no rows")
	}
	for _, s := range r.Sel {
		if s.MinPortionPct < 1 {
			t.Errorf("block %s effective threshold %.3f%% below the 1%% base", s.Block, s.MinPortionPct)
		}
		if s.Selected && !s.SelectedCold {
			t.Errorf("block %s selected hot but not cold: temp weight can only raise the bar", s.Block)
		}
	}
}

func TestThermalStudyMeltVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip builds")
	}
	cfg := DefaultConfig()
	cfg.Thermal.TMaxBudgetC = 60 // below the stacks' typical peak: verdict must fire
	r, err := ThermalStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMaxBudgetC != 60 {
		t.Fatalf("budget not echoed: %g", r.TMaxBudgetC)
	}
	melts := 0
	for _, row := range r.Rows {
		if row.Melts {
			melts++
			if row.TMaxViasC <= 60 {
				t.Errorf("%s marked melting at %.2f C <= budget", row.Style, row.TMaxViasC)
			}
		}
	}
	if melts == 0 {
		t.Error("no style exceeds a 60 C budget; verdict never exercised")
	}
	if !strings.Contains(r.String(), "MELTS") {
		t.Error("report does not render the melt verdict")
	}
}
