package exp

import (
	"context"
	"fmt"
	"strings"

	"fold3d/internal/core"
	"fold3d/internal/designio"
	"fold3d/internal/extract"
	"fold3d/internal/flow"
)

// Figure4Result exercises the paper's §5.1 file flow (Figure 4): run the 3D
// placer under an ideal interconnect, then emit the "2D-like 3D design
// files" — a merged Verilog netlist and DEF with _die_top/_die_bot suffixed
// masters, a merged LEF carrying both dies' metal stacks plus the F2F via
// cut layer, and the routing netlist with every 2D net tied to ground.
type Figure4Result struct {
	Block string
	// The generated artifacts.
	Verilog, DEF, LEF, Nets3D string
	// Nets3DCount is how many die-crossing nets survive for routing.
	Nets3DCount int
}

// Figure4 produces the merged two-die design files for a folded L2T.
func Figure4(ctx context.Context, cfg Config) (*Figure4Result, error) {
	d, _, err := blockWithPorts(cfg, "L2T0")
	if err != nil {
		return nil, err
	}
	fcfg := cfg.flowCfg()
	fcfg.Bond = extract.F2F
	fl := flow.New(d, fcfg)
	b := d.Blocks["L2T0"].Clone()
	fo := core.DefaultFoldOptions()
	fo.Seed = cfg.Seed + 17
	if _, _, err := fl.FoldAndImplementContext(ctx, b, fo, d.Specs["L2T0"].Aspect); err != nil {
		return nil, err
	}

	res := &Figure4Result{Block: b.Name}
	var sb strings.Builder
	if err := designio.WriteVerilog(&sb, b, true); err != nil {
		return nil, err
	}
	res.Verilog = sb.String()
	sb.Reset()
	if err := designio.WriteDEF(&sb, b, -1, true); err != nil {
		return nil, err
	}
	res.DEF = sb.String()
	sb.Reset()
	if err := designio.WriteLEF(&sb, d.Lib, true); err != nil {
		return nil, err
	}
	res.LEF = sb.String()
	sb.Reset()
	n3d, err := designio.Write3DNetsOnly(&sb, b)
	if err != nil {
		return nil, err
	}
	res.Nets3D = sb.String()
	res.Nets3DCount = n3d
	return res, nil
}

// String renders the merged-netlist handoff summary.
func (r *Figure4Result) String() string {
	return fmt.Sprintf(`== Figure 4: the "2D-like 3D design files" of the F2F via flow (%s) ==
merged Verilog: %5d bytes (_die_top/_die_bot suffixed masters)
merged DEF:     %5d bytes (both dies' components in one flat design)
merged LEF:     %5d bytes (both metal stacks + the F2FVIA cut layer)
routing netlist: %d 3D nets kept, 2D nets tied to ground`,
		r.Block, len(r.Verilog), len(r.DEF), len(r.LEF), r.Nets3DCount)
}
