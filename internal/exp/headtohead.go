package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fold3d/internal/flow"
	"fold3d/internal/place"
	"fold3d/internal/t2"
)

// HeadToHeadRow is one (style, backend) measurement of the backend
// comparison: the placement objective (summed block HPWL), the paper-
// equivalent 3D via count, total power, and the power delta against the
// force backend on the same style.
type HeadToHeadRow struct {
	Style   t2.Style
	Backend string
	// HPWLm is the summed half-perimeter wirelength of every block's
	// signal nets, in meters.
	HPWLm float64
	// Vias3D is the paper-equivalent 3D via count (TSVs or F2F vias).
	Vias3D int
	// PowerW is the chip total power in watts.
	PowerW float64
	// PowerDeltaPct is the power difference against the force backend on
	// the same style (zero for the force rows themselves).
	PowerDeltaPct float64
}

// HeadToHeadResult is the standardized backend comparison: every registered
// placement backend over all five bonding styles, one row per pair. Rows is
// deterministic (and part of the result fingerprint); Elapsed carries the
// wall-clock of each run and is reported only through the volatile channel.
type HeadToHeadResult struct {
	Rows []HeadToHeadRow
	// Elapsed holds one wall-clock duration per row, same order as Rows.
	// It never participates in fingerprints.
	Elapsed []time.Duration
}

// headToHeadStyles is the full style axis of the comparison — the paper's
// five chip styles, in Figure 8 order.
var headToHeadStyles = []t2.Style{
	t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore, t2.StyleFoldF2B, t2.StyleFoldF2F,
}

// HeadToHead builds the full chip under every registered placement backend
// and every bonding style and compares HPWL, 3D-via count and power
// head-to-head. The cache-key discipline keeps the runs honest: backends
// never restore each other's artifacts, so each cell of the matrix is that
// backend's own work (or its own earlier work, warm).
func HeadToHead(ctx context.Context, cfg Config) (*HeadToHeadResult, error) {
	res := &HeadToHeadResult{}
	// Force first (the reference column), then the rest in registry order.
	backends := place.BackendNames()
	ref := make(map[t2.Style]float64, len(headToHeadStyles))
	for _, backend := range backends {
		for _, style := range headToHeadStyles {
			d, err := t2.Generate(cfg.t2cfg())
			if err != nil {
				return nil, err
			}
			fcfg := cfg.flowCfg()
			fcfg.Placer = backend
			fl := flow.New(d, fcfg)
			//lint:ignore determinism wall-clock here feeds only the volatile Elapsed channel, which is printed but excluded from every result fingerprint
			t0 := time.Now()
			r, err := fl.BuildChipContext(ctx, style)
			if err != nil {
				return nil, fmt.Errorf("exp: headtohead %s/%s: %v", style, backend, err)
			}
			//lint:ignore determinism wall-clock here feeds only the volatile Elapsed channel, which is printed but excluded from every result fingerprint
			elapsed := time.Since(t0)
			row := HeadToHeadRow{
				Style:   style,
				Backend: backend,
				HPWLm:   chipHPWLm(r),
				Vias3D:  r.Stats.ViasPaperEquiv,
				PowerW:  r.Power.TotalMW / 1e3,
			}
			if backend == place.DefaultBackend {
				ref[style] = row.PowerW
			} else {
				row.PowerDeltaPct = pct(row.PowerW, ref[style])
			}
			res.Rows = append(res.Rows, row)
			res.Elapsed = append(res.Elapsed, elapsed)
		}
	}
	//lint:ignore nondetflow Elapsed is display-only wall-clock that feeds the volatile channel, which is excluded from every result fingerprint
	return res, nil
}

// chipHPWLm sums the per-block signal-net HPWL in sorted block-name order
// (float accumulation order must not depend on map iteration) and converts
// to meters.
func chipHPWLm(r *flow.ChipResult) float64 {
	names := make([]string, 0, len(r.Blocks))
	for name := range r.Blocks {
		names = append(names, name)
	}
	sort.Strings(names)
	var um float64
	for _, name := range names {
		um += place.HPWL(r.Blocks[name].Block)
	}
	return um / 1e6
}

// String renders the deterministic comparison table.
func (r *HeadToHeadResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Head-to-head: placement backends across all five styles ==\n")
	sb.WriteString("style        backend      HPWL(m)    3D vias    power(W)    vs force\n")
	for _, row := range r.Rows {
		delta := "      ref"
		if row.Backend != place.DefaultBackend {
			delta = fmt.Sprintf("%+8.1f%%", row.PowerDeltaPct)
		}
		fmt.Fprintf(&sb, "%-12s %-12s %8.3f %10d %11.3f %s\n",
			row.Style, row.Backend, row.HPWLm, row.Vias3D, row.PowerW, delta)
	}
	sb.WriteString("note: backends share the legalizer and supply map; HPWL is the placement objective, power the paper's metric\n")
	return sb.String()
}

// VolatileString renders the wall-clock lines of the comparison — display
// data only, excluded from result fingerprints by construction (it rides
// the Result.Volatile channel).
func (r *HeadToHeadResult) VolatileString() string {
	var sb strings.Builder
	sb.WriteString("wall-clock per run (volatile, excluded from fingerprints):\n")
	for i, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-12s %-12s %s\n", row.Style, row.Backend, r.Elapsed[i].Round(time.Millisecond))
	}
	return sb.String()
}
