package exp

import (
	"context"
	"errors"
	"testing"

	"fold3d/internal/errs"
)

// canonicalOrder is the committed registry order: the paper's report order
// (tables, then figures, then ablations and future-work studies). Reports
// print in this order at any worker count, so reordering the registry is a
// user-visible output change and must be deliberate.
var canonicalOrder = []string{
	"table1", "table2", "table3", "table4", "table5",
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"dualvth", "macromode", "criteria", "thermal", "coupling", "rsmt",
	"headtohead",
}

func TestGeneratorsCanonicalOrder(t *testing.T) {
	gens := Generators()
	if len(gens) != len(canonicalOrder) {
		t.Fatalf("registry has %d generators, want %d", len(gens), len(canonicalOrder))
	}
	for i, g := range gens {
		if g.Name != canonicalOrder[i] {
			t.Errorf("generators[%d] = %q, want %q", i, g.Name, canonicalOrder[i])
		}
	}
}

func TestGeneratorsReturnsCopy(t *testing.T) {
	a := Generators()
	a[0].Name = "clobbered"
	if b := Generators(); b[0].Name != canonicalOrder[0] {
		t.Fatalf("mutating the returned slice leaked into the registry: %q", b[0].Name)
	}
}

func TestGeneratorsHaveDocsAndRun(t *testing.T) {
	for _, g := range Generators() {
		if g.Doc == "" {
			t.Errorf("generator %q has an empty Doc", g.Name)
		}
		if g.Run == nil {
			t.Errorf("generator %q has a nil Run", g.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range canonicalOrder {
		g, ok := ByName(name)
		if !ok || g.Name != name {
			t.Errorf("ByName(%q) = %q, %v", name, g.Name, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should miss")
	}
}

func TestRunAllUnknownExperiment(t *testing.T) {
	_, err := RunAll(context.Background(), DefaultConfig(), []string{"table2", "bogus"}, nil)
	if err == nil {
		t.Fatal("RunAll with a bad name must fail")
	}
	if !errors.Is(err, errs.ErrUnknownExperiment) {
		t.Errorf("error %v does not match ErrUnknownExperiment", err)
	}
	if !errors.Is(err, errs.ErrBadRequest) {
		t.Errorf("error %v does not match ErrBadRequest", err)
	}
	if got := err.Error(); got != `exp: bad request: unknown experiment: no experiment "bogus"` {
		t.Errorf("error text = %q", got)
	}
}

// TestConfigValidate pins the option-validation contract: out-of-range
// values fail fast wrapping both ErrBadRequest (transport classification)
// and ErrBadOptions (the historical sentinel), and the zero values that
// mean "use the default" stay valid.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config", Config{}, true},
		{"defaults", DefaultConfig(), true},
		{"explicit scale", Config{Scale: 500}, true},
		{"scale below 1", Config{Scale: 0.5}, false},
		{"negative scale", Config{Scale: -3}, false},
		{"negative workers", Config{Workers: -1}, false},
		{"force placer", Config{Placer: "force"}, true},
		{"analytical placer", Config{Placer: "analytical"}, true},
		{"unknown placer", Config{Placer: "bogus"}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: Validate() = nil, want error", c.name)
				continue
			}
			if !errors.Is(err, errs.ErrBadRequest) || !errors.Is(err, errs.ErrBadOptions) {
				t.Errorf("%s: error %v must match ErrBadRequest and ErrBadOptions", c.name, err)
			}
		}
	}
}

// TestRunAllValidatesConfig checks that RunAll rejects a bad configuration
// before running any generator.
func TestRunAllValidatesConfig(t *testing.T) {
	ran := false
	_, err := RunAll(context.Background(), Config{Workers: -2}, []string{"table1"},
		func(*Result, error) { ran = true })
	if !errors.Is(err, errs.ErrBadRequest) {
		t.Fatalf("RunAll with workers=-2: err = %v, want ErrBadRequest", err)
	}
	if ran {
		t.Error("a generator ran despite failed validation")
	}
}

// TestRunAllSharesCache pins the RunAll cache contract: a nil cfg.Cache is
// replaced by a fresh shared cache, and a caller-supplied cache is used as
// is (table1 is pure, so this stays cheap — the point is the wiring, the
// cross-experiment reuse itself is covered by TestCacheCrossStyleReuse).
func TestRunAllSharesCache(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cache != nil {
		t.Fatal("DefaultConfig should not pre-bind a cache")
	}
	res, err := RunAll(context.Background(), cfg, []string{"table1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil || res[0].Name != "table1" {
		t.Fatalf("results = %+v", res)
	}
}
