package exp

import (
	"context"
	"fmt"
	"strings"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/flow"
	"fold3d/internal/layout"
	"fold3d/internal/netlist"
	"fold3d/internal/route"
	"fold3d/internal/t2"
)

// Figure2Result is the CCX folding study (paper Figure 2 plus the TSV-count
// sweep in §4.3's text).
type Figure2Result struct {
	Natural *FoldCompare
	// Sweep entries increase the TSV count (the paper sweeps up to 6,393
	// physical TSVs; drawn counts scale per DESIGN.md §6).
	Sweep []SweepPoint
	// SVG2D and SVG3D render the layouts like the paper's Figure 2 shots.
	SVG2D, SVG3D string
}

// SweepPoint is one partition of a via-count sweep.
type SweepPoint struct {
	Vias     int
	PowerMW  float64
	PowerPct float64 // vs the 2D baseline
	FootUm2  float64
}

// Figure2 folds the CCX naturally (PCX on one die, CPX on the other; only
// the few cross signals need TSVs) and then sweeps forced partitions with
// more 3D connections, reproducing the degradation from TSV area overhead.
func Figure2(ctx context.Context, cfg Config) (*Figure2Result, error) {
	natFo := core.FoldOptions{
		Mode:     core.FoldNatural,
		GroupDie: map[string]int{"pcx": 0, "cpx": 1},
		Seed:     cfg.Seed + 11,
	}
	nat, err := foldBlock(ctx, cfg, "CCX", extract.F2B, natFo)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{
		Natural: nat,
		SVG2D:   layout.RenderBlockSVG(nat.R2D.Block, netlist.DieBottom),
		SVG3D:   layout.RenderBlockSVG(nat.R3D.Block, netlist.DieBottom),
	}
	base := nat.R2D.Power.TotalMW
	res.Sweep = append(res.Sweep, SweepPoint{
		Vias:     nat.R3D.Stats.NumTSV,
		PowerMW:  nat.R3D.Power.TotalMW,
		PowerPct: pct(nat.R3D.Power.TotalMW, base),
		FootUm2:  nat.R3D.Stats.Footprint,
	})
	for _, target := range []int{15, 30, 60, 100} {
		fo := natFo
		fo.InflateCutTo = target
		fc, err := foldBlock(ctx, cfg, "CCX", extract.F2B, fo)
		if err != nil {
			return nil, err
		}
		res.Sweep = append(res.Sweep, SweepPoint{
			Vias:     fc.R3D.Stats.NumTSV,
			PowerMW:  fc.R3D.Power.TotalMW,
			PowerPct: pct(fc.R3D.Power.TotalMW, base),
			FootUm2:  fc.R3D.Stats.Footprint,
		})
	}
	return res, nil
}

// String renders the CCX 2D-versus-3D comparison report.
func (r *Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("== Figure 2: folding the CCX (PCX/CPX natural split) ==\n")
	sb.WriteString(r.Natural.String() + "\n")
	sb.WriteString("paper: -54.6% footprint, -28.8% WL, -62.5% buffers, -32.8% power at 4 TSVs\n")
	sb.WriteString("TSV-count sweep (paper: benefit degrades to -23.4% at 6,393 TSVs):\n")
	for _, p := range r.Sweep {
		fmt.Fprintf(&sb, "  #TSV %4d: power %8.1f mW (%+.1f%% vs 2D), footprint %.0f um2\n",
			p.Vias, p.PowerMW, p.PowerPct, p.FootUm2)
	}
	return sb.String()
}

// Figure3Result is the SPC second-level folding study. The paper's baseline
// ("a block-level 3D design of the SPC") is the core implemented WITHOUT
// splitting — the same netlist and constraints as the 2D core — so the
// second-level deltas here are against the unfolded implementation. The
// whole-core min-cut fold (which the paper's tools could not attempt at this
// size) is reported as an extra reference point.
type Figure3Result struct {
	// SecondLevel folds the six large FUBs individually (paper Figure 3);
	// its percent fields compare against the unfolded SPC.
	SecondLevel *FoldCompare
	// WholeFold is the whole-core min-cut fold, an idealized reference.
	WholeFold *FoldCompare
}

// Figure3 folds one SPARC core FUB-by-FUB (second-level folding) and
// compares against the unfolded core; the paper reports -9.2% wirelength,
// -10.8% buffers and -5.1% power vs the unfolded ("block-level") 3D SPC and
// -21.2% power vs the 2D SPC.
func Figure3(ctx context.Context, cfg Config) (*Figure3Result, error) {
	var foldGroups []string
	for _, g := range t2.SPCFUBs() {
		if g.Fold {
			foldGroups = append(foldGroups, g.Name)
		}
	}
	slFo := core.FoldOptions{
		Mode:       core.FoldSecondLevel,
		FoldGroups: foldGroups,
		Seed:       cfg.Seed + 13,
	}
	sl, err := foldBlock(ctx, cfg, "SPC0", extract.F2F, slFo)
	if err != nil {
		return nil, err
	}
	blockFo := core.DefaultFoldOptions()
	blockFo.Seed = cfg.Seed + 13
	wf, err := foldBlock(ctx, cfg, "SPC0", extract.F2F, blockFo)
	if err != nil {
		return nil, err
	}
	return &Figure3Result{SecondLevel: sl, WholeFold: wf}, nil
}

// String renders the wirelength-distribution report.
func (r *Figure3Result) String() string {
	var sb strings.Builder
	sb.WriteString("== Figure 3: second-level folding of a SPARC core ==\n")
	fmt.Fprintf(&sb, "second-level fold vs unfolded SPC: %s\n", r.SecondLevel)
	fmt.Fprintf(&sb, "whole-core min-cut fold (reference): %s\n", r.WholeFold)
	sb.WriteString("paper: -9.2% WL, -10.8% buffers, -5.1% power vs the unfolded 3D SPC; -21.2% power vs 2D\n")
	return sb.String()
}

// Figure5Result is the F2F via placement flow study (paper §5.1, Figures
// 4-5): the routed-3D-nets via placer versus the naive midpoint baseline.
type Figure5Result struct {
	Block string
	// Routed flow (the paper's method).
	RoutedVias     int
	RoutedMaxPile  int
	RoutedOverflow int
	// Midpoint baseline.
	MidpointVias    int
	MidpointMaxPile int
	SVG             string
}

// Figure5 runs the F2F via placer on a folded L2T and contrasts it with the
// midpoint baseline (the ablation the paper's §5.1 motivates: placement-
// style algorithms are not adequate for F2F vias).
func Figure5(ctx context.Context, cfg Config) (*Figure5Result, error) {
	d, _, err := blockWithPorts(cfg, "L2T0")
	if err != nil {
		return nil, err
	}
	b := d.Blocks["L2T0"]
	fo := core.DefaultFoldOptions()
	fo.Seed = cfg.Seed + 17

	fcfg := cfg.flowCfg()
	fcfg.Bond = extract.F2F
	fl := flow.New(d, fcfg)
	b3 := b.Clone()
	if _, _, err := fl.FoldAndImplementContext(ctx, b3, fo, d.Specs["L2T0"].Aspect); err != nil {
		return nil, err
	}
	// Re-run the router on the final placement for its congestion stats.
	grid, err := route.PlaceF2FVias(b3, route.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{
		Block:          "L2T0",
		RoutedVias:     b3.NumF2F,
		RoutedMaxPile:  grid.MaxViaDensity(),
		RoutedOverflow: grid.Overflow(),
		SVG:            layout.RenderBlockSVG(b3, netlist.DieBottom),
	}
	bm := b3.Clone()
	maxPile, err := route.PlaceViasMidpoint(bm, route.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res.MidpointVias = bm.NumF2F
	res.MidpointMaxPile = maxPile
	return res, nil
}

// String renders the L2T folding report.
func (r *Figure5Result) String() string {
	return fmt.Sprintf(`== Figure 5: F2F via placement by 3D net routing (%s) ==
routed flow:      %d vias, max pile-up %d per gcell, overflow %d
midpoint baseline: %d vias, max pile-up %d per gcell
paper: routing the 3D nets spreads the vias legally; a placement-style
approach cannot exploit that F2F vias may sit over cells and macros`,
		r.Block, r.RoutedVias, r.RoutedMaxPile, r.RoutedOverflow,
		r.MidpointVias, r.MidpointMaxPile)
}

// Figure6Result compares bonding styles on folded blocks (paper Figure 6):
// F2F shrinks the footprint further because vias consume no silicon, and on
// macro-dominated blocks the vias sit over the memories while TSVs are
// ousted.
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6Row is one block's F2B-vs-F2F comparison.
type Figure6Row struct {
	Block        string
	F2B, F2F     *FoldCompare
	FootprintPct float64 // F2F vs F2B
	WirelenPct   float64
	PowerPct     float64
	SVGF2B       string
	SVGF2F       string
}

// Figure6 folds L2T (logic+macros) and L2D (macro-dominated) in both bonding
// styles.
func Figure6(ctx context.Context, cfg Config) (*Figure6Result, error) {
	res := &Figure6Result{}
	for _, name := range []string{"L2T0", "L2D0"} {
		fo := core.DefaultFoldOptions()
		fo.Seed = cfg.Seed + 19
		fb, err := foldBlock(ctx, cfg, name, extract.F2B, fo)
		if err != nil {
			return nil, err
		}
		ff, err := foldBlock(ctx, cfg, name, extract.F2F, fo)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure6Row{
			Block:        name,
			F2B:          fb,
			F2F:          ff,
			FootprintPct: pct(ff.R3D.Stats.Footprint, fb.R3D.Stats.Footprint),
			WirelenPct:   pct(ff.R3D.Stats.Wirelength, fb.R3D.Stats.Wirelength),
			PowerPct:     pct(ff.R3D.Power.TotalMW, fb.R3D.Power.TotalMW),
			SVGF2B:       layout.RenderBlockSVG(fb.R3D.Block, netlist.DieBottom),
			SVGF2F:       layout.RenderBlockSVG(ff.R3D.Block, netlist.DieBottom),
		})
	}
	return res, nil
}

// String renders the per-block bonding-style comparison report.
func (r *Figure6Result) String() string {
	var sb strings.Builder
	sb.WriteString("== Figure 6: bonding style impact on folded blocks ==\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s: F2F vs F2B footprint %+.1f%%, WL %+.1f%%, power %+.1f%% (TSVs %d vs F2F vias %d)\n",
			row.Block, row.FootprintPct, row.WirelenPct, row.PowerPct,
			row.F2B.R3D.Stats.NumTSV, row.F2F.R3D.Stats.NumF2F)
	}
	sb.WriteString("paper: F2F shrinks the folded L2T footprint 2.6% and L2D 6.3% further;\n")
	sb.WriteString("paper: same-partition folded L2T with F2F: -11.1% WL, -4.1% power vs F2B\n")
	return sb.String()
}

// Figure7Point is one partition case of the bonding-style power sweep.
type Figure7Point struct {
	Partition int
	Vias      int
	F2BPowerN float64 // normalized to the 2D design
	F2FPowerN float64
}

// Figure7Result is the L2T partition sweep under both bonding styles.
type Figure7Result struct {
	Points []Figure7Point
	// F2FWinsAll reports whether F2F beat F2B in every partition (the
	// paper's first observation).
	F2FWinsAll bool
	// MaxGainPct is the largest F2F-vs-F2B power gain (paper: -16.2% at the
	// densest partition).
	MaxGainPct float64
}

// Figure7 implements five L2T partitions with increasing 3D connection
// counts in both bonding styles and reports power normalized to 2D.
func Figure7(ctx context.Context, cfg Config) (*Figure7Result, error) {
	d, fl, err := blockWithPorts(cfg, "L2T0")
	if err != nil {
		return nil, err
	}
	b := d.Blocks["L2T0"]
	aspect := d.Specs["L2T0"].Aspect
	b2 := b.Clone()
	r2, err := fl.ImplementBlockContext(ctx, b2, aspect)
	if err != nil {
		return nil, err
	}
	base := r2.Power.TotalMW

	res := &Figure7Result{F2FWinsAll: true}
	targets := []int{0, 40, 70, 110, 160} // 0 = plain min-cut
	for i, target := range targets {
		fo := core.DefaultFoldOptions()
		fo.Seed = cfg.Seed + 23
		fo.InflateCutTo = target
		pt := Figure7Point{Partition: i + 1}
		for _, bond := range []extract.Bonding{extract.F2B, extract.F2F} {
			fcfg := cfg.flowCfg()
			fcfg.Bond = bond
			fl3 := flow.New(d, fcfg)
			b3 := b.Clone()
			r3, _, err := fl3.FoldAndImplementContext(ctx, b3, fo, aspect)
			if err != nil {
				return nil, fmt.Errorf("exp: figure7 partition %d %s: %v", i+1, bond, err)
			}
			norm := r3.Power.TotalMW / base
			if bond == extract.F2B {
				pt.F2BPowerN = norm
				pt.Vias = r3.Stats.NumTSV
			} else {
				pt.F2FPowerN = norm
				if r3.Stats.NumF2F > pt.Vias {
					pt.Vias = r3.Stats.NumF2F
				}
			}
		}
		if pt.F2FPowerN > pt.F2BPowerN {
			res.F2FWinsAll = false
		}
		gain := 100 * (pt.F2FPowerN/pt.F2BPowerN - 1)
		if gain < res.MaxGainPct {
			res.MaxGainPct = gain
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the power-breakdown report.
func (r *Figure7Result) String() string {
	var sb strings.Builder
	sb.WriteString("== Figure 7: bonding style impact vs partition (L2T folding) ==\n")
	sb.WriteString("partition  #vias  F2B power (norm to 2D)  F2F power (norm)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "   #%d      %4d        %6.3f               %6.3f\n",
			p.Partition, p.Vias, p.F2BPowerN, p.F2FPowerN)
	}
	fmt.Fprintf(&sb, "F2F wins in every partition: %v; max F2F-vs-F2B gain %.1f%%\n", r.F2FWinsAll, r.MaxGainPct)
	sb.WriteString("paper: F2F wins everywhere; partition #5 gains -16.2% over F2B\n")
	return sb.String()
}

// Figure8Result renders the five full-chip design styles.
type Figure8Result struct {
	Styles    []t2.Style
	Summaries []string
	SVGs      map[string]string // "<style>-die0", "<style>-die1"
}

// Figure8 builds all five styles and renders their layouts with the counts
// the paper prints (footprint, via counts).
func Figure8(ctx context.Context, cfg Config) (*Figure8Result, error) {
	res := &Figure8Result{SVGs: map[string]string{}}
	for _, st := range []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore, t2.StyleFoldF2B, t2.StyleFoldF2F} {
		d, err := t2.Generate(cfg.t2cfg())
		if err != nil {
			return nil, err
		}
		fl := flow.New(d, cfg.flowCfg())
		r, err := fl.BuildChipContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("exp: figure8 %s: %w", st, err)
		}
		res.Styles = append(res.Styles, st)
		res.Summaries = append(res.Summaries, fmt.Sprintf("%s: %s; %.1f mm2, %d inter-TSVs, %d intra vias (paper-eq %d)",
			st, layout.ChipSummary(r.FP), r.Stats.FootprintMM2, r.Stats.TSVInter,
			r.Stats.ViasIntraDrawn, r.Stats.ViasPaperEquiv))
		res.SVGs[fmt.Sprintf("%s-die0", st)] = layout.RenderChipSVG(r.FP, netlist.DieBottom, r.ChipNets)
		if st.Is3D() {
			res.SVGs[fmt.Sprintf("%s-die1", st)] = layout.RenderChipSVG(r.FP, netlist.DieTop, r.ChipNets)
		}
	}
	return res, nil
}

// String renders the chip-level design-style comparison report.
func (r *Figure8Result) String() string {
	var sb strings.Builder
	sb.WriteString("== Figure 8: GDSII layouts of the five design styles ==\n")
	for _, s := range r.Summaries {
		sb.WriteString(s + "\n")
	}
	return sb.String()
}
