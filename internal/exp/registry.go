package exp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"fold3d/internal/flow"
	"fold3d/internal/pipeline"
	"fold3d/internal/pool"
)

// Result is the uniform output of a registered generator: a printable
// report plus named artifact files (layout SVGs, Verilog/DEF/LEF dumps)
// keyed by output basename.
type Result struct {
	Name   string
	Report string
	Files  map[string]string
	// Volatile holds display-only annotations (wall-clock timings and the
	// like) that are printed alongside the report but excluded from every
	// result fingerprint: two runs that differ only in Volatile are the
	// same run.
	Volatile string
}

// Generator is one registered experiment: a table, figure, or ablation.
type Generator struct {
	Name string
	Doc  string
	Run  func(ctx context.Context, cfg Config) (*Result, error)
}

// addFile records an artifact, skipping empty content so callers can
// range over Files without filtering.
func (r *Result) addFile(name, content string) {
	if content == "" {
		return
	}
	if r.Files == nil {
		r.Files = make(map[string]string)
	}
	r.Files[name] = content
}

// generators is the registry in canonical (paper report) order.
var generators = []Generator{
	{"table1", "T2 block inventory and folding candidates", func(ctx context.Context, cfg Config) (*Result, error) {
		return &Result{Report: Table1().String()}, nil
	}},
	{"table2", "2D chip reference implementation per block", func(ctx context.Context, cfg Config) (*Result, error) {
		t, err := Table2(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: t.String()}, nil
	}},
	{"table3", "TSV and F2F via counts per chip style", func(ctx context.Context, cfg Config) (*Result, error) {
		_, report, err := Table3(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: report}, nil
	}},
	{"table4", "folding the L2 data bank (2D vs folded 3D)", func(ctx context.Context, cfg Config) (*Result, error) {
		fc, err := Table4(ctx, cfg)
		if err != nil {
			return nil, err
		}
		report := "== Table 4: folding the L2 data bank ==\n" + fc.String() + "\n" +
			"paper: footprint -48.4%, WL -6.4%, buffers -33.5%, power -5.1% (memory-dominated)\n"
		return &Result{Report: report}, nil
	}},
	{"table5", "full-chip power across all five styles", func(ctx context.Context, cfg Config) (*Result, error) {
		t, err := Table5(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: t.String()}, nil
	}},
	{"fig2", "CCX 2D fragmentation vs folded 3D", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure2(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res := &Result{Report: r.String()}
		res.addFile("fig2-ccx-2d.svg", r.SVG2D)
		res.addFile("fig2-ccx-3d.svg", r.SVG3D)
		return res, nil
	}},
	{"fig3", "SPC second-level vs whole-block folding", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure3(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"fig4", "merged-die netlist handoff artifacts", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure4(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res := &Result{Report: r.String()}
		res.addFile("fig4-merged.v", r.Verilog)
		res.addFile("fig4-merged.def", r.DEF)
		res.addFile("fig4-merged.lef", r.LEF)
		res.addFile("fig4-nets3d.txt", r.Nets3D)
		return res, nil
	}},
	{"fig5", "L2 tag bank under F2F bonding", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure5(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res := &Result{Report: r.String()}
		res.addFile("fig5-l2t-f2f.svg", r.SVG)
		return res, nil
	}},
	{"fig6", "per-block F2B vs F2F folding outcomes", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure6(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res := &Result{Report: r.String()}
		for _, row := range r.Rows {
			res.addFile("fig6-"+row.Block+"-f2b.svg", row.SVGF2B)
			res.addFile("fig6-"+row.Block+"-f2f.svg", row.SVGF2F)
		}
		return res, nil
	}},
	{"fig7", "power breakdown of folded blocks", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure7(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"fig8", "chip-level layouts of all five styles", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := Figure8(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res := &Result{Report: r.String()}
		names := make([]string, 0, len(r.SVGs))
		for name := range r.SVGs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			res.addFile("fig8-"+name+".svg", r.SVGs[name])
		}
		return res, nil
	}},
	{"dualvth", "dual-Vth leakage recovery ablation", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := AblationDualVth(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"macromode", "macro placement mode ablation", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := AblationMacroMode(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"criteria", "folding-criteria gate ablation", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := AblationFoldingCriteria(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"thermal", "steady-state thermal study across styles", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := ThermalStudy(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"coupling", "TSV coupling capacitance ablation", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := AblationTSVCoupling(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"rsmt", "RSMT vs HPWL wirelength model ablation", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := AblationRSMT(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String()}, nil
	}},
	{"headtohead", "placement backends head-to-head across all five styles", func(ctx context.Context, cfg Config) (*Result, error) {
		r, err := HeadToHead(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Report: r.String(), Volatile: r.VolatileString()}, nil
	}},
}

// Generators returns all registered experiments in canonical order. The
// returned slice is a copy; callers may reorder it freely.
func Generators() []Generator {
	out := make([]Generator, len(generators))
	copy(out, generators)
	return out
}

// ByName looks up a registered generator.
func ByName(name string) (Generator, bool) {
	for _, g := range generators {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// RunAll runs the named generators (nil or empty names = all of them),
// fanning out across cfg.Workers via the shared pool. Results come back
// in registry order regardless of completion order, so output is
// deterministic at any worker count. onDone, when non-nil, is invoked
// (serialized) as each generator finishes — its call order is
// scheduler-dependent, the returned slice is not. On error the
// lowest-registry-index failure is returned along with every result
// that did complete (failed or skipped slots are nil).
//
// Configuration and names are validated up front (Config.Validate,
// ValidateNames): a bad scale, negative worker count or unknown experiment
// name fails before any generator runs, with an error wrapping
// errs.ErrBadRequest. Progress callbacks are serialized across the whole
// fan-out — never concurrent, even when several generators run flows at
// once — and each event carries the name of the generator that produced it
// in Progress.Experiment.
func RunAll(ctx context.Context, cfg Config, names []string, onDone func(*Result, error)) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateNames(names); err != nil {
		return nil, err
	}
	var gens []Generator
	if len(names) == 0 {
		gens = Generators()
	} else {
		gens = make([]Generator, 0, len(names))
		for _, name := range names {
			g, _ := ByName(name)
			gens = append(gens, g)
		}
	}
	// One artifact cache across every generator: the tables and figures
	// re-implement the same chips under the same styles over and over
	// (table2's 2D chip is fig8's 2D chip, table3 and table5 rebuild all
	// five styles), so sharing turns those rebuilds into cache restores.
	// Callers wanting cross-RunAll sharing or the disk spill pass their own.
	if cfg.Cache == nil {
		cfg.Cache = pipeline.NewCache(pipeline.CacheOptions{MaxBytes: DefaultCacheBudget})
	}
	// Serialize progress callbacks across generators under one mutex (each
	// flow only serializes its own events; concurrent generators each carry
	// their own flow) and tag every event with its generator name, so a
	// consumer multiplexing the stream — the fold3dd job event feed, the
	// -progress stderr log — can attribute events without guessing.
	user := cfg.Progress
	var pmu sync.Mutex
	progressFor := func(name string) func(flow.Progress) {
		if user == nil {
			return nil
		}
		return func(p flow.Progress) {
			pmu.Lock()
			defer pmu.Unlock()
			p.Experiment = name
			user(p)
		}
	}
	results := make([]*Result, len(gens))
	var mu sync.Mutex
	err := pool.Run(ctx, cfg.Workers, len(gens), func(ctx context.Context, i int) error {
		gcfg := cfg
		gcfg.Progress = progressFor(gens[i].Name)
		r, err := gens[i].Run(ctx, gcfg)
		if err != nil {
			err = fmt.Errorf("exp: %s: %w", gens[i].Name, err)
		} else {
			r.Name = gens[i].Name
			results[i] = r
		}
		if onDone != nil {
			mu.Lock()
			onDone(r, err)
			mu.Unlock()
		}
		return err
	})
	return results, err
}
