// Package exp is the experiment harness: one generator per table and figure
// of the paper's evaluation, each returning a structured result plus a
// formatted report that prints the same rows/series the paper does.
// EXPERIMENTS.md records paper-vs-measured for every entry.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fold3d/internal/core"
	"fold3d/internal/errs"
	"fold3d/internal/extract"
	"fold3d/internal/floorplan"
	"fold3d/internal/flow"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
)

// Config parameterizes every experiment.
type Config struct {
	// Scale is the netlist scale factor (DESIGN.md §6). Default 1000.
	Scale float64
	// Seed drives all randomness; experiments are bit-reproducible.
	Seed uint64
	// Workers bounds intra-chip parallelism of every flow the experiment
	// runs (0 = one worker per CPU, 1 = strictly sequential). Results are
	// byte-identical at any setting; see flow.Config.Workers.
	Workers int
	// Placer selects the placement backend every flow runs: "force" (the
	// paper's placer, the default), "analytical" (the Nesterov bistratal
	// placer), or any future registered backend. Every experiment gains
	// this axis — the same table under a different Placer is a different,
	// comparable measurement. Empty selects place.DefaultBackend. Unknown
	// names fail Validate with an errs.ErrBadOptions-wrapped error naming
	// the valid backends.
	Placer string
	// Progress, when non-nil, receives live flow status events. Callbacks
	// are serialized but their order is scheduler-dependent; results are
	// unaffected.
	Progress func(flow.Progress)
	// Cache, when non-nil, is the shared block-artifact cache handed to
	// every flow the experiments run, so identical block implementations —
	// the same style rebuilt by another experiment, or a style-invariant
	// block — are computed once and restored byte-identically thereafter.
	// RunAll fills this with a fresh in-memory cache when nil; set it
	// explicitly to share across RunAll calls or to enable the disk spill.
	Cache *pipeline.Cache
	// Thermal is the in-loop thermal planning configuration handed to every
	// flow the experiments run (flow.Config.Thermal), and the knob set the
	// thermal experiment family reads for its temperature budget, via budget
	// and hotspot-aware-selection weight. The zero value registers no
	// thermal stage and keeps every fingerprint byte-identical to a
	// thermal-unaware run.
	Thermal flow.ThermalConfig
}

// DefaultCacheBudget is the in-memory artifact-cache bound (bytes) RunAll
// applies to the cache it creates when Config.Cache is nil — the
// memory-budgeted execution mode: old artifacts are evicted past this size
// so a large-scale build's cache cannot grow with the run length. Evictions
// only force recomputation (or a disk-tier read); results stay
// fingerprint-identical. Pass an explicitly configured Cache to choose a
// different bound or run unbounded.
const DefaultCacheBudget int64 = 512 << 20

// DefaultConfig returns the scale and seed the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config { return Config{Scale: 1000, Seed: 42} }

// Validate checks the caller-controlled configuration fields before any
// work starts. Failures wrap errs.ErrBadRequest (and errs.ErrBadOptions,
// the historical sentinel for out-of-range values), so transport layers
// can classify them with errors.Is and map them to client errors.
func (c Config) Validate() error {
	// Negated range form so NaN (every comparison false) is rejected too.
	if c.Scale != 0 && !(c.Scale >= 1 && c.Scale <= t2.MaxScale) {
		return fmt.Errorf("exp: %w: %w: scale must be in [1, %g] (0 selects the default), got %g",
			errs.ErrBadRequest, errs.ErrBadOptions, float64(t2.MaxScale), c.Scale)
	}
	if c.Workers < 0 {
		return fmt.Errorf("exp: %w: %w: workers must be >= 0 (0 selects one per CPU), got %d",
			errs.ErrBadRequest, errs.ErrBadOptions, c.Workers)
	}
	// place.ValidateBackend already wraps errs.ErrBadRequest and
	// errs.ErrBadOptions and names the valid backends; keep that text.
	if err := place.ValidateBackend(c.Placer); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	// flow.ThermalConfig.Validate already wraps errs.ErrBadRequest and
	// errs.ErrBadOptions naming the field; keep that text too.
	if err := c.Thermal.Validate(); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	return nil
}

// ValidateNames checks that every name is a registered experiment. The
// first unknown name is reported wrapping both errs.ErrBadRequest and
// errs.ErrUnknownExperiment, so callers can classify the failure at either
// granularity. A nil or empty list (meaning "all experiments") is valid.
func ValidateNames(names []string) error {
	for _, name := range names {
		if _, ok := ByName(name); !ok {
			return fmt.Errorf("exp: %w: %w: no experiment %q",
				errs.ErrBadRequest, errs.ErrUnknownExperiment, name)
		}
	}
	return nil
}

// flowCfg returns the flow defaults carrying the experiment-level
// parallelism and progress settings.
func (c Config) flowCfg() flow.Config {
	fc := flow.DefaultConfig()
	fc.Placer = c.Placer
	if fc.Placer == "" {
		fc.Placer = place.DefaultBackend
	}
	fc.Workers = c.Workers
	fc.Progress = c.Progress
	fc.Cache = c.Cache
	fc.Thermal = c.Thermal
	return fc
}

func (c Config) t2cfg(only ...string) t2.Config {
	if c.Scale == 0 {
		c = DefaultConfig()
	}
	return t2.Config{Scale: c.Scale, Seed: c.Seed, Only: only}
}

// pct returns the percent difference of a versus the reference b.
func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// blockWithPorts generates the named blocks and attaches their chip-level
// ports using the 2D floorplan geometry (virtual partners for absent
// blocks), so standalone block experiments see the same boundary pulls as
// the full chip — the effect behind the paper's fragmented 2D CCX (§4.3).
func blockWithPorts(cfg Config, names ...string) (*t2.Design, *flow.Flow, error) {
	d, err := t2.Generate(cfg.t2cfg(names...))
	if err != nil {
		return nil, nil, err
	}
	fl := flow.New(d, cfg.flowCfg())
	shapes := make(map[string]floorplan.Shape, len(d.Specs))
	for name, spec := range d.Specs {
		w, h := fl.EstimateShape(spec, 1)
		shapes[name] = floorplan.Shape{Name: name, W: w, H: h}
	}
	fp, err := floorplan.RowPlan(shapes, t2.Rows(t2.Style2D), 4)
	if err != nil {
		return nil, nil, err
	}
	chipNets, err := floorplan.AssignPorts(d.Blocks, fp, d.DrawnBundles())
	if err != nil {
		return nil, nil, err
	}
	if err := d.ConnectPorts(chipNets); err != nil {
		return nil, nil, err
	}
	return d, fl, nil
}

// Row is one generic metric row of a comparison table.
type Row struct {
	Metric string
	Values []float64
	// Diffs holds percent differences against the first value (one per
	// additional column); NaN-free, zero when absent.
	Diffs []float64
	// Unit annotates the metric.
	Unit string
}

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Add appends a metric row, computing diffs against the first column.
func (t *Table) Add(metric, unit string, values ...float64) {
	r := Row{Metric: metric, Unit: unit, Values: values}
	for _, v := range values[1:] {
		r.Diffs = append(r.Diffs, pct(v, values[0]))
	}
	t.Rows = append(t.Rows, r)
}

// Get returns the values of a metric row.
func (t *Table) Get(metric string) ([]float64, bool) {
	for _, r := range t.Rows {
		if r.Metric == metric {
			return r.Values, true
		}
	}
	return nil, false
}

// Diff returns the percent difference of column col (1-based among the
// non-reference columns) for a metric.
func (t *Table) Diff(metric string, col int) (float64, bool) {
	for _, r := range t.Rows {
		if r.Metric == metric && col-1 < len(r.Diffs) {
			return r.Diffs[col-1], true
		}
	}
	return 0, false
}

// String renders the table with its title, header and aligned rows.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	fmt.Fprintf(&sb, "%-24s", "metric")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-24s", r.Metric+" "+r.Unit)
		for i, v := range r.Values {
			if i == 0 {
				fmt.Fprintf(&sb, " %16.3f", v)
			} else {
				fmt.Fprintf(&sb, " %8.3f(%+.1f%%)", v, r.Diffs[i-1])
			}
		}
		sb.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Table1 prints the 3D interconnect settings (paper Table 1) straight from
// the technology models.
func Table1() *Table {
	lib := tech.NewLibrary()
	t := &Table{
		Title:   "Table 1: 3D interconnect settings",
		Columns: []string{"TSV", "F2F via"},
	}
	t.Add("diameter", "um", lib.TSV.Diameter, lib.F2F.Diameter)
	t.Add("height", "um", lib.TSV.Height, lib.F2F.Height)
	t.Add("pitch", "um", lib.TSV.Pitch, lib.F2F.Pitch)
	t.Add("R", "Ohm", lib.TSV.ROhm, lib.F2F.ROhm)
	t.Add("C", "fF", lib.TSV.CfF, lib.F2F.CfF)
	return t
}

// chipTable converts chip results into a paper-style comparison table.
func chipTable(title string, cols []string, rs []*flow.ChipResult) *Table {
	t := &Table{Title: title, Columns: cols}
	vals := func(f func(*flow.ChipResult) float64) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = f(r)
		}
		return out
	}
	t.Add("footprint", "mm2", vals(func(r *flow.ChipResult) float64 { return r.Stats.FootprintMM2 })...)
	t.Add("cells", "x1e3", vals(func(r *flow.ChipResult) float64 { return float64(r.Stats.NumCells) / 1e3 })...)
	t.Add("buffers", "x1e3", vals(func(r *flow.ChipResult) float64 { return float64(r.Stats.NumBuffers) / 1e3 })...)
	t.Add("wirelength", "m", vals(func(r *flow.ChipResult) float64 { return r.Stats.WirelengthM })...)
	t.Add("total power", "W", vals(func(r *flow.ChipResult) float64 { return r.Power.TotalMW / 1e3 })...)
	t.Add("cell power", "W", vals(func(r *flow.ChipResult) float64 { return r.Power.CellMW / 1e3 })...)
	t.Add("net power", "W", vals(func(r *flow.ChipResult) float64 { return r.Power.NetMW / 1e3 })...)
	t.Add("leakage power", "W", vals(func(r *flow.ChipResult) float64 { return r.Power.LeakageMW / 1e3 })...)
	t.Add("HVT fraction", "%", vals(func(r *flow.ChipResult) float64 {
		if r.Stats.NumCells == 0 {
			return 0
		}
		return 100 * float64(r.Stats.NumHVT) / float64(r.Stats.NumCells)
	})...)
	t.Add("3D vias (paper-eq)", "", vals(func(r *flow.ChipResult) float64 { return float64(r.Stats.ViasPaperEquiv) })...)
	return t
}

// Table2 reproduces the 2D vs 3D block-level comparison (paper Table 2):
// all three full-chip styles at 500MHz with the RVT-only library.
func Table2(ctx context.Context, cfg Config) (*Table, error) {
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore}
	var rs []*flow.ChipResult
	for _, st := range styles {
		d, err := t2.Generate(cfg.t2cfg())
		if err != nil {
			return nil, err
		}
		fl := flow.New(d, cfg.flowCfg())
		r, err := fl.BuildChipContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("exp: table2 %s: %v", st, err)
		}
		rs = append(rs, r)
	}
	t := chipTable("Table 2: 2D vs 3D block-level designs (RVT, 500MHz)",
		[]string{"2D", "core/cache", "core/core"}, rs)
	t.Notes = append(t.Notes, "paper: footprint -46.0%, buffers -16.3/-15.2%, WL -5.0/-5.4%, power -10.3/-9.1%")
	return t, nil
}

// Table3Row is one block profile of the folding-candidate table.
type Table3Row struct {
	Block           string
	TotalPowerPct   float64
	NetPowerPct     float64
	LongWires       int
	Clock           string
	Copies          int
	FoldedInPaper   bool
	PassAllCriteria bool
}

// Table3 reproduces the folding-candidate selection profile (paper Table 3)
// from the implemented 2D design, and runs the §4.1 criteria over it.
func Table3(ctx context.Context, cfg Config) ([]Table3Row, string, error) {
	d, err := t2.Generate(cfg.t2cfg())
	if err != nil {
		return nil, "", err
	}
	fl := flow.New(d, cfg.flowCfg())
	r, err := fl.BuildChipContext(ctx, t2.Style2D)
	if err != nil {
		return nil, "", err
	}

	// One profile per block type (averaging copies like the paper).
	type acc struct {
		total, net float64
		long       int
		n          int
		clock      tech.ClockDomain
	}
	byType := map[string]*acc{}
	typeOf := func(name string) string {
		for _, p := range []string{"SPC", "L2D", "L2T", "L2B", "MCU"} {
			if strings.HasPrefix(name, p) {
				return p
			}
		}
		return name
	}
	// Sum in sorted block order: float += over map iteration order would
	// vary the totals' last bits run to run.
	blockNames := make([]string, 0, len(r.Blocks))
	for name := range r.Blocks {
		blockNames = append(blockNames, name)
	}
	sort.Strings(blockNames)
	var system float64
	for _, name := range blockNames {
		br := r.Blocks[name]
		ty := typeOf(name)
		a := byType[ty]
		if a == nil {
			a = &acc{clock: d.Specs[name].Clock}
			byType[ty] = a
		}
		a.total += br.Power.TotalMW
		a.net += br.Power.NetMW
		a.long += br.Stats.NumLongWire
		a.n++
		system += br.Power.TotalMW
	}

	// Iterate block types in sorted order: profile order reaches
	// core.Score's ranking and must not depend on map iteration.
	types := make([]string, 0, len(byType))
	for ty := range byType {
		types = append(types, ty)
	}
	sort.Strings(types)
	var profiles []core.BlockProfile
	for _, ty := range types {
		a := byType[ty]
		profiles = append(profiles, core.BlockProfile{
			Name:         ty,
			Copies:       a.n,
			TotalPowerMW: a.total / float64(a.n),
			NetPowerMW:   a.net / float64(a.n),
			LongWires:    a.long / a.n,
		})
	}
	sel := core.Score(profiles, system, core.DefaultCriteria())

	folded := map[string]bool{"SPC": true, "CCX": true, "L2D": true, "L2T": true, "MAC": true}
	var rows []Table3Row
	var sb strings.Builder
	sb.WriteString("== Table 3: block folding candidate profile (2D design) ==\n")
	sb.WriteString("block   power%  netpwr%  longwires  clock  copies  criteria\n")
	for _, s := range sel {
		a := byType[s.Profile.Name]
		row := Table3Row{
			Block:           s.Profile.Name,
			TotalPowerPct:   100 * s.TotalPowerPortion,
			NetPowerPct:     100 * s.Profile.NetPowerPortion(),
			LongWires:       s.Profile.LongWires,
			Clock:           a.clock.String(),
			Copies:          s.Profile.Copies,
			FoldedInPaper:   folded[s.Profile.Name],
			PassAllCriteria: s.Selected(),
		}
		rows = append(rows, row)
		mark := ""
		if row.FoldedInPaper {
			mark = " <- folded in paper"
		}
		fmt.Fprintf(&sb, "%-6s %6.1f%% %7.1f%% %9d  %-5s %6d  %v%s\n",
			row.Block, row.TotalPowerPct, row.NetPowerPct, row.LongWires,
			row.Clock, row.Copies, row.PassAllCriteria, mark)
	}
	return rows, sb.String(), nil
}

// FoldCompare holds a 2D-vs-folded block comparison (Tables 4, Figures 2-3).
type FoldCompare struct {
	Block    string
	Bond     extract.Bonding
	R2D, R3D *flow.BlockResult
	Fold     *core.FoldResult
	// Percent differences, 3D against 2D.
	FootprintPct, WirelengthPct, BuffersPct, PowerPct float64
}

func (fc *FoldCompare) fill() {
	fc.FootprintPct = pct(fc.R3D.Stats.Footprint, fc.R2D.Stats.Footprint)
	fc.WirelengthPct = pct(fc.R3D.Stats.Wirelength, fc.R2D.Stats.Wirelength)
	fc.BuffersPct = pct(float64(fc.R3D.Stats.NumBuffers), float64(fc.R2D.Stats.NumBuffers))
	fc.PowerPct = pct(fc.R3D.Power.TotalMW, fc.R2D.Power.TotalMW)
}

// String renders the 2D-versus-folded comparison rows.
func (fc *FoldCompare) String() string {
	return fmt.Sprintf("%s fold (%s): footprint %+.1f%%, wirelength %+.1f%%, buffers %+.1f%%, power %+.1f%% (vias: %d TSV / %d F2F)",
		fc.Block, fc.Bond, fc.FootprintPct, fc.WirelengthPct, fc.BuffersPct, fc.PowerPct,
		fc.R3D.Stats.NumTSV, fc.R3D.Stats.NumF2F)
}

// foldBlock implements one block 2D and folded under the given bond/options
// and returns the comparison.
func foldBlock(ctx context.Context, cfg Config, name string, bond extract.Bonding, fo core.FoldOptions) (*FoldCompare, error) {
	d, fl, err := blockWithPorts(cfg, name)
	if err != nil {
		return nil, err
	}
	b := d.Blocks[name]
	aspect := d.Specs[name].Aspect

	b2 := b.Clone()
	r2, err := fl.ImplementBlockContext(ctx, b2, aspect)
	if err != nil {
		return nil, fmt.Errorf("exp: 2D %s: %v", name, err)
	}

	fcfg := cfg.flowCfg()
	fcfg.Bond = bond
	fl3 := flow.New(d, fcfg)
	b3 := b.Clone()
	r3, fr, err := fl3.FoldAndImplementContext(ctx, b3, fo, aspect)
	if err != nil {
		return nil, fmt.Errorf("exp: folding %s: %v", name, err)
	}
	fc := &FoldCompare{Block: name, Bond: bond, R2D: r2, R3D: r3, Fold: fr}
	fc.fill()
	return fc, nil
}

// Table4 reproduces the L2D (memory-dominated) folding comparison (paper
// Table 4): two memory sub-banks land on each die with their logic; the
// footprint halves but the power saving is small because the macros
// dominate.
func Table4(ctx context.Context, cfg Config) (*FoldCompare, error) {
	fo := core.FoldOptions{
		Mode: core.FoldNatural,
		GroupDie: map[string]int{
			"bank0": 0, "bank1": 0, "bank2": 1, "bank3": 1,
		},
		Seed: cfg.Seed + 7,
	}
	return foldBlock(ctx, cfg, "L2D0", extract.F2B, fo)
}

// Table5 reproduces the full-chip dual-Vth comparison (paper Table 5):
// 2D vs 3D without folding (core/cache, F2B) vs 3D with folding (F2F).
func Table5(ctx context.Context, cfg Config) (*Table, error) {
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleFoldF2F}
	var rs []*flow.ChipResult
	for _, st := range styles {
		d, err := t2.Generate(cfg.t2cfg())
		if err != nil {
			return nil, err
		}
		fcfg := cfg.flowCfg()
		fcfg.UseHVT = true
		fl := flow.New(d, fcfg)
		r, err := fl.BuildChipContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("exp: table5 %s: %v", st, err)
		}
		rs = append(rs, r)
	}
	t := chipTable("Table 5: full chip with dual-Vth (2D vs 3D w/o folding vs 3D w/ folding)",
		[]string{"2D", "3D w/o fold", "3D w/ fold"}, rs)
	t.Notes = append(t.Notes,
		"paper: total power -13.7% (3D w/o fold) and -20.3% (3D w/ fold) vs 2D; HVT 87.8/90.0/94.0%")
	return t, nil
}
