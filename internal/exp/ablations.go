package exp

import (
	"context"
	"fmt"
	"strings"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/flow"
	"fold3d/internal/place"
	"fold3d/internal/t2"
)

// MacroModeResult is the §4.2 ablation: hard macros as supply/demand holes
// (the paper's method) versus demand-reduction (the Kraftwerk2-style tactic
// the paper found insufficient for very large macros).
type MacroModeResult struct {
	Block string
	// Legalization displacement: demand-reduction leaves cells on macros
	// that legalization must evict far away (halos).
	HoleDispUm, DemandDispUm float64
	HoleWLUm, DemandWLUm     float64
	HolePowerMW, DemandPower float64
}

// AblationMacroMode places the macro-dominated L2D with both macro policies.
func AblationMacroMode(ctx context.Context, cfg Config) (*MacroModeResult, error) {
	res := &MacroModeResult{Block: "L2D0"}
	for _, mode := range []place.MacroMode{place.MacroHoles, place.MacroDemand} {
		d, _, err := blockWithPorts(cfg, "L2D0")
		if err != nil {
			return nil, err
		}
		fcfg := cfg.flowCfg()
		fcfg.Place.Macro = mode
		fl := flow.New(d, fcfg)
		b := d.Blocks["L2D0"].Clone()
		r, err := fl.ImplementBlockContext(ctx, b, d.Specs["L2D0"].Aspect)
		if err != nil {
			return nil, fmt.Errorf("exp: macro mode %d: %v", mode, err)
		}
		// The placer is internal to the flow; re-legalize to measure the
		// displacement a fresh legalization would need from the global
		// positions (proxy for halo pressure).
		p := place.New(fcfg.Place)
		if err := p.LegalizeAll(b); err != nil {
			return nil, err
		}
		disp := p.LastLegal().TotalDisp
		if mode == place.MacroHoles {
			res.HoleDispUm = disp
			res.HoleWLUm = r.Stats.Wirelength
			res.HolePowerMW = r.Power.TotalMW
		} else {
			res.DemandDispUm = disp
			res.DemandWLUm = r.Stats.Wirelength
			res.DemandPower = r.Power.TotalMW
		}
	}
	return res, nil
}

// String renders the macro-handling ablation report.
func (r *MacroModeResult) String() string {
	return fmt.Sprintf(`== Ablation: macro holes vs demand-reduction in the 3D placer (%s) ==
supply/demand holes (paper): legalization displacement %8.1f um, WL %8.1f um, power %8.1f mW
demand-reduction  (Kraftwerk2-style): displacement %8.1f um, WL %8.1f um, power %8.1f mW
paper: demand-reduction still leaves whitespace halos around very large macros`,
		r.Block, r.HoleDispUm, r.HoleWLUm, r.HolePowerMW,
		r.DemandDispUm, r.DemandWLUm, r.DemandPower)
}

// CriteriaAblationResult folds a block that fails the §4.1 criteria (the
// macro-dominated, low-net-power L2B) and contrasts its saving with a block
// that passes (CCX), demonstrating why the selection criteria matter.
type CriteriaAblationResult struct {
	FailingBlock  string
	FailingGain   float64 // power % vs 2D (negative = saving)
	PassingBlock  string
	PassingGain   float64
	CriteriaAgree bool
}

// AblationFoldingCriteria quantifies the value of the folding criteria.
func AblationFoldingCriteria(ctx context.Context, cfg Config) (*CriteriaAblationResult, error) {
	fo := core.DefaultFoldOptions()
	fo.Seed = cfg.Seed + 29
	fail, err := foldBlock(ctx, cfg, "L2B0", extract.F2F, fo)
	if err != nil {
		return nil, err
	}
	pass, err := foldBlock(ctx, cfg, "CCX", extract.F2F, core.FoldOptions{
		Mode:     core.FoldNatural,
		GroupDie: map[string]int{"pcx": 0, "cpx": 1},
		Seed:     cfg.Seed + 29,
	})
	if err != nil {
		return nil, err
	}
	return &CriteriaAblationResult{
		FailingBlock:  "L2B0",
		FailingGain:   fail.PowerPct,
		PassingBlock:  "CCX",
		PassingGain:   pass.PowerPct,
		CriteriaAgree: pass.PowerPct < fail.PowerPct,
	}, nil
}

// String renders the folding-criteria ablation report.
func (r *CriteriaAblationResult) String() string {
	return fmt.Sprintf(`== Ablation: folding criteria (fold a rejected block anyway) ==
%s (fails criteria): power %+.1f%% vs 2D when folded
%s (passes criteria): power %+.1f%% vs 2D when folded
criteria ranking confirmed: %v`,
		r.FailingBlock, r.FailingGain, r.PassingBlock, r.PassingGain, r.CriteriaAgree)
}

// DualVthResult is the §6.2 study: RVT-only versus dual-Vth per design
// style.
type DualVthResult struct {
	Rows []DualVthRow
}

// DualVthRow is one style's RVT/DVT comparison.
type DualVthRow struct {
	Style     t2.Style
	RVTPowerW float64
	DVTPowerW float64
	SavingPct float64
	HVTPct    float64
}

// AblationDualVth measures the dual-Vth saving on the 2D chip and the
// folded-F2F chip (paper: 9.5% and 11.4% — 3D benefits more because its
// extra slack converts to more HVT cells).
func AblationDualVth(ctx context.Context, cfg Config) (*DualVthResult, error) {
	res := &DualVthResult{}
	for _, st := range []t2.Style{t2.Style2D, t2.StyleFoldF2F} {
		row := DualVthRow{Style: st}
		for _, hvt := range []bool{false, true} {
			d, err := t2.Generate(cfg.t2cfg())
			if err != nil {
				return nil, err
			}
			fcfg := cfg.flowCfg()
			fcfg.UseHVT = hvt
			fl := flow.New(d, fcfg)
			r, err := fl.BuildChipContext(ctx, st)
			if err != nil {
				return nil, fmt.Errorf("exp: dualvth %s: %v", st, err)
			}
			if hvt {
				row.DVTPowerW = r.Power.TotalMW / 1e3
				row.HVTPct = 100 * float64(r.Stats.NumHVT) / float64(r.Stats.NumCells)
			} else {
				row.RVTPowerW = r.Power.TotalMW / 1e3
			}
		}
		row.SavingPct = pct(row.DVTPowerW, row.RVTPowerW)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the dual-Vth ablation report.
func (r *DualVthResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Dual-Vth ablation (paper §6.2) ==\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s RVT %6.2f W -> DVT %6.2f W (%+.1f%%), HVT cells %.1f%%\n",
			row.Style, row.RVTPowerW, row.DVTPowerW, row.SavingPct, row.HVTPct)
	}
	sb.WriteString("paper: DVT saves 9.5% on 2D and 11.4% on the folded 3D design\n")
	return sb.String()
}

// TSVCouplingResult is the §7 future-work parasitics study: the power cost
// of TSV-to-wire coupling capacitance on a TSV-dense folded block.
type TSVCouplingResult struct {
	Block    string
	PowerMW  [2]float64 // without, with coupling
	PowerPct float64    // with vs without
	TSVs     int
}

// AblationTSVCoupling folds the L2T with a dense partition under F2B and
// measures the extra power once each wire near a TSV body pays its sidewall
// coupling.
func AblationTSVCoupling(ctx context.Context, cfg Config) (*TSVCouplingResult, error) {
	res := &TSVCouplingResult{Block: "L2T0"}
	for i, coupling := range []bool{false, true} {
		d, _, err := blockWithPorts(cfg, "L2T0")
		if err != nil {
			return nil, err
		}
		fcfg := cfg.flowCfg()
		fcfg.Bond = extract.F2B
		fcfg.TSVCoupling = coupling
		fl := flow.New(d, fcfg)
		b := d.Blocks["L2T0"].Clone()
		fo := core.DefaultFoldOptions()
		fo.Seed = cfg.Seed + 31
		fo.InflateCutTo = 60
		r, _, err := fl.FoldAndImplementContext(ctx, b, fo, d.Specs["L2T0"].Aspect)
		if err != nil {
			return nil, err
		}
		res.PowerMW[i] = r.Power.TotalMW
		res.TSVs = b.NumTSV
	}
	res.PowerPct = pct(res.PowerMW[1], res.PowerMW[0])
	return res, nil
}

// String renders the TSV-coupling ablation report.
func (r *TSVCouplingResult) String() string {
	return fmt.Sprintf(`== Ablation: TSV-to-wire coupling capacitance (paper §7 future work) ==
%s folded with %d TSVs: power %.1f mW -> %.1f mW with coupling (%+.2f%%)
the coupling penalty is one of the paper's named "sources of 3D power benefit loss"`,
		r.Block, r.TSVs, r.PowerMW[0], r.PowerMW[1], r.PowerPct)
}

// RSMTResult compares statistical wirelength estimation (HPWL with the
// empirical Steiner correction) against real rectilinear Steiner trees.
type RSMTResult struct {
	Block                  string
	StatWLUm, RSMTWLUm     float64
	WirelenPct, PowerPct   float64
	StatPowerMW, RSMTPower float64
}

// AblationRSMT implements the L2T both ways and reports the estimator gap.
func AblationRSMT(ctx context.Context, cfg Config) (*RSMTResult, error) {
	res := &RSMTResult{Block: "L2T0"}
	for _, rsmt := range []bool{false, true} {
		d, _, err := blockWithPorts(cfg, "L2T0")
		if err != nil {
			return nil, err
		}
		fcfg := cfg.flowCfg()
		fcfg.UseRSMT = rsmt
		fl := flow.New(d, fcfg)
		b := d.Blocks["L2T0"].Clone()
		r, err := fl.ImplementBlockContext(ctx, b, d.Specs["L2T0"].Aspect)
		if err != nil {
			return nil, err
		}
		if rsmt {
			res.RSMTWLUm = r.Stats.Wirelength
			res.RSMTPower = r.Power.TotalMW
		} else {
			res.StatWLUm = r.Stats.Wirelength
			res.StatPowerMW = r.Power.TotalMW
		}
	}
	res.WirelenPct = pct(res.RSMTWLUm, res.StatWLUm)
	res.PowerPct = pct(res.RSMTPower, res.StatPowerMW)
	return res, nil
}

// String renders the Steiner-tree extraction ablation report.
func (r *RSMTResult) String() string {
	return fmt.Sprintf(`== Ablation: statistical vs rectilinear-Steiner wirelength (%s) ==
statistical estimate: %8.1f um, %8.1f mW
RSMT estimate:        %8.1f um (%+.1f%%), %8.1f mW (%+.1f%%)`,
		r.Block, r.StatWLUm, r.StatPowerMW, r.RSMTWLUm, r.WirelenPct, r.RSMTPower, r.PowerPct)
}
