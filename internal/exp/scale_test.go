package exp

import (
	"context"
	"testing"

	"fold3d/internal/core"
	"fold3d/internal/extract"
)

// TestScaleConsistency checks the scale-model contract (DESIGN.md §6): the
// percentage deltas that the study reports must hold up when the netlist
// scale changes, within the model's validity floor — blocks need a few
// hundred drawn cells for the layout statistics to be meaningful, so scales
// beyond ~1000 (CCX below ~340 cells) are outside the contract. The CCX
// natural fold is the sharpest probe — its 4-TSV cut is structural, so only
// the statistics move.
func TestScaleConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale sweep")
	}
	fo := core.FoldOptions{
		Mode:     core.FoldNatural,
		GroupDie: map[string]int{"pcx": 0, "cpx": 1},
		Seed:     7,
	}
	type point struct {
		scale    float64
		powerPct float64
		footPct  float64
		tsvs     int
	}
	var pts []point
	for _, scale := range []float64{1000, 500, 250} {
		cfg := Config{Scale: scale, Seed: 7}
		fc, err := foldBlock(context.Background(), cfg, "CCX", extract.F2B, fo)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		pts = append(pts, point{scale, fc.PowerPct, fc.FootprintPct, fc.R3D.Stats.NumTSV})
	}
	for _, p := range pts {
		t.Logf("scale %5.0f: power %+.1f%%, footprint %+.1f%%, TSVs %d", p.scale, p.powerPct, p.footPct, p.tsvs)
		// The fold must save power and halve the footprint at every scale.
		if p.powerPct > -5 {
			t.Errorf("scale %v: fold power benefit collapsed (%+.1f%%)", p.scale, p.powerPct)
		}
		if p.footPct > -30 {
			t.Errorf("scale %v: fold footprint benefit collapsed (%+.1f%%)", p.scale, p.footPct)
		}
		// The natural cut stays structural (clock/test signals only).
		if p.tsvs > 10 {
			t.Errorf("scale %v: natural fold needed %d TSVs", p.scale, p.tsvs)
		}
	}
}
