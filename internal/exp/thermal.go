package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fold3d/internal/extract"
	"fold3d/internal/flow"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
	"fold3d/internal/thermal"
)

// ThermalRow is one design style's thermal outcome.
type ThermalRow struct {
	Style      t2.Style
	TMaxC      float64
	TAvgC      float64
	TMaxPerDie [2]float64
	PowerW     float64
}

// ThermalResult is the future-work study the paper's §7 sketches: thermal
// behaviour of the design styles under the two bonding styles.
type ThermalResult struct {
	Rows []ThermalRow
}

// ThermalStudy builds the 2D chip, the core/cache stack and both folded
// stacks, and solves each one's steady-state temperature field. The
// expected story: stacking concentrates the same power in half the
// footprint, so every 3D style runs hotter than 2D despite burning less
// power; vertical coupling decides the rest — the F2F fold's full-face
// metal bond beats the F2B fold's adhesive bond with sparse TSVs.
func ThermalStudy(ctx context.Context, cfg Config) (*ThermalResult, error) {
	res := &ThermalResult{}
	for _, st := range []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleFoldF2B, t2.StyleFoldF2F} {
		d, err := t2.Generate(cfg.t2cfg())
		if err != nil {
			return nil, err
		}
		fl := flow.New(d, cfg.flowCfg())
		r, err := fl.BuildChipContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("exp: thermal %s: %w", st, err)
		}
		// Tile order feeds the solver's float accumulation; iterate block
		// names sorted so the temperature field is bit-reproducible.
		names := make([]string, 0, len(r.Blocks))
		for name := range r.Blocks {
			names = append(names, name)
		}
		sort.Strings(names)
		var tiles []thermal.ChipPowerTile
		for _, name := range names {
			p, err := r.FP.Find(name)
			if err != nil {
				return nil, err
			}
			tiles = append(tiles, thermal.ChipPowerTile{
				Rect:    p.Rect,
				Die:     p.Die,
				Both:    p.Both,
				PowerMW: r.Blocks[name].Power.TotalMW,
			})
		}
		dies := 1
		if st.Is3D() {
			dies = 2
		}
		bond := extract.F2B
		if st == t2.StyleFoldF2F {
			bond = extract.F2F
		}
		sm, err := tech.NewScaleModel(cfg.t2cfg().Scale)
		if err != nil {
			return nil, err
		}
		tr, err := thermal.AnalyzeChip(r.FP.Outline, tiles, dies, bond,
			r.Stats.ViasPaperEquiv, sm, thermal.DefaultParams())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ThermalRow{
			Style:      st,
			TMaxC:      tr.TMaxC,
			TAvgC:      tr.TAvgC,
			TMaxPerDie: tr.TMaxPerDie,
			PowerW:     r.Power.TotalMW / 1e3,
		})
	}
	return res, nil
}

// String renders the thermal study rows.
func (r *ThermalResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Thermal study (paper §7 future work) ==\n")
	sb.WriteString("style        power W   Tmax C   Tavg C   Tmax bot/top\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-11s %8.2f %8.2f %8.2f   %.1f / %.1f\n",
			row.Style, row.PowerW, row.TMaxC, row.TAvgC, row.TMaxPerDie[0], row.TMaxPerDie[1])
	}
	sb.WriteString("expected: every stack runs hotter than 2D at lower power (double power density);\n")
	sb.WriteString("the F2F fold's full-face metal bond couples the tiers to the sink better than\n")
	sb.WriteString("the F2B fold's adhesive bond with sparse TSV thermal paths\n")
	return sb.String()
}
