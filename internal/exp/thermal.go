package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"fold3d/internal/core"
	"fold3d/internal/extract"
	"fold3d/internal/flow"
	"fold3d/internal/geom"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
	"fold3d/internal/thermal"
)

// DefaultChipThermalViaBudget bounds the chip-level thermal vias the study
// inserts per F2B-bonded style when Config.Thermal.ViaBudget is zero. The
// chip budget is larger than the per-block flow budget because one study
// pass covers the whole eight-core floorplan.
const DefaultChipThermalViaBudget = 200

// defaultTempWeightPerC is the hotspot-aware-selection weight the study
// demonstrates with when Config.Thermal.TempWeightPerC is zero: +2% on the
// required power portion per °C above ambient.
const defaultTempWeightPerC = 0.02

// ThermalRow is one design style's thermal outcome, before and after
// chip-level thermal-via insertion.
type ThermalRow struct {
	Style      t2.Style
	Bond       extract.Bonding
	PowerW     float64
	TMaxC      float64
	TAvgC      float64
	TMaxPerDie [2]float64
	// ViasAdded is the number of thermal vias the greedy hotspot pass
	// inserted; zero for 2D and for the F2F fold (its full-face metal bond
	// already couples the tiers, so dummy TSVs have nothing to add).
	ViasAdded int
	// TMaxViasC / TAvgViasC are the field summary after via insertion; they
	// repeat TMaxC / TAvgC when ViasAdded is zero.
	TMaxViasC float64
	TAvgViasC float64
	// Melts reports TMaxViasC above the temperature budget; always false
	// when no budget is configured.
	Melts bool
}

// ThermalSelRow is one block of the hotspot-aware folding-selection demo:
// the 2D chip's predicted block temperature raises the folding bar for hot
// blocks (core.Criteria.TempWeightPerC).
type ThermalSelRow struct {
	Block         string
	PeakTempC     float64
	PowerPct      float64
	MinPortionPct float64
	Selected      bool
	// SelectedCold is the temperature-blind verdict; a true->false change
	// means the thermal weight vetoed the fold.
	SelectedCold bool
}

// ThermalResult is the thermal study: temperature across the five design
// styles under their bonding styles, thermal-via mitigation, an optional
// "will it melt" verdict, and the hotspot-aware selection demo.
type ThermalResult struct {
	Rows []ThermalRow
	// TMaxBudgetC echoes the configured budget (0 = no melt verdict).
	TMaxBudgetC float64
	// TempWeightPerC is the selection weight the demo used.
	TempWeightPerC float64
	Sel            []ThermalSelRow
}

// ThermalStudy builds all five design styles and solves each one's
// steady-state temperature field with the multigrid engine. The expected
// story: stacking concentrates the same power in half the footprint, so
// every 3D style runs hotter than 2D despite burning less power; vertical
// coupling decides the rest — the F2F fold's full-face metal bond beats the
// F2B styles' adhesive bond with sparse TSVs. For the F2B-bonded stacks the
// study then inserts dummy-TSV thermal vias greedily at the hottest tiles
// (folding each pad's conductance into the operator and re-solving
// incrementally) to show how far thermal TSVs close that gap.
func ThermalStudy(ctx context.Context, cfg Config) (*ThermalResult, error) {
	params := cfg.Thermal.Params
	if params == (thermal.Params{}) {
		params = thermal.DefaultParams()
	}
	viaBudget := cfg.Thermal.ViaBudget
	if viaBudget == 0 {
		viaBudget = DefaultChipThermalViaBudget
	}
	weight := cfg.Thermal.TempWeightPerC
	if weight == 0 {
		weight = defaultTempWeightPerC
	}
	res := &ThermalResult{TMaxBudgetC: cfg.Thermal.TMaxBudgetC, TempWeightPerC: weight}

	sm, err := tech.NewScaleModel(cfg.t2cfg().Scale)
	if err != nil {
		return nil, err
	}
	eng := thermal.NewEngine()
	styles := []t2.Style{t2.Style2D, t2.StyleCoreCache, t2.StyleCoreCore, t2.StyleFoldF2B, t2.StyleFoldF2F}
	for _, st := range styles {
		d, err := t2.Generate(cfg.t2cfg())
		if err != nil {
			return nil, err
		}
		fl := flow.New(d, cfg.flowCfg())
		r, err := fl.BuildChipContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("exp: thermal %s: %w", st, err)
		}
		// Tile order feeds the solver's float accumulation; iterate block
		// names sorted so the temperature field is bit-reproducible.
		names := make([]string, 0, len(r.Blocks))
		for name := range r.Blocks {
			names = append(names, name)
		}
		sort.Strings(names)
		var tiles []thermal.ChipPowerTile
		for _, name := range names {
			p, err := r.FP.Find(name)
			if err != nil {
				return nil, err
			}
			tiles = append(tiles, thermal.ChipPowerTile{
				Rect:    p.Rect,
				Die:     p.Die,
				Both:    p.Both,
				PowerMW: r.Blocks[name].Power.TotalMW,
			})
		}
		dies := 1
		if st.Is3D() {
			dies = 2
		}
		bond := extract.F2B
		if st == t2.StyleFoldF2F {
			bond = extract.F2F
		}
		grid, err := eng.LoadChip(r.FP.Outline, tiles, dies, bond, r.Stats.ViasPaperEquiv, sm, params)
		if err != nil {
			return nil, err
		}
		tr, err := eng.Solve()
		if err != nil {
			return nil, err
		}
		row := ThermalRow{
			Style:      st,
			Bond:       bond,
			PowerW:     r.Power.TotalMW / 1e3,
			TMaxC:      tr.TMaxC,
			TAvgC:      tr.TAvgC,
			TMaxPerDie: tr.TMaxPerDie,
			TMaxViasC:  tr.TMaxC,
			TAvgViasC:  tr.TAvgC,
		}
		// Thermal vias only help the F2B-bonded stacks: a dummy TSV adds a
		// copper path through the adhesive bond, while the F2F fold's
		// full-face bond already couples the tiers and 2D has no second die.
		if dies == 2 && bond == extract.F2B {
			dk := params.KTSVWPerK * math.Sqrt(sm.Scale)
			for row.ViasAdded < viaBudget {
				if cfg.Thermal.TMaxBudgetC > 0 && tr.TMaxC <= cfg.Thermal.TMaxBudgetC {
					break
				}
				_, ix, iy, _ := eng.PeakTile()
				eng.AddVertKAt(ix, iy, dk)
				row.ViasAdded++
				if tr, err = eng.Resolve(); err != nil {
					return nil, err
				}
			}
			row.TMaxViasC = tr.TMaxC
			row.TAvgViasC = tr.TAvgC
		}
		if cfg.Thermal.TMaxBudgetC > 0 {
			row.Melts = row.TMaxViasC > cfg.Thermal.TMaxBudgetC
		}
		res.Rows = append(res.Rows, row)

		// The 2D chip run doubles as the hotspot-aware selection demo: the
		// predicted per-block peak temperature re-weights the §4.1 folding
		// criteria before any 3D commitment is made.
		if st == t2.Style2D {
			res.Sel = selectionDemo(r, names, grid, tr, params, weight)
		}
	}
	return res, nil
}

// selectionDemo scores every block of the 2D chip with and without the
// temperature weight. Block peak temperatures come from the solved chip
// field: the hottest tile overlapping the block's floorplan rect.
func selectionDemo(r *flow.ChipResult, names []string, grid *geom.Grid, tr *thermal.Result,
	params thermal.Params, weight float64) []ThermalSelRow {
	peak := func(rect geom.Rect) float64 {
		t := params.AmbientC
		grid.OverlapBins(rect, func(ix, iy int, _ float64) {
			for d := 0; d < tr.Dies; d++ {
				if v := tr.MapC[d][iy*tr.NX+ix]; v > t {
					t = v
				}
			}
		})
		return t
	}
	var profiles []core.BlockProfile
	var system float64
	for _, name := range names {
		br := r.Blocks[name]
		p, err := r.FP.Find(name)
		if err != nil {
			continue
		}
		profiles = append(profiles, core.BlockProfile{
			Name:         name,
			Copies:       1,
			TotalPowerMW: br.Power.TotalMW,
			NetPowerMW:   br.Power.NetMW,
			LongWires:    br.Stats.NumLongWire,
			PeakTempC:    peak(p.Rect),
		})
		system += br.Power.TotalMW
	}
	crit := core.DefaultCriteria()
	crit.TempWeightPerC = weight
	crit.TRefC = params.AmbientC
	hot := core.Score(profiles, system, crit)
	crit.TempWeightPerC = 0
	cold := core.Score(profiles, system, crit)
	coldSel := make(map[string]bool, len(cold))
	for _, s := range cold {
		coldSel[s.Profile.Name] = s.Selected()
	}
	rows := make([]ThermalSelRow, 0, len(hot))
	for _, s := range hot {
		rows = append(rows, ThermalSelRow{
			Block:         s.Profile.Name,
			PeakTempC:     s.Profile.PeakTempC,
			PowerPct:      100 * s.TotalPowerPortion,
			MinPortionPct: 100 * s.MinPortionUsed,
			Selected:      s.Selected(),
			SelectedCold:  coldSel[s.Profile.Name],
		})
	}
	return rows
}

// String renders the thermal study rows, the melt verdict when a budget is
// set, and the hotspot-aware selection demo.
func (r *ThermalResult) String() string {
	var sb strings.Builder
	sb.WriteString("== Thermal study (paper §7 future work): styles, bonding, thermal vias ==\n")
	sb.WriteString("style        bond  power W   Tmax C   Tavg C   Tmax bot/top    vias  Tmax+vias\n")
	for _, row := range r.Rows {
		bond := "-"
		if row.Style.Is3D() {
			bond = row.Bond.String()
		}
		via := "      -"
		if row.ViasAdded > 0 {
			via = fmt.Sprintf("%7.2f", row.TMaxViasC)
		}
		fmt.Fprintf(&sb, "%-11s %-5s %7.2f %8.2f %8.2f   %6.1f / %-6.1f %5d %s\n",
			row.Style, bond, row.PowerW, row.TMaxC, row.TAvgC,
			row.TMaxPerDie[0], row.TMaxPerDie[1], row.ViasAdded, via)
	}
	if r.TMaxBudgetC > 0 {
		fmt.Fprintf(&sb, "budget: Tmax <= %.1f C after thermal vias\n", r.TMaxBudgetC)
		for _, row := range r.Rows {
			verdict := "ok"
			if row.Melts {
				verdict = "MELTS (over budget)"
			}
			fmt.Fprintf(&sb, "  %-11s %7.2f C  %s\n", row.Style, row.TMaxViasC, verdict)
		}
	}
	if len(r.Sel) > 0 {
		fmt.Fprintf(&sb, "hotspot-aware folding selection (weight %.3g/C over ambient, 2D chip field):\n", r.TempWeightPerC)
		sb.WriteString("  block     peak C  power%  need%   fold?  (temp-blind)\n")
		for _, s := range r.Sel {
			fmt.Fprintf(&sb, "  %-8s %7.1f %6.2f%% %6.2f%%  %-5v  (%v)\n",
				s.Block, s.PeakTempC, s.PowerPct, s.MinPortionPct, s.Selected, s.SelectedCold)
		}
	}
	sb.WriteString("expected: every stack runs hotter than 2D at lower power (double power density);\n")
	sb.WriteString("the F2F fold's full-face metal bond couples the tiers to the sink better than\n")
	sb.WriteString("the F2B adhesive bond, and thermal vias claw back part of the F2B penalty\n")
	return sb.String()
}
