package jobs

import (
	"errors"
	"fmt"
	"sync"

	"fold3d/internal/errs"
	"fold3d/internal/pipeline"
)

// ErrUnknownBatch reports a lookup of a batch ID the manager never issued
// (HTTP 404).
var ErrUnknownBatch = errors.New("jobs: unknown batch")

// BatchEvent is one line of a batch's multiplexed NDJSON event stream: a
// member job's event tagged with that job's ID, under a batch-wide dense
// sequence number so ?from= resume works exactly as it does per job.
type BatchEvent struct {
	// Seq is the 0-based position of the event in the batch stream.
	Seq int `json:"seq"`
	// Job is the member job the event belongs to.
	Job string `json:"job"`
	// Event is the member job's event (its Seq field is the job-local
	// sequence number, untouched by the multiplexing).
	Event Event `json:"event"`
}

// BatchInfo is a point-in-time snapshot of a batch, shaped for the status
// API.
type BatchInfo struct {
	// ID is the manager-issued batch identifier.
	ID string `json:"id"`
	// State summarizes the members: queued until any member starts,
	// running while any member is non-terminal, then failed if any member
	// failed, else canceled if any member was canceled, else done.
	State State `json:"state"`
	// Jobs snapshots every member in submission order.
	Jobs []Info `json:"jobs"`
}

// Batch is a group of jobs admitted atomically by SubmitBatch, with one
// multiplexed event stream over every member. All methods are safe for
// concurrent use.
type Batch struct {
	id   string
	jobs []*Job

	mu        sync.Mutex
	events    []BatchEvent
	notify    chan struct{} // closed and replaced on every append
	done      chan struct{} // closed once every member is terminal
	remaining int           // members not yet terminal
}

// ID returns the manager-issued batch identifier.
func (b *Batch) ID() string { return b.id }

// Jobs returns the member jobs in submission order.
func (b *Batch) Jobs() []*Job { return append([]*Job(nil), b.jobs...) }

// Done returns a channel closed when every member job is terminal.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Info snapshots the batch and every member.
func (b *Batch) Info() BatchInfo {
	info := BatchInfo{ID: b.id, Jobs: make([]Info, len(b.jobs))}
	terminal, anyStarted := true, false
	var failed, canceled bool
	for i, j := range b.jobs {
		ji := j.Info()
		info.Jobs[i] = ji
		switch ji.State {
		case StateQueued:
			terminal = false
		case StateRunning:
			terminal, anyStarted = false, true
		case StateFailed:
			failed, anyStarted = true, true
		case StateCanceled:
			canceled, anyStarted = true, true
		case StateDone:
			anyStarted = true
		}
	}
	switch {
	case !terminal && !anyStarted:
		info.State = StateQueued
	case !terminal:
		info.State = StateRunning
	case failed:
		info.State = StateFailed
	case canceled:
		info.State = StateCanceled
	default:
		info.State = StateDone
	}
	return info
}

// EventsSince returns a copy of the multiplexed events from batch
// sequence number from onward, a channel closed when further events
// arrive, and whether every member has reached a terminal state. The
// contract mirrors Job.EventsSince.
func (b *Batch) EventsSince(from int) (events []BatchEvent, more <-chan struct{}, terminal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(b.events) {
		events = append(events, b.events[from:]...)
	}
	return events, b.notify, b.remaining == 0
}

// observe is the member jobs' onEvent hook: it multiplexes the event into
// the batch stream (batch Seq assigned here) and tracks completion. It
// runs outside the job's mutex; per-job event order is preserved because
// each job's events are appended by one goroutine at a time.
func (b *Batch) observe(j *Job, ev Event) {
	b.mu.Lock()
	b.events = append(b.events, BatchEvent{Seq: len(b.events), Job: j.id, Event: ev})
	close(b.notify)
	b.notify = make(chan struct{})
	finished := ev.Kind == "state" && ev.State.Terminal()
	if finished {
		b.remaining--
	}
	last := finished && b.remaining == 0
	b.mu.Unlock()
	if last {
		close(b.done)
	}
}

// BatchFingerprint is the routing fingerprint of a whole batch: the
// pipeline hash chained over every member request's fingerprint, in
// order. The server routes a batch to one owner node so its members share
// one warm cache.
func BatchFingerprint(reqs []Request) string {
	h := pipeline.NewHasher()
	h.Int(len(reqs))
	for _, r := range reqs {
		h.Str(r.Fingerprint())
	}
	return string(h.Sum())
}

// SubmitBatch validates, registers and enqueues a group of requests
// atomically: either every member is admitted (one batch ID, members in
// request order) or none are — quota and queue-depth limits are checked
// for the whole group up front, so a batch can never be half-admitted.
// Failures map exactly as Submit's: errs.ErrBadRequest wrapping for any
// invalid member, ErrQuotaExceeded, ErrQueueFull, ErrShutdown.
func (m *Manager) SubmitBatch(reqs []Request) (*Batch, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("jobs: empty batch: %w", errs.ErrBadRequest)
	}
	norm := make([]Request, len(reqs))
	perTenant := map[string]int{}
	for i, r := range reqs {
		norm[i] = r.normalized()
		if err := norm[i].Validate(); err != nil {
			return nil, fmt.Errorf("batch member %d: %w", i, err)
		}
		perTenant[norm[i].Tenant]++
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShutdown
	}
	// All-or-nothing admission: every member must fit before any enqueues.
	for tenant, n := range perTenant {
		if err := m.admitLocked(tenant, n); err != nil {
			return nil, err
		}
	}
	if m.nQueued+len(norm) > m.depth {
		return nil, fmt.Errorf("%w: %d jobs waiting", ErrQueueFull, m.nQueued)
	}

	m.batchSeq++
	id := fmt.Sprintf("batch-%06d", m.batchSeq)
	if m.nodeID != "" {
		id = fmt.Sprintf("%s-%s", m.nodeID, id)
	}
	b := &Batch{
		id:        id,
		notify:    make(chan struct{}),
		done:      make(chan struct{}),
		remaining: len(norm),
	}
	for _, req := range norm {
		j := &Job{
			id:      m.jobID(),
			req:     req,
			onEvent: b.observe,
			state:   StateQueued,
			events:  []Event{{Seq: 0, Kind: "state", State: StateQueued}},
			notify:  make(chan struct{}),
			done:    make(chan struct{}),
		}
		b.jobs = append(b.jobs, j)
		// The queued event predates enqueueing, so it lands in the batch
		// stream before any worker event can: workers dequeue under m.mu,
		// which SubmitBatch holds until every member is in.
		b.observe(j, j.events[0])
		m.enqueueLocked(j)
	}
	m.batches[b.id] = b
	return b, nil
}

// GetBatch returns the batch by ID, or ErrUnknownBatch.
func (m *Manager) GetBatch(id string) (*Batch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBatch, id)
	}
	return b, nil
}
