// Package jobs is the asynchronous job queue behind the fold3dd daemon: it
// accepts experiment requests, runs them through the exp harness on a
// bounded pool of scheduler workers, records a live event stream per job,
// and aggregates service metrics (job counters, per-stage latency
// histograms, artifact-cache effectiveness).
//
// The package bridges two worlds with different rules. Below it sits the
// deterministic flow: every job draws its results from exp.RunAll, so a
// job's result — and the result fingerprint the manager computes over it —
// is a pure function of the normalized request body, byte-identical
// whether the job ran cold, against a warm artifact cache, or concurrently
// with other jobs. Above it sits a long-running service: scheduler workers
// are long-lived goroutines (the one lint-sanctioned exception outside
// internal/pool, see DESIGN.md §12), timestamps feed latency metrics, and
// nothing of that ambient state may leak into results. The seam is
// explicit: wall-clock time is observed only in Manager.observe (metrics)
// and results are hashed before any of it is attached.
//
// Job lifecycle: queued → running → done | failed | canceled. Terminal
// states are final; every submitted job reaches one, even across a
// graceful shutdown (Close cancels the run context, so in-flight and
// still-queued jobs finish as canceled with an error wrapping
// errs.ErrCanceled).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fold3d/internal/errs"
	"fold3d/internal/exp"
	"fold3d/internal/flow"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
)

// Sentinel errors of the queue itself (as opposed to request validation,
// which wraps errs.ErrBadRequest). Test with errors.Is.
var (
	// ErrQueueFull reports a Submit rejected because the bounded queue had
	// no free slot; the client should retry later (HTTP 503 + Retry-After).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrQuotaExceeded reports a Submit rejected because the request's
	// tenant already has its full quota of queued jobs. Unlike ErrQueueFull
	// this is the tenant's own backlog, not global pressure, so it maps to
	// HTTP 429 rather than 503 — other tenants are still being admitted.
	ErrQuotaExceeded = errors.New("jobs: tenant quota exceeded")
	// ErrShutdown reports a Submit after Close began; the daemon is
	// draining and accepts no new work (HTTP 503).
	ErrShutdown = errors.New("jobs: manager shut down")
	// ErrUnknownJob reports a lookup of a job ID the manager never issued
	// (HTTP 404).
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// State is a job lifecycle state.
type State string

// The job lifecycle: queued → running → one of the three terminal states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (done, failed or canceled).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is the body of one job submission: which experiments to run and
// under which knobs. The zero value means "every experiment at the
// committed defaults" and is a valid request.
type Request struct {
	// Experiments lists registry names to run (exp.Generators); empty
	// means all of them, in canonical report order.
	Experiments []string `json:"experiments,omitempty"`
	// Scale is the netlist scale factor; 0 selects the default (1000).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives all randomness; 0 selects the default (42).
	Seed uint64 `json:"seed,omitempty"`
	// Placer names the placement backend to run (place.BackendNames);
	// empty selects the default ("force"). Unlike Workers it changes the
	// work itself, so it participates in the routing and result
	// fingerprints: requests differing only in Placer are different work.
	Placer string `json:"placer,omitempty"`
	// Workers bounds the per-job flow fan-out (0 = one per CPU). It trades
	// wall-clock only: results and fingerprints are identical at any value.
	Workers int `json:"workers,omitempty"`
	// Tenant names the submitting tenant for per-tenant queue quotas;
	// empty is the anonymous tenant. Like Workers it is scheduling
	// metadata: it does not participate in the result or routing
	// fingerprints.
	Tenant string `json:"tenant,omitempty"`
	// Thermal, when non-nil, turns on in-loop thermal planning ("will this
	// folding melt"): the flows solve block temperature fields, insert
	// thermal vias, and the thermal experiment renders the melt verdict
	// against TMaxC. Like Placer it changes the work itself, so a non-nil
	// spec participates in the routing and result fingerprints; nil keeps
	// them byte-identical to requests predating the field.
	Thermal *ThermalSpec `json:"thermal,omitempty"`
}

// ThermalSpec is the thermal half of a request (Request.Thermal). The zero
// value (but non-nil) enables thermal planning at the committed defaults.
type ThermalSpec struct {
	// TMaxC is the peak-temperature budget in °C
	// (flow.ThermalConfig.TMaxBudgetC): via insertion stops once the
	// predicted peak meets it, and the thermal report marks styles still
	// above it as melting. 0 sets no budget.
	TMaxC float64 `json:"tmax_c,omitempty"`
	// Vias bounds thermal-via insertion per block/chip; 0 selects the
	// defaults (flow.DefaultThermalViaBudget per block).
	Vias int `json:"vias,omitempty"`
	// TempWeightPerC re-weights folding selection per °C of predicted block
	// temperature over ambient (core.Criteria.TempWeightPerC); 0 selects
	// the study's demo default.
	TempWeightPerC float64 `json:"temp_weight_per_c,omitempty"`
}

// thermalConfig converts the request's thermal spec into the flow
// configuration; a nil spec means thermal planning stays off.
func (r Request) thermalConfig() flow.ThermalConfig {
	if r.Thermal == nil {
		return flow.ThermalConfig{}
	}
	return flow.ThermalConfig{
		Enable:         true,
		TMaxBudgetC:    r.Thermal.TMaxC,
		ViaBudget:      r.Thermal.Vias,
		TempWeightPerC: r.Thermal.TempWeightPerC,
	}
}

// Fingerprint is the routing fingerprint of the request: the pipeline
// hash of its normalized work definition (experiments, scale, seed,
// placer). Workers and Tenant are excluded — they affect scheduling,
// never results — so every request meaning the same work routes to the
// same fleet node and shares its warm artifacts, while requests
// differing only in placement backend never collapse onto one ring
// owner or cache identity.
func (r Request) Fingerprint() string {
	n := r.normalized()
	h := pipeline.NewHasher()
	h.Int(len(n.Experiments))
	for _, name := range n.Experiments {
		h.Str(name)
	}
	h.F64(n.Scale)
	h.Uint(n.Seed)
	h.Str(n.Placer)
	// Appended only for thermal requests, so every pre-thermal request
	// keeps its historical fingerprint (and warm fleet routing) unchanged.
	if n.Thermal != nil {
		h.Str("thermal")
		h.F64(n.Thermal.TMaxC)
		h.Int(n.Thermal.Vias)
		h.F64(n.Thermal.TempWeightPerC)
	}
	return string(h.Sum())
}

// normalized fills the defaulted fields so that two requests meaning the
// same work are the same work: the stored request, the exp configuration
// and therefore the result fingerprint all derive from this form.
func (r Request) normalized() Request {
	def := exp.DefaultConfig()
	if r.Scale == 0 {
		r.Scale = def.Scale
	}
	if r.Seed == 0 {
		r.Seed = def.Seed
	}
	if r.Placer == "" {
		r.Placer = place.DefaultBackend
	}
	return r
}

// config converts the (normalized) request into the exp harness
// configuration, attaching the manager-owned shared cache.
func (r Request) config(cache *pipeline.Cache) exp.Config {
	return exp.Config{Scale: r.Scale, Seed: r.Seed, Workers: r.Workers, Placer: r.Placer,
		Cache: cache, Thermal: r.thermalConfig()}
}

// Validate checks the request without running it. Failures wrap
// errs.ErrBadRequest (plus errs.ErrUnknownExperiment for bad names), so a
// transport can map them to client errors with errors.Is.
func (r Request) Validate() error {
	if err := (exp.Config{Scale: r.Scale, Seed: r.Seed, Workers: r.Workers, Placer: r.Placer,
		Thermal: r.thermalConfig()}).Validate(); err != nil {
		return err
	}
	return exp.ValidateNames(r.Experiments)
}

// Event is one line of a job's NDJSON event stream: either a lifecycle
// transition (Kind "state") or a flow progress update (Kind "progress").
// Seq numbers are dense and strictly increasing per job, so a consumer can
// resume a stream from any point without gaps or reordering.
type Event struct {
	// Seq is the 0-based position of the event in the job's stream.
	Seq int `json:"seq"`
	// Kind discriminates the payload: "state" or "progress".
	Kind string `json:"kind"`
	// State is the lifecycle state entered (Kind "state").
	State State `json:"state,omitempty"`
	// Error carries the failure text of a terminal failed/canceled state.
	Error string `json:"error,omitempty"`
	// Fingerprint carries the result fingerprint of a terminal done state.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Experiment, Stage, Block, Done and Total mirror flow.Progress
	// (Kind "progress").
	Experiment string `json:"experiment,omitempty"`
	Stage      string `json:"stage,omitempty"`
	Block      string `json:"block,omitempty"`
	Done       int    `json:"done,omitempty"`
	Total      int    `json:"total,omitempty"`
}

// ExperimentResult is one experiment's output inside a job result.
type ExperimentResult struct {
	// Name is the registry name of the experiment.
	Name string `json:"name"`
	// Report is the formatted text report (tables, figure summaries).
	Report string `json:"report"`
	// Files holds artifact files (SVGs, netlist dumps) by basename.
	Files map[string]string `json:"files,omitempty"`
	// Volatile holds display-only annotations (wall-clock timings). It is
	// excluded from the result fingerprint: two jobs differing only in
	// Volatile are byte-identical work.
	Volatile string `json:"volatile,omitempty"`
}

// Result is a completed job's output. Fingerprint is a content hash over
// every experiment name, report and artifact file in canonical order; the
// determinism contract promises it is a pure function of the normalized
// request.
type Result struct {
	// Fingerprint is the hex content hash of the full result.
	Fingerprint string `json:"fingerprint"`
	// Experiments holds the per-experiment outputs in registry order.
	Experiments []ExperimentResult `json:"experiments"`
}

// fingerprintResults hashes completed results in their (already canonical)
// slice order with the pipeline's length-framed hasher.
func fingerprintResults(results []*exp.Result) string {
	h := pipeline.NewHasher()
	h.Int(len(results))
	for _, r := range results {
		h.Str(r.Name)
		h.Str(r.Report)
		names := make([]string, 0, len(r.Files))
		for name := range r.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		h.Int(len(names))
		for _, name := range names {
			h.Str(name)
			h.Str(r.Files[name])
		}
	}
	return string(h.Sum())
}

// Info is a point-in-time snapshot of a job, shaped for the status API.
type Info struct {
	// ID is the manager-issued job identifier.
	ID string `json:"id"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Request is the normalized request the job runs.
	Request Request `json:"request"`
	// Error is the failure text of a failed/canceled job.
	Error string `json:"error,omitempty"`
	// Result is the output of a done job, nil otherwise.
	Result *Result `json:"result,omitempty"`
}

// Job is one queued or running experiment request. All methods are safe
// for concurrent use.
type Job struct {
	id  string
	req Request
	// onEvent, when set (batch membership), receives every event after it
	// is recorded, outside j.mu and in per-job order — a job's events are
	// appended by one goroutine at a time (Submit before workers see the
	// job, then its one scheduler worker).
	onEvent func(*Job, Event)

	mu     sync.Mutex
	state  State
	err    error
	result *Result
	events []Event
	notify chan struct{} // closed and replaced on every append
	done   chan struct{} // closed once, on reaching a terminal state
}

// ID returns the manager-issued job identifier.
func (j *Job) ID() string { return j.id }

// Request returns the normalized request the job runs.
func (j *Job) Request() Request { return j.req }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the terminal error of a failed or canceled job, nil before
// termination and for done jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Info snapshots the job for the status API.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{ID: j.id, State: j.state, Request: j.req, Result: j.result}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// EventsSince returns a copy of the recorded events from sequence number
// from onward, a channel closed when further events arrive, and whether
// the job has reached a terminal state. When terminal is true and the
// returned slice drains the stream, no further events will ever arrive.
func (j *Job) EventsSince(from int) (events []Event, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		events = append(events, j.events[from:]...)
	}
	return events, j.notify, j.state.Terminal()
}

// append records an event (Seq assigned here) and wakes every stream
// follower. Callers must not hold j.mu.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	if j.onEvent != nil {
		j.onEvent(j, ev)
	}
}

// setState transitions the lifecycle state and records the matching event;
// terminal transitions attach the error/fingerprint and close Done.
func (j *Job) setState(s State, err error, result *Result) {
	j.mu.Lock()
	j.state = s
	j.err = err
	j.result = result
	j.mu.Unlock()

	ev := Event{Kind: "state", State: s}
	if err != nil {
		ev.Error = err.Error()
	}
	if result != nil {
		ev.Fingerprint = result.Fingerprint
	}
	j.append(ev)
	if s.Terminal() {
		close(j.done)
	}
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of scheduler workers, i.e. the bound on
	// concurrently running jobs; 0 selects 2. Each job additionally fans
	// out its own flow across Request.Workers.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; a full queue
	// rejects Submit with ErrQueueFull. 0 selects 64.
	QueueDepth int
	// Cache is the process-wide artifact cache shared by every job, so
	// concurrent and repeat jobs restore each other's block artifacts. Nil
	// creates a fresh memory-only cache.
	Cache *pipeline.Cache
	// NodeID, when non-empty, prefixes every issued job and batch ID
	// ("<node>-job-000001"), so any fleet node can route a GET for a
	// foreign ID to the node that minted it. Empty keeps the single-node
	// legacy format ("job-000001").
	NodeID string
	// TenantQuota bounds the queued jobs of any single tenant; a tenant at
	// its quota gets ErrQuotaExceeded (HTTP 429) while others keep being
	// admitted. 0 means no per-tenant bound (only QueueDepth applies).
	TenantQuota int
}

// Manager owns the job queue: validation, admission, the scheduler
// workers, job state, and service metrics. Create one per process with
// NewManager and stop it with Close.
type Manager struct {
	cache  *pipeline.Cache
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	nodeID string
	depth  int // bound on queued (admitted, not yet started) jobs
	quota  int // per-tenant bound on queued jobs; 0 = unlimited

	mu   sync.Mutex
	cond *sync.Cond // signals workers: work queued, or shutdown
	// The admission queue is a set of per-tenant FIFOs drained round-robin,
	// so one tenant flooding its quota cannot starve another tenant's jobs
	// behind its backlog (the fairness half of the quota story; the 429
	// half is in Submit).
	fifos     map[string][]*Job
	rotor     []string // round-robin tenant order; rotated on every dequeue
	jobs      map[string]*Job
	batches   map[string]*Batch
	order     []string
	seq       int
	batchSeq  int
	closed    bool
	nQueued   int // gauge: submitted, not yet started (Σ len(fifos))
	nRunning  int // gauge: started, not yet terminal
	nDone     int
	nFailed   int
	nCanceled int
	hist      map[string]*histogram // per-stage latency
}

// NewManager starts a manager with opts.Workers scheduler goroutines
// (the lint-sanctioned server exemption; see the package comment).
func NewManager(opts Options) *Manager {
	workers := opts.Workers
	if workers <= 0 {
		workers = 2
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	cache := opts.Cache
	if cache == nil {
		cache = pipeline.NewCache(pipeline.CacheOptions{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cache:   cache,
		ctx:     ctx,
		cancel:  cancel,
		nodeID:  opts.NodeID,
		depth:   depth,
		quota:   opts.TenantQuota,
		fifos:   map[string][]*Job{},
		jobs:    map[string]*Job{},
		batches: map[string]*Batch{},
		hist:    map[string]*histogram{},
	}
	m.cond = sync.NewCond(&m.mu)
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// jobID mints the next job ID. Callers hold m.mu.
func (m *Manager) jobID() string {
	m.seq++
	if m.nodeID != "" {
		return fmt.Sprintf("%s-job-%06d", m.nodeID, m.seq)
	}
	return fmt.Sprintf("job-%06d", m.seq)
}

// admitLocked checks admission limits for n more jobs from tenant.
// Callers hold m.mu.
func (m *Manager) admitLocked(tenant string, n int) error {
	if m.closed {
		return ErrShutdown
	}
	if m.quota > 0 && len(m.fifos[tenant])+n > m.quota {
		return fmt.Errorf("%w: tenant %q has %d jobs queued (quota %d)",
			ErrQuotaExceeded, tenant, len(m.fifos[tenant]), m.quota)
	}
	if m.nQueued+n > m.depth {
		return fmt.Errorf("%w: %d jobs waiting", ErrQueueFull, m.nQueued)
	}
	return nil
}

// enqueueLocked registers and queues an already-validated job under its
// tenant's FIFO and wakes a worker. Callers hold m.mu and have passed
// admitLocked.
func (m *Manager) enqueueLocked(j *Job) {
	tenant := j.req.Tenant
	if _, known := m.fifos[tenant]; !known {
		m.rotor = append(m.rotor, tenant)
	}
	m.fifos[tenant] = append(m.fifos[tenant], j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.nQueued++
	m.cond.Signal()
}

// dequeueLocked pops the next job round-robin across tenant FIFOs, or nil
// when nothing is queued. Callers hold m.mu.
func (m *Manager) dequeueLocked() *Job {
	for i, tenant := range m.rotor {
		fifo := m.fifos[tenant]
		if len(fifo) == 0 {
			continue
		}
		j := fifo[0]
		m.fifos[tenant] = fifo[1:]
		// Rotate the served tenant to the back so tenants take turns.
		m.rotor = append(append(m.rotor[:i:i], m.rotor[i+1:]...), tenant)
		m.nQueued--
		return j
	}
	return nil
}

// Submit validates, registers and enqueues a request, returning the new
// job (already in state queued). Validation failures wrap
// errs.ErrBadRequest; a tenant at its quota gets ErrQuotaExceeded; a full
// queue returns ErrQueueFull; after Close it returns ErrShutdown.
func (m *Manager) Submit(req Request) (*Job, error) {
	req = req.normalized()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.admitLocked(req.Tenant, 1); err != nil {
		return nil, err
	}
	j := &Job{
		id:     m.jobID(),
		req:    req,
		state:  StateQueued,
		events: []Event{{Seq: 0, Kind: "state", State: StateQueued}},
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	m.enqueueLocked(j)
	return j, nil
}

// Get returns the job by ID, or ErrUnknownJob.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Infos snapshots every job in submission order.
func (m *Manager) Infos() []Info {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, len(order))
	for i, id := range order {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]Info, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	return out
}

// Closed reports whether Close has begun; a closed manager rejects new
// submissions (the /healthz signal).
func (m *Manager) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close shuts the manager down gracefully: no new submissions are
// admitted, the run context is canceled so in-flight jobs finish promptly
// as canceled (their error wraps errs.ErrCanceled), still-queued jobs are
// drained to the same terminal state, and the scheduler workers exit.
// Close returns once every worker has stopped, or with ctx's error if the
// drain outlives it. Close is idempotent.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	// Every parked worker must wake to observe closed (then drain whatever
	// is still queued to its canceled terminal state before exiting).
	m.cond.Broadcast()
	m.mu.Unlock()
	if !already {
		m.cancel()
	}
	done := make(chan struct{})
	go func() { // sanctioned: the drain waiter of the scheduler exemption
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain incomplete: %w", ctx.Err())
	}
}

// worker is one scheduler goroutine: it drains the tenant queues until
// Close. It deliberately keeps consuming after cancellation so that every
// queued job reaches a terminal state (runJob is fast once m.ctx is done).
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// next blocks until a job is available round-robin across tenants,
// returning nil once the manager is closed and the queues are drained.
// Shutdown wakes parked workers via the Broadcast in Close, so the wait
// needs no context of its own.
func (m *Manager) next() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if j := m.dequeueLocked(); j != nil {
			return j
		}
		if m.closed {
			return nil
		}
		m.cond.Wait()
	}
}

// runJob drives one job through the exp harness and into a terminal state.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	m.nRunning++
	m.mu.Unlock()
	j.setState(StateRunning, nil, nil)

	cfg := j.req.config(m.cache)
	// last tracks the previous progress timestamp for stage-latency
	// attribution. exp.RunAll serializes progress callbacks, so the
	// variable is confined to the (one-at-a-time) callback executions.
	last := time.Now()
	cfg.Progress = func(p flow.Progress) {
		now := time.Now()
		m.observe(p.Stage, now.Sub(last))
		last = now
		j.append(Event{
			Kind:       "progress",
			Experiment: p.Experiment,
			Stage:      p.Stage,
			Block:      p.Block,
			Done:       p.Done,
			Total:      p.Total,
		})
	}
	results, err := exp.RunAll(m.ctx, cfg, j.req.Experiments, nil)

	var state State
	var result *Result
	switch {
	case err != nil && errors.Is(err, errs.ErrCanceled):
		state = StateCanceled
	case err != nil:
		state = StateFailed
	default:
		state = StateDone
		result = &Result{Fingerprint: fingerprintResults(results)}
		for _, r := range results {
			result.Experiments = append(result.Experiments, ExperimentResult{
				Name:     r.Name,
				Report:   r.Report,
				Files:    r.Files,
				Volatile: r.Volatile,
			})
		}
	}
	m.mu.Lock()
	m.nRunning--
	switch state {
	case StateDone:
		m.nDone++
	case StateFailed:
		m.nFailed++
	case StateCanceled:
		m.nCanceled++
	}
	m.mu.Unlock()
	j.setState(state, err, result)
}

// CacheStats snapshots the shared artifact cache counters.
func (m *Manager) CacheStats() pipeline.Stats { return m.cache.Stats() }

// CacheEntry returns the serialized wire entry for an artifact key from
// the node-local cache (memory wire copy or disk spill, never peers), for
// the /v1/artifacts peer-serving endpoint.
func (m *Manager) CacheEntry(key string) ([]byte, bool) { return m.cache.EntryBytes(key) }
