package jobs

import (
	"sort"
	"time"

	"fold3d/internal/pipeline"
)

// stageBucketBounds are the histogram upper bounds, in seconds, for the
// per-stage latency metrics. Chosen to straddle the observed range of the
// flow's stages: via placement on a small block sits under a millisecond,
// a full chip implement phase at scale 1 runs into the tens of seconds.
var stageBucketBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram. counts[i] holds the
// observations <= stageBucketBounds[i] (non-cumulative; the snapshot
// cumulates); the extra last slot counts overflow beyond the final bound.
type histogram struct {
	counts []int   // len(stageBucketBounds)+1, last slot = overflow
	sum    float64 // seconds
	n      int
}

// observe records one duration into the histogram.
func (h *histogram) observe(d time.Duration) {
	if h.counts == nil {
		h.counts = make([]int, len(stageBucketBounds)+1)
	}
	secs := d.Seconds()
	h.sum += secs
	h.n++
	for i, b := range stageBucketBounds {
		if secs <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(stageBucketBounds)]++
}

// observe attributes one stage latency sample under the manager lock.
func (m *Manager) observe(stage string, d time.Duration) {
	if stage == "" {
		return
	}
	m.mu.Lock()
	h := m.hist[stage]
	if h == nil {
		h = &histogram{}
		m.hist[stage] = h
	}
	h.observe(d)
	m.mu.Unlock()
}

// StageLatency is the snapshot of one stage's latency histogram, in the
// cumulative form Prometheus histograms use: CumCounts[i] counts the
// observations <= Bounds[i]; Count covers everything including overflow.
type StageLatency struct {
	// Stage is the flow stage name the samples belong to.
	Stage string
	// Bounds are the bucket upper bounds in seconds.
	Bounds []float64
	// CumCounts[i] is the number of observations <= Bounds[i].
	CumCounts []int
	// Count is the total number of observations.
	Count int
	// SumSeconds is the sum of all observed durations.
	SumSeconds float64
}

// Metrics is a point-in-time snapshot of the manager's service counters,
// shaped for the /metrics endpoint.
type Metrics struct {
	// Queued and Running are gauges of jobs currently in those states.
	Queued, Running int
	// Done, Failed and Canceled count jobs that reached each terminal
	// state since the manager started.
	Done, Failed, Canceled int
	// Submitted counts every accepted job (it equals Queued + Running +
	// the three terminal counters).
	Submitted int
	// Cache is the shared artifact cache snapshot.
	Cache pipeline.Stats
	// Stages holds the per-stage latency histograms sorted by stage name.
	Stages []StageLatency
}

// Metrics snapshots the service counters under the manager lock (the cache
// snapshots under its own).
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	out := Metrics{
		Queued:    m.nQueued,
		Running:   m.nRunning,
		Done:      m.nDone,
		Failed:    m.nFailed,
		Canceled:  m.nCanceled,
		Submitted: m.seq,
	}
	names := make([]string, 0, len(m.hist))
	for name := range m.hist {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.hist[name]
		sl := StageLatency{
			Stage:      name,
			Bounds:     stageBucketBounds,
			CumCounts:  make([]int, len(stageBucketBounds)),
			Count:      h.n,
			SumSeconds: h.sum,
		}
		cum := 0
		for i := range stageBucketBounds {
			cum += h.counts[i]
			sl.CumCounts[i] = cum
		}
		out.Stages = append(out.Stages, sl)
	}
	m.mu.Unlock()
	out.Cache = m.cache.Stats()
	return out
}
