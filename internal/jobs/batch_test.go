package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fold3d/internal/errs"
)

// smallReq returns the cheapest valid request, optionally owned by a
// tenant.
func smallReq(tenant string) Request {
	return Request{Experiments: []string{"table4"}, Tenant: tenant}
}

// waitBatch blocks until the batch is terminal (bounded).
func waitBatch(t *testing.T, b *Batch) BatchInfo {
	t.Helper()
	select {
	case <-b.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("batch %s never finished", b.ID())
	}
	return b.Info()
}

func TestRequestFingerprintRouting(t *testing.T) {
	base := Request{Experiments: []string{"table4"}}
	fp := base.Fingerprint()
	if fp == "" || len(fp) != 64 {
		t.Fatalf("Fingerprint() = %q, want a 64-hex hash", fp)
	}
	// Scheduling metadata must not move a request between nodes.
	same := []Request{
		{Experiments: []string{"table4"}, Workers: 7},
		{Experiments: []string{"table4"}, Tenant: "acme"},
		{Experiments: []string{"table4"}, Scale: 1000, Seed: 42}, // explicit defaults
	}
	for i, r := range same {
		if r.Fingerprint() != fp {
			t.Errorf("case %d: scheduling metadata changed the routing fingerprint", i)
		}
	}
	// Work definition changes must.
	diff := []Request{
		{Experiments: []string{"table1"}},
		{Experiments: []string{"table4"}, Seed: 43},
		{Experiments: []string{"table4"}, Scale: 500},
		{},
	}
	for i, r := range diff {
		if r.Fingerprint() == fp {
			t.Errorf("case %d: work change did not move the routing fingerprint", i)
		}
	}
	// And the batch fingerprint chains member fingerprints in order.
	b1 := BatchFingerprint([]Request{base, {Experiments: []string{"table1"}}})
	b2 := BatchFingerprint([]Request{{Experiments: []string{"table1"}}, base})
	if b1 == b2 {
		t.Error("BatchFingerprint ignored member order")
	}
}

// TestThermalRequest pins the thermal spec's routing and validation story:
// nil keeps every historical fingerprint, non-nil is a different work
// definition, and an impossible temperature budget is a client error.
func TestThermalRequest(t *testing.T) {
	base := Request{Experiments: []string{"table4"}}
	fp := base.Fingerprint()
	on := Request{Experiments: []string{"table4"}, Thermal: &ThermalSpec{}}
	if err := on.Validate(); err != nil {
		t.Fatalf("zero thermal spec rejected: %v", err)
	}
	if on.Fingerprint() == fp {
		t.Error("enabling thermal did not move the routing fingerprint")
	}
	budget := Request{Experiments: []string{"table4"}, Thermal: &ThermalSpec{TMaxC: 85}}
	if err := budget.Validate(); err != nil {
		t.Fatalf("valid thermal budget rejected: %v", err)
	}
	if budget.Fingerprint() == on.Fingerprint() {
		t.Error("TMaxC change did not move the routing fingerprint")
	}
	for _, bad := range []ThermalSpec{
		{TMaxC: -5},   // below ambient
		{TMaxC: 4000}, // above the plausibility cap
		{Vias: -1},    // negative budget
		{TempWeightPerC: -0.5},
	} {
		r := Request{Experiments: []string{"table4"}, Thermal: &bad}
		if err := r.Validate(); !errors.Is(err, errs.ErrBadRequest) {
			t.Errorf("spec %+v: err = %v, want ErrBadRequest", bad, err)
		}
	}
}

func TestNodePrefixedIDs(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 8, NodeID: "east_1"})
	defer closeNow(t, m)
	j := mustSubmit(t, m, smallReq(""))
	if !strings.HasPrefix(j.ID(), "east_1-job-") {
		t.Fatalf("job ID %q lacks the node prefix", j.ID())
	}
	b, err := m.SubmitBatch([]Request{smallReq("")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.ID(), "east_1-batch-") {
		t.Fatalf("batch ID %q lacks the node prefix", b.ID())
	}
}

// TestTenantQuota pins the 429-vs-503 distinction: a tenant at its quota
// is rejected with ErrQuotaExceeded while another tenant is still
// admitted; global queue pressure still yields ErrQueueFull.
func TestTenantQuota(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 16, TenantQuota: 2})
	defer closeNow(t, m)
	// Stall the single worker with a first job so subsequent submissions
	// stay queued deterministically... the worker may or may not have
	// dequeued acme's first job; submit quota+1 jobs and require at least
	// one rejection, then check the other tenant.
	var quotaErr error
	admitted := 0
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(smallReq("acme")); err != nil {
			quotaErr = err
		} else {
			admitted++
		}
	}
	if quotaErr == nil {
		t.Fatal("4 rapid submissions never hit the quota of 2")
	}
	if !errors.Is(quotaErr, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", quotaErr)
	}
	if errors.Is(quotaErr, ErrQueueFull) {
		t.Fatal("quota rejection must not read as global queue-full")
	}
	// The other tenant is unaffected by acme's backlog.
	if _, err := m.Submit(smallReq("other")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if admitted < 2 {
		t.Fatalf("only %d acme jobs admitted under quota 2", admitted)
	}
}

// TestBatchLifecycle runs a two-member batch to completion and pins the
// multiplexed stream: dense batch Seq, per-job Seq preserved, every
// member's queued and terminal events present, terminal batch state.
func TestBatchLifecycle(t *testing.T) {
	m := NewManager(Options{Workers: 2, QueueDepth: 8})
	defer closeNow(t, m)
	b, err := m.SubmitBatch([]Request{smallReq(""), {Experiments: []string{"table4"}, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	info := waitBatch(t, b)
	if info.State != StateDone {
		t.Fatalf("batch state = %s, want done", info.State)
	}
	if len(info.Jobs) != 2 || info.Jobs[0].Result == nil || info.Jobs[1].Result == nil {
		t.Fatalf("batch members incomplete: %+v", info.Jobs)
	}
	// Same experiment, different seed: results must differ.
	if info.Jobs[0].Result.Fingerprint == info.Jobs[1].Result.Fingerprint {
		t.Fatal("different seeds produced identical result fingerprints")
	}

	events, _, terminal := b.EventsSince(0)
	if !terminal {
		t.Fatal("terminal batch reported non-terminal stream")
	}
	perJob := map[string]int{}
	sawQueued := map[string]bool{}
	sawTerminal := map[string]bool{}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("batch Seq not dense: event %d has seq %d", i, ev.Seq)
		}
		if ev.Event.Seq != perJob[ev.Job] {
			t.Fatalf("job %s events reordered in batch stream: got seq %d, want %d",
				ev.Job, ev.Event.Seq, perJob[ev.Job])
		}
		perJob[ev.Job]++
		if ev.Event.Kind == "state" {
			switch {
			case ev.Event.State == StateQueued:
				sawQueued[ev.Job] = true
			case ev.Event.State.Terminal():
				sawTerminal[ev.Job] = true
			}
		}
	}
	for _, j := range b.Jobs() {
		if !sawQueued[j.ID()] || !sawTerminal[j.ID()] {
			t.Fatalf("job %s missing queued/terminal events in batch stream", j.ID())
		}
	}

	// ?from= resume semantics.
	tail, _, _ := b.EventsSince(len(events) - 1)
	if len(tail) != 1 || tail[0].Seq != len(events)-1 {
		t.Fatalf("EventsSince(last) = %+v", tail)
	}
}

// TestBatchAllOrNothing pins atomic admission: a batch that would
// overflow the queue admits no member at all.
func TestBatchAllOrNothing(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 2, TenantQuota: 2})
	defer closeNow(t, m)
	// Overflow the global depth.
	if _, err := m.SubmitBatch([]Request{smallReq("a"), smallReq("b"), smallReq("c")}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if n := len(m.Infos()); n != 0 {
		t.Fatalf("failed batch leaked %d jobs", n)
	}
	// Overflow one tenant's quota (fits the queue... no: depth 2 also, use
	// a fresh manager with room).
	m2 := NewManager(Options{Workers: 1, QueueDepth: 16, TenantQuota: 2})
	defer closeNow(t, m2)
	if _, err := m2.SubmitBatch([]Request{smallReq("a"), smallReq("a"), smallReq("a")}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if n := len(m2.Infos()); n != 0 {
		t.Fatalf("failed batch leaked %d jobs", n)
	}
	// An invalid member rejects the whole batch.
	if _, err := m2.SubmitBatch([]Request{smallReq(""), {Experiments: []string{"ghost"}}}); !errors.Is(err, errs.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	// And the empty batch is a bad request.
	if _, err := m2.SubmitBatch(nil); !errors.Is(err, errs.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

// TestBatchUnknown pins the 404 sentinel.
func TestBatchUnknown(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 2})
	defer closeNow(t, m)
	if _, err := m.GetBatch("batch-999999"); !errors.Is(err, ErrUnknownBatch) {
		t.Fatalf("err = %v, want ErrUnknownBatch", err)
	}
}

// TestBatchShutdownCancels submits a batch then closes the manager: every
// member must reach a terminal state and the batch stream must terminate.
func TestBatchShutdownCancels(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 8})
	b, err := m.SubmitBatch([]Request{smallReq(""), smallReq(""), {Experiments: []string{"table1"}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	info := waitBatch(t, b)
	for _, ji := range info.Jobs {
		if !ji.State.Terminal() {
			t.Fatalf("member %s left in state %s after Close", ji.ID, ji.State)
		}
	}
}
