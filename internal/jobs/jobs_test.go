package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"fold3d/internal/errs"
)

// wait blocks until the job terminates or the test times out.
func wait(t *testing.T, j *Job) Info {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not terminate", j.ID())
	}
	return j.Info()
}

// closeNow shuts the manager down with a generous drain deadline.
func closeNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)

	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"negative scale", Request{Scale: -1}, errs.ErrBadRequest},
		{"fractional scale", Request{Scale: 0.25}, errs.ErrBadRequest},
		{"negative workers", Request{Workers: -1}, errs.ErrBadRequest},
		{"unknown experiment", Request{Experiments: []string{"nope"}}, errs.ErrUnknownExperiment},
	}
	for _, c := range cases {
		if _, err := m.Submit(c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: Submit err = %v, want %v", c.name, err, c.want)
		}
		if _, err := m.Submit(c.req); !errors.Is(err, errs.ErrBadRequest) {
			t.Errorf("%s: Submit err = %v, want ErrBadRequest", c.name, err)
		}
	}
	if mt := m.Metrics(); mt.Submitted != 0 {
		t.Errorf("rejected submissions were counted: %+v", mt)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)

	j, err := m.Submit(Request{Experiments: []string{"table1"}})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == "" {
		t.Fatal("empty job ID")
	}
	// Normalization fills the defaults into the stored request.
	if req := j.Request(); req.Scale != 1000 || req.Seed != 42 {
		t.Errorf("normalized request = %+v, want scale 1000 seed 42", req)
	}
	info := wait(t, j)
	if info.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", info.State, info.Error)
	}
	if info.Result == nil || info.Result.Fingerprint == "" {
		t.Fatal("done job has no result fingerprint")
	}
	if len(info.Result.Experiments) != 1 || info.Result.Experiments[0].Name != "table1" {
		t.Fatalf("result experiments = %+v", info.Result.Experiments)
	}
	if info.Result.Experiments[0].Report == "" {
		t.Error("empty report")
	}

	got, err := m.Get(j.ID())
	if err != nil || got != j {
		t.Fatalf("Get(%s) = %v, %v", j.ID(), got, err)
	}
	if _, err := m.Get("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Get(bogus) err = %v, want ErrUnknownJob", err)
	}

	mt := m.Metrics()
	if mt.Done != 1 || mt.Failed != 0 || mt.Canceled != 0 || mt.Submitted != 1 {
		t.Errorf("metrics = %+v, want one done job", mt)
	}
}

// TestEventStreamOrdering checks the event contract: dense strictly
// increasing Seq, a queued→running prefix, flow progress tagged with the
// experiment name in between, and a terminal state event last.
func TestEventStreamOrdering(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)

	// table2 builds full chips, the one flow level that emits progress
	// events; the large scale keeps the design tiny.
	j, err := m.Submit(Request{Experiments: []string{"table2"}, Scale: 5000})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)

	events, _, terminal := j.EventsSince(0)
	if !terminal {
		t.Fatal("terminal job reports non-terminal stream")
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least queued/running/done", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, i)
		}
	}
	if events[0].Kind != "state" || events[0].State != StateQueued {
		t.Errorf("events[0] = %+v, want queued", events[0])
	}
	if events[1].Kind != "state" || events[1].State != StateRunning {
		t.Errorf("events[1] = %+v, want running", events[1])
	}
	last := events[len(events)-1]
	if last.Kind != "state" || last.State != StateDone || last.Fingerprint == "" {
		t.Errorf("last event = %+v, want done with fingerprint", last)
	}
	progress := 0
	for _, ev := range events[2 : len(events)-1] {
		if ev.Kind != "progress" {
			t.Errorf("mid-stream event %+v is not progress", ev)
			continue
		}
		progress++
		if ev.Experiment != "table2" {
			t.Errorf("progress event %+v lacks its experiment tag", ev)
		}
	}
	if progress == 0 {
		t.Error("a flow-running job emitted no progress events")
	}

	// Resumption: EventsSince(from) returns exactly the suffix.
	tail, _, _ := j.EventsSince(len(events) - 2)
	if len(tail) != 2 || tail[0].Seq != len(events)-2 {
		t.Errorf("EventsSince suffix = %+v", tail)
	}
}

// TestFingerprintDeterministicColdVsWarm is the jobs-level half of the
// determinism contract: the same request resubmitted to the same manager
// (now with a warm shared cache) and to a fresh manager (cold) produces
// the same result fingerprint.
func TestFingerprintDeterministicColdVsWarm(t *testing.T) {
	req := Request{Experiments: []string{"table4"}}

	m1 := NewManager(Options{})
	a := wait(t, mustSubmit(t, m1, req))
	b := wait(t, mustSubmit(t, m1, req)) // warm: same manager, shared cache
	closeNow(t, m1)

	m2 := NewManager(Options{})
	c := wait(t, mustSubmit(t, m2, req)) // cold: fresh manager and cache
	closeNow(t, m2)

	if a.State != StateDone || b.State != StateDone || c.State != StateDone {
		t.Fatalf("states = %s/%s/%s, want done", a.State, b.State, c.State)
	}
	if a.Result.Fingerprint != b.Result.Fingerprint {
		t.Errorf("warm fingerprint drifted: %s != %s", b.Result.Fingerprint, a.Result.Fingerprint)
	}
	if a.Result.Fingerprint != c.Result.Fingerprint {
		t.Errorf("cold fingerprint drifted: %s != %s", c.Result.Fingerprint, a.Result.Fingerprint)
	}
	// The warm run must actually have reused artifacts.
	if st := m1.CacheStats(); st.Hits == 0 {
		t.Errorf("warm rerun hit the cache 0 times: %+v", st)
	}
}

func mustSubmit(t *testing.T, m *Manager, req Request) *Job {
	t.Helper()
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestCloseDrainsEverything submits more work than one worker can finish
// and shuts down: every job must reach a terminal state, queued ones as
// canceled with errors wrapping ErrCanceled, and Submit must refuse new
// work afterwards.
func TestCloseDrainsEverything(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mustSubmit(t, m, Request{Experiments: []string{"table2"}}))
	}
	closeNow(t, m)

	canceled := 0
	for _, j := range jobs {
		info := wait(t, j)
		if !info.State.Terminal() {
			t.Fatalf("job %s left in state %s", j.ID(), info.State)
		}
		if info.State == StateCanceled {
			canceled++
			if !errors.Is(j.Err(), errs.ErrCanceled) {
				t.Errorf("canceled job %s error %v does not wrap ErrCanceled", j.ID(), j.Err())
			}
		}
	}
	if canceled == 0 {
		t.Error("immediate shutdown canceled no jobs")
	}
	if _, err := m.Submit(Request{}); !errors.Is(err, ErrShutdown) {
		t.Errorf("Submit after Close = %v, want ErrShutdown", err)
	}
	if !m.Closed() {
		t.Error("Closed() = false after Close")
	}
	// Idempotent.
	closeNow(t, m)
}

// TestQueueFull fills the bounded queue behind a busy worker and checks
// the overflow rejection.
func TestQueueFull(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer closeNow(t, m)

	a := mustSubmit(t, m, Request{Experiments: []string{"table2"}})
	// Wait until the worker has picked job A up, so the queue is empty.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if a.Info().State != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	mustSubmit(t, m, Request{Experiments: []string{"table1"}}) // fills the queue
	if _, err := m.Submit(Request{Experiments: []string{"table1"}}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Submit on full queue = %v, want ErrQueueFull", err)
	}
}

// TestInfosOrder checks the submission-order listing.
func TestInfosOrder(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, mustSubmit(t, m, Request{Experiments: []string{"table1"}}).ID())
	}
	infos := m.Infos()
	if len(infos) != 3 {
		t.Fatalf("got %d infos, want 3", len(infos))
	}
	for i, info := range infos {
		if info.ID != ids[i] {
			t.Errorf("infos[%d].ID = %s, want %s", i, info.ID, ids[i])
		}
	}
}

// TestStageLatencyHistograms checks that running a flow populates
// per-stage histograms with cumulative bucket counts.
func TestStageLatencyHistograms(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	wait(t, mustSubmit(t, m, Request{Experiments: []string{"table2"}, Scale: 5000}))

	mt := m.Metrics()
	if len(mt.Stages) == 0 {
		t.Fatal("no stage histograms after a chip-building job")
	}
	for _, sl := range mt.Stages {
		if sl.Count <= 0 {
			t.Errorf("stage %s has zero observations", sl.Stage)
		}
		if sl.SumSeconds < 0 {
			t.Errorf("stage %s has negative latency sum", sl.Stage)
		}
		if len(sl.CumCounts) != len(sl.Bounds) {
			t.Fatalf("stage %s: %d cum counts for %d bounds", sl.Stage, len(sl.CumCounts), len(sl.Bounds))
		}
		for i := 1; i < len(sl.CumCounts); i++ {
			if sl.CumCounts[i] < sl.CumCounts[i-1] {
				t.Errorf("stage %s: bucket counts not cumulative: %v", sl.Stage, sl.CumCounts)
			}
		}
		if last := sl.CumCounts[len(sl.CumCounts)-1]; last > sl.Count {
			t.Errorf("stage %s: cumulative count %d exceeds total %d", sl.Stage, last, sl.Count)
		}
	}
}
