package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"fold3d/internal/lint/cfg"
	"fold3d/internal/lint/dataflow"
)

// LockBalanceCheck verifies sync.Mutex/RWMutex discipline with path
// sensitivity the syntax checks lack: every Lock (and RLock) must be
// released on EVERY path to the function's exit — early returns included —
// either by an explicit Unlock on the path or by a registered
// `defer mu.Unlock()` (which also covers panic unwinds); a second Lock of
// the same mutex while it is already held is a self-deadlock; and no lock
// may be held across a blocking operation (channel ops, selects, sync
// Waits, pool submission, in-package blocking calls), where a parked
// goroutine keeps every other locker waiting behind it.
//
// Mutexes are keyed by the receiver expression text (m.mu, j.mu), with a
// separate key for the read side of an RWMutex, so independent locks never
// alias. Reads and writes through different variables that alias the same
// mutex are out of scope.
func LockBalanceCheck() *Check {
	return &Check{
		Name: "lockbalance",
		Doc:  "every Lock released on all paths; no lock held across a blocking op (dataflow)",
		Run:  runLockBalance,
	}
}

// Lock states. lockHeld dominates lockHeldDefer at joins: if any path into
// a block still owes an explicit Unlock, the block does.
const (
	lockHeldDefer = 1 // release registered via defer; safe at exit
	lockHeld      = 2 // must be explicitly unlocked before exit
)

// lockFact is the state of one mutex key with the Lock site that produced
// it (findings point at the Lock, where the fix goes).
type lockFact struct {
	state int
	pos   token.Pos
}

// lockFacts maps mutex keys to their lock state.
type lockFacts map[string]lockFact

// lockLattice wires lock-state tracking into the fixpoint solver.
func lockLattice(p *Package) dataflow.Lattice[lockFacts] {
	return dataflow.Lattice[lockFacts]{
		Bottom: func() lockFacts { return lockFacts{} },
		Clone: func(s lockFacts) lockFacts {
			out := make(lockFacts, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Join: func(dst, src lockFacts) lockFacts {
			for k, v := range src {
				if d, ok := dst[k]; !ok || v.state > d.state {
					dst[k] = v
				}
			}
			return dst
		},
		Equal: func(a, b lockFacts) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				d, ok := b[k]
				if !ok || d.state != v.state {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in lockFacts) lockFacts {
			for _, n := range b.Nodes {
				lockStep(p, n, in, nil)
			}
			return in
		},
	}
}

// lockStep applies one node's mutex operations to the facts. When report is
// non-nil it receives (key, fact) for every double-Lock encountered.
func lockStep(p *Package, n ast.Node, facts lockFacts, report func(key string, prev lockFact, call *ast.CallExpr)) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// defer mu.Unlock(): the release now runs on every exit, including
		// panic unwinds; the lock no longer needs a path-explicit Unlock.
		if key, kind, ok := mutexOp(p, d.Call); ok && kind == "unlock" {
			if f, held := facts[key]; held {
				facts[key] = lockFact{state: lockHeldDefer, pos: f.pos}
			}
		}
		return
	}
	cfg.ShallowInspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, kind, ok := mutexOp(p, call)
		if !ok {
			return true
		}
		if kind == "lock" {
			if prev, held := facts[key]; held && prev.state == lockHeld && report != nil {
				report(key, prev, call)
			}
			facts[key] = lockFact{state: lockHeld, pos: call.Pos()}
		} else {
			delete(facts, key)
		}
		return true
	})
}

// mutexOp classifies a call as a lock or unlock of a keyed mutex: a method
// named Lock/Unlock/RLock/RUnlock resolving into package sync (embedding
// included), keyed by the receiver expression (":r" suffix for the read
// side).
func mutexOp(p *Package, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return key, "lock", true
	case "Unlock":
		return key, "unlock", true
	case "RLock":
		return key + ":r", "lock", true
	case "RUnlock":
		return key + ":r", "unlock", true
	}
	return "", "", false
}

func runLockBalance(cfgc *Config, p *Package) []Finding {
	bi := newBlockInfo(p)
	var out []Finding
	for _, fb := range funcBodiesOf(p, dataflow.Funcs(p.Info, p.Files)) {
		out = append(out, lockScanFunc(p, bi, fb)...)
	}
	return sortFindings(out)
}

// lockScanFunc solves one body to its lock-state fixpoint and reports
// unbalanced paths, double locks and locks held across blocking points.
func lockScanFunc(p *Package, bi *blockInfo, fb fnBody) []Finding {
	lat := lockLattice(p)
	ins := dataflow.Solve(fb.graph, lockFacts{}, lat)
	reach := fb.graph.Reachable()
	var out []Finding
	seenAcross := map[string]bool{} // dedup key+pos for held-across findings
	for _, b := range fb.graph.Blocks {
		if !reach[b.Index] {
			continue
		}
		facts := lat.Clone(ins[b.Index])
		for _, n := range b.Nodes {
			// Blocking ops are checked BEFORE the node's own mutex ops so a
			// Lock and a blocking call inside one statement do not flag
			// themselves, and a trailing Unlock cannot retroactively excuse
			// an earlier wait.
			for _, op := range bi.nodeOps(n) {
				// sync.Cond.Wait atomically releases its locker while
				// parked and reacquires before returning — holding a lock
				// at a cond wait is the canonical condvar loop, not a
				// parked-goroutine-blocks-lockers bug.
				if op.desc == "sync.Cond.Wait" {
					continue
				}
				for _, key := range sortedLockKeys(facts) {
					dk := fmt.Sprintf("%s@%d", key, op.pos)
					if seenAcross[dk] {
						continue
					}
					seenAcross[dk] = true
					out = append(out, Finding{
						Check: "lockbalance",
						Pos:   p.Fset.Position(op.pos),
						Message: fmt.Sprintf(
							"%s is held across blocking %s: a parked goroutine keeps every other locker waiting; unlock before blocking", lockName(key), op.desc),
					})
				}
			}
			// Returns exit with the facts as they stand here; a plain held
			// lock at a return is the classic early-return leak.
			if _, ok := n.(*ast.ReturnStmt); ok {
				out = append(out, lockExitFindings(p, facts)...)
			}
			lockStep(p, n, facts, func(key string, prev lockFact, call *ast.CallExpr) {
				out = append(out, Finding{
					Check: "lockbalance",
					Pos:   p.Fset.Position(call.Pos()),
					Message: fmt.Sprintf(
						"%s locked again while already held (locked at line %d): self-deadlock on some path", lockName(key), p.Fset.Position(prev.pos).Line),
				})
			})
		}
	}
	// Falling off the end of the body: the exit block's IN facts are the
	// join over every fall-through path (returns were handled above; their
	// OUT facts still flow here, but anything they leaked was already
	// reported at the return, and the join keeps the same state+pos, so the
	// dedup below absorbs the overlap).
	out = append(out, lockExitFindings(p, ins[fb.graph.Exit.Index])...)
	return dedupFindings(out)
}

// sortedLockKeys returns the fact keys in sorted order so reporting order
// never depends on map iteration.
func sortedLockKeys(facts lockFacts) []string {
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockExitFindings reports locks still in the plain held state at an exit
// point, anchored at the Lock site (where the missing release belongs).
func lockExitFindings(p *Package, facts lockFacts) []Finding {
	var out []Finding
	for _, key := range sortedLockKeys(facts) {
		f := facts[key]
		if f.state != lockHeld {
			continue
		}
		out = append(out, Finding{
			Check: "lockbalance",
			Pos:   p.Fset.Position(f.pos),
			Message: fmt.Sprintf(
				"%s is not released on every path to return: add `defer %s` right after the Lock or unlock before each return", lockName(key), unlockCallFor(key)),
		})
	}
	return out
}

// lockName renders a mutex key for messages ("m.mu", "m.mu (read side)").
func lockName(key string) string {
	if base, ok := cutSuffix(key, ":r"); ok {
		return base + " (read side)"
	}
	return key
}

// unlockCallFor renders the release call matching a key's lock side.
func unlockCallFor(key string) string {
	if base, ok := cutSuffix(key, ":r"); ok {
		return base + ".RUnlock()"
	}
	return key + ".Unlock()"
}

// cutSuffix is strings.CutSuffix, local to avoid importing strings for two
// call sites.
func cutSuffix(s, suf string) (string, bool) {
	if len(s) >= len(suf) && s[len(s)-len(suf):] == suf {
		return s[:len(s)-len(suf)], true
	}
	return s, false
}

// dedupFindings removes exact duplicates (same position, check, message)
// that the exit-join overlap can produce, preserving sorted order.
func dedupFindings(fs []Finding) []Finding {
	fs = sortFindings(fs)
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
