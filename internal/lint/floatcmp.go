package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpCheck flags == and != between floating-point operands. Geometry
// and timing code accumulates rounding error (placement coordinates, slack
// arithmetic, wirelength sums), so exact equality is almost always a latent
// bug; use an epsilon comparison (geom.AlmostEqual) instead.
//
// Two comparisons are exempt as exact by construction: both operands are
// compile-time constants, or one operand is the literal 0. The zero
// exemption covers the pervasive "field left at its zero value means use
// the default" sentinel idiom (`if act == 0 { act = DefaultActivity }`) —
// a float assigned 0 compares equal to 0 under IEEE-754, so the test is
// reliable. Named sentinels (`arr[i] == unset`) are still flagged so the
// sentinel's exactness is justified once, at an ignore directive.
func FloatCmpCheck() *Check {
	return &Check{
		Name: "floatcmp",
		Doc:  "flag ==/!= between floating-point operands (use epsilon comparison)",
		Run:  runFloatCmp,
	}
}

func runFloatCmp(cfg *Config, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt, rt := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !isFloat(lt.Type) && !isFloat(rt.Type) {
				return true
			}
			if lt.Value != nil && rt.Value != nil {
				return true // constant fold: exact by definition
			}
			if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
				return true // zero-value sentinel test: exact by construction
			}
			out = append(out, Finding{
				Check: "floatcmp",
				Pos:   p.Fset.Position(be.OpPos),
				Message: "exact " + be.Op.String() + " comparison of floating-point values: " +
					"rounding error makes this unreliable; compare with an epsilon or justify with //lint:ignore floatcmp",
			})
			return true
		})
	}
	return out
}

// isZeroLiteral reports whether e is the literal constant 0 (possibly
// parenthesized), as opposed to a named constant or computed value.
func isZeroLiteral(e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	switch bl.Value {
	case "0", "0.0", "0.", ".0":
		return true
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
