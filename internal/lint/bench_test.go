package lint

import "testing"

// BenchmarkLintRepo measures the full fold3dlint path over the whole
// module: loading (parallel parse, sequential type-check) plus every check
// of the suite running through the worker pool. This is the number the
// pre-PR gate pays on each run; bench.sh records it in BENCH_PR6.json.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadModule(nil)
		if err != nil {
			b.Fatal(err)
		}
		if errs := l.Errors(); len(errs) != 0 {
			b.Fatalf("load errors: %v", errs)
		}
		if fs := Run(DefaultConfig(), pkgs, AllChecks()); len(fs) != 0 {
			b.Fatalf("repo not lint-clean during benchmark: %v", fs[0])
		}
	}
}
