package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// APIGuardCheck enforces API hygiene in internal/ and pkg/: every exported
// top-level identifier carries a doc comment (the packages are the repo's
// public surface for experiments and examples, and godoc is how the flow is
// navigated), and panic is reserved for functions on the allowlist —
// Must-prefixed helpers and entries in Config.PanicAllow. Algorithm code
// returns errors; a panic in the middle of a multi-hour sweep discards
// every completed trial.
func APIGuardCheck() *Check {
	return &Check{
		Name: "apiguard",
		Doc:  "exported identifiers in internal/ and pkg/ need doc comments; panic is allowlisted",
		Run:  runAPIGuard,
	}
}

func runAPIGuard(cfg *Config, p *Package) []Finding {
	var out []Finding
	// The sta.Engine rule is scoped by Config.STAEngineOnly, not by the
	// internal/pkg path gate below, so fixtures and future layouts work.
	if matchesSuffix(p.Path, cfg.STAEngineOnly) {
		for _, file := range p.Files {
			out = append(out, checkSTAEngine(p, file)...)
		}
	}
	if matchesSuffix(p.Path, cfg.ThermalEngineOnly) {
		for _, file := range p.Files {
			out = append(out, checkThermalEngine(p, file)...)
		}
	}
	if matchesSuffix(p.Path, cfg.PipelineOnly) {
		for _, file := range p.Files {
			out = append(out, checkPipelineOnly(p, file)...)
		}
	}
	if matchesSuffix(p.Path, cfg.IndexedScanOnly) {
		for _, file := range p.Files {
			out = append(out, checkIndexedScan(p, file)...)
		}
	}
	if matchesSuffix(p.Path, cfg.BackendRegistryOnly) {
		for _, file := range p.Files {
			out = append(out, checkBackendRegistry(p, file)...)
		}
	}
	if !strings.Contains(p.Path, "internal/") && !strings.Contains(p.Path, "pkg/") {
		return out
	}
	for _, file := range p.Files {
		out = append(out, checkDocs(p, file)...)
		out = append(out, checkPanics(cfg, p, file)...)
	}
	return out
}

// checkSTAEngine flags calls to the package-level sta.Analyze inside
// packages restricted to the persistent engine. Engine methods (including
// Engine.Analyze) are fine — the rule targets the one-shot wrapper, which
// rebuilds the full timing graph on every call.
func checkSTAEngine(p *Package, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Name() != "Analyze" || fn.Pkg() == nil {
			return true
		}
		if !strings.HasSuffix(fn.Pkg().Path(), "internal/sta") {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // a method, e.g. (*Engine).Analyze — allowed
		}
		out = append(out, Finding{
			Check:   "apiguard",
			Pos:     p.Fset.Position(call.Pos()),
			Message: "one-shot sta.Analyze here rebuilds the timing graph from scratch; this package must reuse its persistent sta.Engine (MarkCellDirty/MarkNetDirty + Engine.Analyze)",
		})
		return true
	})
	return out
}

// checkThermalEngine flags calls to the package-level reference solvers
// (thermal.SolveReference, thermal.SolveReferenceTol) inside packages
// restricted to the persistent multigrid engine. Engine methods and
// same-name local functions are fine — the rule targets the dense
// Gauss-Seidel oracle, which exists to validate the engine in tests.
func checkThermalEngine(p *Package, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || !strings.HasPrefix(fn.Name(), "SolveReference") || fn.Pkg() == nil {
			return true
		}
		if !strings.HasSuffix(fn.Pkg().Path(), "internal/thermal") {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // a method — allowed
		}
		out = append(out, Finding{
			Check:   "apiguard",
			Pos:     p.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("reference solver thermal.%s here runs the dense Gauss-Seidel oracle; this package must solve through the persistent multigrid thermal.Engine (LoadBlock/LoadChip + Solve/Resolve)", fn.Name()),
		})
		return true
	})
	return out
}

// checkBackendRegistry flags direct placement-backend construction — a call
// to New in internal/place or any package under internal/place/ — inside
// packages restricted to the registry (Config.BackendRegistryOnly). The one
// sanctioned door is place.NewBackend, which validates the name and keeps
// the placer-aware cache keys honest; a hard-wired constructor silently
// pins one backend and escapes both.
func checkBackendRegistry(p *Package, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Name() != "New" || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if !strings.HasSuffix(path, "internal/place") && !strings.Contains(path, "internal/place/") {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // a method named New on some type — not a constructor
		}
		out = append(out, Finding{
			Check:   "apiguard",
			Pos:     p.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("direct placement-backend construction %s.New: this package selects backends through the registry (place.NewBackend), which validates the name and keys the cache per backend", path),
		})
		return true
	})
	return out
}

// checkPipelineOnly flags direct calls to same-package stage entry points
// (functions and methods named stage*) in packages restricted to the
// pipeline executor. Referencing a stage as a method value — how stages are
// registered into a pipeline.Plan — is fine; invoking one directly bypasses
// the stage DAG, its cancellation checks, and the cache's fingerprinting of
// stage inputs.
func checkPipelineOnly(p *Package, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Path {
			return true
		}
		if !isStageName(fn.Name()) {
			return true
		}
		out = append(out, Finding{
			Check:   "apiguard",
			Pos:     p.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("direct call to pipeline stage %s: stages run only through the pipeline executor (register into a pipeline.Plan)", fn.Name()),
		})
		return true
	})
	return out
}

// checkIndexedScan flags linear scans over a netlist.Block's Cells slice
// that sit inside another loop, in packages restricted to spatial-index
// queries (Config.IndexedScanOnly). A top-level flat pass — building the
// row buckets, seeding positions, filling the SoA mirrors — is fine; the
// same scan nested in a per-row/per-candidate loop is O(cells) per query
// and turns legalization quadratic. Both `range b.Cells` and counted
// loops bounded by `len(b.Cells)` are caught. Loops inside a nested func
// literal restart at depth zero: a stored callback is not itself a
// per-iteration scan, and the conservative reset avoids false positives
// on sort comparators.
func checkIndexedScan(p *Package, file *ast.File) []Finding {
	var out []Finding
	flag := func(n ast.Node) {
		out = append(out, Finding{
			Check: "apiguard",
			Pos:   p.Fset.Position(n.Pos()),
			Message: "linear scan over Block.Cells inside a loop: legalization/blockage queries must go " +
				"through the spatial index (row CSR buckets, lane SoA, TSV site grid), not rescan every cell",
		})
	}
	var visit func(n ast.Node, depth int)
	visit = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch s := m.(type) {
			case *ast.RangeStmt:
				if depth > 0 && isCellsField(p, s.X) {
					flag(s)
				}
				visit(s.Body, depth+1)
				return false
			case *ast.ForStmt:
				if depth > 0 && s.Cond != nil && condScansCells(p, s.Cond) {
					flag(s)
				}
				visit(s.Body, depth+1)
				return false
			case *ast.FuncLit:
				visit(s.Body, 0)
				return false
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd.Body, 0)
		}
	}
	return out
}

// isCellsField reports whether e selects the Cells field of
// internal/netlist's Block type (any import path ending there, so
// fixtures under testdata work too).
func isCellsField(p *Package, e ast.Expr) bool {
	if pe, ok := e.(*ast.ParenExpr); ok {
		return isCellsField(p, pe.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Cells" {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Block" && named.Obj().Pkg() != nil &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/netlist")
}

// condScansCells reports whether a for-loop condition is bounded by
// len(<Block>.Cells) — the counted-loop spelling of a full Cells scan.
func condScansCells(p *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" {
			return true
		}
		if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
			return true
		}
		if isCellsField(p, call.Args[0]) {
			found = true
		}
		return true
	})
	return found
}

// isStageName reports whether name follows the stage entry-point naming
// convention: "stage" followed by a capitalized phase name (stagePlace,
// stageExtract). A bare "stage..." word like "stageless" is not a stage.
func isStageName(name string) bool {
	const prefix = "stage"
	return strings.HasPrefix(name, prefix) && len(name) > len(prefix) &&
		name[len(prefix)] >= 'A' && name[len(prefix)] <= 'Z'
}

// checkDocs flags exported top-level declarations without doc comments.
func checkDocs(p *Package, file *ast.File) []Finding {
	var out []Finding
	undocumented := func(kind, name string, pos ast.Node) {
		out = append(out, Finding{
			Check:   "apiguard",
			Pos:     p.Fset.Position(pos.Pos()),
			Message: fmt.Sprintf("exported %s %s has no doc comment", kind, name),
		})
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc.Text() == "" && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				undocumented(kind, d.Name.Name, d.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc.Text() == "" && s.Doc.Text() == "" {
						undocumented("type", s.Name.Name, s.Name)
					}
				case *ast.ValueSpec:
					// A leading doc comment on the grouped decl ("// Common
					// constants...") covers every spec in the group;
					// trailing line comments do not count as documentation.
					if d.Doc.Text() != "" || s.Doc.Text() != "" {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							kind := "variable"
							if d.Tok.String() == "const" {
								kind = "constant"
							}
							undocumented(kind, name.Name, name)
						}
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether fd is a plain function or a method whose
// receiver type is itself exported — an exported method name on an
// unexported type (a heap.Interface impl, say) is not API surface and
// godoc does not render it.
func exportedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return true
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkPanics flags panic calls outside allowlisted functions.
func checkPanics(cfg *Config, p *Package, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if strings.HasPrefix(fd.Name.Name, "Must") || cfg.panicAllowed(p, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			out = append(out, Finding{
				Check:   "apiguard",
				Pos:     p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("panic in %s: algorithm code must return errors (allowlist Must* helpers only)", fd.Name.Name),
			})
			return true
		})
	}
	return out
}

// panicAllowed reports whether fd matches a Config.PanicAllow entry, which
// is rendered as pkgpath.Func for functions and pkgpath.(*Type).Method or
// pkgpath.Type.Method for methods.
func (cfg *Config) panicAllowed(p *Package, fd *ast.FuncDecl) bool {
	name := p.Path + "." + fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := fd.Recv.List[0].Type
		star := ""
		if se, ok := recv.(*ast.StarExpr); ok {
			star = "*"
			recv = se.X
		}
		if id, ok := recv.(*ast.Ident); ok {
			if star == "*" {
				name = fmt.Sprintf("%s.(*%s).%s", p.Path, id.Name, fd.Name.Name)
			} else {
				name = fmt.Sprintf("%s.%s.%s", p.Path, id.Name, fd.Name.Name)
			}
		}
	}
	for _, a := range cfg.PanicAllow {
		if a == name {
			return true
		}
	}
	return false
}
