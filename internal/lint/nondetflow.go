package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fold3d/internal/lint/cfg"
	"fold3d/internal/lint/dataflow"
)

// NondetFlowCheck is the dataflow companion of mapiter and determinism: it
// tracks values tainted by a nondeterministic source — range over a map
// (arrival order), time.Now (wall clock), global math/rand state — through
// assignments, helpers (package-local call summaries) and aggregates, and
// reports when such a value reaches a fingerprint-grade sink without
// passing a normalization (sort.* or any Sort-named helper) first.
//
// Sinks: arguments of the pipeline Hasher's mix methods, arguments of any
// Fingerprint-named call or conversion, the key argument of a Cache Get or
// Put, Finding/...Result composite literals (value-nondeterminism only —
// a map-ordered VALUE is deterministic element-wise, so only wall-clock
// and rand taint corrupts a result struct), and every return of an
// exported function in an AlgoPackage.
func NondetFlowCheck() *Check {
	return &Check{
		Name: "nondetflow",
		Doc:  "track map-order, wall-clock and rand taint into fingerprints, cache keys and results (dataflow)",
		Run:  runNondetFlow,
	}
}

// orderReason is the taint reason of map-iteration sources. Order taint
// means the value's ARRIVAL ORDER is nondeterministic while each value is
// itself deterministic; value taint (wall clock, rand) means the value
// itself differs between runs. Some sinks only care about the latter.
const orderReason = "ordered by random map iteration"

// valueNondet reports whether reason denotes a nondeterministic value
// rather than a nondeterministic order.
func valueNondet(reason string) bool {
	return !strings.Contains(reason, orderReason)
}

// nondetSource classifies taint sources for package p.
func nondetSource(p *Package) func(ast.Node) string {
	return func(n ast.Node) string {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					return orderReason
				}
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return ""
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return ""
			}
			switch importedPath(p, id) {
			case "time":
				if sel.Sel.Name == "Now" {
					return "read from the wall clock (time.Now)"
				}
			case "math/rand", "math/rand/v2":
				return "drawn from math/rand"
			}
		}
		return ""
	}
}

func runNondetFlow(cfgc *Config, p *Package) []Finding {
	spec := &dataflow.TaintSpec{
		Info:      p.Info,
		Source:    nondetSource(p),
		Sanitizes: func(call *ast.CallExpr) bool { return isSortCall(p, call) },
		OrderOnly: func(reason string) bool { return !valueNondet(reason) },
	}
	funcs := dataflow.Funcs(p.Info, p.Files)
	dataflow.Summarize(spec, funcs)
	sc := &nondetScanner{p: p, spec: spec, algo: cfgc.isAlgoPackage(p.Path)}
	for _, fb := range funcBodiesOf(p, funcs) {
		sc.scan(fb)
	}
	return sortFindings(sc.out)
}

// nondetScanner replays each function at the taint fixpoint and reports
// tainted values arriving at sinks.
type nondetScanner struct {
	p    *Package
	spec *dataflow.TaintSpec
	algo bool
	out  []Finding
}

// scan walks one body's reachable blocks in order, checking sinks against
// the facts that hold at each node before stepping the transfer over it.
func (sc *nondetScanner) scan(fb fnBody) {
	ins := dataflow.Solve(fb.graph, dataflow.Taint{}, sc.spec.Lattice())
	reach := fb.graph.Reachable()
	for _, b := range fb.graph.Blocks {
		if !reach[b.Index] {
			continue
		}
		facts := ins[b.Index].Clone()
		for _, n := range b.Nodes {
			sc.checkNode(n, fb, facts)
			sc.spec.Step(n, facts)
		}
	}
}

// checkNode inspects one block node for sink sites under the given facts.
func (sc *nondetScanner) checkNode(n ast.Node, fb fnBody, facts dataflow.Taint) {
	cfg.ShallowInspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			sc.callSinks(x, facts)
		case *ast.CompositeLit:
			sc.litSinks(x, facts)
		}
		return true
	})
	ret, ok := n.(*ast.ReturnStmt)
	if !ok || !sc.algo || !fb.exported {
		return
	}
	for _, res := range ret.Results {
		// Error returns are diagnostics, not algorithm results; their text
		// never feeds a fingerprint, and errdrop governs their handling.
		if t := sc.p.Info.TypeOf(res); t != nil && isErrorType(t) {
			continue
		}
		if reason := sc.spec.ExprTaint(res, facts); reason != "" {
			sc.report(ret.Pos(), fmt.Sprintf(
				"exported %s returns a value %s; normalize (sort) it before it leaves the algorithm package", fb.name, reason))
			return
		}
	}
}

// callSinks flags tainted arguments reaching a hashing, fingerprinting or
// cache-key call.
func (sc *nondetScanner) callSinks(call *ast.CallExpr, facts dataflow.Taint) {
	if isSortCall(sc.p, call) {
		return
	}
	name, _ := calleeName(call)
	recv := ""
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		recv = namedTypeName(sc.p.Info.TypeOf(sel.X))
	}
	sink := ""
	args := call.Args
	switch {
	case recv == "Hasher":
		sink = "the fingerprint hasher"
	case strings.Contains(name, "ingerprint"):
		sink = "a fingerprint computation"
	case recv == "Cache" && (name == "Get" || name == "Put"):
		sink = "a cache key"
		if len(args) > 1 {
			args = args[:1]
		}
	default:
		return
	}
	for _, a := range args {
		if reason := sc.spec.ExprTaint(a, facts); reason != "" {
			sc.report(a.Pos(), fmt.Sprintf("value %s reaches %s; sort or otherwise normalize it first", reason, sink))
			return
		}
	}
}

// litSinks flags value-nondeterministic elements of Finding/...Result
// composite literals: a wall-clock or rand value baked into a result
// differs between runs no matter how the collection is later ordered.
func (sc *nondetScanner) litSinks(lit *ast.CompositeLit, facts dataflow.Taint) {
	tname := namedTypeName(sc.p.Info.TypeOf(lit))
	if tname != "Finding" && !strings.HasSuffix(tname, "Result") {
		return
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		reason := sc.spec.ExprTaint(v, facts)
		if reason == "" || !valueNondet(reason) {
			continue
		}
		sc.report(v.Pos(), fmt.Sprintf("value %s is stored into a %s; results must be reproducible, thread the value in deterministically", reason, tname))
		return
	}
}

// report appends one finding.
func (sc *nondetScanner) report(pos token.Pos, msg string) {
	sc.out = append(sc.out, Finding{Check: "nondetflow", Pos: sc.p.Fset.Position(pos), Message: msg})
}
