package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapIterCheck flags range loops over maps whose iteration order can leak
// into results: bodies that append to a slice declared outside the loop
// (unless a deterministic sort of that slice follows in the same block) or
// that write output directly. Go randomizes map iteration order on purpose,
// so any such loop makes a run of the flow irreproducible.
func MapIterCheck() *Check {
	return &Check{
		Name: "mapiter",
		Doc:  "flag order-dependent range-over-map loops (append without sort, direct output)",
		Run:  runMapIter,
	}
}

// writerFuncs are call names treated as "writes output" inside a map range.
var writerFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteRune": true, "WriteByte": true,
}

func runMapIter(cfg *Config, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		bodies(file, func(body *ast.BlockStmt) {
			out = append(out, walkBlockForMapIter(p, body.List)...)
		})
	}
	return out
}

// bodies calls fn on every function body in file, each exactly once:
// declarations and literals are visited separately, and walkers below never
// descend into nested function literals themselves.
func bodies(file *ast.File, fn func(*ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}

// walkBlockForMapIter scans a statement list for map ranges, tracking
// following sibling statements so an append inside the loop can be excused
// by a later sort of the same slice.
func walkBlockForMapIter(p *Package, stmts []ast.Stmt) []Finding {
	var out []Finding
	for i, s := range stmts {
		if rs, ok := s.(*ast.RangeStmt); ok && isMapRange(p, rs) {
			out = append(out, checkMapRange(p, rs, stmts[i+1:])...)
		}
		out = append(out, walkNested(p, s)...)
	}
	return out
}

// walkNested recurses into the statement lists nested inside s (loop and
// branch bodies) without descending into function literals.
func walkNested(p *Package, s ast.Stmt) []Finding {
	var out []Finding
	switch st := s.(type) {
	case *ast.BlockStmt:
		out = append(out, walkBlockForMapIter(p, st.List)...)
	case *ast.IfStmt:
		out = append(out, walkBlockForMapIter(p, st.Body.List)...)
		if st.Else != nil {
			out = append(out, walkNested(p, st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, walkBlockForMapIter(p, st.Body.List)...)
	case *ast.RangeStmt:
		out = append(out, walkBlockForMapIter(p, st.Body.List)...)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, walkBlockForMapIter(p, cc.Body)...)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, walkBlockForMapIter(p, cc.Body)...)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, walkBlockForMapIter(p, cc.Body)...)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, walkNested(p, st.Stmt)...)
	}
	return out
}

// isMapRange reports whether rs iterates a value of map type.
func isMapRange(p *Package, rs *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. rest is the list of statements
// following the loop in its enclosing block, searched for excusing sorts.
func checkMapRange(p *Package, rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	var out []Finding
	// Objects appended to inside the loop, keyed by the types.Object of the
	// destination so shadowing cannot confuse the match.
	appends := map[types.Object]ast.Node{}
	inspectNoFuncLit(rs.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for ri, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || ri >= len(st.Lhs) {
					continue
				}
				obj := lhsObject(p, st.Lhs[ri])
				if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
					// Declared inside the loop: per-iteration scratch.
					continue
				}
				appends[obj] = st
			}
		case *ast.CallExpr:
			if name, ok := calleeName(st); ok && writerFuncs[name] {
				out = append(out, Finding{
					Check: "mapiter",
					Pos:   p.Fset.Position(st.Pos()),
					Message: fmt.Sprintf(
						"%s inside range over map: iteration order is random, so output order is irreproducible; collect and sort keys first", name),
				})
			}
		}
	})
	for obj, site := range appends {
		if sortFollows(p, obj, rest) {
			continue
		}
		out = append(out, Finding{
			Check: "mapiter",
			Pos:   p.Fset.Position(site.Pos()),
			Message: fmt.Sprintf(
				"append to %q inside range over map without a following sort: element order depends on random map iteration; sort %q afterwards or iterate sorted keys", obj.Name(), obj.Name()),
		})
	}
	return sortFindings(out)
}

// sortFindings orders findings by position so map-keyed accumulation above
// cannot itself introduce nondeterministic output order.
func sortFindings(fs []Finding) []Finding {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
	return fs
}

// less orders findings by file, line, column, then check name.
func less(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Pos.Column < b.Pos.Column
}

// inspectNoFuncLit walks n invoking fn on every node except those inside
// nested function literals (which are analyzed as their own bodies).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// lhsObject resolves an assignment destination to its declared object.
// Only plain identifiers are tracked; appends through selectors or indexes
// are conservatively ignored.
func lhsObject(p *Package, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

// sortFollows reports whether any statement in rest sorts the slice held by
// obj: a call to a function in package sort or slices (or any function whose
// name contains "Sort" or "sort", covering in-module helpers like
// netlist.SortCells) that mentions obj in its arguments.
func sortFollows(p *Package, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, s := range rest {
		if found {
			break
		}
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return true
			}
			if !isSortCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && p.Info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
	}
	return found
}

// isSortCall reports whether call is a sorting call: sort.* / slices.Sort*
// or any callee whose name starts with "Sort" or "sort".
func isSortCall(p *Package, call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok && importedPath(p, id) == "sort" {
			return true
		}
		return sortyName(f.Sel.Name)
	case *ast.Ident:
		return sortyName(f.Name)
	}
	return false
}

// sortyName reports whether name reads as a sorting helper.
func sortyName(name string) bool {
	return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort")
}
