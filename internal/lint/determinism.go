package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// importedPath resolves ident to the import path of the package it names,
// or "" when ident is not a package qualifier.
func importedPath(p *Package, ident *ast.Ident) string {
	if pn, ok := p.Info.Uses[ident].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// DeterminismCheck forbids ambient nondeterminism in algorithm packages.
// Every stochastic decision in the flow must draw from internal/rng so that
// a (design, seed) pair maps to exactly one result; math/rand has global
// state, time.Now varies per run, and os.Getenv makes behavior depend on
// the machine the experiment happens to run on.
//
// The goroutine rule is stricter: bare go statements are flagged in every
// package outside Config.GoroutineAllow, not just algorithm packages.
// Ad-hoc goroutines race on completion order; concurrency must route
// through the worker pool, whose indexed result slots and sorted merge
// keep parallel runs byte-identical to sequential ones.
func DeterminismCheck() *Check {
	return &Check{
		Name: "determinism",
		Doc:  "forbid math/rand, time.Now, os.Getenv and unmanaged goroutines (use internal/rng, internal/pool)",
		Run:  runDeterminism,
	}
}

// forbiddenImports maps import paths to the reason they are banned.
var forbiddenImports = map[string]string{
	"math/rand":    "use the seeded fold3d/internal/rng generator instead",
	"math/rand/v2": "use the seeded fold3d/internal/rng generator instead",
}

// forbiddenCalls maps package-qualified functions to the reason they are
// banned. Keys are "importPath.Func".
var forbiddenCalls = map[string]string{
	"time.Now":  "wall-clock time makes runs irreproducible; thread timestamps in from the caller",
	"os.Getenv": "environment lookups make results machine-dependent; pass configuration explicitly",
}

// isAlgoPackage reports whether path is one of the packages the determinism
// policy covers.
func (cfg *Config) isAlgoPackage(path string) bool {
	return matchesSuffix(path, cfg.AlgoPackages)
}

// allowsGoroutines reports whether path may contain bare go statements.
func (cfg *Config) allowsGoroutines(path string) bool {
	return matchesSuffix(path, cfg.GoroutineAllow)
}

// matchesSuffix reports whether path matches one of the import-path
// suffixes.
func matchesSuffix(path string, sufs []string) bool {
	for _, suf := range sufs {
		if path == suf || strings.HasSuffix(path, "/"+suf) || strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func runDeterminism(cfg *Config, p *Package) []Finding {
	algo := cfg.isAlgoPackage(p.Path)
	goAllowed := cfg.allowsGoroutines(p.Path)
	if !algo && goAllowed {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		// Imports of banned packages are findings regardless of use, but
		// only inside algorithm packages.
		for _, imp := range file.Imports {
			if !algo {
				break
			}
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				out = append(out, Finding{
					Check:   "determinism",
					Pos:     p.Fset.Position(imp.Pos()),
					Message: fmt.Sprintf("import of %s in algorithm package: %s", path, why),
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && !goAllowed {
				out = append(out, Finding{
					Check:   "determinism",
					Pos:     p.Fset.Position(g.Pos()),
					Message: "bare go statement: route concurrency through fold3d/internal/pool so worker count, merge order and error selection stay deterministic",
				})
				return true
			}
			if !algo {
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Resolve the qualifier to a package name to survive import
			// renaming and to skip same-named local variables.
			pkgPath := importedPath(p, ident)
			if pkgPath == "" {
				return true
			}
			key := pkgPath + "." + sel.Sel.Name
			if why, ok := forbiddenCalls[key]; ok {
				out = append(out, Finding{
					Check:   "determinism",
					Pos:     p.Fset.Position(sel.Pos()),
					Message: fmt.Sprintf("%s in algorithm package: %s", key, why),
				})
			}
			return true
		})
	}
	return out
}
