package lint

import "testing"

// TestRepoIsLintClean is the tier-1 gate: the full fold3d module must pass
// every check of the suite. A failure here means either a genuine policy
// violation (fix the code) or an intentional exception that needs a
// //lint:ignore <check> <reason> directive at the site.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule(nil)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, f := range Run(DefaultConfig(), pkgs, AllChecks()) {
		t.Errorf("%s", f)
	}
}
