package lint

import (
	"go/ast"
	"go/types"
)

// ErrDropCheck flags call statements that silently discard a returned
// error: a bare `f()` or `defer f()` where f returns an error. A dropped
// error in the flow usually means a stage failure (unplaceable cell,
// missing library master) is papered over and the run produces plausible
// but wrong numbers. Assigning to the blank identifier (`_ = f()`) remains
// legal because it is a visible, greppable decision.
//
// Following the errcheck convention, fmt's Print/Fprint family is exempt
// (best-effort diagnostics whose int/error results are conventionally
// unused), as are writes to strings.Builder and bytes.Buffer, which are
// documented never to fail.
func ErrDropCheck() *Check {
	return &Check{
		Name: "errdrop",
		Doc:  "flag call statements whose returned error is silently discarded",
		Run:  runErrDrop,
	}
}

func runErrDrop(cfg *Config, p *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, deferred bool) {
		if !returnsError(p, call) || exemptCall(p, call) {
			return
		}
		what := "call discards its error result"
		if deferred {
			what = "deferred call discards its error result"
		}
		out = append(out, Finding{
			Check:   "errdrop",
			Pos:     p.Fset.Position(call.Pos()),
			Message: what + "; handle it, or assign to _ to make the drop explicit",
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					report(call, false)
				}
			case *ast.DeferStmt:
				report(st.Call, true)
			case *ast.GoStmt:
				report(st.Call, false)
			}
			return true
		})
	}
	return out
}

// exemptCall reports whether call is on the conventional exclusion list:
// fmt print helpers and never-failing buffer writes.
func exemptCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && importedPath(p, id) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	// Methods on *strings.Builder / *bytes.Buffer never return a non-nil
	// error (documented contract).
	if recv := p.Info.TypeOf(sel.X); recv != nil {
		switch types.TypeString(recv, nil) {
		case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
			return true
		}
	}
	return false
}

// returnsError reports whether any result of call is of type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
