package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a // want `...` annotation.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// loadFixture loads testdata/src/<dir> under the given import path.
func loadFixture(t *testing.T, dir, importPath string) (*Loader, *Package) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return l, p
}

// wantKey identifies one expected diagnostic.
type wantKey struct {
	file string
	line int
}

// collectWants parses every want annotation in the fixture package.
func collectWants(p *Package) map[wantKey][]string {
	wants := map[wantKey][]string{}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], m[1])
			}
		}
	}
	return wants
}

// checkFixture runs checks over the fixture and verifies findings match the
// want annotations exactly (every want matched, every finding wanted).
func checkFixture(t *testing.T, cfg *Config, p *Package, checks []*Check) {
	t.Helper()
	findings := Run(cfg, []*Package{p}, checks)
	wants := collectWants(p)

	matched := map[int]bool{} // finding index -> consumed
	for k, patterns := range wants {
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("bad want regex %q: %v", pat, err)
			}
			found := false
			for i, f := range findings {
				if matched[i] || f.Pos.Filename != k.file || f.Pos.Line != k.line {
					continue
				}
				if re.MatchString(f.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: expected finding matching %q, got none", filepath.Base(k.file), k.line, pat)
			}
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	_, p := loadFixture(t, "determinism", "fixture/determinism")
	cfg := DefaultConfig()
	cfg.AlgoPackages = append(cfg.AlgoPackages, "fixture/determinism")
	checkFixture(t, cfg, p, []*Check{DeterminismCheck()})
}

func TestDeterminismSkipsNonAlgoPackages(t *testing.T) {
	// Outside algorithm packages the import/call rules are off, but the
	// goroutine rule still applies: only the Spawn fixture line may fire.
	_, p := loadFixture(t, "determinism", "fixture/other")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{DeterminismCheck()})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "bare go statement") {
		t.Errorf("non-algo package: want only the goroutine finding, got %v", fs)
	}
}

func TestDeterminismGoroutineAllow(t *testing.T) {
	_, p := loadFixture(t, "determinism", "fixture/other")
	cfg := DefaultConfig()
	cfg.GoroutineAllow = append(cfg.GoroutineAllow, "fixture/other")
	fs := Run(cfg, []*Package{p}, []*Check{DeterminismCheck()})
	if len(fs) != 0 {
		t.Errorf("sanctioned package still flagged: %v", fs)
	}
}

func TestServerExemptFlaggedElsewhere(t *testing.T) {
	// The scheduler/accept-loop goroutine shapes of the fold3dd daemon are
	// ordinary findings in a package that is not on the allow list.
	_, p := loadFixture(t, "serverexempt", "fixture/serverexempt")
	checkFixture(t, DefaultConfig(), p, []*Check{DeterminismCheck()})
}

func TestServerExemptSanctionedPackages(t *testing.T) {
	// The same source is clean under the import paths the repo policy
	// exempts: the jobs scheduler and the daemon binary.
	for _, path := range []string{"fold3d/internal/jobs", "fold3d/cmd/fold3dd"} {
		_, p := loadFixture(t, "serverexempt", path)
		if fs := Run(DefaultConfig(), []*Package{p}, []*Check{DeterminismCheck()}); len(fs) != 0 {
			t.Errorf("%s: server exemption not honored: %v", path, fs)
		}
	}
}

func TestMapIterFixture(t *testing.T) {
	_, p := loadFixture(t, "mapiter", "fixture/mapiter")
	checkFixture(t, DefaultConfig(), p, []*Check{MapIterCheck()})
}

func TestFloatCmpFixture(t *testing.T) {
	_, p := loadFixture(t, "floatcmp", "fixture/floatcmp")
	checkFixture(t, DefaultConfig(), p, []*Check{FloatCmpCheck()})
}

func TestErrDropFixture(t *testing.T) {
	_, p := loadFixture(t, "errdrop", "fixture/errdrop")
	checkFixture(t, DefaultConfig(), p, []*Check{ErrDropCheck()})
}

func TestSTAEngineFixture(t *testing.T) {
	_, p := loadFixture(t, "staengine", "fixture/staengine")
	cfg := DefaultConfig()
	cfg.STAEngineOnly = append(cfg.STAEngineOnly, "fixture/staengine")
	checkFixture(t, cfg, p, []*Check{APIGuardCheck()})
}

func TestSTAEngineOffByDefaultElsewhere(t *testing.T) {
	// Without the package on the STAEngineOnly list the same source is
	// clean (the fixture path is outside internal/, so the doc/panic rules
	// stay off too).
	_, p := loadFixture(t, "staengine", "fixture/staengine-off")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{APIGuardCheck()})
	if len(fs) != 0 {
		t.Errorf("unrestricted package flagged: %v", fs)
	}
}

func TestThermalEngineFixture(t *testing.T) {
	_, p := loadFixture(t, "thermalengine", "fixture/thermalengine")
	cfg := DefaultConfig()
	cfg.ThermalEngineOnly = append(cfg.ThermalEngineOnly, "fixture/thermalengine")
	checkFixture(t, cfg, p, []*Check{APIGuardCheck()})
}

func TestThermalEngineOffByDefaultElsewhere(t *testing.T) {
	// Without the package on the ThermalEngineOnly list the same source is
	// clean: the reference solver stays legal for unrestricted callers
	// (the thermal package's own equivalence tests).
	_, p := loadFixture(t, "thermalengine", "fixture/thermalengine-off")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{APIGuardCheck()})
	if len(fs) != 0 {
		t.Errorf("unrestricted package flagged: %v", fs)
	}
}

func TestPipelineOnlyFixture(t *testing.T) {
	_, p := loadFixture(t, "pipeline", "fixture/pipeline")
	cfg := DefaultConfig()
	cfg.PipelineOnly = append(cfg.PipelineOnly, "fixture/pipeline")
	checkFixture(t, cfg, p, []*Check{APIGuardCheck()})
}

func TestPipelineOnlyOffByDefaultElsewhere(t *testing.T) {
	// Without the package on the PipelineOnly list the same source is clean
	// (the fixture path is outside internal/, so the doc/panic rules stay
	// off too).
	_, p := loadFixture(t, "pipeline", "fixture/pipeline-off")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{APIGuardCheck()})
	if len(fs) != 0 {
		t.Errorf("unrestricted package flagged: %v", fs)
	}
}

func TestIndexedScanFixture(t *testing.T) {
	_, p := loadFixture(t, "indexedscan", "fixture/indexedscan")
	cfg := DefaultConfig()
	cfg.IndexedScanOnly = append(cfg.IndexedScanOnly, "fixture/indexedscan")
	checkFixture(t, cfg, p, []*Check{APIGuardCheck()})
}

func TestIndexedScanOffByDefaultElsewhere(t *testing.T) {
	// Without the package on the IndexedScanOnly list the same source is
	// clean (the fixture path is outside internal/, so the doc/panic rules
	// stay off too).
	_, p := loadFixture(t, "indexedscan", "fixture/indexedscan-off")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{APIGuardCheck()})
	if len(fs) != 0 {
		t.Errorf("unrestricted package flagged: %v", fs)
	}
}

func TestBackendRegistryFixture(t *testing.T) {
	_, p := loadFixture(t, "backendregistry", "fixture/backendregistry")
	cfg := DefaultConfig()
	cfg.BackendRegistryOnly = append(cfg.BackendRegistryOnly, "fixture/backendregistry")
	checkFixture(t, cfg, p, []*Check{APIGuardCheck()})
}

func TestBackendRegistryOffByDefaultElsewhere(t *testing.T) {
	// Without the package on the BackendRegistryOnly list the same source
	// is clean (the fixture path is outside internal/, so the doc/panic
	// rules stay off too).
	_, p := loadFixture(t, "backendregistry", "fixture/backendregistry-off")
	fs := Run(DefaultConfig(), []*Package{p}, []*Check{APIGuardCheck()})
	if len(fs) != 0 {
		t.Errorf("unrestricted package flagged: %v", fs)
	}
}

func TestAPIGuardFixture(t *testing.T) {
	_, p := loadFixture(t, "apiguard", "fixture/internal/apiguard")
	checkFixture(t, DefaultConfig(), p, []*Check{APIGuardCheck()})
}

func TestIgnoreDirectives(t *testing.T) {
	_, p := loadFixture(t, "ignore", "fixture/internal/ignorefix")
	findings := Run(DefaultConfig(), []*Package{p}, []*Check{FloatCmpCheck()})

	// The two reasoned directives suppress their findings; the wrong-check
	// and missing-reason cases survive, and the reasonless directive is
	// itself reported.
	var floatcmps, malformed int
	for _, f := range findings {
		switch f.Check {
		case "floatcmp":
			floatcmps++
		case "ignore":
			malformed++
			if !strings.Contains(f.Message, "missing a reason") {
				t.Errorf("unexpected ignore finding: %s", f)
			}
		default:
			t.Errorf("unexpected check %q: %s", f.Check, f)
		}
	}
	if floatcmps != 2 {
		t.Errorf("got %d surviving floatcmp findings, want 2:\n%s", floatcmps, renderAll(findings))
	}
	if malformed != 1 {
		t.Errorf("got %d malformed-directive findings, want 1:\n%s", malformed, renderAll(findings))
	}
}

// TestIgnoreMultiLineAttribution pins the directive-coverage rules for the
// two shapes the line+1 heuristic used to miss: a reason wrapped onto
// continuation comment lines, and a finding anchored on an inner line of a
// multi-line statement. It also pins that coverage stops at the statement.
func TestIgnoreMultiLineAttribution(t *testing.T) {
	p := loadSrc(t, "igspan", `// Package igspan is an ignore-attribution fixture.
package igspan

func wrapped(a, b float64) bool {
	//lint:ignore floatcmp the reason for this one wraps onto a
	// second comment line, which must not detach the directive
	// from the statement below.
	return a == b
}

func inner(a, b float64) []bool {
	//lint:ignore floatcmp the finding sits on an inner line of this
	// multi-line composite literal.
	out := []bool{
		a == b,
	}
	return out
}

func leak(a, b float64) bool {
	//lint:ignore floatcmp covers only the next statement
	_ = a == b
	return a == b
}
`)
	findings := Run(DefaultConfig(), []*Package{p}, []*Check{FloatCmpCheck()})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the uncovered one in leak:\n%s", len(findings), renderAll(findings))
	}
	if !strings.Contains(findings[0].Pos.String(), "igspan.go:23") {
		t.Errorf("surviving finding at %s, want the return in leak (line 23)", findings[0].Pos)
	}
}

// renderAll formats findings for failure messages.
func renderAll(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return sb.String()
}

func TestCheckByName(t *testing.T) {
	for _, c := range AllChecks() {
		got := CheckByName(c.Name)
		if got == nil || got.Name != c.Name {
			t.Errorf("CheckByName(%q) = %v", c.Name, got)
		}
	}
	if CheckByName("nope") != nil {
		t.Errorf("CheckByName(nope) should be nil")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: "floatcmp", Message: "boom"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "x.go:3:7: [floatcmp] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMatchAny(t *testing.T) {
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{nil, "internal/place", true},
		{[]string{"..."}, "internal/place", true},
		{[]string{"./..."}, "internal/place", true},
		{[]string{"internal/place"}, "internal/place", true},
		{[]string{"internal/place"}, "internal/power", false},
		{[]string{"internal/..."}, "internal/place", true},
		{[]string{"internal/..."}, "cmd/fold3d", false},
		{[]string{"cmd/..."}, "cmd/fold3d", true},
	}
	for _, c := range cases {
		if got := matchAny(c.patterns, c.rel); got != c.want {
			t.Errorf("matchAny(%v, %q) = %v, want %v", c.patterns, c.rel, got, c.want)
		}
	}
}
