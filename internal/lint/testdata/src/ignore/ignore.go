// Package ignore is a lint fixture: the //lint:ignore directive.
package ignore

// ExactSentinel suppresses a floatcmp finding with a reasoned directive on
// the preceding line.
func ExactSentinel(a float64) bool {
	//lint:ignore floatcmp the sentinel is assigned, never computed
	return a == -1e18
}

// TrailingDirective suppresses with a same-line directive.
func TrailingDirective(a, b float64) bool {
	return a == b //lint:ignore floatcmp fixture demonstrates trailing form
}

// WrongCheck names a different check, so the floatcmp finding survives.
func WrongCheck(a, b float64) bool {
	//lint:ignore mapiter reason aimed at the wrong check
	return a == b // want `exact == comparison of floating-point values`
}

// MissingReason has no justification: the directive itself is a finding
// and suppresses nothing.
func MissingReason(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b // want `exact == comparison of floating-point values`
}
