// Package serverexempt is a lint fixture for the server goroutine
// exemption: scheduler-style goroutines that are findings in an ordinary
// package but sanctioned when the package is on the GoroutineAllow list
// (the repo policy lists internal/jobs and cmd/fold3dd).
package serverexempt

// Serve mimics the daemon's worker/accept-loop shape: a long-lived
// goroutine draining a channel.
func Serve(queue chan func()) {
	go func() { // want `bare go statement`
		for job := range queue {
			job()
		}
	}()
}

// Drain mimics the shutdown waiter.
func Drain(done chan struct{}) {
	go close(done) // want `bare go statement`
}
