// Package apiguard is a lint fixture: undocumented exports and stray
// panics. The fixture import path contains "internal/" so the check
// applies.
package apiguard

// Documented is an exported, documented function: fine.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented has no doc comment`

// Widget is a documented exported type.
type Widget struct{}

type Gadget struct{} // want `exported type Gadget has no doc comment`

// DoThing is documented but panics outside the allowlist.
func DoThing() {
	panic("boom") // want `panic in DoThing`
}

// MustThing panics, but Must-prefixed helpers are conventionally allowed.
func MustThing() {
	panic("boom")
}

// Limit is a documented exported constant.
const Limit = 10

const Budget = 20 // want `exported constant Budget has no doc comment`

var Registry = map[string]int{} // want `exported variable Registry has no doc comment`

// Grouped constants are covered by the declaration comment.
const (
	ModeA = iota
	ModeB
)

// helper is unexported: no doc required, and its panic is still flagged.
func helper() {
	panic("internal") // want `panic in helper`
}

type stack []int

// Push is an exported method name on an unexported type: not API surface,
// no doc finding.
func (s *stack) Push(v int) { *s = append(*s, v) }

func (s *stack) Pop() int {
	old := *s
	v := old[len(old)-1]
	*s = old[:len(old)-1]
	return v
}
