// Package staengine is a lint fixture: a package restricted to the
// persistent timing engine that still calls the one-shot sta.Analyze.
package staengine

import (
	"fold3d/internal/netlist"
	"fold3d/internal/sta"
)

// Analyze is a local function that shares the restricted name; calling it
// must not trip the rule.
func Analyze() {}

// FullEveryTime calls the one-shot wrapper: flagged.
func FullEveryTime(b *netlist.Block) (*sta.Report, error) {
	return sta.Analyze(b, 100) // want `one-shot sta.Analyze .* persistent sta.Engine`
}

// Incremental drives the persistent engine: Engine.Analyze is allowed.
func Incremental(e *sta.Engine, dirty []int32) (*sta.Report, error) {
	for _, ni := range dirty {
		e.MarkNetDirty(ni)
	}
	return e.Analyze(100)
}

// LocalName calls the same-named local helper: not a sta call, not flagged.
func LocalName() {
	Analyze()
}
