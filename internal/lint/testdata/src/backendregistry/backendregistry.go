// Package backendregistry is a lint fixture: a package restricted to the
// placement-backend registry that still constructs backends directly.
package backendregistry

import (
	"fold3d/internal/place"
	"fold3d/internal/place/analytical"
)

// New is a local function that shares the restricted name; calling it must
// not trip the rule.
func New() {}

// DirectForce constructs the force backend behind the registry's back:
// flagged.
func DirectForce() place.Backend {
	return place.New(place.DefaultOptions()) // want `direct placement-backend construction fold3d/internal/place.New`
}

// DirectAnalytical constructs the analytical backend behind the registry's
// back: flagged.
func DirectAnalytical() place.Backend {
	return analytical.New(place.DefaultOptions()) // want `direct placement-backend construction fold3d/internal/place/analytical.New`
}

// ViaRegistry resolves the backend by name: place.NewBackend validates the
// name and is the sanctioned path, not flagged.
func ViaRegistry(name string) (place.Backend, error) {
	return place.NewBackend(name, place.DefaultOptions())
}

// LocalName calls the same-named local helper: not a backend constructor,
// not flagged.
func LocalName() {
	New()
}
