// Package thermalengine is a lint fixture: a package restricted to the
// persistent multigrid thermal engine that still calls the dense
// Gauss-Seidel reference solvers.
package thermalengine

import (
	"fold3d/internal/thermal"
)

// SolveReference is a local function that shares the restricted name;
// calling it must not trip the rule.
func SolveReference() {}

// OracleEveryTime calls the package-level reference solver: flagged.
func OracleEveryTime(pw [2][]float64, vertK []float64) *thermal.Result {
	return thermal.SolveReference(pw, 16, 16, 2, 1e-6, vertK, thermal.DefaultParams()) // want `reference solver thermal.SolveReference .* multigrid thermal.Engine`
}

// OracleTuned calls the tolerance-parameterized oracle: flagged too.
func OracleTuned(pw [2][]float64, vertK []float64) *thermal.Result {
	return thermal.SolveReferenceTol(pw, 16, 16, 2, 1e-6, vertK, thermal.DefaultParams(), 1e-6, 100) // want `reference solver thermal.SolveReferenceTol .* multigrid thermal.Engine`
}

// Incremental drives the persistent engine: methods are allowed.
func Incremental(e *thermal.Engine) (*thermal.Result, error) {
	e.AddVertKAt(3, 3, 1e-5)
	return e.Resolve()
}

// LocalName calls the same-named local helper: not a thermal call, not
// flagged.
func LocalName() {
	SolveReference()
}
