// Package lockbalance exercises the lock-release dataflow check: every
// Lock released on all paths, no double lock, no lock held across a
// blocking operation.
package lockbalance

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func balanced(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func earlyReturnLeak(c *counter, b bool) int {
	c.mu.Lock() // want `c.mu is not released on every path to return`
	if b {
		return 0
	}
	c.mu.Unlock()
	return c.n
}

func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want `c.mu locked again while already held`
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// condWaitLoop is the canonical condvar pattern: Wait atomically releases
// the locker while parked, so holding the lock here is correct and must
// not be flagged as held-across-blocking.
func condWaitLoop(c *counter, cond *sync.Cond) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.n == 0 {
		cond.Wait()
	}
	return c.n
}

func heldAcrossRecv(c *counter, ch chan int) int {
	c.mu.Lock()
	v := <-ch // want `c.mu is held across blocking channel receive`
	c.mu.Unlock()
	return v
}

func heldAcrossSelect(c *counter, ch chan int) {
	c.mu.Lock()
	select { // want `c.mu is held across blocking select`
	case <-ch:
	}
	c.mu.Unlock()
}

func rlockLeak(c *counter, b bool) int {
	c.rw.RLock() // want `c.rw \(read side\) is not released on every path to return`
	if b {
		return 0
	}
	c.rw.RUnlock()
	return c.n
}

func mayPanic() {}

// panicSafe is clean: the deferred unlock runs on the panic unwind too.
func panicSafe(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mayPanic()
}

func panicLeak(c *counter, b bool) {
	c.mu.Lock() // want `c.mu is not released on every path to return`
	if b {
		panic("boom")
	}
	c.mu.Unlock()
}

func conditionalDefer(c *counter, b bool) {
	c.mu.Lock() // want `c.mu is not released on every path to return`
	if b {
		defer c.mu.Unlock()
	}
}
