// Package indexedscan is a lint fixture: per-query linear scans over a
// block's Cells inside legalization-style loops, which the indexed-scan
// rule flags in packages restricted to spatial-index queries.
package indexedscan

import "fold3d/internal/netlist"

// BuildIndex does one flat pass over Cells to build an index: allowed.
func BuildIndex(b *netlist.Block) int {
	n := 0
	for i := range b.Cells {
		_ = i
		n++
	}
	return n
}

// PerRowScan rescans every cell for every candidate row: flagged.
func PerRowScan(b *netlist.Block, rows []float64) int {
	hits := 0
	for range rows {
		for i := range b.Cells { // want `linear scan over Block.Cells inside a loop`
			_ = i
			hits++
		}
	}
	return hits
}

// CountedScan spells the same quadratic scan as a counted loop: flagged.
func CountedScan(b *netlist.Block, cand []int) int {
	hits := 0
	for _, c := range cand {
		for j := 0; j < len(b.Cells); j++ { // want `linear scan over Block.Cells inside a loop`
			if j == c {
				hits++
			}
		}
	}
	return hits
}

// grid is a local type that happens to have a Cells field.
type grid struct{ Cells []int }

// OtherCells ranges a different type's Cells inside a loop: not the
// netlist Block, not flagged.
func OtherCells(g grid, rows []float64) int {
	n := 0
	for range rows {
		for _, c := range g.Cells {
			n += c
		}
	}
	return n
}

// StoredCallback builds a closure that scans Cells once when invoked:
// depth restarts inside the func literal, not flagged.
func StoredCallback(b *netlist.Block, rows []float64) func() int {
	var f func() int
	for range rows {
		f = func() int {
			n := 0
			for i := range b.Cells {
				_ = i
				n++
			}
			return n
		}
	}
	return f
}

// DeepNest flags the scan at any enclosing-loop depth.
func DeepNest(b *netlist.Block, rows, lanes []float64) int {
	n := 0
	for range rows {
		for range lanes {
			for i := range b.Cells { // want `linear scan over Block.Cells inside a loop`
				_ = i
				n++
			}
		}
	}
	return n
}
