// Package determinism is a lint fixture: ambient randomness and
// environment access in an algorithm package.
package determinism

import (
	"math/rand" // want `import of math/rand in algorithm package`
	"os"
	"time"
)

// Anneal draws randomness from the banned global generator.
func Anneal() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in algorithm package`
}

// Tuning reads the environment.
func Tuning() string {
	return os.Getenv("FOLD3D_TUNING") // want `os\.Getenv in algorithm package`
}

// Elapsed uses time for arithmetic only, which is fine — only Now is banned.
func Elapsed(d time.Duration) float64 {
	return d.Seconds()
}

// Spawn starts an unmanaged goroutine; concurrency must route through the
// sanctioned worker pool.
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want `bare go statement`
}

// now is a local function whose name collides with the banned selector; a
// call through a non-package qualifier must not be flagged.
type clock struct{}

func (clock) Now() int64 { return 0 }

// LocalNow calls a method named Now on a local type, not time.Now.
func LocalNow() int64 {
	var c clock
	return c.Now()
}
