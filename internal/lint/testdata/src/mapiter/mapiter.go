// Package mapiter is a lint fixture: order-dependent iteration over maps.
package mapiter

import (
	"fmt"
	"sort"
)

// Collect appends map keys without sorting afterwards.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	return keys
}

// CollectSorted appends map keys and sorts them after the loop: fine.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump prints during map iteration.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `Printf inside range over map`
	}
}

// Sum aggregates commutatively: order cannot leak, no finding.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Invert writes into another map: order-independent, no finding.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Scratch appends to a slice declared inside the loop body: per-iteration
// scratch space, no finding.
func Scratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// NestedSorted appends inside a conditional within the range and sorts in
// the enclosing block after the loop: fine.
func NestedSorted(m map[string]int) []string {
	var big []string
	for k, v := range m {
		if v > 10 {
			big = append(big, k)
		}
	}
	sort.Strings(big)
	return big
}
