// Package pipelinefix is a lint fixture: a package whose stage* functions
// are pipeline stage entry points that must only be invoked through the
// pipeline executor, yet some code calls them directly.
package pipelinefix

import "context"

// plan mimics pipeline.Plan: it collects stage funcs for an executor.
type plan struct {
	runs []func(context.Context) error
}

func (p *plan) add(run func(context.Context) error) { p.runs = append(p.runs, run) }

// state owns the stage methods.
type state struct{ n int }

// stagePrepare is a stage entry point.
func (s *state) stagePrepare(ctx context.Context) error { s.n++; return nil }

// stagePlace is a stage entry point that shortcuts into its upstream
// neighbor instead of going through the plan: flagged.
func (s *state) stagePlace(ctx context.Context) error {
	return s.stagePrepare(ctx) // want `direct call to pipeline stage stagePrepare`
}

// stageFree is a package-level stage entry point.
func stageFree(ctx context.Context) error { return nil }

// register references stages as method/function values — how stages are
// registered into a plan. References are not calls: allowed.
func register(s *state) *plan {
	p := &plan{}
	p.add(s.stagePrepare)
	p.add(s.stagePlace)
	p.add(stageFree)
	return p
}

// driver invokes a package-level stage directly: flagged.
func driver(ctx context.Context) error {
	return stageFree(ctx) // want `direct call to pipeline stage stageFree`
}

// stageless shares the prefix word but is not a stage entry point (no
// capitalized phase name follows); calling it is fine.
func stageless(ctx context.Context) error { return nil }

// helper calls the non-stage function: not flagged.
func helper(ctx context.Context) error { return stageless(ctx) }
