// Package floatcmp is a lint fixture: exact floating-point comparisons.
package floatcmp

// Eps is the tolerance a correct comparison would use.
const Eps = 1e-9

// sentinel is a named float constant; comparing against it is flagged
// (unlike the literal 0) so the exactness is justified at the site.
const sentinel = -1e18

// Equal compares two computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want `exact == comparison of floating-point values`
}

// NotEqual compares two computed floats exactly.
func NotEqual(a, b float64) bool {
	return a != b // want `exact != comparison of floating-point values`
}

// IsUnset compares against a named sentinel constant: flagged.
func IsUnset(a float64) bool {
	return a == sentinel // want `exact == comparison of floating-point values`
}

// ZeroGuard tests the zero-value sentinel idiom: exempt.
func ZeroGuard(act float64) float64 {
	if act == 0 {
		act = 0.12
	}
	return act
}

// Ordered uses inequalities, which are fine.
func Ordered(a, b float64) bool {
	return a < b || a > b
}

// Ints compares integers: not a float comparison.
func Ints(a, b int) bool {
	return a == b
}

// ConstFold compares two untyped constants: exact by definition, exempt.
func ConstFold() bool {
	return 0.1+0.2 == 0.3
}

// Near is how the comparison should be written.
func Near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < Eps
}
