// Package errdrop is a lint fixture: silently discarded errors.
package errdrop

import (
	"fmt"
	"strings"
)

// mayFail returns only an error.
func mayFail() error { return nil }

// valueAndErr returns a value and an error.
func valueAndErr() (int, error) { return 0, nil }

// Drops discards errors in every banned position.
func Drops() {
	mayFail()         // want `call discards its error result`
	valueAndErr()     // want `call discards its error result`
	defer mayFail()   // want `deferred call discards its error result`
	go valueAndErr()  // want `call discards its error result`
	_ = mayFail()     // explicit discard: fine
	_, _ = valueAndErr()
}

// Handles checks the error: fine.
func Handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := valueAndErr()
	_ = n
	return err
}

// Exempt exercises the conventional exclusion list.
func Exempt(sb *strings.Builder) {
	fmt.Println("progress") // fmt print family: exempt
	fmt.Printf("%d\n", 1)
	fmt.Fprintf(sb, "%d\n", 2)
	sb.WriteString("x") // strings.Builder never fails: exempt
}

// NoError calls a function with no error result: fine.
func NoError() {
	noErr()
}

func noErr() int { return 0 }
