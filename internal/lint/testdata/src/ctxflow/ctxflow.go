// Package ctxflow exercises the context-liveness dataflow check: a
// received context must guard every blocking operation on all paths.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

func recvGuarded(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func recvBare(ctx context.Context, ch chan int) int {
	v := <-ch // want `blocking channel receive is not selectable on the received ctx`
	return v
}

func sendBare(ctx context.Context, ch chan int) {
	ch <- 1 // want `blocking channel send is not selectable on the received ctx`
}

func selectNoDone(ctx context.Context, a, b chan int) {
	select { // want `select blocks without a live <-ctx.Done\(\) case`
	case <-a:
	case <-b:
	}
}

func nonblockingSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func shadowed(ctx context.Context, ch chan int) {
	ctx = context.Background() // want `rebound to a dead context`
	select {                   // want `select blocks without a live <-ctx.Done\(\) case`
	case <-ch:
	case <-ctx.Done():
	}
}

func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond) // want `blocking time.Sleep does not receive the live ctx`
}

func waits(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want `blocking sync.WaitGroup.Wait does not receive the live ctx`
}

// blockingHelper blocks without a context of its own; callers holding a
// context must not call it bare.
func blockingHelper(ch chan int) int {
	return <-ch
}

func callsBlocking(ctx context.Context, ch chan int) int {
	return blockingHelper(ch) // want `blocking call to blocking blockingHelper does not receive the live ctx`
}

func derived(ctx context.Context, ch chan int) {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	select {
	case <-ch:
	case <-sub.Done():
	}
}
