// Package nondetflow exercises the taint dataflow check: values tainted by
// map iteration order, the wall clock or math/rand must pass a sort-style
// normalization before reaching a fingerprint, cache key or result struct.
package nondetflow

import (
	"sort"
	"time"
)

// Hasher mimics the pipeline hasher: every mix-method argument is a sink.
type Hasher struct{ data []string }

// Str mixes a string into the hash.
func (h *Hasher) Str(s string) { h.data = append(h.data, s) }

// Cache mimics the artifact cache: Get/Put keys are sinks.
type Cache struct{ m map[string]string }

// Get looks up a key.
func (c *Cache) Get(key string) string { return c.m[key] }

// RunResult mimics a result struct: wall-clock/rand values are sinks here.
type RunResult struct {
	Name  string
	Stamp int64
}

// keysOf is the intermediate helper: its summary must carry the map-order
// taint to callers.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func hashUnsorted(h *Hasher, m map[string]int) {
	ks := keysOf(m)
	for _, k := range ks {
		h.Str(k) // want `ordered by random map iteration`
	}
}

func hashSorted(h *Hasher, m map[string]int) {
	ks := keysOf(m)
	sort.Strings(ks)
	for _, k := range ks {
		h.Str(k)
	}
}

func fingerprint(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

func useFingerprint(m map[string]bool) string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return fingerprint(names) // want `a fingerprint computation`
}

func cacheStamp(c *Cache) string {
	key := time.Now().String()
	return c.Get(key) // want `read from the wall clock`
}

func stampedResult(name string) RunResult {
	return RunResult{
		Name:  name,
		Stamp: time.Now().UnixNano(), // want `read from the wall clock`
	}
}

// orderedResult stores a map-ordered VALUE in a result: each value is
// deterministic element-wise, so this is tolerated (order taint, not value
// taint).
func orderedResult(m map[string]int) RunResult {
	last := ""
	for k := range m {
		last = k
	}
	return RunResult{Name: last}
}

// Keys leaks map order out of an exported algorithm-package function.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want `exported Keys returns a value ordered by random map iteration`
}

// SortedKeys is the fixed form of Keys.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sum is clean: integer accumulation over a map is order-independent.
func sum(h *Hasher, m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
