package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"fold3d/internal/lint/cfg"
	"fold3d/internal/lint/dataflow"
)

// This file is the shared infrastructure of the dataflow checks (ctxflow,
// lockbalance, nondetflow): classification of blocking operations, and
// enumeration of every function body in a package — declarations and
// literals — with its control-flow graph.

// blockOp is one potentially blocking operation found in a CFG block node.
type blockOp struct {
	// pos anchors the finding.
	pos token.Pos
	// desc names the operation for the finding message ("channel send",
	// "sync.WaitGroup.Wait", ...).
	desc string
	// sel is non-nil when the op is a whole select statement (classified as
	// a unit; its comm statements are never ops of their own).
	sel *ast.SelectStmt
	// call is non-nil when the op is a blocking call.
	call *ast.CallExpr
}

// blockInfo classifies the blocking surface of one package: which
// statements can park the goroutine, which selects are nonblocking, and
// which in-package functions block transitively (so calling one is itself a
// blocking operation).
type blockInfo struct {
	p *Package
	// comm marks select comm statements: their send/receive is governed by
	// the enclosing select, which is classified as a whole.
	comm map[ast.Stmt]bool
	// blockingFns marks in-package functions that can block without being
	// interruptible by a context of their own.
	blockingFns map[*types.Func]bool
}

// newBlockInfo indexes the package's selects and computes the in-package
// blocking-function summaries to a fixpoint.
func newBlockInfo(p *Package) *blockInfo {
	bi := &blockInfo{p: p, comm: map[ast.Stmt]bool{}, blockingFns: map[*types.Func]bool{}}
	var decls []*ast.FuncDecl
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					decls = append(decls, x)
				}
			case *ast.SelectStmt:
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						bi.comm[cc.Comm] = true
					}
				}
			}
			return true
		})
	}
	// Propagate "can block" through in-package call edges. The decl slice is
	// in file order, so the fixpoint iteration is deterministic.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || bi.blockingFns[obj] {
				continue
			}
			if bi.fnBlocks(fd) {
				bi.blockingFns[obj] = true
				changed = true
			}
		}
	}
	return bi
}

// fnBlocks reports whether fd's body contains a blocking operation that a
// caller must care about: goroutine launches and function literals do not
// block the calling goroutine here, a select with a default or a live
// ctx.Done() case bounds its own wait, and deferred calls run at exit where
// the exit-path rules apply instead.
func (bi *blockInfo) fnBlocks(fd *ast.FuncDecl) bool {
	blocks := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		if st, ok := n.(ast.Stmt); ok && bi.comm[st] {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocks = true
			}
		case *ast.RangeStmt:
			if bi.isChanType(x.X) {
				blocks = true
			}
		case *ast.SelectStmt:
			if !selHasDefault(x) && !bi.selHasCtxDone(x) {
				blocks = true
			}
		case *ast.CallExpr:
			if bi.classifyCall(x) != "" {
				blocks = true
			}
		}
		return !blocks
	})
	return blocks
}

// classifyCall returns a description when the call can block the current
// goroutine: time.Sleep, a sync Wait (WaitGroup, Cond), the worker pool's
// Run, or an in-package function already summarized as blocking.
func (bi *blockInfo) classifyCall(call *ast.CallExpr) string {
	p := bi.p
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && importedPath(p, id) == "time" && sel.Sel.Name == "Sleep" {
			return "time.Sleep"
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			if pkgPath == "sync" && name == "Wait" {
				return "sync." + recvTypeName(fn) + ".Wait"
			}
			if name == "Run" && matchesSuffix(pkgPath, []string{"internal/pool"}) {
				return "pool.Run"
			}
		}
	}
	if fn := calleeFunc(p, call); fn != nil && bi.blockingFns[fn] {
		return "call to blocking " + fn.Name()
	}
	return ""
}

// nodeOps enumerates the blocking operations in one CFG block node. Select
// comm statements are skipped (the select marker node is the op); go and
// defer statements do not block this goroutine at this point.
func (bi *blockInfo) nodeOps(n ast.Node) []blockOp {
	if st, ok := n.(ast.Stmt); ok && bi.comm[st] {
		return nil
	}
	var out []blockOp
	cfg.ShallowInspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			out = append(out, blockOp{pos: x.Arrow, desc: "channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				out = append(out, blockOp{pos: x.OpPos, desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if bi.isChanType(x.X) {
				out = append(out, blockOp{pos: x.For, desc: "range over channel"})
			}
		case *ast.SelectStmt:
			if !selHasDefault(x) {
				out = append(out, blockOp{pos: x.Select, desc: "select", sel: x})
			}
		case *ast.CallExpr:
			if desc := bi.classifyCall(x); desc != "" {
				out = append(out, blockOp{pos: x.Pos(), desc: desc, call: x})
			}
		}
		return true
	})
	return out
}

// isChanType reports whether e has channel type.
func (bi *blockInfo) isChanType(e ast.Expr) bool {
	t := bi.p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selHasDefault reports whether sel contains a default clause, making it
// nonblocking.
func selHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// selHasCtxDone reports whether sel has a <-x.Done() case receiving from a
// context.Context, so its wait is bounded by cancellation. Liveness of that
// context is the ctxflow check's business; for blocking summaries the
// syntactic case is enough.
func (bi *blockInfo) selHasCtxDone(sel *ast.SelectStmt) bool {
	aware := false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil || aware {
			continue
		}
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if doneRecvCtx(bi.p, n) != nil {
				aware = true
			}
			return !aware
		})
	}
	return aware
}

// doneRecvCtx matches `<-x.Done()` with x of type context.Context and
// returns x, or nil.
func doneRecvCtx(p *Package, n ast.Node) ast.Expr {
	u, ok := n.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil
	}
	call, ok := u.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || !isContextType(p.Info.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}

// calleeFunc resolves the function object a call statically invokes, nil
// for indirect calls, conversions and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// recvTypeName names a method's receiver type ("WaitGroup" for
// (*sync.WaitGroup).Wait), or "?" when fn is not a method.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	if name := namedTypeName(sig.Recv().Type()); name != "" {
		return name
	}
	return "?"
}

// namedTypeName unwraps pointers and returns the declared name of a named
// type, or "" for unnamed types.
func namedTypeName(t types.Type) string {
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
	return ""
}

// fnBody is one analyzable function body: a declaration or a literal.
type fnBody struct {
	// name labels the body in diagnostics.
	name string
	// exported reports whether the body is an exported declaration.
	exported bool
	// ftype carries the signature syntax (parameter identifiers).
	ftype *ast.FuncType
	// graph is the body's control-flow graph.
	graph *cfg.Graph
	// pos is the body's declaration position.
	pos token.Pos
}

// funcBodiesOf enumerates every function body in the package with its
// graph: the given declarations first, then every function literal (in file
// order). Literals get graphs of their own because cfg.New never expands
// them in their enclosing body.
func funcBodiesOf(p *Package, funcs []dataflow.FuncInfo) []fnBody {
	var out []fnBody
	for _, fi := range funcs {
		out = append(out, fnBody{
			name:     fi.Decl.Name.Name,
			exported: fi.Decl.Name.IsExported(),
			ftype:    fi.Decl.Type,
			graph:    fi.Graph,
			pos:      fi.Decl.Pos(),
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, fnBody{name: "func literal", ftype: lit.Type, graph: cfg.New(lit.Body), pos: lit.Pos()})
			}
			return true
		})
	}
	return out
}
