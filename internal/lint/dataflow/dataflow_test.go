package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"fold3d/internal/lint/cfg"
)

// load type-checks one source string and returns the info and files.
func load(t *testing.T, src string) (*types.Info, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return info, file
}

// testSpec builds a spec whose sources are range-over-map and calls to a
// function literally named "now", and whose sanitizers are sort-named
// calls.
func testSpec(info *types.Info) *TaintSpec {
	return &TaintSpec{
		Info: info,
		Source: func(n ast.Node) string {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						return "map order"
					}
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "now" {
					return "wall clock"
				}
			}
			return ""
		},
		Sanitizes: func(call *ast.CallExpr) bool {
			switch f := call.Fun.(type) {
			case *ast.Ident:
				return strings.HasPrefix(f.Name, "sort")
			case *ast.SelectorExpr:
				return strings.HasPrefix(f.Sel.Name, "Sort") || f.Sel.Name == "Strings"
			}
			return false
		},
	}
}

// taintAtReturn runs the analysis on the named function and returns the
// taint reason of its first return operand ("" if clean).
func taintAtReturn(t *testing.T, src, fn string) string {
	t.Helper()
	info, file := load(t, src)
	spec := testSpec(info)
	funcs := Funcs(info, []*ast.File{file})
	Summarize(spec, funcs)
	for _, fi := range funcs {
		if fi.Decl.Name.Name != fn {
			continue
		}
		return returnTaint(spec, fi, Taint{})
	}
	t.Fatalf("function %s not found", fn)
	return ""
}

func TestMapRangeTaintsAppend(t *testing.T) {
	src := `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("map-ordered append should taint the returned slice")
	}
}

func TestSortSanitizes(t *testing.T) {
	src := `package p
import "sort"
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}`
	if got := taintAtReturn(t, src, "f"); got != "" {
		t.Errorf("sorted slice should be clean, got taint %q", got)
	}
}

func TestSortOnOnePathOnly(t *testing.T) {
	src := `package p
import "sort"
func f(m map[string]int, b bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if b {
		sort.Strings(out)
	}
	return out
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("a sort on only one path must not clean the join")
	}
}

func TestIntegerAccumulationIsClean(t *testing.T) {
	src := `package p
func f(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}`
	if got := taintAtReturn(t, src, "f"); got != "" {
		t.Errorf("integer += over a map is order-independent, got taint %q", got)
	}
}

func TestFloatAccumulationIsTainted(t *testing.T) {
	src := `package p
func f(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("float += over a map accumulates rounding in iteration order")
	}
}

func TestCallSourceTaints(t *testing.T) {
	src := `package p
func now() int64 { return 0 }
func f() int64 {
	t := now()
	return t
}`
	if got := taintAtReturn(t, src, "f"); got != "wall clock" {
		t.Errorf("now() result should carry the wall-clock reason, got %q", got)
	}
}

func TestSummaryPropagatesThroughHelper(t *testing.T) {
	src := `package p
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
func f(m map[string]int) []string {
	ks := keys(m)
	return ks
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("helper-returned map-ordered slice should taint the caller")
	}
}

func TestSummarySanitizedHelperIsClean(t *testing.T) {
	src := `package p
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
func f(m map[string]int) []string {
	return keys(m)
}`
	if got := taintAtReturn(t, src, "f"); got != "" {
		t.Errorf("helper that sorts before returning should be clean, got %q", got)
	}
}

func TestRangeOverTaintedSliceKeepsTaint(t *testing.T) {
	src := `package p
func f(m map[string]int) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	s := ""
	for _, v := range out {
		s = s + v
	}
	return s
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("ranging a map-ordered slice yields order-tainted elements")
	}
}

func TestReassignmentClearsTaint(t *testing.T) {
	src := `package p
func now() int64 { return 0 }
func f() int64 {
	t := now()
	t = 7
	return t
}`
	if got := taintAtReturn(t, src, "f"); got != "" {
		t.Errorf("strong update should clear taint, got %q", got)
	}
}

func TestSolveLoopConverges(t *testing.T) {
	src := `package p
func f(m map[string]int) []string {
	var out []string
	for i := 0; i < 3; i++ {
		for k := range m {
			out = append(out, k)
		}
	}
	return out
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("nested loop taint lost")
	}
}

func TestTupleAssignFromCall(t *testing.T) {
	src := `package p
func now() (int64, bool) { return 0, false }
func f() int64 {
	t, _ := now()
	return t
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("tuple destination should inherit call taint")
	}
}

func TestSelectorWriteTaintsRoot(t *testing.T) {
	src := `package p
type box struct{ v []string }
func f(m map[string]int) box {
	var b box
	for k := range m {
		b.v = append(b.v, k)
	}
	return b
}`
	if got := taintAtReturn(t, src, "f"); got == "" {
		t.Errorf("writing a tainted value through a field should taint the root")
	}
}

// TestSolveDeterministic runs the same analysis many times and requires
// identical fact tables (guards against map-ordered worklists).
func TestSolveDeterministic(t *testing.T) {
	src := `package p
func f(m map[string]int, b bool) []string {
	var out []string
	for k := range m {
		if b {
			out = append(out, k)
		}
	}
	return out
}`
	info, file := load(t, src)
	spec := testSpec(info)
	funcs := Funcs(info, []*ast.File{file})
	var first string
	for i := 0; i < 20; i++ {
		g := funcs[0].Graph
		ins := Solve(g, Taint{}, spec.Lattice())
		var sb strings.Builder
		for bi, facts := range ins {
			sb.WriteString(string(rune('a' + bi%26)))
			sb.WriteString(":")
			for range facts {
				sb.WriteString("x")
			}
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Fatalf("run %d diverged: %q vs %q", i, sb.String(), first)
		}
	}
}

func TestFuncsBuildsGraphs(t *testing.T) {
	src := `package p
func a() {}
func b() int { return 1 }`
	info, file := load(t, src)
	funcs := Funcs(info, []*ast.File{file})
	if len(funcs) != 2 {
		t.Fatalf("want 2 funcs, got %d", len(funcs))
	}
	for _, fi := range funcs {
		if fi.Graph == nil || fi.Obj == nil {
			t.Errorf("func %s missing graph or object", fi.Decl.Name.Name)
		}
	}
	_ = cfg.Graph{}
}
