// Package dataflow is the forward dataflow framework of the fold3dlint
// suite: a worklist fixpoint solver over internal/lint/cfg graphs, plus a
// taint engine built on it that tracks how nondeterministically-ordered
// values (map iteration, wall-clock reads, global randomness) flow through
// assignments and calls toward fingerprint-grade sinks.
//
// The solver is generic over the fact type: a check supplies a Lattice —
// bottom element, join, equality, clone and a per-block transfer function —
// and receives the IN facts of every reachable block at the fixpoint. Joins
// may model either "may" analyses (union: taint) or "must" analyses
// (intersection: a context variable live on every path).
//
// Call-summary propagation keeps the taint analysis useful across function
// boundaries inside one package: Summarize runs every function body to its
// own fixpoint twice (arguments clean, arguments tainted) and records
// whether the function introduces taint of its own and whether it forwards
// argument taint to its results; ExprTaint then consults those summaries at
// call sites, so a map-ordered slice returned by a helper is still tainted
// two calls later in its caller.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"fold3d/internal/lint/cfg"
)

// Lattice describes one forward analysis over a graph.
type Lattice[S any] struct {
	// Bottom returns the facts of an unvisited block.
	Bottom func() S
	// Clone returns an independent copy Transfer may mutate.
	Clone func(S) S
	// Join merges src into dst and returns the result (dst may be reused).
	Join func(dst, src S) S
	// Equal reports fact equality, the fixpoint termination test.
	Equal func(a, b S) bool
	// Transfer applies one block's nodes to the incoming facts and returns
	// the outgoing facts. It owns its argument (a clone).
	Transfer func(b *cfg.Block, in S) S
}

// Solve runs the forward fixpoint: the entry block starts from boundary,
// every other reachable block's IN facts are the join over its
// predecessors' OUT facts. The returned slice is indexed by Block.Index;
// unreachable blocks keep Bottom. Iteration order is deterministic (dense
// block indices, ascending), so two runs produce identical fact tables.
func Solve[S any](g *cfg.Graph, boundary S, lat Lattice[S]) []S {
	n := len(g.Blocks)
	in := make([]S, n)
	out := make([]S, n)
	visited := make([]bool, n)
	for i := range in {
		in[i] = lat.Bottom()
		out[i] = lat.Bottom()
	}
	in[g.Entry.Index] = boundary
	preds := g.Preds()
	reach := g.Reachable()

	dirty := make([]bool, n)
	dirty[g.Entry.Index] = true
	// The round cap guards termination against a non-monotone transfer
	// (strong updates may kill facts); real functions converge in a few
	// rounds, so hitting the cap just freezes the analysis conservatively.
	for round, changed := 0, true; changed && round < 1000; round++ {
		changed = false
		for i := 0; i < n; i++ {
			if !dirty[i] || !reach[i] {
				continue
			}
			dirty[i] = false
			b := g.Blocks[i]
			if i != g.Entry.Index {
				merged := lat.Bottom()
				first := true
				for _, p := range preds[i] {
					if !reach[p.Index] || !visited[p.Index] {
						continue
					}
					if first {
						merged = lat.Clone(out[p.Index])
						first = false
					} else {
						merged = lat.Join(merged, out[p.Index])
					}
				}
				in[i] = merged
			}
			next := lat.Transfer(b, lat.Clone(in[i]))
			if !visited[i] || !lat.Equal(next, out[i]) {
				visited[i] = true
				out[i] = next
				changed = true
				for _, s := range b.Succs {
					dirty[s.Index] = true
				}
			}
		}
	}
	return in
}

// Taint maps a tainted object to the human-readable reason it is tainted
// ("ordered by map iteration", "read from the wall clock", ...). The
// reason threads through propagation so the eventual finding can name the
// original source.
type Taint map[types.Object]string

// cloneTaint copies a fact set.
func cloneTaint(t Taint) Taint {
	out := make(Taint, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// joinTaint unions (may-analysis): a value tainted on any path is tainted.
func joinTaint(dst, src Taint) Taint {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
	return dst
}

// equalTaint compares fact sets by key set (reasons are informational).
func equalTaint(a, b Taint) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Summary records one function's taint behavior for call-site propagation.
type Summary struct {
	// TaintsResult is non-empty when the function returns a tainted value
	// even with clean arguments (it contains a source); the string is the
	// reason of the first such source.
	TaintsResult string
	// PropagatesArgs reports whether tainted arguments can flow into the
	// function's results.
	PropagatesArgs bool
}

// TaintSpec wires a concrete taint policy into the engine.
type TaintSpec struct {
	// Info resolves identifiers and expression types.
	Info *types.Info
	// Source returns a non-empty reason when n taints the values it
	// produces: a call expression (time.Now(), rand.Int()) or a range
	// statement whose iteration order is nondeterministic (range over a
	// map). The key/value bindings of a tainted range become tainted.
	Source func(n ast.Node) string
	// Sanitizes reports whether a call normalizes its arguments in place
	// (sort.Strings(x), slices.Sort(x)): the arguments' taint is cleared
	// and the call's own results are clean.
	Sanitizes func(call *ast.CallExpr) bool
	// Summaries carries the package-local function summaries consulted at
	// call sites; nil means every unknown call conservatively propagates
	// argument taint to its results.
	Summaries map[*types.Func]Summary
	// OrderOnly, when non-nil, reports whether a taint reason denotes pure
	// ORDER nondeterminism (map iteration) rather than nondeterministic
	// values. Order taint dies at a keyed map insertion — `m[k] = v` inside
	// a map range builds the same map in any iteration order — while value
	// taint (wall clock, rand) survives it.
	OrderOnly func(reason string) bool
}

// Lattice returns the solver lattice for this taint policy.
func (sp *TaintSpec) Lattice() Lattice[Taint] {
	return Lattice[Taint]{
		Bottom:   func() Taint { return Taint{} },
		Clone:    cloneTaint,
		Join:     joinTaint,
		Equal:    equalTaint,
		Transfer: sp.Transfer,
	}
}

// Transfer applies one block's nodes to the fact set in order.
func (sp *TaintSpec) Transfer(b *cfg.Block, in Taint) Taint {
	for _, n := range b.Nodes {
		sp.node(n, in)
	}
	return in
}

// Step applies one block node to the facts in place. Reporting passes use
// it to replay a block's transfer statement by statement while inspecting
// sink sites with the facts that hold exactly there.
func (sp *TaintSpec) Step(n ast.Node, facts Taint) { sp.node(n, facts) }

// Clone returns an independent copy of the fact set.
func (t Taint) Clone() Taint { return cloneTaint(t) }

// node applies one block node to the fact set.
func (sp *TaintSpec) node(n ast.Node, facts Taint) {
	switch s := n.(type) {
	case *ast.RangeStmt:
		if reason := sp.Source(s); reason != "" {
			sp.taintDef(s.Key, reason, facts)
			sp.taintDef(s.Value, reason, facts)
		} else {
			// Ranging over a deterministic sequence: the bindings inherit
			// the taint of the ranged operand (a map-ordered slice stays
			// tainted element by element), or become clean.
			if reason := sp.ExprTaint(s.X, facts); reason != "" {
				sp.taintDef(s.Key, reason, facts)
				sp.taintDef(s.Value, reason, facts)
			} else {
				sp.clearDef(s.Key, facts)
				sp.clearDef(s.Value, facts)
			}
		}
	case *ast.AssignStmt:
		sp.assign(s, facts)
	case *ast.ExprStmt:
		sp.sideEffects(s.X, facts)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					reason := ""
					if i < len(vs.Values) {
						reason = sp.ExprTaint(vs.Values[i], facts)
					}
					sp.setDef(name, reason, facts)
				}
			}
		}
	case *ast.SendStmt:
		sp.sideEffects(s.Value, facts)
	case *ast.ReturnStmt:
		// Sinks are the check's business; nothing to transfer.
	case ast.Expr:
		sp.sideEffects(s, facts)
	case *ast.DeferStmt:
		sp.sideEffects(s.Call, facts)
	case *ast.GoStmt:
		sp.sideEffects(s.Call, facts)
	}
}

// assign moves taint across one assignment, handling the tuple forms and
// the integer-commutative exemption for compound assignments.
func (sp *TaintSpec) assign(s *ast.AssignStmt, facts Taint) {
	for _, rhs := range s.Rhs {
		sp.sideEffects(rhs, facts)
	}
	switch {
	case s.Tok == token.ASSIGN || s.Tok == token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				sp.setDef(lhs, sp.ExprTaint(s.Rhs[i], facts), facts)
			}
			return
		}
		// x, y := f(): every destination inherits the call's taint.
		reason := ""
		if len(s.Rhs) == 1 {
			reason = sp.ExprTaint(s.Rhs[0], facts)
		}
		for _, lhs := range s.Lhs {
			sp.setDef(lhs, reason, facts)
		}
	default:
		// Compound assignment. Integer accumulation (sum += v, n |= bit)
		// is order-independent and exact, so taint does NOT propagate;
		// float and string accumulation are order-sensitive (rounding,
		// concatenation order) and do.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		if sp.isInteger(s.Lhs[0]) {
			return
		}
		if reason := sp.ExprTaint(s.Rhs[0], facts); reason != "" {
			sp.taintDef(s.Lhs[0], reason, facts)
		}
	}
}

// sideEffects applies call-level effects (sanitizer calls clearing their
// arguments) found anywhere inside e.
func (sp *TaintSpec) sideEffects(e ast.Expr, facts Taint) {
	cfg.ShallowInspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sp.Sanitizes != nil && sp.Sanitizes(call) {
			for _, arg := range call.Args {
				sp.clearDef(arg, facts)
			}
		}
		return true
	})
}

// ExprTaint returns the reason e's value is tainted under facts, or "".
func (sp *TaintSpec) ExprTaint(e ast.Expr, facts Taint) string {
	if e == nil {
		return ""
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := sp.object(x); obj != nil {
			return facts[obj]
		}
		return ""
	case *ast.ParenExpr:
		return sp.ExprTaint(x.X, facts)
	case *ast.CallExpr:
		return sp.callTaint(x, facts)
	case *ast.UnaryExpr:
		return sp.ExprTaint(x.X, facts)
	case *ast.StarExpr:
		return sp.ExprTaint(x.X, facts)
	case *ast.BinaryExpr:
		if r := sp.ExprTaint(x.X, facts); r != "" {
			return r
		}
		return sp.ExprTaint(x.Y, facts)
	case *ast.IndexExpr:
		// Indexing a tainted slice yields a tainted element; a clean
		// container indexed by a tainted key yields a deterministic value
		// (the key's VALUE is deterministic; only its arrival order was
		// not), so the key does not taint the result.
		return sp.ExprTaint(x.X, facts)
	case *ast.SliceExpr:
		return sp.ExprTaint(x.X, facts)
	case *ast.SelectorExpr:
		// Field reads propagate the taint of their operand; package-
		// qualified identifiers resolve to nothing and stay clean.
		return sp.ExprTaint(x.X, facts)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if r := sp.ExprTaint(el, facts); r != "" {
				return r
			}
		}
		return ""
	case *ast.TypeAssertExpr:
		return sp.ExprTaint(x.X, facts)
	default:
		return ""
	}
}

// callTaint computes the taint of a call's results: sources taint
// unconditionally, sanitizers return clean values, and everything else
// follows the callee's summary (package-local) or the conservative default
// (argument taint flows through).
func (sp *TaintSpec) callTaint(call *ast.CallExpr, facts Taint) string {
	if sp.Source != nil {
		if reason := sp.Source(call); reason != "" {
			return reason
		}
	}
	if sp.Sanitizes != nil && sp.Sanitizes(call) {
		return ""
	}
	argTaint := ""
	for _, arg := range call.Args {
		if r := sp.ExprTaint(arg, facts); r != "" {
			argTaint = r
			break
		}
	}
	if argTaint == "" {
		// A method call on a tainted receiver produces tainted results
		// (names[0].String(), tainted.Field()).
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			argTaint = sp.ExprTaint(sel.X, facts)
		}
	}
	if fn := sp.callee(call); fn != nil {
		if sum, ok := sp.Summaries[fn]; ok {
			if sum.TaintsResult != "" {
				return sum.TaintsResult
			}
			if sum.PropagatesArgs {
				return argTaint
			}
			return ""
		}
	}
	// Unknown callee: conservatively forward argument taint. Conversions
	// (T(x)) land here too via the type-expression "callee" and behave the
	// same way.
	return argTaint
}

// callee resolves the called function object, nil for indirect calls,
// conversions and builtins.
func (sp *TaintSpec) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := sp.Info.Uses[id].(*types.Func)
	return fn
}

// object resolves an identifier to its object (definition or use).
func (sp *TaintSpec) object(id *ast.Ident) types.Object {
	if obj := sp.Info.Defs[id]; obj != nil {
		return obj
	}
	return sp.Info.Uses[id]
}

// rootIdent unwraps an lvalue to its base identifier: x, x.f, x[i], *x all
// root at x. Returns nil for unrooted expressions.
func (sp *TaintSpec) rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// setDef assigns taint state to an lvalue: tainted when reason != "",
// clean otherwise. Writes through selectors or indices only ADD taint to
// the root object (m[k] = tainted taints m) — a clean write through a
// selector does not prove the whole aggregate clean, so it clears nothing.
func (sp *TaintSpec) setDef(lhs ast.Expr, reason string, facts Taint) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := sp.object(id); obj != nil {
			if reason != "" {
				facts[obj] = reason
			} else {
				delete(facts, obj)
			}
		}
		return
	}
	if reason == "" {
		return
	}
	// Keyed map insertion is an unordered accumulation: pure order taint
	// does not survive it (the resulting map is identical in any iteration
	// order). Value taint still poisons the container.
	if idx, ok := lhs.(*ast.IndexExpr); ok && sp.isMap(idx.X) && sp.OrderOnly != nil && sp.OrderOnly(reason) {
		return
	}
	if root := sp.rootIdent(lhs); root != nil {
		if obj := sp.object(root); obj != nil {
			facts[obj] = reason
		}
	}
}

// isMap reports whether e's type is a map.
func (sp *TaintSpec) isMap(e ast.Expr) bool {
	t := sp.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// taintDef adds taint to an lvalue without ever clearing.
func (sp *TaintSpec) taintDef(lhs ast.Expr, reason string, facts Taint) {
	if lhs == nil || reason == "" {
		return
	}
	sp.setDef(lhs, reason, facts)
}

// clearDef removes the taint of an lvalue's root object.
func (sp *TaintSpec) clearDef(e ast.Expr, facts Taint) {
	if e == nil {
		return
	}
	if root := sp.rootIdent(e); root != nil {
		if obj := sp.object(root); obj != nil {
			delete(facts, obj)
		}
	}
}

// isInteger reports whether e's type is an integer kind (the commutative
// accumulation exemption).
func (sp *TaintSpec) isInteger(e ast.Expr) bool {
	t := sp.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// FuncInfo pairs one function body with its graph and object for
// summarization.
type FuncInfo struct {
	// Obj is the function's type object (resolves call sites to it).
	Obj *types.Func
	// Decl is the function declaration (parameter objects, return sites).
	Decl *ast.FuncDecl
	// Graph is the body's control-flow graph.
	Graph *cfg.Graph
}

// Summarize computes the package-local call summaries to fixpoint: each
// function is solved with clean parameters (does it MAKE taint?) and with
// tainted parameters (does it FORWARD taint?), consulting the summaries of
// the functions it calls, until no summary changes. The spec's Summaries
// field is left pointing at the result, so the same spec can be reused for
// the final reporting pass.
func Summarize(spec *TaintSpec, funcs []FuncInfo) map[*types.Func]Summary {
	sums := map[*types.Func]Summary{}
	spec.Summaries = sums
	// Seed every known function with the empty summary so unknown-callee
	// conservatism applies only to out-of-package calls.
	for _, fi := range funcs {
		if fi.Obj != nil {
			sums[fi.Obj] = Summary{}
		}
	}
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, fi := range funcs {
			if fi.Obj == nil {
				continue
			}
			next := summarizeOne(spec, fi)
			if next != sums[fi.Obj] {
				sums[fi.Obj] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summarizeOne computes one function's summary under the current summary
// table.
func summarizeOne(spec *TaintSpec, fi FuncInfo) Summary {
	var sum Summary
	// Pass 1: clean parameters. Any tainted return value means the
	// function is a source.
	sum.TaintsResult = returnTaint(spec, fi, Taint{})
	// Pass 2: tainted parameters.
	boundary := Taint{}
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := spec.object(name); obj != nil {
					boundary[obj] = "argument"
				}
			}
		}
	}
	if len(boundary) > 0 && returnTaint(spec, fi, boundary) != "" {
		sum.PropagatesArgs = true
	}
	if sum.TaintsResult != "" && sum.TaintsResult == "argument" {
		// Guard: a source reason must come from a real source, never from
		// the probe boundary (unreachable, but cheap to keep honest).
		sum.TaintsResult = ""
	}
	return sum
}

// returnTaint solves fi under the given boundary facts and returns the
// reason of the first tainted return operand, or "".
func returnTaint(spec *TaintSpec, fi FuncInfo, boundary Taint) string {
	ins := Solve(fi.Graph, boundary, spec.Lattice())
	reach := fi.Graph.Reachable()
	for _, b := range fi.Graph.Blocks {
		if !reach[b.Index] {
			continue
		}
		facts := cloneTaint(ins[b.Index])
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, res := range ret.Results {
					if reason := spec.ExprTaint(res, facts); reason != "" {
						return reason
					}
				}
			}
			spec.node(n, facts)
		}
	}
	return ""
}

// Funcs enumerates the function declarations of the files with their
// graphs, ready for Summarize. Bodies are required (interface methods and
// assembly stubs are skipped).
func Funcs(info *types.Info, files []*ast.File) []FuncInfo {
	var out []FuncInfo
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			out = append(out, FuncInfo{Obj: obj, Decl: fd, Graph: cfg.New(fd.Body)})
		}
	}
	return out
}
