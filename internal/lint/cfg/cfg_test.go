package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses a function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// reachableExitPaths asserts the exit block is reachable and preds line up
// with succs.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("missing entry/exit:\n%s", g)
	}
	reach := g.Reachable()
	if !reach[g.Exit.Index] {
		t.Errorf("exit unreachable:\n%s", g)
	}
	preds := g.Preds()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range preds[s.Index] {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("pred/succ mismatch b%d->b%d:\n%s", b.Index, s.Index, g)
			}
		}
	}
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := x\n_ = y")
	checkInvariants(t, g)
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry should hold all three statements:\n%s", g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should flow straight to exit:\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	checkInvariants(t, g)
	// entry(cond) must branch two ways.
	if len(g.Entry.Succs) != 2 {
		t.Errorf("if should produce two successors:\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	checkInvariants(t, g)
	if len(g.Entry.Succs) != 2 {
		t.Errorf("if-without-else should edge to both then and join:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s")
	checkInvariants(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", g)
	}
	// The head must be its own transitive successor (back edge via post).
	preds := g.Preds()
	backEdge := false
	for _, p := range preds[head.Index] {
		if p.Kind == "for.post" {
			backEdge = true
		}
	}
	if !backEdge {
		t.Errorf("no back edge through for.post:\n%s", g)
	}
}

func TestInfiniteForHasNoExitEdge(t *testing.T) {
	g := build(t, "for {\nbreak\n}")
	checkInvariants(t, g)
	for _, b := range g.Blocks {
		if b.Kind == "for.head" && len(b.Succs) != 1 {
			t.Errorf("condition-less for head must only edge to body:\n%s", g)
		}
	}
}

func TestRangeHeadHoldsRangeStmt(t *testing.T) {
	g := build(t, "m := map[int]int{}\nfor k, v := range m {\n_ = k\n_ = v\n}")
	checkInvariants(t, g)
	found := false
	for _, b := range g.Blocks {
		if b.Kind != "range.head" {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
			}
		}
		if len(b.Succs) != 2 {
			t.Errorf("range head needs body and join successors:\n%s", g)
		}
	}
	if !found {
		t.Errorf("range head should carry the RangeStmt marker:\n%s", g)
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	checkInvariants(t, g)
	preds := g.Preds()
	if len(preds[g.Exit.Index]) < 2 {
		t.Errorf("both the return and the fallthrough path must reach exit:\n%s", g)
	}
}

func TestPanicEdgesToExit(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x")
	checkInvariants(t, g)
	exitPreds := g.Preds()[g.Exit.Index]
	if len(exitPreds) < 2 {
		t.Errorf("panic must edge to exit:\n%s", g)
	}
}

func TestSwitchDefaultRemovesHeaderJoinEdge(t *testing.T) {
	withDefault := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ndefault:\nx = 3\n}\n_ = x")
	checkInvariants(t, withDefault)
	without := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\n}\n_ = x")
	checkInvariants(t, without)
	// Without a default the header must edge straight to join as well.
	if len(without.Entry.Succs) != 2 {
		t.Errorf("switch without default: header should edge to case and join:\n%s", without)
	}
	if len(withDefault.Entry.Succs) != 2 {
		t.Errorf("switch with default: header should edge to both cases only:\n%s", withDefault)
	}
}

func TestFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nfallthrough\ncase 2:\nx = 9\n}\n_ = x")
	checkInvariants(t, g)
	// The first case block must edge into the second case block.
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks:\n%s", g)
	}
	linked := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			linked = true
		}
	}
	if !linked {
		t.Errorf("fallthrough must edge into the next case:\n%s", g)
	}
}

func TestSelectClausesAndMarker(t *testing.T) {
	g := build(t, "ch := make(chan int)\ndone := make(chan int)\nselect {\ncase v := <-ch:\n_ = v\ncase <-done:\n}")
	checkInvariants(t, g)
	marker := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.SelectStmt); ok {
			marker = true
		}
	}
	if !marker {
		t.Errorf("select marker missing from header block:\n%s", g)
	}
	ncase := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			ncase++
		}
	}
	if ncase != 2 {
		t.Errorf("want 2 select case blocks, got %d:\n%s", ncase, g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := build(t, "for i := 0; i < 4; i++ {\nif i == 1 {\ncontinue\n}\nif i == 2 {\nbreak\n}\n}")
	checkInvariants(t, g)
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor i := 0; i < 4; i++ {\nfor j := 0; j < 4; j++ {\nif j == 2 {\nbreak outer\n}\n}\n}")
	checkInvariants(t, g)
	// The labeled break must edge to the OUTER loop's join, which then
	// reaches exit without re-entering the inner loop.
	if !strings.Contains(g.String(), "label.outer") {
		t.Errorf("label block missing:\n%s", g)
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := build(t, "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}\ngoto end\nend:\n_ = i")
	checkInvariants(t, g)
}

func TestDefersCollected(t *testing.T) {
	g := build(t, "defer println(1)\nif true {\ndefer println(2)\n}")
	checkInvariants(t, g)
	if len(g.Defers) != 2 {
		t.Errorf("want 2 defers recorded, got %d", len(g.Defers))
	}
}

func TestFuncLitNotExpanded(t *testing.T) {
	g := build(t, "f := func() {\nreturn\n}\nf()")
	checkInvariants(t, g)
	// The literal's return must NOT add an exit edge to the outer graph:
	// entry flows straight to exit.
	if len(g.Entry.Succs) != 1 {
		t.Errorf("function literal leaked control flow into outer graph:\n%s", g)
	}
}

func TestShallowInspectPrunesBodies(t *testing.T) {
	g := build(t, "m := map[int]int{}\nfor k := range m {\nprintln(k)\n}")
	var sawRange, sawPrintln bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); !ok {
				continue
			}
			ShallowInspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.RangeStmt); ok {
					sawRange = true
				}
				if id, ok := m.(*ast.Ident); ok && id.Name == "println" {
					sawPrintln = true
				}
				return true
			})
		}
	}
	if !sawRange {
		t.Errorf("ShallowInspect should visit the marker itself")
	}
	if sawPrintln {
		t.Errorf("ShallowInspect must not descend into the range body")
	}
}

func TestDeadCodeAfterReturnUnreachable(t *testing.T) {
	g := build(t, "return\nprintln(1)")
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if b.Kind == "dead" && reach[b.Index] && len(b.Nodes) > 0 {
			t.Errorf("statements after return should be unreachable:\n%s", g)
		}
	}
}
