// Package cfg builds per-function control-flow graphs over go/ast for the
// fold3dlint dataflow checks. A Graph is a set of basic blocks — maximal
// straight-line node sequences — connected by the edges the statement
// structure induces: both arms of an if, the back edge and the exit edge of
// a loop, one edge per switch/select clause, break/continue/goto/
// fallthrough jumps, and an edge to the synthetic Exit block from every
// return and every panic call. Deferred calls are collected on the graph
// (they run on every exit, including panics) and also remain visible as
// ordinary nodes at their registration point, so path-sensitive analyses
// can tell a defer registered on every path from one registered
// conditionally.
//
// Blocks carry ast.Node slices, not just statements: the header of a
// compound statement contributes its scrutinee to the block that evaluates
// it (an if condition, a for condition, a switch tag), while the compound
// statement's nested bodies become blocks of their own. Two compound
// statements appear wholesale as header markers — *ast.RangeStmt (so a
// consumer sees the ranged expression and the key/value bindings) and
// *ast.SelectStmt (a blocking point). Consumers must therefore walk block
// nodes with ShallowInspect, which prunes nested bodies and function
// literals, never with a bare ast.Inspect.
//
// The package is deliberately syntax-only (no go/types): type questions
// stay in the checks, which keeps the graph reusable across analyses.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: nodes execute in order, then control moves to
// one of Succs. A block with no successors is either the Exit block or
// unreachable dead code after a terminating statement.
type Block struct {
	// Index is the block's dense position in Graph.Blocks, assigned in
	// construction order (roughly program order), so index-ordered
	// iteration is deterministic.
	Index int
	// Kind labels the block's structural role ("entry", "if.then",
	// "range.head", "exit", ...) for diagnostics and tests.
	Kind string
	// Nodes holds the block's statements and header expressions in
	// execution order. Walk them with ShallowInspect.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first, indexed by Block.Index.
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic sink: returns, panics and falling off the end
	// of the body all edge here.
	Exit *Block
	// Defers collects every defer statement in the body (not those inside
	// nested function literals), in source order. Deferred calls run at
	// every exit, including panic unwinds.
	Defers []*ast.DeferStmt
}

// New builds the graph of one function body. Function literals nested in
// the body are NOT expanded — they appear as ordinary expression nodes and
// get their own graph when the caller builds one for them.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// Preds computes the predecessor lists of every block, indexed like
// Graph.Blocks.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}

// Reachable reports which blocks are reachable from Entry, indexed like
// Graph.Blocks. Dead blocks (after return/panic/branch) are excluded so
// analyses do not report on code the spec says never runs.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the graph for tests and debugging: one line per block
// with its kind and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ShallowInspect walks n calling f on each node, pruning nested bodies:
// it does not descend into *ast.BlockStmt (compound-statement bodies are
// separate blocks) or *ast.FuncLit (a literal's body is its own graph).
// f's return value controls descent exactly like ast.Inspect.
func ShallowInspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		switch m.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		return f(m)
	})
}

// labelInfo tracks one label: the block its statement starts in (the goto
// and continue target) and, once the labeled statement is known to be a
// loop or switch, the frame carrying its break target.
type labelInfo struct {
	block *Block
}

// frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label string // non-empty when the construct is labeled
	brk   *Block // break target (the join block)
	cont  *Block // continue target; nil for switch/select
}

// builder accumulates the graph while walking the syntax tree.
type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*labelInfo
	// pendingLabel carries a label down to the loop/switch statement it
	// annotates, so "break L"/"continue L" resolve to the right frame.
	pendingLabel string
	// fall is the fallthrough target while building a switch clause.
	fall *Block
}

// newBlock appends a fresh block to the graph.
func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from -> to, skipping duplicates.
func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmtList builds each statement in order.
func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt dispatches one statement into the graph.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.RangeStmt:
		b.buildRange(s)
	case *ast.SwitchStmt:
		b.buildSwitch(s)
	case *ast.TypeSwitchStmt:
		b.buildTypeSwitch(s)
	case *ast.SelectStmt:
		b.buildSelect(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("dead")
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.LabeledStmt:
		b.buildLabeled(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock("dead")
		}
	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// isPanicCall reports whether call invokes the panic builtin (by syntax;
// a local function shadowing panic is indistinguishable here, which only
// makes the graph conservatively add an exit edge).
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// buildIf wires cond -> then/else -> join.
func (b *builder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	join := b.newBlock("if.join")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, join)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

// buildFor wires init -> head(cond) -> body -> post -> head, with the
// head's exit edge to join (absent for `for {}`).
func (b *builder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, join)
	}
	b.edge(head, body)

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: join, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
	}
	b.edge(b.cur, head)
	b.cur = join
}

// buildRange wires head(range marker) -> body -> head, head -> join. The
// RangeStmt node itself sits in the head so consumers see the ranged
// expression and the per-iteration key/value bindings (ShallowInspect
// prunes the body).
func (b *builder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.edge(b.cur, head)
	b.cur = head
	b.add(s)
	b.edge(head, body)
	b.edge(head, join)

	b.frames = append(b.frames, frame{label: label, brk: join, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	b.cur = join
}

// buildSwitch wires header(tag) -> one block per case -> join, plus a
// direct header -> join edge when there is no default clause. Fallthrough
// edges to the following clause's block.
func (b *builder) buildSwitch(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.buildClauses(label, s.Body.List, func(clause *ast.CaseClause, blk *Block) {
		for _, e := range clause.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

// buildTypeSwitch is buildSwitch for type switches; the assign statement
// (x := y.(type)) joins the header, clause type expressions carry no value
// flow and are omitted.
func (b *builder) buildTypeSwitch(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.buildClauses(label, s.Body.List, nil)
}

// buildSelect wires header(select marker) -> one block per comm clause ->
// join. The SelectStmt node itself marks the header as a blocking point;
// each clause block starts with its comm statement. A select with no
// clauses blocks forever: no join edge.
func (b *builder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.add(s)
	header := b.cur
	join := b.newBlock("select.join")
	b.frames = append(b.frames, frame{label: label, brk: join})
	for _, c := range s.Body.List {
		clause, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.edge(header, blk)
		b.cur = blk
		if clause.Comm != nil {
			b.stmt(clause.Comm)
		}
		b.stmtList(clause.Body)
		b.edge(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// buildClauses is the shared case-clause wiring of value and type
// switches. addExprs, when non-nil, contributes a clause's case
// expressions to its block.
func (b *builder) buildClauses(label string, list []ast.Stmt, addExprs func(*ast.CaseClause, *Block)) {
	header := b.cur
	join := b.newBlock("switch.join")
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range list {
		clause, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, clause)
		blocks = append(blocks, b.newBlock("switch.case"))
		if clause.List == nil {
			hasDefault = true
		}
	}
	b.frames = append(b.frames, frame{label: label, brk: join})
	for i, clause := range clauses {
		blk := blocks[i]
		b.edge(header, blk)
		b.cur = blk
		if addExprs != nil {
			addExprs(clause, blk)
		}
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = join
		}
		b.stmtList(clause.Body)
		b.edge(b.cur, join)
	}
	b.fall = nil
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(header, join)
	}
	b.cur = join
}

// buildBranch wires break/continue/goto/fallthrough edges.
func (b *builder) buildBranch(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.findFrame(label, false); t != nil {
			b.edge(b.cur, t.brk)
		}
	case "continue":
		if t := b.findFrame(label, true); t != nil {
			b.edge(b.cur, t.cont)
		}
	case "goto":
		b.edge(b.cur, b.labelBlock(label))
	case "fallthrough":
		if b.fall != nil {
			b.edge(b.cur, b.fall)
		}
	}
	b.cur = b.newBlock("dead")
}

// findFrame locates the innermost matching frame; needCont restricts the
// search to frames with a continue target (loops).
func (b *builder) findFrame(label string, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// labelBlock returns (creating on demand, so forward gotos work) the block
// a label's statement starts in.
func (b *builder) labelBlock(name string) *Block {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{block: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li.block
}

// buildLabeled enters the label's block and builds the labeled statement,
// handing the label down so a labeled loop's frame carries it.
func (b *builder) buildLabeled(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	b.edge(b.cur, lb)
	b.cur = lb
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}
