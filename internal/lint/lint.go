// Package lint is fold3d's in-tree static-analysis engine. It enforces the
// repository's determinism and API-hygiene policy (DESIGN.md §Lint) using
// only the standard library: go/parser builds ASTs, go/types resolves types
// through a small in-module import resolver, and each check walks the typed
// syntax reporting findings with file:line positions.
//
// The suite exists because the paper reproduction promises bit-identical
// results for a given seed; a single unsorted map iteration feeding the
// placer, partitioner or a report silently breaks that promise without
// failing any test. fold3dlint turns the policy into a build gate.
//
// Intentional violations are silenced in place with a directive comment on
// the offending line (or the line above it):
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	// Check is the name of the check that produced the finding.
	Check string
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Message describes the problem and the expected fix.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is a named analysis pass over one typed package.
type Check struct {
	// Name identifies the check in findings and ignore directives.
	Name string
	// Doc is a one-line description shown by the CLI.
	Doc string
	// Run inspects pkg and returns raw findings (ignore directives are
	// applied by the engine, not by individual checks).
	Run func(cfg *Config, pkg *Package) []Finding
}

// Config tunes check scoping. The zero value runs nothing useful; use
// DefaultConfig for the repository policy.
type Config struct {
	// AlgoPackages lists import-path suffixes of algorithm packages in
	// which the determinism check forbids ambient randomness and
	// environment access.
	AlgoPackages []string
	// PanicAllow lists function names (rendered as pkgpath.Func or
	// pkgpath.(*Type).Method) that may call panic. Functions whose name
	// starts with "Must" are always allowed, per Go convention.
	PanicAllow []string
	// GoroutineAllow lists import-path suffixes of the packages permitted
	// to start goroutines. Everywhere else a bare go statement is a
	// determinism finding: ad-hoc concurrency bypasses the worker pool's
	// deterministic merge and error selection.
	GoroutineAllow []string
	// STAEngineOnly lists import-path suffixes of packages that must run
	// timing through a persistent sta.Engine: a bare sta.Analyze call there
	// rebuilds the whole timing graph from scratch, silently discarding the
	// cone-limited incremental path the optimizer loop depends on.
	STAEngineOnly []string
	// PipelineOnly lists import-path suffixes of packages whose stage*
	// functions are pipeline stage entry points: they may only be
	// registered into a pipeline.Plan and invoked by the pipeline
	// executor, never called directly by other code in the package. A
	// direct call bypasses the stage DAG — it skips the cancellation
	// checks, invalidates the plan's input fingerprinting, and lets stages
	// grow hidden dependencies the artifact cache cannot see.
	PipelineOnly []string
}

// DefaultConfig returns the scoping policy enforced on the fold3d tree.
func DefaultConfig() *Config {
	return &Config{
		AlgoPackages: []string{
			"internal/core",
			"internal/floorplan",
			"internal/partition",
			"internal/place",
			"internal/route",
			"internal/power",
			"internal/sta",
			"internal/thermal",
			"internal/exp",
			"internal/flow",
		},
		PanicAllow: []string{
			// rng.Intn mirrors math/rand's documented contract.
			"fold3d/internal/rng.(*R).Intn",
		},
		GoroutineAllow: []string{
			// The worker pool is the one sanctioned goroutine spawner; its
			// per-index result slots keep parallel runs byte-identical.
			"internal/pool",
			// The server exemption (DESIGN.md §12): the fold3dd job
			// scheduler and the daemon's accept loop are long-lived service
			// goroutines above the determinism boundary — results flow only
			// through exp.RunAll, which stays on the pool.
			"internal/jobs",
			"cmd/fold3dd",
		},
		STAEngineOnly: []string{
			// The optimizer's analyze loop is the hot consumer of timing;
			// it owns an Engine and must mark-and-update, never full-build.
			"internal/opt",
		},
		PipelineOnly: []string{
			// The flow's phases are registered pipeline stages; only the
			// pipeline executor may invoke them, so the stage DAG and the
			// artifact-cache fingerprints stay honest.
			"internal/flow",
		},
	}
}

// AllChecks returns the full suite in a stable order.
func AllChecks() []*Check {
	return []*Check{
		DeterminismCheck(),
		MapIterCheck(),
		FloatCmpCheck(),
		ErrDropCheck(),
		APIGuardCheck(),
	}
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range AllChecks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Run executes checks over pkgs, filters findings through //lint:ignore
// directives, and returns the remainder sorted by position.
func Run(cfg *Config, pkgs []*Package, checks []*Check) []Finding {
	var out []Finding
	for _, p := range pkgs {
		ig := collectIgnores(p)
		for _, c := range checks {
			for _, f := range c.Run(cfg, p) {
				if ig.covers(f) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, ig.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// ignoreKey identifies the target of one ignore directive.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoreSet holds the parsed //lint:ignore directives of one package.
type ignoreSet struct {
	keys      map[ignoreKey]bool
	malformed []Finding
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectIgnores parses every //lint:ignore directive in p. A directive
// suppresses findings of the named check on its own line and on the line
// immediately below it (the idiomatic "directive above the statement" form).
func collectIgnores(p *Package) *ignoreSet {
	ig := &ignoreSet{keys: map[ignoreKey]bool{}}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				check, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					ig.malformed = append(ig.malformed, Finding{
						Check:   "ignore",
						Pos:     pos,
						Message: fmt.Sprintf("lint:ignore %s directive is missing a reason", check),
					})
					continue
				}
				end := p.Fset.Position(c.End())
				for line := pos.Line; line <= end.Line+1; line++ {
					ig.keys[ignoreKey{pos.Filename, line, check}] = true
				}
			}
		}
	}
	return ig
}

// covers reports whether f is suppressed by a directive.
func (ig *ignoreSet) covers(f Finding) bool {
	return ig.keys[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Check}]
}

// funcBodies invokes fn on every function body in file: declarations and
// literals, including literals nested inside other functions.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Body)
			// Return true so literals nested inside this one are visited.
		}
		return true
	})
}
