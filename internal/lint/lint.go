// Package lint is fold3d's in-tree static-analysis engine. It enforces the
// repository's determinism and API-hygiene policy (DESIGN.md §Lint) using
// only the standard library: go/parser builds ASTs, go/types resolves types
// through a small in-module import resolver, and each check walks the typed
// syntax reporting findings with file:line positions.
//
// The suite exists because the paper reproduction promises bit-identical
// results for a given seed; a single unsorted map iteration feeding the
// placer, partitioner or a report silently breaks that promise without
// failing any test. fold3dlint turns the policy into a build gate.
//
// Intentional violations are silenced in place with a directive comment on
// the offending line (or the line above it):
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"

	"fold3d/internal/pool"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	// Check is the name of the check that produced the finding.
	Check string
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Message describes the problem and the expected fix.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is a named analysis pass over one typed package.
type Check struct {
	// Name identifies the check in findings and ignore directives.
	Name string
	// Doc is a one-line description shown by the CLI.
	Doc string
	// Run inspects pkg and returns raw findings (ignore directives are
	// applied by the engine, not by individual checks).
	Run func(cfg *Config, pkg *Package) []Finding
}

// Config tunes check scoping. The zero value runs nothing useful; use
// DefaultConfig for the repository policy.
type Config struct {
	// AlgoPackages lists import-path suffixes of algorithm packages in
	// which the determinism check forbids ambient randomness and
	// environment access.
	AlgoPackages []string
	// PanicAllow lists function names (rendered as pkgpath.Func or
	// pkgpath.(*Type).Method) that may call panic. Functions whose name
	// starts with "Must" are always allowed, per Go convention.
	PanicAllow []string
	// GoroutineAllow lists import-path suffixes of the packages permitted
	// to start goroutines. Everywhere else a bare go statement is a
	// determinism finding: ad-hoc concurrency bypasses the worker pool's
	// deterministic merge and error selection.
	GoroutineAllow []string
	// STAEngineOnly lists import-path suffixes of packages that must run
	// timing through a persistent sta.Engine: a bare sta.Analyze call there
	// rebuilds the whole timing graph from scratch, silently discarding the
	// cone-limited incremental path the optimizer loop depends on.
	STAEngineOnly []string
	// CtxPackages lists import-path suffixes of the service-layer packages
	// in which the ctxflow check requires every blocking operation to be
	// guarded by a received context.Context on all CFG paths. These are the
	// packages sitting between a caller's cancellation and the
	// deterministic core: a dropped ctx there turns shutdown into a hang.
	CtxPackages []string
	// PipelineOnly lists import-path suffixes of packages whose stage*
	// functions are pipeline stage entry points: they may only be
	// registered into a pipeline.Plan and invoked by the pipeline
	// executor, never called directly by other code in the package. A
	// direct call bypasses the stage DAG — it skips the cancellation
	// checks, invalidates the plan's input fingerprinting, and lets stages
	// grow hidden dependencies the artifact cache cannot see.
	PipelineOnly []string
	// BackendRegistryOnly lists import-path suffixes of packages that must
	// obtain placement backends through the registry (place.NewBackend)
	// rather than constructing one directly with place.New or a concrete
	// backend package's New. A direct construction hard-wires one backend
	// into the flow, bypasses the unknown-name validation, and silently
	// escapes the cache-key discipline that keeps backends' artifacts
	// isolated.
	BackendRegistryOnly []string
	// IndexedScanOnly lists import-path suffixes of packages whose
	// legalization and blockage code must answer per-candidate queries
	// through a spatial index. There, a linear scan over a block's Cells
	// nested inside another loop is O(cells) per query — quadratic over
	// the block — and is exactly the pattern the scaling pass replaced
	// with the row-CSR buckets, the lane SoA mirrors and the TSV site
	// grid. Single flat passes (index builds, seeding, accumulations)
	// stay allowed: only a Cells scan inside an enclosing loop is
	// flagged.
	IndexedScanOnly []string
	// ThermalEngineOnly lists import-path suffixes of packages that must
	// solve temperature through the persistent multigrid thermal.Engine: a
	// bare thermal.SolveReference* call there runs the dense Gauss-Seidel
	// reference solver — the tolerance oracle the engine is tested against,
	// orders of magnitude slower at scale and blind to the incremental
	// re-solve the thermal-via loop depends on.
	ThermalEngineOnly []string
}

// DefaultConfig returns the scoping policy enforced on the fold3d tree.
func DefaultConfig() *Config {
	return &Config{
		AlgoPackages: []string{
			"internal/core",
			"internal/floorplan",
			"internal/partition",
			"internal/place",
			"internal/place/analytical",
			"internal/route",
			"internal/power",
			"internal/sta",
			"internal/thermal",
			"internal/exp",
			"internal/flow",
		},
		PanicAllow: []string{
			// rng.Intn mirrors math/rand's documented contract.
			"fold3d/internal/rng.(*R).Intn",
		},
		GoroutineAllow: []string{
			// The worker pool is the one sanctioned goroutine spawner; its
			// per-index result slots keep parallel runs byte-identical.
			"internal/pool",
			// The server exemption (DESIGN.md §12): the fold3dd job
			// scheduler and the daemon's accept loop are long-lived service
			// goroutines above the determinism boundary — results flow only
			// through exp.RunAll, which stays on the pool.
			"internal/jobs",
			"cmd/fold3dd",
		},
		CtxPackages: []string{
			// The job manager, HTTP daemon, worker pool and public facade
			// all accept a caller context; each hand-off between them is a
			// blocking point that must stay cancelable.
			"internal/jobs",
			"internal/server",
			"internal/pool",
			"pkg/fold3d",
		},
		STAEngineOnly: []string{
			// The optimizer's analyze loop is the hot consumer of timing;
			// it owns an Engine and must mark-and-update, never full-build.
			"internal/opt",
		},
		PipelineOnly: []string{
			// The flow's phases are registered pipeline stages; only the
			// pipeline executor may invoke them, so the stage DAG and the
			// artifact-cache fingerprints stay honest.
			"internal/flow",
		},
		BackendRegistryOnly: []string{
			// The flow selects placement backends by Config.Placer; wiring a
			// concrete placer here would bypass the registry's validation
			// and the placer-aware cache keys.
			"internal/flow",
		},
		IndexedScanOnly: []string{
			// The placer's legalization, spreading and TSV planning are
			// the scaling-pass hot paths: per-query work there must go
			// through the spatial index, never a nested Cells scan.
			"internal/place",
		},
		ThermalEngineOnly: []string{
			// Every in-loop and serving consumer of temperature runs the
			// multigrid engine; the Gauss-Seidel reference solver is for the
			// thermal package's own equivalence tests only.
			"internal/flow",
			"internal/exp",
			"internal/jobs",
			"internal/server",
			"pkg/fold3d",
			"cmd/fold3d",
			"cmd/fold3dd",
		},
	}
}

// AllChecks returns the full suite in a stable order.
func AllChecks() []*Check {
	return []*Check{
		DeterminismCheck(),
		MapIterCheck(),
		FloatCmpCheck(),
		ErrDropCheck(),
		APIGuardCheck(),
		NondetFlowCheck(),
		CtxFlowCheck(),
		LockBalanceCheck(),
	}
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range AllChecks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Timing records the cumulative wall-clock time one check spent across all
// packages of a run.
type Timing struct {
	// Check is the check name.
	Check string
	// Elapsed is the check's summed run time over every package.
	Elapsed time.Duration
}

// Run executes checks over pkgs, filters findings through //lint:ignore
// directives, and returns the remainder sorted by position.
func Run(cfg *Config, pkgs []*Package, checks []*Check) []Finding {
	out, _ := RunTimed(cfg, pkgs, checks)
	return out
}

// RunTimed is Run plus per-check cumulative timings (sorted slowest
// first). Every (package, check) pair runs as an independent pool task
// writing into its own slot; the merge walks slots in index order, so the
// output is identical to a sequential run regardless of scheduling.
func RunTimed(cfg *Config, pkgs []*Package, checks []*Check) ([]Finding, []Timing) {
	nc := len(checks)
	type cell struct {
		fs []Finding
		d  time.Duration
	}
	cells := make([]cell, len(pkgs)*nc)
	if nc > 0 {
		// Checks only read their package, so pairs are freely concurrent;
		// the tasks never fail and the context is never canceled.
		_ = pool.Run(context.Background(), 0, len(cells), func(_ context.Context, i int) error {
			p, c := pkgs[i/nc], checks[i%nc]
			start := time.Now()
			cells[i] = cell{fs: c.Run(cfg, p), d: time.Since(start)}
			return nil
		})
	}
	elapsed := make([]time.Duration, nc)
	var out []Finding
	for pi, p := range pkgs {
		ig := collectIgnores(p)
		for ci := range checks {
			cell := cells[pi*nc+ci]
			elapsed[ci] += cell.d
			for _, f := range cell.fs {
				if ig.covers(f) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, ig.malformed...)
	}
	timings := make([]Timing, nc)
	for ci, c := range checks {
		timings[ci] = Timing{Check: c.Name, Elapsed: elapsed[ci]}
	}
	sort.Slice(timings, func(i, j int) bool {
		if timings[i].Elapsed != timings[j].Elapsed {
			return timings[i].Elapsed > timings[j].Elapsed
		}
		return timings[i].Check < timings[j].Check
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, timings
}

// ignoreKey identifies the target of one ignore directive.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoreSet holds the parsed //lint:ignore directives of one package.
type ignoreSet struct {
	keys      map[ignoreKey]bool
	malformed []Finding
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectIgnores parses every //lint:ignore directive in p. A directive
// suppresses findings of the named check on its own line, on every line of
// its comment group (the reason may wrap onto continuation lines), and on
// the statement that follows the group — ALL of its lines, so a finding
// anchored inside a multi-line call or literal is still covered.
func collectIgnores(p *Package) *ignoreSet {
	ig := &ignoreSet{keys: map[ignoreKey]bool{}}
	for _, file := range p.Files {
		spans := stmtSpans(p, file)
		for _, cg := range file.Comments {
			groupEnd := p.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				check, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					ig.malformed = append(ig.malformed, Finding{
						Check:   "ignore",
						Pos:     pos,
						Message: fmt.Sprintf("lint:ignore %s directive is missing a reason", check),
					})
					continue
				}
				last := groupEnd + 1
				// Directive-above form: extend over the whole statement
				// starting on the line after the group.
				if end := spans[groupEnd+1]; end > last {
					last = end
				}
				// End-of-line form on the first line of a multi-line
				// statement: extend over that statement too.
				if end := spans[pos.Line]; end > last {
					last = end
				}
				for line := pos.Line; line <= last; line++ {
					ig.keys[ignoreKey{pos.Filename, line, check}] = true
				}
			}
		}
	}
	return ig
}

// stmtSpans maps the starting line of each simple (body-less) statement in
// file to its ending line. Only statements that cannot contain a block are
// recorded, so a directive above an if or for never silently suppresses
// findings throughout the nested body.
func stmtSpans(p *Package, file *ast.File) map[int]int {
	spans := map[int]int{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.IncDecStmt:
			if containsFuncLit(n) {
				return true // a literal body is a block in disguise
			}
			start := p.Fset.Position(n.Pos()).Line
			end := p.Fset.Position(n.End()).Line
			if end > spans[start] {
				spans[start] = end
			}
		}
		return true
	})
	return spans
}

// containsFuncLit reports whether n nests a function literal.
func containsFuncLit(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}

// covers reports whether f is suppressed by a directive.
func (ig *ignoreSet) covers(f Finding) bool {
	return ig.keys[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Check}]
}

// funcBodies invokes fn on every function body in file: declarations and
// literals, including literals nested inside other functions.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Body)
			// Return true so literals nested inside this one are visited.
		}
		return true
	})
}
