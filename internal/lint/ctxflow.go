package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"fold3d/internal/lint/cfg"
	"fold3d/internal/lint/dataflow"
)

// CtxFlowCheck enforces, in the service-layer packages (Config.
// CtxPackages), that a received context.Context actually guards every
// blocking operation on every CFG path: channel sends and receives must sit
// in a select with a live <-ctx.Done() case, blocking calls (pool
// submission, sync Waits, in-package blocking helpers) must be handed the
// live context, and rebinding a context variable to context.Background()/
// TODO() — shadowing the caller's cancellation — is flagged where it
// happens.
//
// Liveness is a must-analysis: a context object counts as live at a node
// only when it is parameter-derived (directly, or via context.With*) on ALL
// paths reaching the node. Only function bodies that receive a
// context.Context parameter are checked; bodies without one have no
// cancellation contract to honor.
func CtxFlowCheck() *Check {
	return &Check{
		Name: "ctxflow",
		Doc:  "received ctx must guard every blocking op on all paths (dataflow, CtxPackages only)",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(cfgc *Config, p *Package) []Finding {
	if !matchesSuffix(p.Path, cfgc.CtxPackages) {
		return nil
	}
	bi := newBlockInfo(p)
	var out []Finding
	for _, fb := range funcBodiesOf(p, dataflow.Funcs(p.Info, p.Files)) {
		out = append(out, ctxScanFunc(p, bi, fb)...)
	}
	return sortFindings(out)
}

// ctxFacts is the must-live set: context objects guaranteed to carry the
// caller's cancellation on every path to the current point.
type ctxFacts map[types.Object]bool

// ctxLattice wires context liveness into the fixpoint solver.
func ctxLattice(p *Package) dataflow.Lattice[ctxFacts] {
	return dataflow.Lattice[ctxFacts]{
		Bottom: func() ctxFacts { return ctxFacts{} },
		Clone: func(s ctxFacts) ctxFacts {
			out := make(ctxFacts, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Join: func(dst, src ctxFacts) ctxFacts {
			// Must-analysis: live only when live on every joined path.
			for k := range dst {
				if !src[k] {
					delete(dst, k)
				}
			}
			return dst
		},
		Equal: func(a, b ctxFacts) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in ctxFacts) ctxFacts {
			for _, n := range b.Nodes {
				ctxStep(p, n, in)
			}
			return in
		},
	}
}

// ctxStep updates liveness across one node: an assignment to a
// context-typed variable keeps the destination live exactly when its source
// is a live context (possibly wrapped by context.With*); anything else —
// context.Background(), context.TODO() — kills it.
func ctxStep(p *Package, n ast.Node, facts ctxFacts) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := lhsObject(p, id)
		if obj == nil || !isContextType(obj.Type()) {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			// ctx, cancel := context.WithCancel(parent): liveness of the
			// call covers every destination.
			rhs = as.Rhs[0]
		}
		if rhs != nil && ctxExprLive(p, rhs, facts) {
			facts[obj] = true
		} else {
			delete(facts, obj)
		}
	}
}

// ctxExprLive reports whether a context-valued expression carries the
// caller's cancellation: a live object, a context.With* derivation of one,
// or an external producer call (req.Context()) trusted to be real.
// context.Background() and context.TODO() are dead by definition.
func ctxExprLive(p *Package, e ast.Expr, facts ctxFacts) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		return obj != nil && facts[obj]
	case *ast.ParenExpr:
		return ctxExprLive(p, x.X, facts)
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && importedPath(p, id) == "context" {
				switch sel.Sel.Name {
				case "Background", "TODO":
					return false
				case "WithCancel", "WithTimeout", "WithDeadline", "WithValue":
					return len(x.Args) > 0 && ctxExprLive(p, x.Args[0], facts)
				}
			}
		}
		// External producers (http.Request.Context, ...) return the real
		// request-scoped context.
		return true
	case *ast.SelectorExpr:
		// A context stored in a struct field was placed there by a caller;
		// trust it.
		return true
	default:
		return false
	}
}

// ctxParamObjs resolves the context.Context parameters of a signature.
func ctxParamObjs(p *Package, ftype *ast.FuncType) []types.Object {
	var out []types.Object
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	for _, f := range ftype.Params.List {
		for _, name := range f.Names {
			if obj := p.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// ctxScanFunc analyzes one body that receives a context parameter.
func ctxScanFunc(p *Package, bi *blockInfo, fb fnBody) []Finding {
	params := ctxParamObjs(p, fb.ftype)
	if len(params) == 0 {
		return nil
	}
	boundary := ctxFacts{}
	for _, obj := range params {
		boundary[obj] = true
	}
	lat := ctxLattice(p)
	ins := dataflow.Solve(fb.graph, boundary, lat)
	reach := fb.graph.Reachable()
	var out []Finding
	for _, b := range fb.graph.Blocks {
		if !reach[b.Index] {
			continue
		}
		facts := lat.Clone(ins[b.Index])
		for _, n := range b.Nodes {
			out = append(out, ctxNodeFindings(p, bi, n, facts)...)
			ctxStep(p, n, facts)
		}
	}
	return out
}

// ctxNodeFindings reports the violations visible at one node under the
// current liveness facts.
func ctxNodeFindings(p *Package, bi *blockInfo, n ast.Node, facts ctxFacts) []Finding {
	var out []Finding
	if as, ok := n.(*ast.AssignStmt); ok {
		out = append(out, ctxShadowFindings(p, as, facts)...)
	}
	for _, op := range bi.nodeOps(n) {
		switch {
		case op.sel != nil:
			if !ctxSelAware(p, op.sel, facts) {
				out = append(out, Finding{
					Check:   "ctxflow",
					Pos:     p.Fset.Position(op.pos),
					Message: "select blocks without a live <-ctx.Done() case: the received ctx cannot cancel this wait",
				})
			}
		case op.call != nil:
			out = append(out, ctxCallFindings(p, op, facts)...)
		default:
			out = append(out, Finding{
				Check:   "ctxflow",
				Pos:     p.Fset.Position(op.pos),
				Message: fmt.Sprintf("blocking %s is not selectable on the received ctx: wrap it in a select with a <-ctx.Done() case", op.desc),
			})
		}
	}
	return out
}

// ctxShadowFindings flags assignments that rebind or shadow a live context
// variable with a dead one (context.Background()/TODO()): every use below
// silently loses the caller's cancellation.
func ctxShadowFindings(p *Package, as *ast.AssignStmt, facts ctxFacts) []Finding {
	var out []Finding
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := lhsObject(p, id)
		if obj == nil || !isContextType(obj.Type()) {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil || ctxExprLive(p, rhs, facts) {
			continue
		}
		// Dead RHS. A finding only when this kills or shadows a live
		// context: the object itself was live, or a live object of the same
		// name is being shadowed by a := in an inner scope.
		hides := facts[obj]
		for live := range facts {
			if live.Name() == id.Name {
				hides = true
			}
		}
		if hides {
			out = append(out, Finding{
				Check:   "ctxflow",
				Pos:     p.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("context %q is rebound to a dead context (Background/TODO), dropping the caller's cancellation; derive with context.With* instead", id.Name),
			})
		}
	}
	return out
}

// ctxCallFindings checks a blocking call: it must be handed a live context
// argument, so the callee can bound its own wait.
func ctxCallFindings(p *Package, op blockOp, facts ctxFacts) []Finding {
	hasCtxArg, liveArg := false, false
	for _, a := range op.call.Args {
		if !isContextType(p.Info.TypeOf(a)) {
			continue
		}
		hasCtxArg = true
		if ctxExprLive(p, a, facts) {
			liveArg = true
		}
	}
	if liveArg {
		return nil
	}
	msg := fmt.Sprintf("blocking %s does not receive the live ctx; pass the received ctx so cancellation propagates", op.desc)
	if hasCtxArg {
		msg = fmt.Sprintf("blocking %s is passed a dead context (Background/TODO) instead of the received ctx", op.desc)
	}
	return []Finding{{Check: "ctxflow", Pos: p.Fset.Position(op.pos), Message: msg}}
}

// ctxSelAware reports whether sel has a <-x.Done() case on a LIVE context
// under facts (a Done case on a shadowed Background context never fires).
func ctxSelAware(p *Package, sel *ast.SelectStmt, facts ctxFacts) bool {
	aware := false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil || aware {
			continue
		}
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if x := doneRecvCtx(p, n); x != nil && ctxExprLive(p, x, facts) {
				aware = true
			}
			return !aware
		})
	}
	return aware
}
