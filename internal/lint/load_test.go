package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The loader edge cases: build-constraint-excluded files, _test.go
// variants, and packages that fail to type-check must be skipped or
// reported — never panic, never silently poison the rest of the module.

// otherGOOS returns a GOOS different from the running one, for file-name
// suffix tests.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

func TestParseDirSkipsExcludedFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("keep.go", "// Package edge is a loader fixture.\npackage edge\n\nfunc keep() {}\n")
	// Every other file would break the package if parsed or type-checked.
	write("tagged.go", "//go:build ignore\n\npackage edge\n\nfunc keep() {}\n")
	write("osfile_"+otherGOOS()+".go", "package edge\n\nfunc keep() {}\n")
	write("osarch_"+otherGOOS()+"_"+runtime.GOARCH+".go", "package edge\n\nfunc keep() {}\n")
	write("broken_test.go", "package edge\n\nfunc (")
	write("_underscore.go", "package wrong\n")
	write(".hidden.go", "package wrong\n")
	write("notgo.txt", "not go at all")

	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(dir, "edge")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(p.Files) != 1 {
		t.Fatalf("got %d files, want only keep.go", len(p.Files))
	}
}

func TestParseDirKeepsSatisfiedConstraints(t *testing.T) {
	dir := t.TempDir()
	src := "//go:build " + runtime.GOOS + " || " + otherGOOS() + "\n\n" +
		"// Package edge is a loader fixture.\npackage edge\n\nfunc keep() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "tagged.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(dir, "edge")
	if err != nil {
		t.Fatalf("LoadDir rejected a satisfied //go:build constraint: %v", err)
	}
	if len(p.Files) != 1 {
		t.Fatalf("got %d files, want 1", len(p.Files))
	}
}

func TestLoadDirTypeErrorIsAnErrorNotAPanic(t *testing.T) {
	dir := t.TempDir()
	src := "// Package edge is a loader fixture.\npackage edge\n\nvar x undefinedType\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.LoadDir(dir, "edge"); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want a type-checking error, got %v", err)
	}
}

// TestLoadModuleReportsBrokenPackages builds a throwaway module with one
// good and one broken package: LoadModule must return the good one and
// record — not abort on, not panic on — the broken one.
func TestLoadModuleReportsBrokenPackages(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmod\n\ngo 1.21\n")
	write("good/good.go", "// Package good compiles.\npackage good\n\nfunc ok() {}\n")
	write("badtype/bad.go", "// Package badtype has a type error.\npackage badtype\n\nvar x undefinedType\n")
	write("badparse/bad.go", "package badparse\n\nfunc (")

	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule(nil)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmod/good" {
		t.Fatalf("got packages %v, want only tmod/good", pkgs)
	}
	errs := l.Errors()
	if len(errs) != 2 {
		t.Fatalf("got %d load errors, want 2 (parse + type): %v", len(errs), errs)
	}
	joined := strings.Join(errs, "\n")
	for _, want := range []string{"badtype", "bad.go"} {
		if !strings.Contains(joined, want) {
			t.Errorf("load errors missing %q:\n%s", want, joined)
		}
	}
}
