package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"fold3d/internal/pool"
)

// Package is one parsed and type-checked package, the unit every check
// operates on.
type Package struct {
	// Path is the package import path (module-relative for module
	// packages, the directory base name for fixtures).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset maps AST positions back to file:line.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the expression-level type information checks rely on.
	Info *types.Info
}

// Loader parses and type-checks packages on demand. In-module import paths
// are resolved by re-entering the loader (the "small in-module import
// resolver" — no go/build, no external tooling); everything else, i.e. the
// standard library, is resolved from GOROOT source via go/importer.
type Loader struct {
	// ModRoot is the absolute module root (directory holding go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset      *token.FileSet
	std       types.Importer
	pkgs      map[string]*Package // by import path
	loading   map[string]bool     // cycle guard
	preparsed map[string][]*ast.File
	loadErrs  []string
}

// NewLoader returns a loader rooted at the module containing dir. It reads
// go.mod to learn the module path.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot:   root,
		ModPath:   modPath,
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
		preparsed: map[string][]*ast.File{},
	}, nil
}

// findModRoot walks up from dir to the directory containing go.mod.
func findModRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule loads every non-testdata package under the module root whose
// import path matches one of the patterns ("./..." and "..." match all;
// "internal/place" matches that package; a trailing "/..." matches the
// subtree). Packages are returned sorted by import path.
//
// Parsing runs in parallel (one pool task per directory, each writing its
// own slot; the file set is synchronized internally); type-checking stays
// sequential because it recurses through the import graph. A package that
// fails to parse or type-check is skipped and recorded — retrieve the
// diagnostics with Errors — rather than aborting the whole load, so one
// broken package cannot hide findings in the rest of the module.
func (l *Loader) LoadModule(patterns []string) ([]*Package, error) {
	var dirs, imps []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoSource(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		imp := l.ModPath
		if rel != "." {
			imp = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		imps = append(imps, imp)
	}

	// Parallel parse into per-index slots, then publish the results to the
	// preparsed cache before any (sequential) type-checking reads it.
	parsed := make([][]*ast.File, len(dirs))
	parseErrs := make([]error, len(dirs))
	_ = pool.Run(context.Background(), 0, len(dirs), func(_ context.Context, i int) error {
		parsed[i], parseErrs[i] = l.parseDir(dirs[i])
		return nil
	})
	for i, dir := range dirs {
		if parseErrs[i] == nil {
			l.preparsed[dir] = parsed[i]
		}
	}

	var out []*Package
	for i, dir := range dirs {
		imp := imps[i]
		if !matchAny(patterns, strings.TrimPrefix(strings.TrimPrefix(imp, l.ModPath), "/")) {
			continue
		}
		if parseErrs[i] != nil {
			l.loadErrs = append(l.loadErrs, parseErrs[i].Error())
			continue
		}
		if len(parsed[i]) == 0 {
			continue // every source excluded by build constraints
		}
		p, err := l.load(imp, dir)
		if err != nil {
			l.loadErrs = append(l.loadErrs, err.Error())
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Errors returns the diagnostics of packages LoadModule skipped because
// they failed to parse or type-check.
func (l *Loader) Errors() []string {
	return append([]string(nil), l.loadErrs...)
}

// matchAny reports whether the module-relative path rel matches any pattern.
func matchAny(patterns []string, rel string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" || pat == rel {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") || sub == "." {
				return true
			}
		}
	}
	return false
}

// hasGoSource reports whether dir directly contains a non-test .go file.
func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads a single directory outside the normal module layout (used
// for testdata fixtures) under the given import path. Fixture imports of
// module packages resolve through the loader as usual.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

// Import implements types.Importer: module-internal paths re-enter the
// loader, everything else falls through to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/"))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir, caching by import path.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, ok := l.preparsed[dir]
	if !ok {
		var err error
		files, err = l.parseDir(dir)
		if err != nil {
			return nil, err
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s (after build-constraint filtering)", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, firstErr)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// parseDir parses the buildable, non-test Go sources of dir in file-name
// order. Files excluded for the running platform — by a _GOOS/_GOARCH
// file-name suffix or an unsatisfied //go:build line — are skipped, the
// same way the go tool would skip them, so the linter never type-checks a
// file the build would not compile. Safe for concurrent use: the file set
// synchronizes internally and everything else is local.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if excludedByFilename(name) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s: %v", name, err)
		}
		if excludedByBuildTags(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// knownOS and knownArch are the GOOS/GOARCH values recognized in file-name
// suffixes, mirroring go/build's lists.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true, "linux": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mips64": true, "mips64le": true, "mipsle": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true, "wasm": true,
}

// unixOS lists the GOOS values the "unix" build tag covers.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// excludedByFilename applies the *_GOOS.go / *_GOARCH.go / *_GOOS_GOARCH.go
// file-name build rules against the running platform.
func excludedByFilename(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	if len(parts) < 2 {
		return false
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return true
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] != runtime.GOOS
		}
		return false
	}
	if knownOS[last] {
		return last != runtime.GOOS
	}
	return false
}

// excludedByBuildTags reports whether src carries a //go:build line (in the
// header, before the package clause) that the running platform does not
// satisfy. Tags evaluated true: the current GOOS and GOARCH, "unix" on a
// unix-like GOOS, and go1.x toolchain versions (the module always builds
// with the current toolchain, so version gates are treated as met);
// everything else — including the conventional "ignore" — is false.
func excludedByBuildTags(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false
			}
			return !expr.Eval(buildTagSatisfied)
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") || strings.HasPrefix(trimmed, "/*") {
			continue
		}
		break // reached the package clause: the constraint header is over
	}
	return false
}

// buildTagSatisfied evaluates one build tag against the running toolchain.
func buildTagSatisfied(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1"):
		return true
	}
	return false
}
