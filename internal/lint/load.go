package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit every check
// operates on.
type Package struct {
	// Path is the package import path (module-relative for module
	// packages, the directory base name for fixtures).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset maps AST positions back to file:line.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the expression-level type information checks rely on.
	Info *types.Info
}

// Loader parses and type-checks packages on demand. In-module import paths
// are resolved by re-entering the loader (the "small in-module import
// resolver" — no go/build, no external tooling); everything else, i.e. the
// standard library, is resolved from GOROOT source via go/importer.
type Loader struct {
	// ModRoot is the absolute module root (directory holding go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle guard
	typeErrs []string
}

// NewLoader returns a loader rooted at the module containing dir. It reads
// go.mod to learn the module path.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModRoot walks up from dir to the directory containing go.mod.
func findModRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule loads every non-testdata package under the module root whose
// import path matches one of the patterns ("./..." and "..." match all;
// "internal/place" matches that package; a trailing "/..." matches the
// subtree). Packages are returned sorted by import path.
func (l *Loader) LoadModule(patterns []string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoSource(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		imp := l.ModPath
		if rel != "." {
			imp = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		if !matchAny(patterns, strings.TrimPrefix(strings.TrimPrefix(imp, l.ModPath), "/")) {
			continue
		}
		p, err := l.load(imp, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// matchAny reports whether the module-relative path rel matches any pattern.
func matchAny(patterns []string, rel string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" || pat == rel {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") || sub == "." {
				return true
			}
		}
	}
	return false
}

// hasGoSource reports whether dir directly contains a non-test .go file.
func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads a single directory outside the normal module layout (used
// for testdata fixtures) under the given import path. Fixture imports of
// module packages resolve through the loader as usual.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

// Import implements types.Importer: module-internal paths re-enter the
// loader, everything else falls through to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/"))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir, caching by import path.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, firstErr)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}
