package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture tests of the three dataflow checks (nondetflow, ctxflow,
// lockbalance), plus the seeded-bug tests: for each check, a mutation the
// syntax-level suite provably misses (zero findings) that the dataflow
// check catches.

func TestNondetFlowFixture(t *testing.T) {
	_, p := loadFixture(t, "nondetflow", "fixture/nondetflow")
	cfg := DefaultConfig()
	cfg.AlgoPackages = append(cfg.AlgoPackages, "fixture/nondetflow")
	checkFixture(t, cfg, p, []*Check{NondetFlowCheck()})
}

func TestCtxFlowFixture(t *testing.T) {
	_, p := loadFixture(t, "ctxflow", "fixture/ctxflow")
	cfg := DefaultConfig()
	cfg.CtxPackages = append(cfg.CtxPackages, "fixture/ctxflow")
	checkFixture(t, cfg, p, []*Check{CtxFlowCheck()})
}

func TestCtxFlowOffOutsideCtxPackages(t *testing.T) {
	_, p := loadFixture(t, "ctxflow", "fixture/elsewhere")
	findings := Run(DefaultConfig(), []*Package{p}, []*Check{CtxFlowCheck()})
	if len(findings) != 0 {
		t.Errorf("ctxflow must be scoped to CtxPackages, got %d findings", len(findings))
	}
}

func TestLockBalanceFixture(t *testing.T) {
	_, p := loadFixture(t, "lockbalance", "fixture/lockbalance")
	checkFixture(t, DefaultConfig(), p, []*Check{LockBalanceCheck()})
}

// loadSrc type-checks one inline source file as its own package.
func loadSrc(t *testing.T, name, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return p
}

// expectSeeded asserts the syntax-level suite reports nothing on p while
// the dataflow check reports a finding matching want.
func expectSeeded(t *testing.T, cfg *Config, p *Package, check *Check, want string) {
	t.Helper()
	syntax := []*Check{DeterminismCheck(), MapIterCheck(), FloatCmpCheck(), ErrDropCheck()}
	if fs := Run(cfg, []*Package{p}, syntax); len(fs) != 0 {
		t.Fatalf("seeded bug is visible to the syntax suite (test is vacuous): %v", fs)
	}
	fs := Run(cfg, []*Package{p}, []*Check{check})
	found := false
	for _, f := range fs {
		if strings.Contains(f.Message, want) {
			found = true
		}
	}
	if !found {
		t.Errorf("%s missed the seeded bug; want message containing %q, got %v", check.Name, want, fs)
	}
}

// TestSeededNondetFlow: a map-ordered value reaches a fingerprint through
// one intermediate function. No append inside the range, so mapiter is
// blind; no banned import or call, so determinism is blind.
func TestSeededNondetFlow(t *testing.T) {
	p := loadSrc(t, "seednondet", `// Package seednondet is a seeded-bug fixture.
package seednondet

// Hasher mimics the pipeline hasher.
type Hasher struct{ data []string }

// Str mixes a string.
func (h *Hasher) Str(s string) { h.data = append(h.data, s) }

func maxKey(m map[string]int) string {
	best := ""
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

func hashMax(h *Hasher, m map[string]int) {
	h.Str(maxKey(m))
}
`)
	cfg := DefaultConfig()
	cfg.AlgoPackages = append(cfg.AlgoPackages, "seednondet")
	expectSeeded(t, cfg, p, NondetFlowCheck(), "ordered by random map iteration")
}

// TestSeededCtxFlow: the received ctx is shadowed by context.Background()
// before the blocking hand-off. Purely a dataflow property; the syntax
// suite has no rule that could see it.
func TestSeededCtxFlow(t *testing.T) {
	p := loadSrc(t, "seedctx", `// Package seedctx is a seeded-bug fixture.
package seedctx

import "context"

func handoff(ctx context.Context, ch chan int) int {
	ctx = context.Background()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}
`)
	cfg := DefaultConfig()
	cfg.CtxPackages = append(cfg.CtxPackages, "seedctx")
	expectSeeded(t, cfg, p, CtxFlowCheck(), "rebound to a dead context")
}

// TestSeededLockBalance: an early return leaks the mutex on one CFG path —
// invisible without path-sensitive lock-state tracking.
func TestSeededLockBalance(t *testing.T) {
	p := loadSrc(t, "seedlock", `// Package seedlock is a seeded-bug fixture.
package seedlock

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func bump(b *box, skip bool) int {
	b.mu.Lock()
	if skip {
		return 0
	}
	b.n++
	b.mu.Unlock()
	return b.n
}
`)
	expectSeeded(t, DefaultConfig(), p, LockBalanceCheck(), "not released on every path")
}
