// Package pool is the sanctioned worker-pool of the fold3d flow: the ONE
// place in the module that may start goroutines (fold3dlint's determinism
// check flags bare go statements everywhere else). It exists to keep
// parallel execution compatible with the repo's bit-reproducibility promise:
//
//   - Tasks are identified by a dense index [0, n) and must write their
//     results into per-index slots; the pool imposes no completion order, so
//     correctness must never depend on one.
//   - Error selection is deterministic: when several tasks fail, Run returns
//     the error of the lowest-indexed failed task, regardless of which
//     worker hit its error first.
//   - Workers = 1 is the exact sequential legacy path — an inline loop on
//     the caller's goroutine, no channels, no extra goroutines — so a
//     sequential run is not merely "parallelism with one worker" but the
//     same code shape the flow had before the pool existed.
//
// Cancellation: every task receives the context; between tasks the pool
// stops dispatching as soon as the context is done and reports
// errs.ErrCanceled (wrapping ctx.Err(), so errors.Is against
// context.Canceled/DeadlineExceeded also holds).
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fold3d/internal/errs"
)

// Workers resolves a configured worker count: 0 (or negative) selects
// runtime.GOMAXPROCS(0), anything else is returned as given.
func Workers(configured int) int {
	if configured <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}

// Canceled wraps ctx's error in the errs.ErrCanceled sentinel. It returns
// nil when the context is still live.
func Canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", errs.ErrCanceled, err)
	}
	return nil
}

// Run executes task(ctx, i) for every i in [0, n) across workers
// goroutines (see Workers for the 0 convention; 1 runs inline) and waits
// for completion. The first error by task INDEX (not by wall-clock) is
// returned; when the context is canceled before all tasks ran, Run returns
// errs.ErrCanceled unless a lower-indexed task failed on its own.
func Run(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return Canceled(ctx)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Exact sequential legacy path: same goroutine, same order.
		for i := 0; i < n; i++ {
			if err := Canceled(ctx); err != nil {
				return err
			}
			if err := task(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	taskErrs := make([]error, n) // per-index slots: merge is order-independent
	idx := make(chan int)
	var wg sync.WaitGroup
	var failed sync.Once
	stop := make(chan struct{}) // closed on first failure to drain quickly
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := task(ctx, i); err != nil {
					taskErrs[i] = err
					failed.Do(func() { close(stop) })
				}
			}
		}()
	}
	canceled := false
dispatch:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			canceled = true
			break dispatch
		case <-stop:
			break dispatch
		}
	}
	close(idx)
	//lint:ignore ctxflow the dispatch loop above is ctx-guarded, so idx is
	// already closed by the time we get here; workers exit as soon as they
	// drain it, making this Wait bounded by one in-flight task per worker.
	// Honoring ctx inside the task body is the task's own contract.
	wg.Wait()

	for i := 0; i < n; i++ {
		if taskErrs[i] != nil {
			return taskErrs[i]
		}
	}
	if canceled {
		return Canceled(ctx)
	}
	return nil
}
