package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fold3d/internal/errs"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 53
		counts := make([]int32, n)
		err := Run(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunDeterministicErrorSelection(t *testing.T) {
	// Indices 3 and 9 fail; regardless of completion order the error of the
	// LOWEST index must be returned. Make the lower-indexed failure slow so
	// a wall-clock-first policy would pick index 9.
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), workers, 12, func(_ context.Context, i int) error {
			switch i {
			case 3:
				time.Sleep(20 * time.Millisecond)
				return fmt.Errorf("task %d failed", i)
			case 9:
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		// Workers=1 stops at the first (lowest) failure by construction; the
		// parallel path must agree whenever the lower index was dispatched.
		if workers == 1 && err.Error() != "task 3 failed" {
			t.Fatalf("sequential error = %v, want task 3", err)
		}
		if workers > 1 && err.Error() != "task 3 failed" && err.Error() != "task 9 failed" {
			t.Fatalf("parallel error = %v, want a task error", err)
		}
	}
}

func TestRunLowestIndexWinsWhenBothRecorded(t *testing.T) {
	// Force every failure to be recorded before Run returns: all four tasks
	// rendezvous (4 workers, 4 tasks — each holds one), then fail together.
	// The reported error must be index 0's even though completion order is
	// scheduler-dependent.
	const n = 4
	arrived := make(chan struct{}, n)
	start := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			<-arrived
		}
		close(start)
	}()
	err := Run(context.Background(), n, n, func(_ context.Context, i int) error {
		arrived <- struct{}{}
		<-start
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if err.Error() != "task 0 failed" {
		t.Fatalf("error = %v, want task 0 (lowest index)", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := Run(ctx, 2, 1000, func(ctx context.Context, i int) error {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also wrap context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d tasks)", n)
	}
}

func TestRunSequentialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := Run(ctx, 1, 100, func(ctx context.Context, i int) error {
		ran++
		if ran == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d tasks after cancel, want exactly 5", ran)
	}
}

func TestRunAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	for _, workers := range []int{1, 4} {
		err := Run(ctx, workers, 10, func(ctx context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
	}
	if ran != 0 {
		t.Fatalf("%d tasks ran under a dead context", ran)
	}
}

func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := Run(ctx, 2, 1000, func(ctx context.Context, i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto worker count must be at least 1")
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}
