// Package server is the HTTP transport of the fold3dd daemon: a thin,
// goroutine-free layer that maps the REST surface onto a jobs.Manager —
// and, when the daemon runs as a fleet member, routes work to its owner
// node through a cluster.Router.
//
//	POST /v1/jobs            enqueue a jobs.Request        → 202 + job info
//	GET  /v1/jobs            list jobs in submission order → 200 + info array
//	GET  /v1/jobs/{id}       job status and result         → 200 + job info
//	GET  /v1/jobs/{id}/events  live NDJSON event stream    → 200 + one JSON
//	                           object per line, streamed until terminal
//	POST /v1/batches         enqueue many requests at once → 202 + batch info
//	GET  /v1/batches/{id}    batch status                  → 200 + batch info
//	GET  /v1/batches/{id}/events  multiplexed NDJSON of every member job
//	GET  /v1/artifacts/{fp}  cache wire entry (peers only) → 200 + octet-stream
//	GET  /metrics            service counters              → Prometheus text
//	GET  /healthz            readiness                     → 200, 503 draining
//
// Every /v1 error is one envelope, {"error":{"code":"...","message":"..."}},
// with the status and code chosen from a single sentinel-mapping table:
// errs.ErrBadRequest → 400 bad_request, unknown job/batch/artifact → 404
// not_found, jobs.ErrQuotaExceeded → 429 quota_exceeded (+ Retry-After),
// jobs.ErrQueueFull → 503 queue_full (+ Retry-After), jobs.ErrShutdown →
// 503 shutdown (+ Retry-After), bad peer token → 401 unauthorized,
// cluster.ErrPeerUnreachable → 502 peer_unreachable.
//
// Fleet routing: POSTs are fingerprinted (jobs.Request.Fingerprint /
// jobs.BatchFingerprint) and proxied to the consistent-hash owner node
// unless this node owns the key or the request was already forwarded once
// (cluster.ForwardHeader breaks loops). GETs for a foreign "<node>-" ID
// prefix proxy to the minting node. /v1/artifacts serves the node-local
// cache to peers, gated by the fleet token.
//
// The package spawns no goroutines: streaming handlers block on the job's
// notify channel and the request context, so the daemon's only long-lived
// goroutines stay inside the jobs scheduler.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"fold3d/internal/cluster"
	"fold3d/internal/errs"
	"fold3d/internal/jobs"
)

// errPeerAuth reports a peer-gated request without the fleet token.
var errPeerAuth = errors.New("server: missing or wrong peer token")

// errUnknownArtifact reports an artifact key absent from the local cache.
var errUnknownArtifact = errors.New("server: unknown artifact")

// Options configures a Server.
type Options struct {
	// Manager executes the jobs. Required.
	Manager *jobs.Manager
	// Router, when non-nil, makes this node a fleet member: POSTs proxy to
	// their consistent-hash owner, foreign-ID GETs proxy to their minting
	// node, and /v1/artifacts is token-gated. Nil serves single-node.
	Router *cluster.Router
	// Pprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/. Off by default: the endpoints expose heap and CPU
	// internals and should only be enabled on trusted interfaces.
	Pprof bool
}

// Server routes the fold3dd HTTP API onto a jobs.Manager.
type Server struct {
	mgr    *jobs.Manager
	router *cluster.Router // nil when single-node
	mux    *http.ServeMux
}

// New builds a single-node server for a manager. The caller retains
// ownership of the manager and its lifecycle (the server never closes it).
func New(mgr *jobs.Manager) *Server {
	return NewWithOptions(Options{Manager: mgr})
}

// NewWithOptions builds the server, fleet-aware when opts.Router is set.
func NewWithOptions(opts Options) *Server {
	s := &Server{mgr: opts.Manager, router: opts.Router, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchStatus)
	s.mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	s.mux.HandleFunc("GET /v1/artifacts/{key}", s.handleArtifact)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if opts.Pprof {
		// Explicit registration: the daemon serves its own mux, never
		// http.DefaultServeMux, so the pprof import's init registration
		// alone would expose nothing. Patterns are method-less because
		// /debug/pprof/symbol accepts both GET and POST.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorClass is one row of the sentinel→HTTP mapping table: the single
// place where queue errors become statuses, codes and Retry-After hints.
type errorClass struct {
	sentinel   error
	status     int
	code       string
	retryAfter int // seconds; 0 omits the header
}

// errorTable maps every /v1 error sentinel, first match wins. ErrBadRequest
// is matched last among 4xx classes so that dual-wrapped validation errors
// (bad request + unknown experiment) stay 400 while the more specific
// lookup/admission sentinels claim their own statuses first.
var errorTable = []errorClass{
	{jobs.ErrUnknownJob, http.StatusNotFound, "not_found", 0},
	{jobs.ErrUnknownBatch, http.StatusNotFound, "not_found", 0},
	{errUnknownArtifact, http.StatusNotFound, "not_found", 0},
	{jobs.ErrQuotaExceeded, http.StatusTooManyRequests, "quota_exceeded", 1},
	{jobs.ErrQueueFull, http.StatusServiceUnavailable, "queue_full", 1},
	{jobs.ErrShutdown, http.StatusServiceUnavailable, "shutdown", 5},
	{errPeerAuth, http.StatusUnauthorized, "unauthorized", 0},
	{cluster.ErrPeerUnreachable, http.StatusBadGateway, "peer_unreachable", 0},
	{errs.ErrBadRequest, http.StatusBadRequest, "bad_request", 0},
}

// classify resolves an error against the table; unmatched errors are the
// 500 internal class.
func classify(err error) errorClass {
	for _, c := range errorTable {
		if errors.Is(err, c.sentinel) {
			return c
		}
	}
	return errorClass{status: http.StatusInternalServerError, code: "internal"}
}

// ErrorBody is the unified /v1 error envelope.
type ErrorBody struct {
	// Error carries the machine-readable code and human-readable message.
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the payload of the error envelope.
type ErrorDetail struct {
	// Code is the stable machine-readable error class (e.g. "queue_full").
	Code string `json:"code"`
	// Message is the human-readable error text.
	Message string `json:"message"`
}

// writeError emits the error envelope with the sentinel-mapped status and,
// for backpressure classes, a Retry-After hint.
func writeError(w http.ResponseWriter, err error) {
	c := classify(err)
	w.Header().Set("Content-Type", "application/json")
	if c.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(c.retryAfter))
	}
	w.WriteHeader(c.status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: c.code, Message: err.Error()}})
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds the request body; experiment requests are a few
// hundred bytes of knobs and a batch a few hundred of those, so 1 MiB is
// generous.
const maxBodyBytes = 1 << 20

// readBody consumes the bounded request body. POST handlers read it fully
// before decoding so the same bytes can be proxied verbatim to the owner
// node when the fingerprint routes elsewhere.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("server: %w: reading request body: %v", errs.ErrBadRequest, err)
	}
	return body, nil
}

// decodeStrict decodes JSON rejecting unknown fields.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: %w: decoding request body: %v", errs.ErrBadRequest, err)
	}
	return nil
}

// forwardPost proxies a POST to the owner of key when the ring places it
// on another node. Returns true when the response was (or failed being)
// written here; false means the caller should handle the request locally —
// either this node owns the key or the request already hopped once.
func (s *Server) forwardPost(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	if s.router == nil || s.router.Forwarded(r) {
		return false
	}
	owner := s.router.Ring().Owner(key)
	if owner.ID == s.router.Ring().Self() {
		return false
	}
	if err := s.router.Forward(w, r, owner, body); err != nil {
		writeError(w, err)
	}
	return true
}

// forwardGetByID proxies a GET whose ID was minted by another fleet node
// (by its "<node>-" prefix). Same contract as forwardPost.
func (s *Server) forwardGetByID(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.router == nil || s.router.Forwarded(r) {
		return false
	}
	owner, ok := s.router.OwnerOfID(id)
	if !ok || owner.ID == s.router.Ring().Self() {
		return false
	}
	if err := s.router.Forward(w, r, owner, nil); err != nil {
		writeError(w, err)
	}
	return true
}

// authorizePeer guards forwarded requests and the artifact endpoint with
// the fleet token when one is configured.
func (s *Server) authorizePeer(r *http.Request) error {
	if s.router != nil && !s.router.Authorize(r) {
		return errPeerAuth
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.router != nil && s.router.Forwarded(r) {
		if err := s.authorizePeer(r); err != nil {
			writeError(w, err)
			return
		}
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req jobs.Request
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, err)
		return
	}
	if s.forwardPost(w, r, req.Fingerprint(), body) {
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info())
}

// BatchRequest is the body of POST /v1/batches: one submission carrying
// many job configurations, admitted atomically.
type BatchRequest struct {
	// Jobs lists the member requests in order; at least one is required.
	Jobs []jobs.Request `json:"jobs"`
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.router != nil && s.router.Forwarded(r) {
		if err := s.authorizePeer(r); err != nil {
			writeError(w, err)
			return
		}
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req BatchRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, err)
		return
	}
	if s.forwardPost(w, r, jobs.BatchFingerprint(req.Jobs), body) {
		return
	}
	b, err := s.mgr.SubmitBatch(req.Jobs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, b.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Infos())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.mgr.Get(id)
	if err != nil {
		if s.forwardGetByID(w, r, id) {
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, err := s.mgr.GetBatch(id)
	if err != nil {
		if s.forwardGetByID(w, r, id) {
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, b.Info())
}

// parseFrom reads the ?from= resume cursor (default 0).
func parseFrom(r *http.Request) (int, error) {
	q := r.URL.Query().Get("from")
	if q == "" {
		return 0, nil
	}
	from, err := strconv.Atoi(q)
	if err != nil || from < 0 {
		return 0, fmt.Errorf("server: %w: from=%q is not a non-negative integer", errs.ErrBadRequest, q)
	}
	return from, nil
}

// handleEvents streams the job's events as NDJSON: first a replay of
// everything recorded so far (from ?from=N onward, default 0), then a live
// follow until the job reaches a terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.mgr.Get(id)
	if err != nil {
		if s.forwardGetByID(w, r, id) {
			return
		}
		writeError(w, err)
		return
	}
	from, err := parseFrom(r)
	if err != nil {
		writeError(w, err)
		return
	}
	streamNDJSON(w, r, from, func(from int) (int, <-chan struct{}, bool, error) {
		events, more, terminal := j.EventsSince(from)
		return len(events), more, terminal, encodeAll(w, events)
	})
}

// handleBatchEvents multiplexes every member job's events into one NDJSON
// stream, tagged with the job ID, under a dense batch-wide sequence with
// the same ?from= resume contract as per-job streams.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, err := s.mgr.GetBatch(id)
	if err != nil {
		if s.forwardGetByID(w, r, id) {
			return
		}
		writeError(w, err)
		return
	}
	from, err := parseFrom(r)
	if err != nil {
		writeError(w, err)
		return
	}
	streamNDJSON(w, r, from, func(from int) (int, <-chan struct{}, bool, error) {
		events, more, terminal := b.EventsSince(from)
		return len(events), more, terminal, encodeAll(w, events)
	})
}

// encodeAll writes one JSON line per event.
func encodeAll[E any](w io.Writer, events []E) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err // client gone
		}
	}
	return nil
}

// streamNDJSON is the shared replay-then-follow loop: fetch emits events
// from the cursor and reports how many it wrote, the follow channel, and
// terminality; the loop flushes and parks on the channel until the stream
// ends or the client disconnects.
func streamNDJSON(w http.ResponseWriter, r *http.Request, from int, fetch func(from int) (int, <-chan struct{}, bool, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		n, more, terminal, err := fetch(from)
		if err != nil {
			return // client gone
		}
		from += n
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves the raw wire entry of a cache key to fleet peers
// (the network tier's GET). The bytes go out exactly as the disk spill
// stores them — versioned, checksummed — so the fetching node validates
// and a corrupt transfer is its miss, not our error.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if err := s.authorizePeer(r); err != nil {
		writeError(w, err)
		return
	}
	key := r.PathValue("key")
	entry, ok := s.mgr.CacheEntry(key)
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", errUnknownArtifact, key))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(entry)))
	_, _ = w.Write(entry)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.mgr.Closed() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the manager snapshot in the Prometheus text
// exposition format. Output order is deterministic: fixed counter layout,
// stages sorted by name (jobs.Metrics guarantees the sort).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.mgr.Metrics())
}

// fnum formats a float the way Prometheus text expects (shortest exact
// decimal, no exponent surprises for the bucket bounds in use).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeMetrics renders one snapshot. Split from the handler so tests and
// the daemon's shutdown summary can render without an HTTP round trip.
func writeMetrics(w io.Writer, mt jobs.Metrics) {
	var b strings.Builder

	b.WriteString("# HELP fold3dd_jobs_gauge Jobs currently in a non-terminal state.\n")
	b.WriteString("# TYPE fold3dd_jobs_gauge gauge\n")
	fmt.Fprintf(&b, "fold3dd_jobs_gauge{state=\"queued\"} %d\n", mt.Queued)
	fmt.Fprintf(&b, "fold3dd_jobs_gauge{state=\"running\"} %d\n", mt.Running)

	b.WriteString("# HELP fold3dd_jobs_total Jobs that reached each terminal state.\n")
	b.WriteString("# TYPE fold3dd_jobs_total counter\n")
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"done\"} %d\n", mt.Done)
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"failed\"} %d\n", mt.Failed)
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"canceled\"} %d\n", mt.Canceled)

	b.WriteString("# HELP fold3dd_jobs_submitted_total Jobs accepted by Submit.\n")
	b.WriteString("# TYPE fold3dd_jobs_submitted_total counter\n")
	fmt.Fprintf(&b, "fold3dd_jobs_submitted_total %d\n", mt.Submitted)

	b.WriteString("# HELP fold3dd_cache_lookups_total Artifact cache lookups by outcome.\n")
	b.WriteString("# TYPE fold3dd_cache_lookups_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"hit\"} %d\n", mt.Cache.Hits)
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"disk_hit\"} %d\n", mt.Cache.DiskHits)
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"peer_hit\"} %d\n", mt.Cache.PeerHits)
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"miss\"} %d\n", mt.Cache.Misses)

	b.WriteString("# HELP fold3dd_cache_stores_total Artifacts written into the cache.\n")
	b.WriteString("# TYPE fold3dd_cache_stores_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_stores_total %d\n", mt.Cache.Stores)

	b.WriteString("# HELP fold3dd_cache_corrupt_total Tier entries rejected by validation.\n")
	b.WriteString("# TYPE fold3dd_cache_corrupt_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_corrupt_total %d\n", mt.Cache.Corrupt)

	b.WriteString("# HELP fold3dd_cache_entries In-memory cache entries.\n")
	b.WriteString("# TYPE fold3dd_cache_entries gauge\n")
	fmt.Fprintf(&b, "fold3dd_cache_entries %d\n", mt.Cache.Entries)

	b.WriteString("# HELP fold3dd_cache_hit_ratio Fraction of lookups served from the cache.\n")
	b.WriteString("# TYPE fold3dd_cache_hit_ratio gauge\n")
	fmt.Fprintf(&b, "fold3dd_cache_hit_ratio %s\n", fnum(mt.Cache.HitRatio()))

	b.WriteString("# HELP fold3dd_stage_latency_seconds Flow stage latency by stage name.\n")
	b.WriteString("# TYPE fold3dd_stage_latency_seconds histogram\n")
	for _, sl := range mt.Stages {
		for i, bound := range sl.Bounds {
			fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_bucket{stage=%q,le=%q} %d\n",
				sl.Stage, fnum(bound), sl.CumCounts[i])
		}
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", sl.Stage, sl.Count)
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_sum{stage=%q} %s\n", sl.Stage, fnum(sl.SumSeconds))
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_count{stage=%q} %d\n", sl.Stage, sl.Count)
	}

	_, _ = io.WriteString(w, b.String())
}
