// Package server is the HTTP transport of the fold3dd daemon: a thin,
// goroutine-free layer that maps the REST surface onto a jobs.Manager.
//
//	POST /v1/jobs            enqueue a jobs.Request        → 202 + job info
//	GET  /v1/jobs            list jobs in submission order → 200 + info array
//	GET  /v1/jobs/{id}       job status and result         → 200 + job info
//	GET  /v1/jobs/{id}/events  live NDJSON event stream    → 200 + one JSON
//	                           object per line, streamed until terminal
//	GET  /metrics            service counters              → Prometheus text
//	GET  /healthz            readiness                     → 200, 503 draining
//
// Errors map by sentinel, not by string: validation failures wrap
// errs.ErrBadRequest → 400, unknown IDs wrap jobs.ErrUnknownJob → 404, and
// admission failures (jobs.ErrQueueFull, jobs.ErrShutdown) → 503. Every
// error body is a JSON object {"error": "..."}.
//
// The package spawns no goroutines: streaming handlers block on the job's
// notify channel and the request context, so the daemon's only long-lived
// goroutines stay inside the jobs scheduler.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"fold3d/internal/errs"
	"fold3d/internal/jobs"
)

// Server routes the fold3dd HTTP API onto a jobs.Manager.
type Server struct {
	mgr *jobs.Manager
	mux *http.ServeMux
}

// New builds the server for a manager. The caller retains ownership of the
// manager and its lifecycle (the server never closes it).
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusOf maps an error to its HTTP status by sentinel.
func statusOf(err error) int {
	switch {
	case errors.Is(err, errs.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrShutdown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the JSON error body with the sentinel-mapped status.
func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusOf(err))
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds the request body; experiment requests are a few
// hundred bytes of knobs, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("server: %w: decoding request body: %v", errs.ErrBadRequest, err))
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Infos())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

// handleEvents streams the job's events as NDJSON: first a replay of
// everything recorded so far (from ?from=N onward, default 0), then a live
// follow until the job reaches a terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		from, err = strconv.Atoi(q)
		if err != nil || from < 0 {
			writeError(w, fmt.Errorf("server: %w: from=%q is not a non-negative integer", errs.ErrBadRequest, q))
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		events, more, terminal := j.EventsSince(from)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.mgr.Closed() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the manager snapshot in the Prometheus text
// exposition format. Output order is deterministic: fixed counter layout,
// stages sorted by name (jobs.Metrics guarantees the sort).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.mgr.Metrics())
}

// fnum formats a float the way Prometheus text expects (shortest exact
// decimal, no exponent surprises for the bucket bounds in use).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeMetrics renders one snapshot. Split from the handler so tests and
// the daemon's shutdown summary can render without an HTTP round trip.
func writeMetrics(w io.Writer, mt jobs.Metrics) {
	var b strings.Builder

	b.WriteString("# HELP fold3dd_jobs_gauge Jobs currently in a non-terminal state.\n")
	b.WriteString("# TYPE fold3dd_jobs_gauge gauge\n")
	fmt.Fprintf(&b, "fold3dd_jobs_gauge{state=\"queued\"} %d\n", mt.Queued)
	fmt.Fprintf(&b, "fold3dd_jobs_gauge{state=\"running\"} %d\n", mt.Running)

	b.WriteString("# HELP fold3dd_jobs_total Jobs that reached each terminal state.\n")
	b.WriteString("# TYPE fold3dd_jobs_total counter\n")
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"done\"} %d\n", mt.Done)
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"failed\"} %d\n", mt.Failed)
	fmt.Fprintf(&b, "fold3dd_jobs_total{state=\"canceled\"} %d\n", mt.Canceled)

	b.WriteString("# HELP fold3dd_jobs_submitted_total Jobs accepted by Submit.\n")
	b.WriteString("# TYPE fold3dd_jobs_submitted_total counter\n")
	fmt.Fprintf(&b, "fold3dd_jobs_submitted_total %d\n", mt.Submitted)

	b.WriteString("# HELP fold3dd_cache_lookups_total Artifact cache lookups by outcome.\n")
	b.WriteString("# TYPE fold3dd_cache_lookups_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"hit\"} %d\n", mt.Cache.Hits)
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"disk_hit\"} %d\n", mt.Cache.DiskHits)
	fmt.Fprintf(&b, "fold3dd_cache_lookups_total{outcome=\"miss\"} %d\n", mt.Cache.Misses)

	b.WriteString("# HELP fold3dd_cache_stores_total Artifacts written into the cache.\n")
	b.WriteString("# TYPE fold3dd_cache_stores_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_stores_total %d\n", mt.Cache.Stores)

	b.WriteString("# HELP fold3dd_cache_corrupt_total On-disk entries rejected by validation.\n")
	b.WriteString("# TYPE fold3dd_cache_corrupt_total counter\n")
	fmt.Fprintf(&b, "fold3dd_cache_corrupt_total %d\n", mt.Cache.Corrupt)

	b.WriteString("# HELP fold3dd_cache_entries In-memory cache entries.\n")
	b.WriteString("# TYPE fold3dd_cache_entries gauge\n")
	fmt.Fprintf(&b, "fold3dd_cache_entries %d\n", mt.Cache.Entries)

	b.WriteString("# HELP fold3dd_cache_hit_ratio Fraction of lookups served from the cache.\n")
	b.WriteString("# TYPE fold3dd_cache_hit_ratio gauge\n")
	fmt.Fprintf(&b, "fold3dd_cache_hit_ratio %s\n", fnum(mt.Cache.HitRatio()))

	b.WriteString("# HELP fold3dd_stage_latency_seconds Flow stage latency by stage name.\n")
	b.WriteString("# TYPE fold3dd_stage_latency_seconds histogram\n")
	for _, sl := range mt.Stages {
		for i, bound := range sl.Bounds {
			fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_bucket{stage=%q,le=%q} %d\n",
				sl.Stage, fnum(bound), sl.CumCounts[i])
		}
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", sl.Stage, sl.Count)
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_sum{stage=%q} %s\n", sl.Stage, fnum(sl.SumSeconds))
		fmt.Fprintf(&b, "fold3dd_stage_latency_seconds_count{stage=%q} %d\n", sl.Stage, sl.Count)
	}

	_, _ = io.WriteString(w, b.String())
}
