package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fold3d/internal/jobs"
	"fold3d/internal/place"
)

// newTestServer boots a manager + server pair on an httptest listener and
// tears both down (manager drained first) when the test ends.
func newTestServer(t *testing.T, opts jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr := jobs.NewManager(opts)
	ts := httptest.NewServer(New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("manager drain: %v", err)
		}
	})
	return ts, mgr
}

// postJob submits a request body and decodes the job info from the 202.
func postJob(t *testing.T, ts *httptest.Server, body string) jobs.Info {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs = %d (%s), want 202", resp.StatusCode, e["error"])
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollDone polls the status endpoint until the job is terminal.
func pollDone(t *testing.T, ts *httptest.Server, id string) jobs.Info {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var info jobs.Info
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &info); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d, want 200", id, code)
		}
		if info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLifecycle walks the happy path over HTTP: enqueue, poll to done,
// check the result payload, and see the job in the listing.
func TestLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	info := postJob(t, ts, `{"experiments":["table1"]}`)
	if info.ID == "" || info.State != jobs.StateQueued && info.State != jobs.StateRunning && info.State != jobs.StateDone {
		t.Fatalf("submit info = %+v", info)
	}
	if info.Request.Scale != 1000 || info.Request.Seed != 42 {
		t.Errorf("request not normalized in response: %+v", info.Request)
	}

	final := pollDone(t, ts, info.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Fingerprint == "" {
		t.Fatal("done job has no fingerprint")
	}
	if len(final.Result.Experiments) != 1 || !strings.Contains(final.Result.Experiments[0].Report, "Table 1") {
		t.Errorf("unexpected result payload: %+v", final.Result)
	}

	var list []jobs.Info
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs = %d", code)
	}
	if len(list) != 1 || list[0].ID != info.ID {
		t.Errorf("job listing = %+v", list)
	}
}

// TestClientErrors is the table-driven test of the unified error envelope:
// every /v1 error is {"error":{"code","message"}} with the status and code
// drawn from the single sentinel-mapping table.
func TestClientErrors(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
		code   string
	}{
		{"malformed json", "POST", "/v1/jobs", `{"experiments":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "POST", "/v1/jobs", `{"experiment":"table1"}`, http.StatusBadRequest, "bad_request"},
		{"unknown experiment", "POST", "/v1/jobs", `{"experiments":["bogus"]}`, http.StatusBadRequest, "bad_request"},
		{"bad scale", "POST", "/v1/jobs", `{"scale":0.5}`, http.StatusBadRequest, "bad_request"},
		{"negative workers", "POST", "/v1/jobs", `{"workers":-1}`, http.StatusBadRequest, "bad_request"},
		{"unknown placer", "POST", "/v1/jobs", `{"experiments":["table1"],"placer":"simulated-annealing"}`, http.StatusBadRequest, "bad_request"},
		{"bad batch placer", "POST", "/v1/batches", `{"jobs":[{"experiments":["table1"],"placer":"bogus"}]}`, http.StatusBadRequest, "bad_request"},
		{"unknown job", "GET", "/v1/jobs/job-999999", "", http.StatusNotFound, "not_found"},
		{"unknown job events", "GET", "/v1/jobs/job-999999/events", "", http.StatusNotFound, "not_found"},
		{"empty batch", "POST", "/v1/batches", `{"jobs":[]}`, http.StatusBadRequest, "bad_request"},
		{"bad batch member", "POST", "/v1/batches", `{"jobs":[{"experiments":["bogus"]}]}`, http.StatusBadRequest, "bad_request"},
		{"unknown batch", "GET", "/v1/batches/batch-999999", "", http.StatusNotFound, "not_found"},
		{"unknown batch events", "GET", "/v1/batches/batch-999999/events", "", http.StatusNotFound, "not_found"},
		{"unknown artifact", "GET", "/v1/artifacts/deadbeef", "", http.StatusNotFound, "not_found"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.want)
			}
			var e ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error envelope undecodable: %v", err)
			}
			if e.Error.Code != c.code || e.Error.Message == "" {
				t.Errorf("envelope = %+v, want code %q with a message", e, c.code)
			}
		})
	}

	// A bad ?from= on a real job is also a 400.
	info := postJob(t, ts, `{"experiments":["table1"]}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events?from=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from = %d, want 400", resp.StatusCode)
	}
}

// TestPlacerFieldOverHTTP pins the wire-level placer contract: the 400 for
// an unknown backend names every valid one, and a job carrying a valid
// non-default backend completes with a fingerprint distinct from the
// default backend's.
func TestPlacerFieldOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table4"],"placer":"quadratic"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown placer status = %d, want 400", resp.StatusCode)
	}
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error envelope undecodable: %v", err)
	}
	for _, name := range place.BackendNames() {
		if !strings.Contains(e.Error.Message, name) {
			t.Errorf("400 message %q does not name valid backend %q", e.Error.Message, name)
		}
	}

	force := pollDone(t, ts, postJob(t, ts, `{"experiments":["table4"]}`).ID)
	analytical := pollDone(t, ts, postJob(t, ts, `{"experiments":["table4"],"placer":"analytical"}`).ID)
	if force.State != jobs.StateDone || analytical.State != jobs.StateDone {
		t.Fatalf("jobs did not finish: %s / %s", force.State, analytical.State)
	}
	if force.Result.Fingerprint == analytical.Result.Fingerprint {
		t.Errorf("analytical job fingerprint matches force: backend not reaching the flow")
	}
}

// TestEventStreamNDJSON consumes the live stream of a chip-building job and
// checks NDJSON framing and ordering: one JSON object per line, dense Seq
// from 0, queued→running first, terminal state last.
func TestEventStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})
	info := postJob(t, ts, `{"experiments":["table2"],"scale":5000}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events []jobs.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v: %q", len(events), err, sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 3 {
		t.Fatalf("got %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("events[%d].Seq = %d: stream reordered or gapped", i, ev.Seq)
		}
	}
	if events[0].State != jobs.StateQueued || events[1].State != jobs.StateRunning {
		t.Errorf("stream prefix = %+v %+v, want queued then running", events[0], events[1])
	}
	last := events[len(events)-1]
	if last.Kind != "state" || !last.State.Terminal() {
		t.Errorf("stream did not end on a terminal state: %+v", last)
	}
	if last.State == jobs.StateDone && last.Fingerprint == "" {
		t.Error("done event lacks fingerprint")
	}
	progress := 0
	for _, ev := range events {
		if ev.Kind == "progress" {
			progress++
			if ev.Experiment != "table2" {
				t.Errorf("progress event lacks experiment tag: %+v", ev)
			}
		}
	}
	if progress == 0 {
		t.Error("chip build streamed no progress events")
	}

	// Resume mid-stream: ?from=N replays exactly the suffix of a finished job.
	from := len(events) - 2
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, info.ID, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tail []jobs.Event
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc2.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, ev)
	}
	if len(tail) != 2 || tail[0].Seq != from {
		t.Errorf("resumed stream = %+v, want 2 events from seq %d", tail, from)
	}
}

// TestDeterministicFingerprints is the acceptance gate: the same request
// body must yield byte-identical result fingerprints whether it runs cold
// (fresh manager), warm (rerun against the shared cache), or as four
// simultaneous jobs racing each other.
func TestDeterministicFingerprints(t *testing.T) {
	const body = `{"experiments":["table4"]}`

	// Cold reference on its own manager.
	ref := func() string {
		ts, _ := newTestServer(t, jobs.Options{})
		info := pollDone(t, ts, postJob(t, ts, body).ID)
		if info.State != jobs.StateDone {
			t.Fatalf("cold job %s: %s", info.State, info.Error)
		}
		return info.Result.Fingerprint
	}()

	ts, mgr := newTestServer(t, jobs.Options{Workers: 4})

	// Four simultaneous jobs against one shared cache.
	var wg sync.WaitGroup
	ids := make([]string, 4)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postJob(t, ts, body).ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		info := pollDone(t, ts, id)
		if info.State != jobs.StateDone {
			t.Fatalf("concurrent job %s: %s", info.State, info.Error)
		}
		if info.Result.Fingerprint != ref {
			t.Errorf("concurrent fingerprint %s != cold %s", info.Result.Fingerprint, ref)
		}
	}

	// Warm rerun on the now-populated cache.
	info := pollDone(t, ts, postJob(t, ts, body).ID)
	if info.Result.Fingerprint != ref {
		t.Errorf("warm fingerprint %s != cold %s", info.Result.Fingerprint, ref)
	}
	if st := mgr.CacheStats(); st.Hits == 0 {
		t.Errorf("shared cache saw no hits across 5 identical jobs: %+v", st)
	}
}

// TestGracefulShutdownDrains closes the manager mid-flight and checks that
// every job terminalizes, the server reports draining, and no scheduler
// goroutines leak.
func TestGracefulShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	mgr := jobs.NewManager(jobs.Options{Workers: 1})
	ts := httptest.NewServer(New(mgr))
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, postJob(t, ts, `{"experiments":["table2"]}`).ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every job reached a terminal state; the API still serves their status.
	canceled := 0
	for _, id := range ids {
		var info jobs.Info
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &info); code != http.StatusOK {
			t.Fatalf("GET after shutdown = %d", code)
		}
		if !info.State.Terminal() {
			t.Errorf("job %s not terminal after drain: %s", id, info.State)
		}
		if info.State == jobs.StateCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("immediate shutdown canceled nothing")
	}

	// New submissions bounce with 503, and /healthz flips to draining.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shutdown 503 carries no Retry-After header")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}

	// The scheduler goroutines are gone. Allow slack for runtime and
	// httptest helper goroutines, but catch a leaked worker set.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQueueFullOverHTTP checks the 503 + error body on queue overflow.
func TestQueueFullOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1})

	first := postJob(t, ts, `{"experiments":["table2"]}`)
	// Wait for the worker to pick the first job up so the queue is empty.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info jobs.Info
		getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &info)
		if info.State != jobs.StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	postJob(t, ts, `{"experiments":["table1"]}`) // fills the queue
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"experiments":["table1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 503 carries no Retry-After header")
	}
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "queue_full" {
		t.Errorf("queue-full envelope = %+v (%v), want code queue_full", e, err)
	}
}

// TestQuotaOverHTTP pins the per-tenant 429: a tenant at its quota gets
// quota_exceeded with Retry-After while another tenant still gets 202.
func TestQuotaOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 16, TenantQuota: 1})

	// Flood one tenant; with a quota of 1 and jobs taking seconds, at least
	// one of three rapid submissions must bounce with 429.
	var rejected *http.Response
	for i := 0; i < 3 && rejected == nil; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"experiments":["table2"],"tenant":"acme"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d = %d", i, resp.StatusCode)
			}
		}
	}
	if rejected == nil {
		t.Fatal("three rapid submissions never hit the quota of 1")
	}
	defer rejected.Body.Close()
	if rejected.Header.Get("Retry-After") == "" {
		t.Error("quota 429 carries no Retry-After header")
	}
	var e ErrorBody
	if err := json.NewDecoder(rejected.Body).Decode(&e); err != nil || e.Error.Code != "quota_exceeded" {
		t.Errorf("quota envelope = %+v (%v), want code quota_exceeded", e, err)
	}

	// Another tenant is still welcome.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table4"],"tenant":"other"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant = %d, want 202 while acme is at quota", resp.StatusCode)
	}
}

// TestHealthzAndMetrics scrapes both operational endpoints after a job and
// checks the Prometheus exposition essentials.
func TestHealthzAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	pollDone(t, ts, postJob(t, ts, `{"experiments":["table2"],"scale":5000}`).ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		`fold3dd_jobs_total{state="done"} 1`,
		`fold3dd_jobs_submitted_total 1`,
		"fold3dd_cache_hit_ratio ",
		"fold3dd_cache_stores_total ",
		`fold3dd_stage_latency_seconds_bucket{stage=`,
		`le="+Inf"`,
		"fold3dd_stage_latency_seconds_count{stage=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Histogram TYPE line present exactly once; bucket lines are cumulative
	// (spot-checked in the jobs package, framing checked here).
	if strings.Count(text, "# TYPE fold3dd_stage_latency_seconds histogram") != 1 {
		t.Error("histogram TYPE line missing or duplicated")
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

// BenchmarkServerJobsCold measures end-to-end jobs/sec through the HTTP
// surface with a fresh manager (and so a cold cache) per iteration.
func BenchmarkServerJobsCold(b *testing.B) {
	body := `{"experiments":["table4"]}`
	for i := 0; i < b.N; i++ {
		mgr := jobs.NewManager(jobs.Options{Workers: 2})
		ts := httptest.NewServer(New(mgr))
		benchOneJob(b, ts, body)
		ts.Close()
		_ = mgr.Close(context.Background())
	}
}

// BenchmarkServerJobsShared measures jobs/sec against one long-lived
// manager whose artifact cache is warm after the first iteration.
func BenchmarkServerJobsShared(b *testing.B) {
	mgr := jobs.NewManager(jobs.Options{Workers: 2})
	ts := httptest.NewServer(New(mgr))
	defer func() {
		ts.Close()
		_ = mgr.Close(context.Background())
	}()
	body := `{"experiments":["table4"]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchOneJob(b, ts, body)
	}
}

func benchOneJob(b *testing.B, ts *httptest.Server, body string) {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit = %d", resp.StatusCode)
	}
	// Follow the event stream to termination: cheaper than polling and it
	// exercises the streaming path under benchmark load.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		b.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last jobs.Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			b.Fatal(err)
		}
	}
	resp.Body.Close()
	if last.State != jobs.StateDone {
		b.Fatalf("job ended %s (%s)", last.State, last.Error)
	}
	if last.Fingerprint == "" {
		b.Fatal("no fingerprint")
	}
}

// TestBatchOverHTTP drives the batch API end to end: atomic submission,
// the multiplexed NDJSON stream (dense batch Seq, job-tagged events,
// ?from= resume), and the terminal batch status.
func TestBatchOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 2})

	resp, err := http.Post(ts.URL+"/v1/batches", "application/json",
		strings.NewReader(`{"jobs":[{"experiments":["table4"]},{"experiments":["table4"],"seed":7}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var binfo jobs.BatchInfo
	if err := json.NewDecoder(resp.Body).Decode(&binfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/batches = %d, want 202", resp.StatusCode)
	}
	if len(binfo.Jobs) != 2 || binfo.ID == "" {
		t.Fatalf("batch info = %+v", binfo)
	}

	// Stream the multiplexed events until the batch terminalizes.
	stream, err := http.Get(ts.URL + "/v1/batches/" + binfo.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch stream content type = %q", ct)
	}
	var events []jobs.BatchEvent
	perJob := map[string]int{}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.BatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != len(events) {
			t.Fatalf("batch Seq not dense: got %d at position %d", ev.Seq, len(events))
		}
		if ev.Event.Seq != perJob[ev.Job] {
			t.Fatalf("job %s events reordered: got seq %d, want %d", ev.Job, ev.Event.Seq, perJob[ev.Job])
		}
		perJob[ev.Job]++
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(perJob) != 2 {
		t.Fatalf("stream covered %d jobs, want 2", len(perJob))
	}

	// Terminal status, with two distinct member fingerprints (seeds differ).
	var final jobs.BatchInfo
	if code := getJSON(t, ts.URL+"/v1/batches/"+binfo.ID, &final); code != http.StatusOK {
		t.Fatalf("GET /v1/batches/{id} = %d", code)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("batch state = %s, want done", final.State)
	}
	if final.Jobs[0].Result.Fingerprint == final.Jobs[1].Result.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}

	// ?from= resume: ask for the tail only.
	tail, err := http.Get(ts.URL + "/v1/batches/" + binfo.ID + "/events?from=" + fmt.Sprint(len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Body.Close()
	tsc := bufio.NewScanner(tail.Body)
	n := 0
	for tsc.Scan() {
		var ev jobs.BatchEvent
		if err := json.Unmarshal(tsc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != len(events)-1+n {
			t.Fatalf("resume returned seq %d, want %d", ev.Seq, len(events)-1+n)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("resume from last returned %d events, want 1", n)
	}
}

// TestArtifactEndpointServesWireEntries pins the peer-serving path over
// HTTP: after a job runs, its block artifacts are fetchable as wire
// entries that decode cleanly, and unknown keys 404.
func TestArtifactEndpointServesWireEntries(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.Options{})
	info := postJob(t, ts, `{"experiments":["table4"]}`)
	pollDone(t, ts, info.ID)

	// The manager's cache now holds block artifacts; EntryBytes must serve
	// at least one of them over the endpoint. We don't know the keys from
	// here, so assert via the manager's stats + a negative probe.
	if st := mgr.CacheStats(); st.Stores == 0 {
		t.Fatal("job stored no artifacts to serve")
	}
	resp, err := http.Get(ts.URL + "/v1/artifacts/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact = %d, want 404", resp.StatusCode)
	}
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "not_found" {
		t.Fatalf("artifact 404 envelope = %+v (%v)", e, err)
	}
}

// TestPprofGate checks the profiling endpoints are mounted only when
// Options.Pprof is set: the index and a named profile serve 200 with the
// flag, and the whole /debug/pprof/ subtree 404s without it.
func TestPprofGate(t *testing.T) {
	mgr := jobs.NewManager(jobs.Options{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Close(ctx); err != nil {
			t.Errorf("manager drain: %v", err)
		}
	})

	on := httptest.NewServer(NewWithOptions(Options{Manager: mgr, Pprof: true}))
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(resp)
		if resp.StatusCode != http.StatusOK || body == "" {
			t.Fatalf("pprof on: GET %s = %d (%d bytes), want 200 with body", path, resp.StatusCode, len(body))
		}
	}

	off := httptest.NewServer(NewWithOptions(Options{Manager: mgr}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	// The flag must not disturb the regular surface.
	resp, err = http.Get(on.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with pprof on = %d, want 200", resp.StatusCode)
	}
}
