package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"fold3d/internal/jobs"
)

// The fleet benchmark measures end-to-end completion throughput: a fixed
// workload of benchJobs distinct requests is submitted to the fleet
// (closed-loop, honoring shed responses with a short backoff) and timed
// until every job is terminal. jobs/s = workload / wall time.
//
// Methodology note for this one-CPU host: execution is CPU-bound, so
// adding nodes cannot multiply raw compute — what the fleet genuinely
// changes on one CPU is cache reach. A warm fleet answers the same
// workload several times faster than the cold single-node baseline
// because every owner serves its share from cache (local or fetched from
// peers over the artifact network tier) instead of recomputing. On
// multi-core hosts the same harness additionally scales with CPUs; the
// 1/2/4-node rows here isolate the routing + cache effect from compute
// parallelism.
const (
	benchJobs  = 192
	benchDepth = 64
)

// benchBody builds one request body; distinct seeds never collide, so
// cold rounds stay cold.
func benchBody(b *testing.B, seed uint64) []byte {
	b.Helper()
	data, err := json.Marshal(jobs.Request{Experiments: []string{"table4"}, Scale: 2000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// submitStatus posts one job and returns only the HTTP status (the body
// is drained so the connection is reused).
func submitStatus(b *testing.B, client *http.Client, url string, body []byte) int {
	b.Helper()
	resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode
}

// submitAll pushes one round of the workload into the fleet round-robin,
// backing off briefly on shed (429/503) responses.
func submitAll(b *testing.B, client *http.Client, fleet []*fleetNode, seedBase uint64) {
	b.Helper()
	for i := 0; i < benchJobs; i++ {
		body := benchBody(b, seedBase+uint64(i))
		deadline := time.Now().Add(300 * time.Second)
		for {
			code := submitStatus(b, client, fleet[i%len(fleet)].srv.URL, body)
			if code == http.StatusAccepted {
				break
			}
			if code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
				b.Fatalf("submit = %d", code)
			}
			if time.Now().After(deadline) {
				b.Fatal("workload never fully admitted")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// drainFleet blocks until no node has queued or running jobs.
func drainFleet(b *testing.B, fleet []*fleetNode) {
	b.Helper()
	deadline := time.Now().Add(300 * time.Second)
	for _, fn := range fleet {
		for {
			m := fn.mgr.Metrics()
			if m.Queued == 0 && m.Running == 0 {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("node %s never drained (%d queued, %d running)", fn.id, m.Queued, m.Running)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func benchFleetThroughput(b *testing.B, nNodes int, warm bool) {
	fleet := newFleet(b, nNodes, benchDepth)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	defer client.CloseIdleConnections()
	const warmBase = uint64(1)
	if warm {
		// Pre-run the workload once through normal routing so every
		// owner's cache holds its share; timed rounds re-offer the same
		// requests.
		submitAll(b, client, fleet, warmBase)
		drainFleet(b, fleet)
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		seedBase := warmBase
		if !warm {
			// Never-seen seeds keep every round cold.
			seedBase = uint64(1<<20 + iter*benchJobs)
		}
		submitAll(b, client, fleet, seedBase)
		drainFleet(b, fleet)
	}
	b.StopTimer()
	b.ReportMetric(float64(benchJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkFleetThroughput covers 1/2/4 nodes, warm and cold.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, warm := range []bool{false, true} {
		for _, n := range []int{1, 2, 4} {
			label := "cold"
			if warm {
				label = "warm"
			}
			b.Run(fmt.Sprintf("%s-%dnode", label, n), func(b *testing.B) {
				benchFleetThroughput(b, n, warm)
			})
		}
	}
}

// BenchmarkFleetPeerWarm isolates the network cache tier: a two-node
// fleet where the artifacts for the whole workload live only on the
// nodes that do NOT own the requests, so every owner must fill its cache
// over HTTP from its peer. Compare against cold-2node (recompute) and
// warm-2node (local hits) in BenchmarkFleetThroughput.
func BenchmarkFleetPeerWarm(b *testing.B) {
	fleet := newFleet(b, 2, benchDepth)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	defer client.CloseIdleConnections()
	// Plant every request's artifacts on the non-owner via direct manager
	// submits (bypassing routing).
	for i := 0; i < benchJobs; i++ {
		req := jobs.Request{Experiments: []string{"table4"}, Scale: 2000, Seed: uint64(i + 1)}
		owner := fleet[0].ring.Owner(string(req.Fingerprint())).ID
		holder := fleet[0]
		if owner == fleet[0].id {
			holder = fleet[1]
		}
		j, err := holder.mgr.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		submitAll(b, client, fleet, 1)
		drainFleet(b, fleet)
	}
	b.StopTimer()
	b.ReportMetric(float64(benchJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	var peerHits int
	for _, fn := range fleet {
		peerHits += fn.cache.Stats().PeerHits
	}
	if peerHits == 0 {
		b.Fatal("peer-warm run never touched the network cache tier")
	}
	b.ReportMetric(float64(peerHits)/float64(b.N), "peer-hits/op")
}
