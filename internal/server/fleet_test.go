package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fold3d/internal/cluster"
	"fold3d/internal/jobs"
	"fold3d/internal/pipeline"
)

// fleetToken is the shared peer secret every fleet fixture uses, so the
// forward and artifact paths exercise authentication too.
const fleetToken = "fleet-test-secret"

// fleetNode is one in-process daemon of a test fleet: its HTTP server,
// manager, cache (for stats assertions) and ring (for owner probes).
type fleetNode struct {
	id    string
	srv   *httptest.Server
	mgr   *jobs.Manager
	cache *pipeline.Cache
	ring  *cluster.Ring
}

// newFleet boots n fully-wired nodes that know each other as peers.
// Listeners are allocated before any ring is built so every node's URL is
// known up front; each node gets its own cache with the peer network tier
// and a single scheduler worker (the host has one CPU — more workers per
// node would only interleave).
func newFleet(tb testing.TB, n, depth int) []*fleetNode {
	tb.Helper()
	lns := make([]net.Listener, n)
	nodes := make([]cluster.Node, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		nodes[i] = cluster.Node{ID: fmt.Sprintf("n%d", i), URL: "http://" + ln.Addr().String()}
	}
	fleet := make([]*fleetNode, n)
	for i := range fleet {
		ring, err := cluster.New(nodes[i].ID, nodes)
		if err != nil {
			tb.Fatal(err)
		}
		router := cluster.NewRouter(ring, fleetToken)
		cache := pipeline.NewCache(pipeline.CacheOptions{
			Tiers:    []pipeline.CacheTier{router.Tier()},
			KeepWire: true,
		})
		mgr := jobs.NewManager(jobs.Options{Workers: 1, QueueDepth: depth, Cache: cache, NodeID: nodes[i].ID})
		srv := httptest.NewUnstartedServer(NewWithOptions(Options{Manager: mgr, Router: router}))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		fleet[i] = &fleetNode{id: nodes[i].ID, srv: srv, mgr: mgr, cache: cache, ring: ring}
	}
	tb.Cleanup(func() {
		for _, fn := range fleet {
			fn.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			_ = fn.mgr.Close(ctx)
			cancel()
		}
	})
	return fleet
}

// fleetReqs is the request mix every fleet test runs: one experiment at
// several seeds plus scale and placement-backend variants, so fingerprints
// are distinct and the consistent hash splits them across nodes — and the
// determinism proof covers both placement backends end to end.
func fleetReqs() []jobs.Request {
	reqs := []jobs.Request{
		{Experiments: []string{"table4"}},
		{Experiments: []string{"table4"}, Seed: 7},
		{Experiments: []string{"table4"}, Seed: 11},
		{Experiments: []string{"table4"}, Seed: 13},
		{Experiments: []string{"table4"}, Scale: 500},
		{Experiments: []string{"table4"}, Scale: 500, Seed: 7},
		{Experiments: []string{"table4"}, Placer: "analytical"},
		{Experiments: []string{"table4"}, Seed: 7, Placer: "analytical"},
		{Experiments: []string{"table1"}},
		{Experiments: []string{"table1"}, Seed: 7},
	}
	return reqs
}

// submitJSON posts a request and returns the accepted snapshot.
func submitJSON(t *testing.T, ts *httptest.Server, req jobs.Request) jobs.Info {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postJob(t, ts, string(body))
}

// runFleet submits every request to entry (any node of the fleet), waits
// for completion through that same node, and returns the result
// fingerprints in request order.
func runFleet(t *testing.T, entry *httptest.Server, reqs []jobs.Request) []string {
	t.Helper()
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		ids[i] = submitJSON(t, entry, req).ID
	}
	fps := make([]string, len(reqs))
	for i, id := range ids {
		info := pollDone(t, entry, id)
		if info.State != jobs.StateDone || info.Result == nil {
			t.Fatalf("request %d (job %s) ended %s: %s", i, id, info.State, info.Error)
		}
		fps[i] = string(info.Result.Fingerprint)
	}
	return fps
}

// TestFleetEquivalence is the determinism proof of the tentpole: the same
// request set produces byte-identical result fingerprints on a single
// node, on a two-node fleet with cold caches, and on a two-node fleet
// where the executing nodes warm themselves over the peer tier. Every
// submission and status poll goes through one entry node, so the
// forward/proxy path is on trial too.
func TestFleetEquivalence(t *testing.T) {
	reqs := fleetReqs()

	single := newFleet(t, 1, 64)
	baseline := runFleet(t, single[0].srv, reqs)
	for i, fp := range baseline {
		if len(fp) != 64 {
			t.Fatalf("baseline fingerprint %d = %q, want 64 hex chars", i, fp)
		}
	}

	// Two nodes, cold caches: submissions all enter through node 0; the
	// consistent hash must spread ownership (asserted below) and results
	// must not move.
	cold := newFleet(t, 2, 64)
	coldFPs := runFleet(t, cold[0].srv, reqs)
	owners := map[string]int{}
	for _, req := range reqs {
		owners[cold[0].ring.Owner(string(req.Fingerprint())).ID]++
	}
	if len(owners) < 2 {
		t.Fatalf("request mix all hashed to one owner (%v); pick seeds that split", owners)
	}
	for i := range reqs {
		if coldFPs[i] != baseline[i] {
			t.Errorf("request %d: cold 2-node fingerprint %s != single-node %s", i, coldFPs[i], baseline[i])
		}
	}

	// Two nodes, warm peer: node 1 has run everything locally (direct
	// manager submits bypass routing), node 0 is cold. Submitting through
	// node 1 routes each job to its owner; jobs owned by node 0 must fill
	// node 0's cache from node 1 over HTTP — and still fingerprint
	// identically.
	warm := newFleet(t, 2, 64)
	for i, req := range reqs {
		j, err := warm[1].mgr.Submit(req)
		if err != nil {
			t.Fatalf("pre-warming node 1 with request %d: %v", i, err)
		}
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("pre-warm job %s never finished", j.ID())
		}
	}
	warmFPs := runFleet(t, warm[1].srv, reqs)
	for i := range reqs {
		if warmFPs[i] != baseline[i] {
			t.Errorf("request %d: warm-peer fingerprint %s != single-node %s", i, warmFPs[i], baseline[i])
		}
	}
	if hits := warm[0].cache.Stats().PeerHits; hits == 0 {
		t.Error("node 0 executed its share of the warm run without a single peer-cache hit")
	}
}

// TestFleetForwardedOwnership pins the routing mechanics end to end: a
// job submitted to a non-owner comes back with the owner's node-prefixed
// ID, and every node can answer status and event-stream reads for it.
func TestFleetForwardedOwnership(t *testing.T) {
	fleet := newFleet(t, 2, 64)
	// Find a request owned by node 1 so a submit to node 0 must forward.
	var req jobs.Request
	found := false
	for seed := uint64(0); seed < 64 && !found; seed++ {
		req = jobs.Request{Experiments: []string{"table4"}, Seed: seed}
		if fleet[0].ring.Owner(string(req.Fingerprint())).ID == "n1" {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed in [0,64) hashed to node 1")
	}
	info := submitJSON(t, fleet[0].srv, req)
	if !strings.HasPrefix(info.ID, "n1-job-") {
		t.Fatalf("forwarded job ID = %q, want n1's prefix", info.ID)
	}
	// Both nodes resolve the job: the owner locally, the other by proxy.
	for _, fn := range fleet {
		got := pollDone(t, fn.srv, info.ID)
		if got.State != jobs.StateDone {
			t.Fatalf("via %s: job %s ended %s", fn.id, info.ID, got.State)
		}
	}
	// The event stream proxies too, with the full dense history.
	resp, err := http.Get(fleet[0].srv.URL + "/v1/jobs/" + info.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied events = %d, want 200", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	n := 0
	for dec.More() {
		var ev jobs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != n {
			t.Fatalf("proxied stream not dense at %d: %+v", n, ev)
		}
		n++
	}
	if n < 3 {
		t.Fatalf("proxied stream returned only %d events", n)
	}
}

// TestFleetPeerAuth pins the trust boundary: without the peer token,
// artifact fetches and forwarded submissions are refused.
func TestFleetPeerAuth(t *testing.T) {
	fleet := newFleet(t, 2, 64)
	// An unauthenticated artifact read is a 401 before any key lookup.
	resp, err := http.Get(fleet[0].srv.URL + "/v1/artifacts/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless artifact fetch = %d, want 401", resp.StatusCode)
	}
	// A forged forwarded submission (claims to be from a peer, lacks the
	// token) is refused rather than executed.
	req, err := http.NewRequest(http.MethodPost, fleet[0].srv.URL+"/v1/jobs", strings.NewReader(`{"experiments":["table4"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("forged forwarded submit = %d, want 401", resp.StatusCode)
	}
}

// TestFleetBackendIsolation pins the peer tier against cross-backend
// leakage: a node whose peer has run the same work under the other
// placement backend must fill nothing over the network — the placer is in
// every stage key, so the peer's entries are simply foreign. It also pins
// that the two backends' jobs report different result fingerprints.
func TestFleetBackendIsolation(t *testing.T) {
	fleet := newFleet(t, 2, 64)
	force := jobs.Request{Experiments: []string{"table4"}}
	analytical := jobs.Request{Experiments: []string{"table4"}, Placer: "analytical"}

	// Node 1 runs the force job locally (direct manager submit bypasses
	// routing), fully warming its cache with force-keyed entries.
	jf, err := fleet[1].mgr.Submit(force)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-jf.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("force warm-up job never finished")
	}
	if fleet[1].cache.Stats().Stores == 0 {
		t.Fatal("force job stored nothing; the isolation check would be vacuous")
	}

	// Node 0 runs the analytical job locally. Its cache is cold, so every
	// stage consults the peer tier — which holds only force entries and
	// must contribute nothing.
	ja, err := fleet[0].mgr.Submit(analytical)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ja.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("analytical job never finished")
	}
	if hits := fleet[0].cache.Stats().PeerHits; hits != 0 {
		t.Errorf("analytical job took %d peer hits from a force-warmed peer", hits)
	}

	fi, ai := jf.Info(), ja.Info()
	if fi.State != jobs.StateDone || ai.State != jobs.StateDone {
		t.Fatalf("jobs ended %s/%s: %s %s", fi.State, ai.State, fi.Error, ai.Error)
	}
	if fi.Result.Fingerprint == ai.Result.Fingerprint {
		t.Error("force and analytical jobs produced the same result fingerprint")
	}
}
