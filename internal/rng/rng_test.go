package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams from different seeds collide %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	a := r.Split("alpha")
	r2 := New(5)
	b := r2.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams with different tags collide %d/64 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split("x")
	b := New(5).Split("x")
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same split must be deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(4)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("std = %v, want ~2", std)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(8)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle lost elements: %v", s)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.03 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(10)
	const n = 10000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		v := r.Zipf(20, 1.5)
		if v < 0 || v >= 20 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	if r.Zipf(1, 1.5) != 0 {
		t.Error("Zipf(1) must be 0")
	}
}
