// Package rng provides a small deterministic pseudo-random number generator
// used by every stochastic algorithm in fold3d (netlist generation, simulated
// annealing, FM tie-breaking). Using one splittable generator keeps every
// experiment bit-reproducible across runs and platforms, which the experiment
// harness relies on when comparing design styles.
package rng

import "math"

// R is a splitmix64-based generator. The zero value is NOT valid; use New.
type R struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *R {
	// Avoid the all-zeros fixed point of the mixing function.
	return &R{state: seed*0x9E3779B97F4A7C15 + 0x1234567887654321}
}

// Split derives an independent generator from r, keyed by tag. Two splits
// with different tags produce uncorrelated streams, so subsystems can draw
// randomness without perturbing each other's sequences.
func (r *R) Split(tag string) *R {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *R) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *R) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *R) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *R) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation (Box-Muller).
func (r *R) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *R) Perm(n int) []int {
	return r.PermInto(make([]int, 0, n), n)
}

// PermInto appends a random permutation of [0, n) to p and returns it,
// reusing p's capacity. It consumes exactly the same draws as Perm, so the
// two are interchangeable without perturbing downstream randomness.
func (r *R) PermInto(p []int, n int) []int {
	base := len(p)
	for i := 0; i < n; i++ {
		p = append(p, i)
	}
	q := p[base:]
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		q[i], q[j] = q[j], q[i]
	}
	return p
}

// Shuffle permutes the order of n elements using swap.
func (r *R) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *R) Bool(p float64) bool { return r.Float64() < p }

// Zipf returns an integer in [0, n) drawn from a truncated Zipf-like
// distribution with exponent s; small indices are much more likely. It is
// used to produce realistic net fanout distributions.
func (r *R) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF on the continuous approximation.
	u := r.Float64()
	x := math.Pow(float64(n), 1-s)
	v := math.Pow(u*(x-1)+1, 1/(1-s))
	k := int(v) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
