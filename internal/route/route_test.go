package route

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func TestGridConstruction(t *testing.T) {
	g, err := NewGrid(geom.NewRect(0, 0, 20, 10), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := g.Dims()
	if nx != 10 || ny != 5 {
		t.Errorf("dims = %d x %d", nx, ny)
	}
	if _, err := NewGrid(geom.Rect{}, DefaultOptions()); err == nil {
		t.Error("expected error for empty region")
	}
}

func TestRoute2PinSamePlane(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 40, 40), DefaultOptions())
	p, err := g.Route2Pin(geom.Point{X: 1, Y: 1}, 0, geom.Point{X: 39, Y: 39}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vias) != 0 {
		t.Errorf("same-plane route used %d vias", len(p.Vias))
	}
	// Manhattan distance is 19+19 gcells = 76um of routed length.
	if p.LenUm < 70 || p.LenUm > 90 {
		t.Errorf("routed length = %v", p.LenUm)
	}
}

func TestRoute2PinCrossPlane(t *testing.T) {
	g, _ := NewGrid(geom.NewRect(0, 0, 40, 40), DefaultOptions())
	p, err := g.Route2Pin(geom.Point{X: 1, Y: 1}, 0, geom.Point{X: 39, Y: 39}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vias) != 1 {
		t.Errorf("cross-plane route used %d vias, want exactly 1", len(p.Vias))
	}
}

func TestCongestionSpreadsRoutes(t *testing.T) {
	opt := DefaultOptions()
	opt.Capacity = 1
	g, _ := NewGrid(geom.NewRect(0, 0, 40, 40), opt)
	// Route many parallel connections; congestion must produce overflow
	// accounting but routes must still complete.
	for i := 0; i < 20; i++ {
		if _, err := g.Route2Pin(geom.Point{X: 1, Y: 20}, 0, geom.Point{X: 39, Y: 20}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if g.Overflow() == 0 {
		t.Error("expected overflow with capacity 1")
	}
}

// foldedNetBlock builds a 3D block with die-crossing nets for via placement.
func foldedNetBlock(t *testing.T, crossing int) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	b := netlist.NewBlock("r", tech.CPUClock)
	b.Is3D = true
	b.Outline[0] = geom.NewRect(0, 0, 50, 50)
	b.Outline[1] = b.Outline[0]
	for i := 0; i < 2*crossing; i++ {
		die := netlist.DieBottom
		if i%2 == 1 {
			die = netlist.DieTop
		}
		b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("c%d", i),
			Master: lib.MustCell(tech.INV, 2, tech.RVT),
			Pos:    geom.Point{X: float64(1 + i*2%45), Y: float64(1 + (i*7)%45)},
			Die:    die,
		})
	}
	for i := 0; i < crossing; i++ {
		b.AddNet(netlist.Net{
			Name:   fmt.Sprintf("x%d", i),
			Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(2 * i)},
			Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(2*i + 1)}},
		})
	}
	return b
}

func TestPlaceF2FVias(t *testing.T) {
	b := foldedNetBlock(t, 15)
	g, err := PlaceF2FVias(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.NumF2F != 15 {
		t.Errorf("NumF2F = %d, want 15 (one via per 2-pin crossing net)", b.NumF2F)
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if b.NetIs3D(n) && (len(n.Vias) == 0 || n.Crossings == 0) {
			t.Errorf("3D net %s got no via", n.Name)
		}
	}
	if g.MaxViaDensity() < 1 {
		t.Error("via density tracking broken")
	}
	if len(b.TSVPads) != 0 {
		t.Error("F2F vias must not create silicon pads")
	}
}

func TestPlaceF2FViasOverMacros(t *testing.T) {
	// Unlike TSVs, F2F vias may land over macros — the paper's Figure 6(b).
	b := foldedNetBlock(t, 10)
	lib := tech.NewLibrary()
	mm := lib.MacroKB
	mm.Width, mm.Height = 48, 48 // nearly the whole die
	b.AddMacro(netlist.MacroInst{Name: "m", Model: mm, Pos: geom.Point{X: 1, Y: 1}, Die: netlist.DieBottom, Fixed: true})
	if _, err := PlaceF2FVias(b, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	over := 0
	macro := b.Macros[0].Rect()
	for i := range b.Nets {
		for _, v := range b.Nets[i].Vias {
			if macro.Contains(v) {
				over++
			}
		}
	}
	if over == 0 {
		t.Error("expected F2F vias over the macro")
	}
}

func TestPlaceF2FViasErrorsOn2D(t *testing.T) {
	b := foldedNetBlock(t, 2)
	b.Is3D = false
	if _, err := PlaceF2FVias(b, DefaultOptions()); err == nil {
		t.Error("expected error on 2D block")
	}
}

func TestMidpointBaseline(t *testing.T) {
	b := foldedNetBlock(t, 15)
	pile, err := PlaceViasMidpoint(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.NumF2F != 15 {
		t.Errorf("NumF2F = %d", b.NumF2F)
	}
	if pile < 1 {
		t.Errorf("max pile = %d", pile)
	}
}

func TestRoutedViasSpreadBetterThanMidpoint(t *testing.T) {
	// Nets sharing the same crossing region: the router must spread vias
	// under congestion while the midpoint baseline piles them up.
	mk := func() *netlist.Block {
		lib := tech.NewLibrary()
		b := netlist.NewBlock("s", tech.CPUClock)
		b.Is3D = true
		b.Outline[0] = geom.NewRect(0, 0, 40, 40)
		b.Outline[1] = b.Outline[0]
		for i := 0; i < 40; i++ {
			die := netlist.DieBottom
			if i%2 == 1 {
				die = netlist.DieTop
			}
			// All drivers at the left edge, all sinks at the right: every
			// midpoint lands at x=20.
			x := 1.0
			if i%2 == 1 {
				x = 39
			}
			b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("c%d", i),
				Master: lib.MustCell(tech.INV, 2, tech.RVT),
				Pos:    geom.Point{X: x, Y: 20},
				Die:    die,
			})
		}
		for i := 0; i < 20; i++ {
			b.AddNet(netlist.Net{
				Name:   fmt.Sprintf("x%d", i),
				Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(2 * i)},
				Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(2*i + 1)}},
			})
		}
		return b
	}
	opt := DefaultOptions()
	opt.Capacity = 2
	b1 := mk()
	g, err := PlaceF2FVias(b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	b2 := mk()
	midPile, err := PlaceViasMidpoint(b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxViaDensity() > midPile {
		t.Errorf("router piled vias worse than midpoint: %d vs %d", g.MaxViaDensity(), midPile)
	}
}
